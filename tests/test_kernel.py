"""Kernel flavor detection and the pure-Python override hook."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

from repro import kernel

ROOT = Path(__file__).resolve().parent.parent


class TestFlavorDetection:
    def test_flavor_matches_the_loaded_modules(self):
        # "compiled" iff at least one kernel module was imported from an
        # extension — true in the CI compiled-smoke job, false in the
        # plain source checkout this suite usually runs from
        if kernel.compiled_modules():
            assert kernel.kernel_flavor() == "compiled"
        else:
            assert kernel.kernel_flavor() == "interpreted"
        assert set(kernel.compiled_modules()) <= set(kernel.KERNEL_MODULES)

    def test_every_kernel_module_is_importable(self):
        import importlib

        for name in kernel.KERNEL_MODULES:
            module = importlib.import_module(name)
            assert module.__name__ == name

    def test_kernel_modules_exist_as_sources(self):
        src = ROOT / "src"
        for name in kernel.KERNEL_MODULES:
            path = src.joinpath(*name.split(".")).with_suffix(".py")
            assert path.is_file(), path

    def test_describe_shape(self):
        info = kernel.describe()
        assert info["flavor"] in ("compiled", "interpreted")
        assert isinstance(info["compiled_available"], bool)
        assert isinstance(info["pure_python_forced"], bool)
        assert info["kernel_modules"] == len(kernel.KERNEL_MODULES)
        assert 0 <= info["compiled_modules"] <= info["kernel_modules"]

    def test_data_modules_stay_out_of_the_kernel(self):
        """Hash-consing is a metaclass and seed artifacts pickle these
        classes: the definition modules must never be compiled."""
        for name in (
            "repro.core.types",
            "repro.core.srctypes",
            "repro.core.environment",
            "repro.core.intern",
        ):
            assert name not in kernel.KERNEL_MODULES


class TestPurePythonOverride:
    def test_env_parsing(self, monkeypatch):
        for value, expected in (
            ("1", True),
            ("true", True),
            ("on", True),
            ("0", False),
            ("", False),
            ("no", False),
        ):
            monkeypatch.setenv(kernel.PURE_PYTHON_ENV, value)
            assert kernel.pure_python_forced() is expected, value
        monkeypatch.delenv(kernel.PURE_PYTHON_ENV)
        assert kernel.pure_python_forced() is False

    def test_hook_not_installed_without_env(self, monkeypatch):
        monkeypatch.delenv(kernel.PURE_PYTHON_ENV, raising=False)
        assert kernel.install_pure_python_hook() is False

    def test_finder_resolves_kernel_modules_from_source(self):
        finder = kernel._PurePythonFinder()
        import repro.core

        spec = finder.find_spec(
            "repro.core.unify", path=repro.core.__path__
        )
        assert spec is not None
        assert spec.origin.endswith("unify.py")

    def test_finder_ignores_non_kernel_modules(self):
        finder = kernel._PurePythonFinder()
        import repro.core

        assert (
            finder.find_spec("repro.core.intern", path=repro.core.__path__)
            is None
        )
        assert finder.find_spec("json", path=None) is None

    def test_forced_interpreter_run_is_green(self):
        """End-to-end: a subprocess under MLFFI_PURE_PYTHON=1 installs the
        hook, loads the kernel from sources, and analyzes correctly."""
        import os

        env = dict(os.environ)
        env[kernel.PURE_PYTHON_ENV] = "1"
        env["PYTHONPATH"] = str(ROOT / "src")
        code = (
            "import sys, repro\n"
            "from repro import kernel\n"
            "assert kernel.pure_python_forced()\n"
            "assert any(isinstance(f, kernel._PurePythonFinder)"
            " for f in sys.meta_path)\n"
            "assert kernel.kernel_flavor() == 'interpreted'\n"
            "from repro.api import check_c_source\n"
            "report = check_c_source('#include <caml/mlvalues.h>\\n"
            "value f(value v) { return Val_int(Int_val(v)); }\\n')\n"
            "assert not report.errors, report.render()\n"
            "print('ok')\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", code],
            env=env,
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.strip() == "ok"


class TestVersionSurface:
    def test_cli_version_reports_kernel_flavor(self, capsys):
        from repro import __version__
        from repro.cli import main

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert __version__ in out
        assert kernel.kernel_flavor() in out

    def test_server_status_carries_kernel_and_seeds(self, tmp_path):
        import json

        from repro.engine import IncrementalEngine
        from repro.server.service import AnalysisService

        (tmp_path / "counter.ml").write_text(
            'external make : int -> int = "ml_make"\n'
        )
        service = AnalysisService(IncrementalEngine(str(tmp_path)))
        status = service.handle(
            json.dumps({"id": 1, "method": "status"})
        )
        result = status["result"]
        assert result["kernel"]["flavor"] in ("compiled", "interpreted")
        assert "tables" in result["seeds"]
        assert "artifact_loads" in result["seeds"]
