"""Tests for the Figure 13 value typing and Definition 4 compatibility."""

import random

import pytest

from repro.core.lattice import (
    BOXED,
    FLAT_TOP,
    Qualifier,
    TOP_B,
    UNBOXED,
)
from repro.core.types import (
    C_INT,
    CPtr,
    CValue,
    INT_REPR,
    MTRepr,
    PsiConst,
    closed_pi,
    closed_sigma,
)
from repro.core.unify import Unifier
from repro.semantics.generator import random_inhabitant, random_variant
from repro.semantics.stores import MachineState
from repro.semantics.typecheck import (
    HeapTyping,
    ValueTypeError,
    check_compatibility,
    check_value,
)
from repro.semantics.values import CIntVal, CLoc, MLInt, MLLoc

TOP_QUAL = Qualifier(TOP_B, 0, FLAT_TOP)


@pytest.fixture()
def unifier():
    return Unifier()


@pytest.fixture()
def heap():
    return HeapTyping()


def pair_repr():
    """(0, int × int) — an int pair."""
    return MTRepr(
        psi=PsiConst(0), sigma=closed_sigma([closed_pi([INT_REPR, INT_REPR])])
    )


class TestCheckValue:
    def test_c_int_at_int(self, unifier, heap):
        check_value(unifier, heap, CIntVal(5), C_INT, TOP_QUAL)

    def test_c_int_tag_must_match(self, unifier, heap):
        check_value(unifier, heap, CIntVal(5), C_INT, Qualifier(TOP_B, 0, 5))
        with pytest.raises(ValueTypeError):
            check_value(
                unifier, heap, CIntVal(5), C_INT, Qualifier(TOP_B, 0, 6)
            )

    def test_c_int_at_value_rejected(self, unifier, heap):
        with pytest.raises(ValueTypeError):
            check_value(
                unifier, heap, CIntVal(5), CValue(INT_REPR), TOP_QUAL
            )

    def test_ml_int_at_int_repr(self, unifier, heap):
        check_value(unifier, heap, MLInt(42), CValue(INT_REPR), TOP_QUAL)

    def test_ml_int_nullary_bound(self, unifier, heap):
        two = MTRepr(psi=PsiConst(2), sigma=closed_sigma([]))
        check_value(unifier, heap, MLInt(1), CValue(two), TOP_QUAL)
        with pytest.raises(ValueTypeError):
            check_value(unifier, heap, MLInt(2), CValue(two), TOP_QUAL)

    def test_ml_int_claimed_boxed_rejected(self, unifier, heap):
        with pytest.raises(ValueTypeError):
            check_value(
                unifier,
                heap,
                MLInt(0),
                CValue(INT_REPR),
                Qualifier(BOXED, 0, FLAT_TOP),
            )

    def test_ml_loc_requires_known_block(self, unifier, heap):
        with pytest.raises(ValueTypeError):
            check_value(
                unifier, heap, MLLoc(0, 0), CValue(pair_repr()), TOP_QUAL
            )

    def test_ml_loc_offset_claim_checked(self, unifier, heap):
        heap.blocks[0] = pair_repr()
        check_value(
            unifier,
            heap,
            MLLoc(0, 1),
            CValue(pair_repr()),
            Qualifier(BOXED, 1, FLAT_TOP),
        )
        with pytest.raises(ValueTypeError):
            check_value(
                unifier,
                heap,
                MLLoc(0, 1),
                CValue(pair_repr()),
                Qualifier(BOXED, 0, FLAT_TOP),
            )

    def test_ml_loc_claimed_unboxed_rejected(self, unifier, heap):
        heap.blocks[0] = pair_repr()
        with pytest.raises(ValueTypeError):
            check_value(
                unifier,
                heap,
                MLLoc(0, 0),
                CValue(pair_repr()),
                Qualifier(UNBOXED, 0, FLAT_TOP),
            )

    def test_c_loc_needs_pointer_type(self, unifier, heap):
        heap.c_cells[0] = C_INT
        check_value(unifier, heap, CLoc(0), CPtr(C_INT), TOP_QUAL)
        with pytest.raises(ValueTypeError):
            check_value(unifier, heap, CLoc(0), C_INT, TOP_QUAL)


class TestCompatibility:
    def test_empty_state_compatible(self, unifier, heap):
        assert check_compatibility(unifier, heap, MachineState(), {}) == []

    def test_well_formed_block(self, unifier, heap):
        state = MachineState()
        loc = state.ml_store.alloc_block(0, [MLInt(1), MLInt(2)])
        heap.blocks[loc.base] = pair_repr()
        state.variables.write("x", loc)
        problems = check_compatibility(
            unifier,
            heap,
            state,
            {"x": (CValue(pair_repr()), Qualifier(BOXED, 0, 0))},
        )
        assert problems == []

    def test_tag_out_of_type_detected(self, unifier, heap):
        state = MachineState()
        loc = state.ml_store.alloc_block(7, [MLInt(1)])
        heap.blocks[loc.base] = pair_repr()
        problems = check_compatibility(unifier, heap, state, {})
        assert any("tag 7" in p for p in problems)

    def test_untyped_block_detected(self, unifier, heap):
        state = MachineState()
        state.ml_store.alloc_block(0, [MLInt(1)])
        problems = check_compatibility(unifier, heap, state, {})
        assert any("no typing" in p for p in problems)

    def test_wrong_field_value_detected(self, unifier, heap):
        state = MachineState()
        # field claims int but holds a C location
        cloc = state.c_store.alloc(CIntVal(0))
        heap.c_cells[cloc.address] = C_INT
        loc = state.ml_store.alloc_block(0, [cloc, MLInt(2)])
        heap.blocks[loc.base] = pair_repr()
        problems = check_compatibility(unifier, heap, state, {})
        assert any("field 0" in p for p in problems)

    def test_variable_against_wrong_type(self, unifier, heap):
        state = MachineState()
        state.variables.write("x", MLInt(3))
        problems = check_compatibility(
            unifier,
            heap,
            state,
            {"x": (C_INT, TOP_QUAL)},
        )
        assert any("`x`" in p for p in problems)

    def test_generated_inhabitants_always_compatible(self, unifier):
        """The generator builds blocks from types — Definition 4 holds."""
        from repro.core.srctypes import SConstructor, SSum, SInt
        from repro.core.translate import rho

        rng = random.Random(5)
        for _ in range(30):
            variant = random_variant(rng)
            source_sum = SSum(
                tuple(
                    SConstructor(c.name, tuple(SInt() for _ in range(c.arity)))
                    for c in variant.constructors
                )
            )
            repr_type = rho(source_sum)
            state = MachineState()
            value = random_inhabitant(rng, variant, state)
            heap = HeapTyping()
            for base in state.ml_store.sizes:
                heap.blocks[base] = repr_type
            qual = (
                Qualifier(UNBOXED, 0, FLAT_TOP)
                if isinstance(value, MLInt)
                else Qualifier(BOXED, 0, FLAT_TOP)
            )
            state.variables.write("x", value)
            problems = check_compatibility(
                unifier, heap, state, {"x": (CValue(repr_type), qual)}
            )
            assert problems == [], problems
