"""Tests for the Figure 11 reduction contexts.

The key property: the context-based small-step evaluator agrees with the
recursive evaluator of :mod:`repro.semantics.reduce` on every expression —
both on the resulting value and on getting stuck.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cfront.ir import (
    AOp,
    Deref,
    IntLit,
    IntValExp,
    PtrAdd,
    ValIntExp,
    VarExp,
)
from repro.semantics.contexts import (
    ValueExp,
    as_value,
    context_eval,
    contract,
    decompose,
)
from repro.semantics.reduce import StuckError, eval_expr
from repro.semantics.stores import MachineState
from repro.semantics.values import CIntVal, MLInt, MLLoc


@pytest.fixture()
def state():
    state = MachineState()
    state.variables.write("n", CIntVal(10))
    state.variables.write("u", MLInt(3))
    block = state.ml_store.alloc_block(1, [MLInt(7), MLInt(8)])
    state.variables.write("b", block)
    return state


class TestDecompose:
    def test_value_has_no_decomposition(self):
        assert decompose(IntLit(3)) is None
        assert decompose(ValueExp(MLInt(1))) is None

    def test_variable_is_its_own_redex(self):
        context, redex = decompose(VarExp("x"))
        assert isinstance(redex, VarExp)
        assert context(IntLit(1)) == IntLit(1)

    def test_leftmost_innermost(self):
        # (x + 1) + y — the first redex is x
        exp = AOp("+", AOp("+", VarExp("x"), IntLit(1)), VarExp("y"))
        _context, redex = decompose(exp)
        assert isinstance(redex, VarExp) and redex.name == "x"

    def test_plug_reconstructs(self):
        exp = AOp("*", VarExp("x"), IntLit(2))
        context, _redex = decompose(exp)
        rebuilt = context(ValueExp(CIntVal(5)))
        assert isinstance(rebuilt, AOp)
        assert isinstance(rebuilt.left, ValueExp)

    def test_right_operand_after_left(self):
        exp = AOp("+", IntLit(1), VarExp("y"))
        _context, redex = decompose(exp)
        assert isinstance(redex, VarExp) and redex.name == "y"


class TestContract:
    def test_var_lookup(self, state):
        result = contract(state, VarExp("n"))
        assert as_value(result) == CIntVal(10)

    def test_aop(self, state):
        result = contract(state, AOp("+", IntLit(2), IntLit(3)))
        assert as_value(result) == CIntVal(5)

    def test_stuck_propagates(self, state):
        with pytest.raises(StuckError):
            contract(state, IntValExp(IntLit(3)))


class TestContextEval:
    def test_simple(self, state):
        value, steps = context_eval(state, AOp("+", VarExp("n"), IntLit(5)))
        assert value == CIntVal(15)
        assert steps == 2  # lookup, then add

    def test_field_read(self, state):
        exp = IntValExp(Deref(PtrAdd(VarExp("b"), IntLit(1))))
        value, _ = context_eval(state, exp)
        assert value == CIntVal(8)

    def test_stuck_on_bad_program(self, state):
        with pytest.raises(StuckError):
            context_eval(state, ValIntExp(VarExp("u")))


# -- equivalence with the recursive evaluator -----------------------------------


@st.composite
def expressions(draw, depth=3):
    """Random restricted-language expressions over the fixture's variables."""
    if depth == 0:
        return draw(
            st.sampled_from(
                [IntLit(0), IntLit(5), VarExp("n"), VarExp("u"), VarExp("b")]
            )
        )
    choice = draw(st.integers(min_value=0, max_value=5))
    sub = expressions(depth=depth - 1)
    if choice == 0:
        return draw(sub)
    if choice == 1:
        op = draw(st.sampled_from(["+", "-", "*", "==", "<"]))
        return AOp(op, draw(sub), draw(sub))
    if choice == 2:
        return PtrAdd(draw(sub), draw(sub))
    if choice == 3:
        return Deref(draw(sub))
    if choice == 4:
        return ValIntExp(draw(sub))
    return IntValExp(draw(sub))


@settings(max_examples=200, deadline=None)
@given(expressions())
def test_context_eval_agrees_with_recursive_eval(exp):
    def fresh_state():
        state = MachineState()
        state.variables.write("n", CIntVal(10))
        state.variables.write("u", MLInt(3))
        block = state.ml_store.alloc_block(1, [MLInt(7), MLInt(8)])
        state.variables.write("b", block)
        return state

    recursive_state = fresh_state()
    context_state = fresh_state()

    try:
        expected = eval_expr(recursive_state, exp)
        recursive_stuck = None
    except StuckError as err:
        expected = None
        recursive_stuck = err

    try:
        actual, _steps = context_eval(context_state, exp)
        context_stuck = None
    except StuckError as err:
        actual = None
        context_stuck = err

    if recursive_stuck is None:
        assert context_stuck is None, (
            f"context eval stuck but recursive succeeded on {exp}: "
            f"{context_stuck}"
        )
        # values may live at different block bases across states with the
        # same construction order, so compare structurally
        assert type(actual) is type(expected)
        if isinstance(expected, (CIntVal, MLInt)):
            assert actual == expected
        elif isinstance(expected, MLLoc):
            assert actual.offset == expected.offset
    else:
        assert context_stuck is not None, (
            f"recursive eval stuck but context eval produced {actual} "
            f"on {exp}"
        )
