"""Empirical validation of Theorem 1 (paper §4).

The theorem: a well-typed statement either diverges or reduces to ``()`` —
it never gets stuck.  We generate random dispatch programs over random
variant types (some deliberately sabotaged with the §5.2 defect classes),
run the *actual* inference pipeline, and execute every accepted program on
random inhabitants of its argument type.  Acceptance must imply the machine
finishes.

The generated programs are loop-free, so a budget exhaustion would also be
a failure (they cannot diverge).
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.semantics.generator import (
    SABOTAGES,
    generate_program,
    random_inhabitant,
    random_variant,
)
from repro.semantics.machine import run_generated
from repro.semantics.reduce import Outcome
from repro.semantics.stores import MachineState
from repro.semantics.values import MLInt, MLLoc


class TestGenerator:
    def test_variant_has_nullary_constructor(self):
        rng = random.Random(0)
        for _ in range(50):
            variant = random_variant(rng)
            assert len(variant.nullary) >= 1

    def test_ocaml_decl_parses(self):
        from repro.ocamlfront.parser import parse_ml_text

        rng = random.Random(1)
        for _ in range(20):
            variant = random_variant(rng)
            unit = parse_ml_text(variant.ocaml_decl())
            assert len(unit.types) == 1
            assert len(unit.types[0].body.constructors) == len(
                variant.constructors
            )

    def test_inhabitants_match_layout(self):
        rng = random.Random(2)
        for _ in range(50):
            variant = random_variant(rng)
            state = MachineState()
            value = random_inhabitant(rng, variant, state)
            if isinstance(value, MLInt):
                assert 0 <= value.value < len(variant.nullary)
            else:
                assert isinstance(value, MLLoc)
                tag = state.ml_store.tag_of(value)
                ctor = variant.non_nullary[tag]
                assert state.ml_store.size_of(value.base) == ctor.arity

    def test_c_source_parses_and_lowers(self):
        from repro.cfront.lower import lower_unit
        from repro.cfront.parser import parse_c_text

        rng = random.Random(3)
        for sabotage in (None,) + SABOTAGES:
            program = generate_program(rng, sabotage)
            lowered = lower_unit(parse_c_text(program.c_source))
            assert lowered.function("ml_dispatch").body


@settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    sabotage=st.sampled_from((None, None, None) + SABOTAGES),
)
def test_theorem1_accepted_programs_never_get_stuck(seed, sabotage):
    """If Γ ⊢ s, Γ' then ⟨S_C, S_ML, V, s⟩ →* ⟨..., ()⟩ (no stuck states)."""
    rng = random.Random(seed)
    program = generate_program(rng, sabotage)
    sample = run_generated(program, rng, runs=6)
    if not sample.accepted:
        return  # rejection is always sound
    assert sample.run is not None
    assert sample.run.outcome is not Outcome.STUCK, (
        f"accepted program got stuck: {sample.run.reason}\n"
        f"sabotage={program.sabotage}\n{program.ocaml_source}\n"
        f"{program.c_source}"
    )
    assert sample.run.outcome is Outcome.FINISHED  # loop-free: must finish


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_correct_programs_are_accepted(seed):
    """Progress companion: the checker is not vacuously rejecting."""
    rng = random.Random(seed)
    program = generate_program(rng, sabotage=None)
    sample = run_generated(program, rng, runs=2)
    assert sample.accepted, "\n".join(
        d.render() for d in sample.report.diagnostics
    )


class TestSabotageDetection:
    """Most sabotages are statically detected (they are the §5.2 bugs)."""

    @pytest.mark.parametrize("sabotage", SABOTAGES)
    def test_sabotage_rejected_or_harmless(self, sabotage):
        rng = random.Random(99)
        rejected = 0
        total = 12
        for _ in range(total):
            program = generate_program(rng, sabotage)
            sample = run_generated(program, rng, runs=4)
            if not sample.accepted:
                rejected += 1
            else:
                # accepted sabotage must still run safely (soundness)
                assert sample.run is None or sample.run.outcome is not Outcome.STUCK
        # the bug classes of §5.2 are overwhelmingly caught
        assert rejected >= total // 2
