"""Tests for the small-step operational semantics (paper Figure 12)."""

import pytest

from repro.cfront.ir import (
    AOp,
    Deref,
    IntLit,
    IntValExp,
    MemLval,
    PtrAdd,
    SAssign,
    SGoto,
    SIf,
    SIfIntTag,
    SIfSumTag,
    SIfUnboxed,
    SNop,
    SReturn,
    ValIntExp,
    VarExp,
)
from repro.semantics.reduce import Machine, Outcome, StuckError, eval_expr
from repro.semantics.stores import MachineState
from repro.semantics.values import CIntVal, MLInt, MLLoc


@pytest.fixture()
def state():
    return MachineState()


def run(body, labels=None, state=None):
    machine = Machine(body, labels or {}, state or MachineState())
    return machine.run()


class TestExpressionReduction:
    def test_int_literal(self, state):
        assert eval_expr(state, IntLit(7)) == CIntVal(7)

    def test_o_var(self, state):
        state.variables.write("x", MLInt(3))
        assert eval_expr(state, VarExp("x")) == MLInt(3)

    def test_unbound_var_stuck(self, state):
        with pytest.raises(StuckError):
            eval_expr(state, VarExp("nope"))

    def test_o_aop(self, state):
        exp = AOp("+", IntLit(2), IntLit(3))
        assert eval_expr(state, exp) == CIntVal(5)

    def test_aop_on_ml_value_stuck(self, state):
        state.variables.write("x", MLInt(1))
        with pytest.raises(StuckError):
            eval_expr(state, AOp("+", VarExp("x"), IntLit(1)))

    def test_o_valint(self, state):
        assert eval_expr(state, ValIntExp(IntLit(4))) == MLInt(4)

    def test_o_intval(self, state):
        state.variables.write("x", MLInt(9))
        assert eval_expr(state, IntValExp(VarExp("x"))) == CIntVal(9)

    def test_intval_of_block_stuck(self, state):
        loc = state.ml_store.alloc_block(0, [MLInt(1)])
        state.variables.write("x", loc)
        with pytest.raises(StuckError):
            eval_expr(state, IntValExp(VarExp("x")))

    def test_valint_of_value_stuck(self, state):
        state.variables.write("x", MLInt(1))
        with pytest.raises(StuckError):
            eval_expr(state, ValIntExp(VarExp("x")))

    def test_o_ml_add(self, state):
        loc = state.ml_store.alloc_block(0, [MLInt(1), MLInt(2)])
        state.variables.write("x", loc)
        result = eval_expr(state, PtrAdd(VarExp("x"), IntLit(1)))
        assert result == MLLoc(loc.base, 1)

    def test_o_c_add_zero_only(self, state):
        cloc = state.c_store.alloc(CIntVal(5))
        state.variables.write("p", cloc)
        assert eval_expr(state, PtrAdd(VarExp("p"), IntLit(0))) == cloc
        with pytest.raises(StuckError):
            eval_expr(state, PtrAdd(VarExp("p"), IntLit(1)))

    def test_o_ml_deref(self, state):
        loc = state.ml_store.alloc_block(2, [MLInt(7)])
        state.variables.write("x", loc)
        assert eval_expr(state, Deref(VarExp("x"))) == MLInt(7)

    def test_o_c_deref(self, state):
        cloc = state.c_store.alloc(CIntVal(11))
        state.variables.write("p", cloc)
        assert eval_expr(state, Deref(VarExp("p"))) == CIntVal(11)

    def test_deref_out_of_block_stuck(self, state):
        loc = state.ml_store.alloc_block(0, [MLInt(1)])
        state.variables.write("x", loc)
        with pytest.raises(StuckError):
            eval_expr(state, Deref(PtrAdd(VarExp("x"), IntLit(5))))

    def test_deref_of_int_stuck(self, state):
        state.variables.write("x", CIntVal(3))
        with pytest.raises(StuckError):
            eval_expr(state, Deref(VarExp("x")))


class TestStatementReduction:
    def test_o_var_assign(self):
        state = MachineState()
        result = run(
            [SAssign(VarExp("y"), IntLit(5)), SReturn(VarExp("y"))],
            state=state,
        )
        assert result.outcome is Outcome.FINISHED
        assert result.returned == CIntVal(5)

    def test_o_ml_assign(self):
        state = MachineState()
        loc = state.ml_store.alloc_block(0, [MLInt(0)])
        state.variables.write("x", loc)
        result = run(
            [
                SAssign(MemLval(VarExp("x"), 0), ValIntExp(IntLit(9))),
                SReturn(Deref(VarExp("x"))),
            ],
            state=state,
        )
        assert result.returned == MLInt(9)

    def test_o_goto(self):
        result = run(
            [SGoto("end"), SReturn(IntLit(1)), SReturn(IntLit(2))],
            labels={"end": 2},
        )
        assert result.returned == CIntVal(2)

    def test_goto_undefined_label_stuck(self):
        result = run([SGoto("missing")])
        assert result.outcome is Outcome.STUCK

    def test_o_if_taken_and_not(self):
        taken = run(
            [SIf(IntLit(1), "L"), SReturn(IntLit(0)), SReturn(IntLit(9))],
            labels={"L": 2},
        )
        assert taken.returned == CIntVal(9)
        fall = run(
            [SIf(IntLit(0), "L"), SReturn(IntLit(0)), SReturn(IntLit(9))],
            labels={"L": 2},
        )
        assert fall.returned == CIntVal(0)

    def test_o_iflong_on_unboxed(self):
        state = MachineState()
        state.variables.write("x", MLInt(1))
        result = run(
            [SIfUnboxed("x", "L"), SReturn(IntLit(0)), SReturn(IntLit(9))],
            labels={"L": 2},
            state=state,
        )
        assert result.returned == CIntVal(9)

    def test_o_iflong2_on_block(self):
        state = MachineState()
        state.variables.write("x", state.ml_store.alloc_block(0, [MLInt(1)]))
        result = run(
            [SIfUnboxed("x", "L"), SReturn(IntLit(0)), SReturn(IntLit(9))],
            labels={"L": 2},
            state=state,
        )
        assert result.returned == CIntVal(0)

    def test_iflong_on_interior_pointer_stuck(self):
        state = MachineState()
        block = state.ml_store.alloc_block(0, [MLInt(1), MLInt(2)])
        state.variables.write("x", block.shifted(1))
        result = run(
            [SIfUnboxed("x", "L"), SReturn(IntLit(0)), SReturn(IntLit(9))],
            labels={"L": 2},
            state=state,
        )
        assert result.outcome is Outcome.STUCK

    def test_o_ifsum(self):
        state = MachineState()
        state.variables.write("x", state.ml_store.alloc_block(1, [MLInt(0)]))
        result = run(
            [SIfSumTag("x", 1, "L"), SReturn(IntLit(0)), SReturn(IntLit(9))],
            labels={"L": 2},
            state=state,
        )
        assert result.returned == CIntVal(9)

    def test_o_ifsum2_falls_through(self):
        state = MachineState()
        state.variables.write("x", state.ml_store.alloc_block(0, [MLInt(0)]))
        result = run(
            [SIfSumTag("x", 1, "L"), SReturn(IntLit(0)), SReturn(IntLit(9))],
            labels={"L": 2},
            state=state,
        )
        assert result.returned == CIntVal(0)

    def test_ifsum_on_unboxed_stuck(self):
        state = MachineState()
        state.variables.write("x", MLInt(0))
        result = run(
            [SIfSumTag("x", 0, "L"), SReturn(IntLit(0)), SReturn(IntLit(9))],
            labels={"L": 2},
            state=state,
        )
        assert result.outcome is Outcome.STUCK

    def test_o_ifi(self):
        state = MachineState()
        state.variables.write("x", MLInt(2))
        result = run(
            [SIfIntTag("x", 2, "L"), SReturn(IntLit(0)), SReturn(IntLit(9))],
            labels={"L": 2},
            state=state,
        )
        assert result.returned == CIntVal(9)

    def test_ifi_on_block_stuck(self):
        state = MachineState()
        state.variables.write("x", state.ml_store.alloc_block(0, [MLInt(0)]))
        result = run(
            [SIfIntTag("x", 0, "L"), SReturn(IntLit(0)), SReturn(IntLit(9))],
            labels={"L": 2},
            state=state,
        )
        assert result.outcome is Outcome.STUCK

    def test_step_budget_reports_divergence(self):
        result = Machine(
            [SGoto("loop")], {"loop": 0}, MachineState()
        ).run(max_steps=50)
        assert result.outcome is Outcome.EXHAUSTED
        assert result.steps == 50

    def test_fall_off_end_finishes(self):
        result = run([SNop()])
        assert result.outcome is Outcome.FINISHED
