"""Dialect parse hints: value-pointer structs, NULL, brace initializers,
multi-declarator declarations."""

import pytest

from repro.cfront import ast
from repro.cfront.parser import ParseHints, parse_c_text
from repro.core.srctypes import (
    CSrcPtr,
    CSrcScalar,
    CSrcStruct,
    CSrcValue,
)

HINTS = ParseHints(
    typedefs={
        "PyObject": CSrcStruct("PyObject"),
        "PyMethodDef": CSrcStruct("PyMethodDef"),
    },
    value_pointer_structs=frozenset({"PyObject"}),
    null_is_identifier=True,
)


class TestValuePointerStructs:
    def test_pyobject_pointer_is_value(self):
        unit = parse_c_text("PyObject *f(PyObject *x) { return x; }", hints=HINTS)
        fn = unit.functions[0]
        assert isinstance(fn.return_type, CSrcValue)
        assert isinstance(fn.params[0][1], CSrcValue)

    def test_double_pointer_is_pointer_to_value(self):
        unit = parse_c_text("int f(PyObject **out) { return 0; }", hints=HINTS)
        ptr = unit.functions[0].params[0][1]
        assert isinstance(ptr, CSrcPtr)
        assert isinstance(ptr.target, CSrcValue)

    def test_local_declarations_see_the_hint(self):
        unit = parse_c_text(
            "int f(void) { PyObject *x; return 0; }", hints=HINTS
        )
        decl = unit.functions[0].body.items[0]
        assert isinstance(decl, ast.Declaration)
        assert isinstance(decl.ctype, CSrcValue)

    def test_without_hints_pyobject_is_unknown(self):
        from repro.cfront.parser import ParseError

        with pytest.raises(ParseError):
            parse_c_text("PyObject *f(void) { return 0; }")


class TestNullHandling:
    def test_default_null_folds_to_zero(self):
        unit = parse_c_text("int f(void) { return NULL; }")
        ret = unit.functions[0].body.items[0]
        assert isinstance(ret.value, ast.Num) and ret.value.value == 0

    def test_hinted_null_stays_identifier(self):
        unit = parse_c_text("int f(void) { return NULL; }", hints=HINTS)
        ret = unit.functions[0].body.items[0]
        assert isinstance(ret.value, ast.Name) and ret.value.ident == "NULL"


class TestBraceInitializers:
    def test_global_table_survives_parsing(self):
        unit = parse_c_text(
            'static PyMethodDef M[] = {\n'
            '    {"add", f, 1, "doc"},\n'
            '    {NULL, NULL, 0, NULL}\n'
            '};\n',
            hints=HINTS,
        )
        (decl,) = unit.globals
        assert isinstance(decl.init, ast.InitList)
        assert len(decl.init.items) == 2
        row = decl.init.items[0].value
        assert isinstance(row, ast.InitList)
        assert isinstance(row.items[0].value, ast.Str)

    def test_designated_initializers(self):
        unit = parse_c_text(
            'static PyMethodDef M[] = {{.ml_name = "x", .ml_meth = f}};',
            hints=HINTS,
        )
        row = unit.globals[0].init.items[0].value
        assert row.items[0].field_name == "ml_name"
        assert row.items[1].field_name == "ml_meth"

    def test_trailing_comma(self):
        unit = parse_c_text("int xs[] = {1, 2, 3,};")
        assert len(unit.globals[0].init.items) == 3

    def test_local_aggregate_initializer_lowers_quietly(self):
        from repro.cfront.lower import lower_unit

        unit = parse_c_text("int f(void) { int xs[] = {1, 2}; return 0; }")
        program = lower_unit(unit)  # must not raise
        assert program.functions[0].name == "f"


class TestMultiDeclarators:
    def test_two_scalars_one_statement(self):
        unit = parse_c_text("int f(void) { long a, b; return 0; }")
        block = unit.functions[0].body.items[0]
        assert isinstance(block, ast.Block)
        names = [d.name for d in block.items]
        assert names == ["a", "b"]

    def test_stars_bind_per_declarator(self):
        unit = parse_c_text("int f(void) { long *p, q; return 0; }")
        block = unit.functions[0].body.items[0]
        p, q = block.items
        assert isinstance(p.ctype, CSrcPtr)
        assert isinstance(q.ctype, CSrcScalar)

    def test_inits_attach_to_their_declarator(self):
        unit = parse_c_text("int f(void) { int a = 1, b = 2; return a + b; }")
        block = unit.functions[0].body.items[0]
        assert [d.init.value for d in block.items] == [1, 2]

    def test_value_pointers_per_declarator(self):
        unit = parse_c_text(
            "int f(void) { PyObject *x, *y; return 0; }", hints=HINTS
        )
        block = unit.functions[0].body.items[0]
        assert all(isinstance(d.ctype, CSrcValue) for d in block.items)

    def test_function_pointer_with_pointer_result(self):
        from repro.core.srctypes import CSrcFun

        unit = parse_c_text("int f(void) { char *(*cb)(int); return 0; }")
        decl = unit.functions[0].body.items[0]
        assert isinstance(decl, ast.Declaration) and decl.name == "cb"
        assert isinstance(decl.ctype, CSrcFun)
        assert isinstance(decl.ctype.result, CSrcPtr)

    def test_function_pointer_without_stars_still_parses(self):
        from repro.core.srctypes import CSrcFun

        unit = parse_c_text("int f(void) { int (*cb)(int); return 0; }")
        decl = unit.functions[0].body.items[0]
        assert isinstance(decl.ctype, CSrcFun)
