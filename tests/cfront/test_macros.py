"""Tests for the FFI macro knowledge base."""

import pytest

from repro.cfront.macros import (
    ALLOC_RESULT_TAG,
    BuiltinSpec,
    POLYMORPHIC_BUILTINS,
    RUNTIME_FUNCTIONS,
    VALUE_CONSTANTS,
    builtin_entries,
    is_ffi_macro,
    spec_to_cfun,
)
from repro.core.types import GC, NOGC, CFun, CValue


class TestRuntimeTable:
    def test_allocators_are_gc(self):
        for name in ("caml_alloc", "caml_alloc_tuple", "caml_copy_string",
                     "caml_callback", "caml_failwith"):
            assert RUNTIME_FUNCTIONS[name].effect is GC, name

    def test_accessors_are_nogc(self):
        for name in ("caml_string_length", "caml_tag_val", "caml_is_long",
                     "caml_modify", "caml_register_global_root"):
            assert RUNTIME_FUNCTIONS[name].effect is NOGC, name

    def test_alloc_result_tags_reference_real_functions(self):
        for name in ALLOC_RESULT_TAG:
            assert name in RUNTIME_FUNCTIONS

    def test_every_builtin_is_polymorphic(self):
        assert POLYMORPHIC_BUILTINS == frozenset(RUNTIME_FUNCTIONS)

    def test_spec_to_cfun_shapes(self):
        fn = spec_to_cfun(RUNTIME_FUNCTIONS["caml_alloc"])
        assert isinstance(fn, CFun)
        assert len(fn.params) == 2
        assert isinstance(fn.result, CValue)

    def test_value_params_fresh_per_materialization(self):
        spec = RUNTIME_FUNCTIONS["caml_callback"]
        first = spec_to_cfun(spec)
        second = spec_to_cfun(spec)
        assert first.params[0].mt is not second.params[0].mt

    def test_builtin_entries_cover_table(self):
        entries = builtin_entries()
        assert set(entries) == set(RUNTIME_FUNCTIONS)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            spec_to_cfun(BuiltinSpec(("mystery",), "int", NOGC))


class TestMacroClassification:
    def test_value_constants(self):
        assert VALUE_CONSTANTS["Val_unit"] == 0
        assert VALUE_CONSTANTS["Val_true"] == 1

    def test_is_ffi_macro(self):
        for name in ("Val_int", "Int_val", "Field", "Store_field", "Is_long",
                     "Is_block", "Tag_val", "CAMLparam1", "CAMLlocal2",
                     "CAMLreturn", "CAMLreturn0", "String_val", "Val_unit"):
            assert is_ffi_macro(name), name

    def test_ordinary_names_not_macros(self):
        for name in ("printf", "my_helper", "caml_alloc", "value"):
            assert not is_ffi_macro(name), name
