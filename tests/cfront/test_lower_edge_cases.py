"""Lowering edge cases: expression-context tests, complex operands, temps."""


from repro import analyze_project
from repro.cfront import ir
from repro.cfront.lower import lower_unit
from repro.cfront.parser import parse_c_text


def lower_fn(body, signature="value f(value x)"):
    program = lower_unit(parse_c_text(f"{signature} {{ {body} }}"))
    return program.function("f")


def kinds(report):
    return [d.kind for d in report.diagnostics]


class TestTestOnComplexOperands:
    def test_is_long_on_field_result(self):
        # Is_long(Field(x, 0)) needs a temp value variable
        fn = lower_fn(
            "if (Is_long(Field(x, 0))) return Val_int(0); return Val_int(1);"
        )
        tests = [s for s in fn.body if isinstance(s, ir.SIfUnboxed)]
        assert len(tests) == 1
        # the tested variable is a synthesized temp, not x itself
        assert tests[0].var != "x"

    def test_is_long_on_field_end_to_end(self):
        ml = 'external f : int option * int -> int = "ml_f"'
        c = """
        value ml_f(value p)
        {
            value opt = Field(p, 0);
            if (Is_long(opt)) return Val_int(-1);
            return Field(opt, 0);
        }
        """
        assert kinds(analyze_project([ml], [c])) == []

    def test_tag_val_in_expression_context(self):
        # int t = Tag_val(x); — becomes a builtin call, loses refinement,
        # but must not crash or misreport
        ml = """
        type t = A of int | B of int
        external f : t -> int = "ml_f"
        """
        c = """
        value ml_f(value x)
        {
            if (Is_long(x)) return Val_int(0);
            int t = Tag_val(x);
            return Val_int(t);
        }
        """
        assert kinds(analyze_project([ml], [c])) == []

    def test_is_long_in_expression_context(self):
        ml = 'external f : int option -> int = "ml_f"'
        c = """
        value ml_f(value o)
        {
            int boxed = Is_block(o);
            return Val_int(boxed);
        }
        """
        assert kinds(analyze_project([ml], [c])) == []


class TestCompoundConditions:
    def test_and_with_both_tests(self):
        ml = """
        type t = A of int | B
        external f : t -> int = "ml_f"
        """
        c = """
        value ml_f(value x)
        {
            if (Is_block(x) && Tag_val(x) == 0) {
                return Field(x, 0);
            }
            return Val_int(0);
        }
        """
        assert kinds(analyze_project([ml], [c])) == []

    def test_or_condition(self):
        ml = 'external f : int -> int = "ml_f"'
        c = """
        value ml_f(value n)
        {
            int k = Int_val(n);
            if (k < 0 || k > 100) return Val_int(0);
            return Val_int(k);
        }
        """
        assert kinds(analyze_project([ml], [c])) == []

    def test_negated_compound(self):
        ml = 'external f : int option -> int = "ml_f"'
        c = """
        value ml_f(value o)
        {
            if (!(Is_long(o))) {
                return Field(o, 0);
            }
            return Val_int(-1);
        }
        """
        assert kinds(analyze_project([ml], [c])) == []


class TestStatementForms:
    def test_ternary_assignment(self):
        ml = 'external f : int -> int = "ml_f"'
        c = """
        value ml_f(value n)
        {
            int k = Int_val(n);
            int m = k > 0 ? k : -k;
            return Val_int(m);
        }
        """
        assert kinds(analyze_project([ml], [c])) == []

    def test_chained_assignment(self):
        ml = 'external f : int -> int = "ml_f"'
        c = """
        value ml_f(value n)
        {
            int a;
            int b;
            a = b = Int_val(n);
            return Val_int(a + b);
        }
        """
        assert kinds(analyze_project([ml], [c])) == []

    def test_do_while_loop(self):
        ml = 'external f : int -> int = "ml_f"'
        c = """
        value ml_f(value n)
        {
            int k = Int_val(n);
            int total = 0;
            do {
                total += k;
                k--;
            } while (k > 0);
            return Val_int(total);
        }
        """
        assert kinds(analyze_project([ml], [c])) == []

    def test_nested_switch_in_loop(self):
        ml = """
        type op = Add | Sub
        external f : op -> int -> int = "ml_f"
        """
        c = """
        value ml_f(value op, value n)
        {
            int total = 0;
            int i;
            for (i = 0; i < Int_val(n); i++) {
                switch (Int_val(op)) {
                case 0: total += i; break;
                case 1: total -= i; break;
                }
            }
            return Val_int(total);
        }
        """
        assert kinds(analyze_project([ml], [c])) == []

    def test_struct_member_reads_opaque(self):
        c = """
        struct stat_buf;
        int f(struct stat_buf *sb)
        {
            int size = sb->st_size;
            return size;
        }
        """
        assert kinds(analyze_project([], [c])) == []

    def test_empty_function_body(self):
        c = "void f(void) { }"
        assert kinds(analyze_project([], [c])) == []

    def test_comma_free_multi_decl_lines(self):
        c = """
        int f(void)
        {
            int a = 1;
            int b = 2;
            int c = a + b;
            return c;
        }
        """
        assert kinds(analyze_project([], [c])) == []
