"""Regenerate the lexer token-stream fixtures (see test_lexer_equivalence).

Run from the repository root after a *deliberate* lexer change::

    PYTHONPATH=src python tests/cfront/dump_lexer_fixtures.py
"""

from pathlib import Path

from repro.cfront.lexer import tokenize as c_tokenize
from repro.ocamlfront.lexer import tokenize_ml
from repro.source import SourceFile

from test_lexer_equivalence import dump_tokens, fixture_cases  # noqa: E402

FIXTURES = Path(__file__).parent / "fixtures"


def main() -> None:
    for corpus, path in fixture_cases():
        source = SourceFile(str(path), path.read_text())
        tokens = (
            c_tokenize(source)
            if path.suffix == ".c"
            else tokenize_ml(source)
        )
        out = FIXTURES / f"{corpus}__{path.name}.tokens"
        out.write_text(dump_tokens(tokens))
        print(f"wrote {out.name} ({len(tokens)} tokens)")


if __name__ == "__main__":
    main()
