"""Tests for the C tokenizer."""

import pytest

from repro.cfront.lexer import LexError, Lexer, TokKind, tokenize
from repro.source import SourceFile


def toks(text):
    return tokenize(SourceFile("t.c", text))


def texts(text):
    return [t.text for t in toks(text) if t.kind is not TokKind.EOF]


class TestBasics:
    def test_empty(self):
        assert [t.kind for t in toks("")] == [TokKind.EOF]

    def test_identifiers(self):
        assert texts("foo _bar baz123") == ["foo", "_bar", "baz123"]

    def test_numbers(self):
        tokens = toks("42 0x1F 017 5L 7UL")
        values = [t.text for t in tokens[:-1]]
        assert values == ["42", "31", "15", "5", "7"]

    def test_char_literal(self):
        assert texts("'a'") == [str(ord("a"))]
        assert texts("'\\n'") == [str(ord("\n"))]

    def test_string_literal(self):
        tokens = toks('"hello world"')
        assert tokens[0].kind is TokKind.STRING
        assert tokens[0].text == "hello world"

    def test_string_with_escapes(self):
        assert toks('"a\\"b"')[0].text == 'a"b'

    def test_maximal_munch(self):
        assert texts("a<<=b") == ["a", "<<=", "b"]
        assert texts("a->b") == ["a", "->", "b"]
        assert texts("x++ + ++y") == ["x", "++", "+", "++", "y"]

    def test_unterminated_string_fails(self):
        with pytest.raises(LexError):
            toks('"abc')


class TestTrivia:
    def test_line_comment(self):
        assert texts("a // comment\nb") == ["a", "b"]

    def test_block_comment(self):
        assert texts("a /* x */ b") == ["a", "b"]

    def test_multiline_block_comment(self):
        assert texts("a /* 1\n2\n3 */ b") == ["a", "b"]

    def test_unterminated_comment_fails(self):
        with pytest.raises(LexError):
            toks("/* never closed")

    def test_include_skipped(self):
        assert texts("#include <caml/mlvalues.h>\nint x;") == ["int", "x", ";"]

    def test_continued_directive_skipped(self):
        assert texts("#define F(a) \\\n  (a+1)\nint x;") == ["int", "x", ";"]


class TestDefines:
    def test_object_define_substituted(self):
        assert texts("#define TAG_FOO 3\nint x = TAG_FOO;") == [
            "int", "x", "=", "3", ";",
        ]

    def test_hex_define(self):
        assert "255" in texts("#define MASK 0xFF\nMASK")

    def test_parenthesized_define(self):
        assert "7" in texts("#define N (7)\nN")

    def test_non_integer_define_ignored(self):
        lexer = Lexer(SourceFile("t.c", "#define F(x) x\nF"))
        tokens = lexer.tokenize()
        assert tokens[0].text == "F"
        assert tokens[0].kind is TokKind.IDENT


class TestSpans:
    def test_line_column(self):
        tokens = toks("int\n  foo;")
        assert tokens[0].span.start.line == 1
        assert tokens[1].span.start.line == 2
        assert tokens[1].span.start.column == 3
