"""Tests for the CIL-style lowering to the Figure 5 IR."""


from repro.cfront import ir
from repro.cfront.lower import lower_unit
from repro.cfront.parser import parse_c_text
from repro.core.srctypes import CSrcValue


def lower(text):
    return lower_unit(parse_c_text(text))


def lower_fn(body, signature="value f(value x)"):
    program = lower(f"{signature} {{ {body} }}")
    return program.function("f")


def stmt_types(fn):
    return [type(s).__name__ for s in fn.body]


class TestMacroRewrites:
    def test_val_int(self):
        fn = lower_fn("return Val_int(5);")
        (ret, *_rest) = fn.body
        assert isinstance(ret, ir.SReturn)
        assert isinstance(ret.exp, ir.ValIntExp)

    def test_int_val(self):
        fn = lower_fn("int n = Int_val(x); return Val_int(n);")
        assign = next(s for s in fn.body if isinstance(s, ir.SAssign))
        assert isinstance(assign.rhs, ir.IntValExp)

    def test_long_val_alias(self):
        fn = lower_fn("int n = Long_val(x); return Val_long(n);")
        assign = next(s for s in fn.body if isinstance(s, ir.SAssign))
        assert isinstance(assign.rhs, ir.IntValExp)

    def test_field_read(self):
        fn = lower_fn("return Field(x, 1);")
        ret = fn.body[0]
        assert isinstance(ret.exp, ir.Deref)
        assert isinstance(ret.exp.exp, ir.PtrAdd)
        assert isinstance(ret.exp.exp.offset, ir.IntLit)
        assert ret.exp.exp.offset.value == 1

    def test_val_unit_constant(self):
        fn = lower_fn("return Val_unit;")
        ret = fn.body[0]
        assert isinstance(ret.exp, ir.ValIntExp)
        assert ret.exp.exp.value == 0

    def test_val_true_constant(self):
        fn = lower_fn("return Val_true;")
        assert fn.body[0].exp.exp.value == 1

    def test_store_field(self):
        fn = lower_fn("Store_field(x, 2, Val_int(0)); return x;")
        store = fn.body[0]
        assert isinstance(store, ir.SAssign)
        assert isinstance(store.lval, ir.MemLval)
        assert store.lval.offset == 2

    def test_store_field_nonconst_index(self):
        fn = lower_fn(
            "int i = Int_val(x); Store_field(x, i, Val_int(0)); return x;"
        )
        store = next(
            s
            for s in fn.body
            if isinstance(s, ir.SAssign) and isinstance(s.lval, ir.MemLval)
        )
        assert isinstance(store.lval.base, ir.PtrAdd)

    def test_caml_modify_of_field(self):
        fn = lower_fn("caml_modify(&Field(x, 0), Val_int(1)); return x;")
        store = fn.body[0]
        assert isinstance(store.lval, ir.MemLval)
        assert store.lval.offset == 0

    def test_string_val_becomes_builtin_call(self):
        fn = lower_fn("char *s = String_val(x); return Val_int(0);")
        call = next(
            s
            for s in fn.body
            if isinstance(s, ir.SAssign) and isinstance(s.rhs, ir.CallExp)
        )
        assert call.rhs.func == "caml_string_val"

    def test_value_pointer_cast_transparent(self):
        fn = lower_fn("return *((value *)x + 1);")
        ret = fn.body[0]
        assert isinstance(ret.exp, ir.Deref)
        inner = ret.exp.exp
        assert isinstance(inner, ir.PtrAdd)
        assert isinstance(inner.base, ir.VarExp)  # cast erased


class TestProtection:
    def test_camlparam_becomes_protect(self):
        fn = lower_fn("CAMLparam1(x); CAMLreturn(x);")
        assert fn.protected_names == ["x"]

    def test_camlparam2(self):
        fn = lower_fn(
            "CAMLparam2(a, b); CAMLreturn(a);", "value f(value a, value b)"
        )
        assert fn.protected_names == ["a", "b"]

    def test_camllocal_declares_and_protects(self):
        fn = lower_fn("CAMLparam1(x); CAMLlocal1(tmp); CAMLreturn(tmp);")
        assert "tmp" in fn.protected_names
        assert any(
            isinstance(d, ir.VarDecl) and d.name == "tmp" for d in fn.decls
        )

    def test_camllocal_has_no_init_statement(self):
        # CAMLlocal must not pin tmp's type to Val_unit (paper Fig. 5)
        fn = lower_fn("CAMLparam1(x); CAMLlocal1(tmp); CAMLreturn(tmp);")
        assigns = [s for s in fn.body if isinstance(s, ir.SAssign)]
        assert not any(
            isinstance(s.lval, ir.VarExp) and s.lval.name == "tmp"
            for s in assigns
        )

    def test_camlreturn(self):
        fn = lower_fn("CAMLparam1(x); CAMLreturn(Val_unit);")
        ret = next(s for s in fn.body if isinstance(s, ir.SCamlReturn))
        assert isinstance(ret.exp, ir.ValIntExp)

    def test_camlreturn0(self):
        fn = lower_fn("CAMLparam1(x); CAMLreturn0;", "void f(value x)")
        assert any(isinstance(s, ir.SCamlReturn) and s.exp is None for s in fn.body)


class TestConditionLowering:
    def test_is_long_becomes_if_unboxed(self):
        fn = lower_fn("if (Is_long(x)) return Val_int(0); return Val_int(1);")
        assert isinstance(fn.body[0], ir.SIfUnboxed)

    def test_is_block_swaps_branches(self):
        fn = lower_fn("if (Is_block(x)) return Val_int(0); return Val_int(1);")
        branch = fn.body[0]
        assert isinstance(branch, ir.SIfUnboxed)
        # the unboxed target must be the *false* side: next stmt is the goto
        # to the true label
        assert isinstance(fn.body[1], ir.SGoto)

    def test_negated_is_long(self):
        fn = lower_fn("if (!Is_long(x)) return Val_int(0); return Val_int(1);")
        assert isinstance(fn.body[0], ir.SIfUnboxed)

    def test_tag_comparison(self):
        fn = lower_fn(
            "if (Is_block(x)) { if (Tag_val(x) == 1) return Val_int(0); } return Val_int(1);"
        )
        tags = [s for s in fn.body if isinstance(s, ir.SIfSumTag)]
        assert len(tags) == 1
        assert tags[0].tag == 1

    def test_tag_comparison_reversed_operands(self):
        fn = lower_fn(
            "if (Is_block(x)) { if (0 == Tag_val(x)) return Val_int(0); } return Val_int(1);"
        )
        assert any(isinstance(s, ir.SIfSumTag) for s in fn.body)

    def test_int_val_comparison(self):
        fn = lower_fn(
            "if (Is_long(x)) { if (Int_val(x) == 2) return Val_int(0); } return Val_int(1);"
        )
        tags = [s for s in fn.body if isinstance(s, ir.SIfIntTag)]
        assert tags and tags[0].tag == 2

    def test_short_circuit_and(self):
        fn = lower_fn(
            "if (Is_block(x) && Tag_val(x) == 0) return Field(x, 0); return Val_int(1);"
        )
        assert any(isinstance(s, ir.SIfUnboxed) for s in fn.body)
        assert any(isinstance(s, ir.SIfSumTag) for s in fn.body)

    def test_plain_condition(self):
        fn = lower_fn(
            "int n = Int_val(x); if (n > 3) return Val_int(0); return Val_int(1);"
        )
        assert any(isinstance(s, ir.SIf) for s in fn.body)

    def test_switch_on_tag_val(self):
        fn = lower_fn(
            "if (Is_block(x)) { switch (Tag_val(x)) { case 0: break; case 1: break; } } return Val_int(0);"
        )
        tags = sorted(s.tag for s in fn.body if isinstance(s, ir.SIfSumTag))
        assert tags == [0, 1]

    def test_switch_on_int_val(self):
        fn = lower_fn(
            "if (Is_long(x)) { switch (Int_val(x)) { case 0: break; default: break; } } return Val_int(0);"
        )
        assert any(isinstance(s, ir.SIfIntTag) for s in fn.body)

    def test_switch_on_plain_int(self):
        fn = lower_fn(
            "int n = Int_val(x); switch (n) { case 1: break; case 2: break; } return Val_int(0);"
        )
        assert sum(1 for s in fn.body if isinstance(s, ir.SIf)) == 2


class TestControlFlow:
    def test_labels_resolve(self):
        fn = lower_fn("goto out; out: return x;")
        goto = fn.body[0]
        assert isinstance(goto, ir.SGoto)
        assert fn.label_index(goto.label) < len(fn.body)

    def test_while_loop_shape(self):
        fn = lower_fn(
            "int i = 0; while (i < 3) { i = i + 1; } return Val_int(i);"
        )
        gotos = [s for s in fn.body if isinstance(s, ir.SGoto)]
        assert gotos  # back edge exists
        assert any(isinstance(s, ir.SIf) for s in fn.body)

    def test_break_exits_loop(self):
        fn = lower_fn(
            "int i = 0; while (1) { if (i > 2) break; i = i + 1; } return Val_int(i);"
        )
        assert any(isinstance(s, ir.SGoto) for s in fn.body)

    def test_continue_targets_head(self):
        fn = lower_fn(
            "int i = 0; while (i < 3) { i = i + 1; continue; } return Val_int(i);"
        )
        assert sum(1 for s in fn.body if isinstance(s, ir.SGoto)) >= 2

    def test_for_loop(self):
        fn = lower_fn(
            "int i; int t = 0; for (i = 0; i < 4; i++) { t = t + i; } return Val_int(t);"
        )
        assert any(isinstance(s, ir.SIf) for s in fn.body)

    def test_do_while(self):
        fn = lower_fn(
            "int i = 0; do { i = i + 1; } while (i < 3); return Val_int(i);"
        )
        assert any(isinstance(s, ir.SIf) for s in fn.body)

    def test_implicit_void_return_appended(self):
        program = lower("void f(value x) { x = Val_int(0); }")
        fn = program.function("f")
        assert isinstance(fn.body[-1], ir.SReturn)
        assert fn.body[-1].exp is None

    def test_conditional_expression(self):
        fn = lower_fn(
            "int n = Int_val(x); int m = n > 0 ? n : 0; return Val_int(m);"
        )
        # lowered through a temp with branches
        assert any(isinstance(s, ir.SIf) for s in fn.body)


class TestCallExtraction:
    def test_nested_call_gets_temp(self):
        fn = lower_fn("return caml_copy_string(String_val(x));")
        calls = [
            s
            for s in fn.body
            if isinstance(s, ir.SAssign) and isinstance(s.rhs, ir.CallExp)
        ]
        assert len(calls) == 2  # String_val temp + copy_string temp

    def test_temp_type_follows_callee(self):
        fn = lower_fn("return caml_copy_string(\"hi\");")
        call = next(
            s
            for s in fn.body
            if isinstance(s, ir.SAssign) and isinstance(s.rhs, ir.CallExp)
        )
        assert isinstance(call.lval, ir.VarExp)
        temp_decl = next(
            d
            for d in fn.decls
            if isinstance(d, ir.VarDecl) and d.name == call.lval.name
        )
        assert isinstance(temp_decl.ctype, CSrcValue)

    def test_bare_call_statement(self):
        fn = lower_fn("helper(Int_val(x)); return Val_int(0);")
        bare = [
            s
            for s in fn.body
            if isinstance(s, ir.SAssign)
            and s.lval is None
            and isinstance(s.rhs, ir.CallExp)
        ]
        assert len(bare) == 1

    def test_indirect_call_marked(self):
        program = lower(
            "typedef int (*cb_t)(int);\n"
            "int f(cb_t cb) { int r = cb(1); return r; }"
        )
        fn = program.function("f")
        call = next(
            s
            for s in fn.body
            if isinstance(s, ir.SAssign) and isinstance(s.rhs, ir.CallExp)
        )
        assert call.rhs.is_indirect


class TestPointerArithmetic:
    def test_value_plus_int_is_ptr_add(self):
        fn = lower_fn("return *(x + 1);")
        ret = fn.body[0]
        assert isinstance(ret.exp, ir.Deref)
        assert isinstance(ret.exp.exp, ir.PtrAdd)

    def test_int_plus_int_is_aop(self):
        fn = lower_fn("int a = 1; int b = a + 2; return Val_int(b);")
        assign = [s for s in fn.body if isinstance(s, ir.SAssign)][1]
        assert isinstance(assign.rhs, ir.AOp)

    def test_sizeof_is_word_size(self):
        fn = lower_fn("int n = sizeof(value); return Val_int(n);")
        assign = fn.body[0]
        assert isinstance(assign.rhs, ir.IntLit) and assign.rhs.value == 8

    def test_array_index_on_pointer(self):
        program = lower("int get(int *p) { return p[3]; }")
        ret = program.function("get").body[0]
        assert isinstance(ret.exp, ir.Deref)
        assert isinstance(ret.exp.exp, ir.PtrAdd)


class TestPrettyPrinting:
    def test_pretty_output_contains_labels(self):
        fn = lower_fn("goto out; out: return x;")
        pretty = fn.pretty()
        assert "goto" in pretty
        assert "out" in pretty
