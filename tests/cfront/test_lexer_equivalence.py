"""Token-stream equivalence: the master-regex scanner vs the old lexer.

The fixtures under ``fixtures/*.tokens`` are dumps of the character-by-
character lexer the single-pass scanner replaced (PR 5): one line per
token — kind, text, and both span endpoints as offset:line:column.  Every
file in ``examples/{glue,pyext,jni}`` is covered (C files through the
cfront lexer, host files through the ocamlfront lexer), plus a torture
input exercising the corners: define substitution, hex/octal/decimal
literals with suffixes, char escapes, string escapes, adjacent strings,
continued directives, and every punctuator.

If the scanner's output ever drifts, regenerate deliberately::

    PYTHONPATH=src python tests/cfront/dump_lexer_fixtures.py
"""

from pathlib import Path

import pytest

from repro.cfront.lexer import tokenize as c_tokenize
from repro.ocamlfront.lexer import tokenize_ml
from repro.source import SourceFile

FIXTURES = Path(__file__).parent / "fixtures"
EXAMPLES = Path(__file__).parent.parent.parent / "examples"


def dump_tokens(tokens) -> str:
    lines = []
    for tok in tokens:
        start, end = tok.span.start, tok.span.end
        lines.append(
            f"{tok.kind.name}\t{tok.text!r}\t"
            f"{start.offset}:{start.line}:{start.column}\t"
            f"{end.offset}:{end.line}:{end.column}"
        )
    return "\n".join(lines) + "\n"


def fixture_cases():
    cases = []
    for corpus in ("glue", "pyext", "jni"):
        for path in sorted((EXAMPLES / corpus).iterdir()):
            if path.suffix in (".c", ".ml", ".mli"):
                cases.append((corpus, path))
    cases.append(("torture", FIXTURES / "torture.c"))
    return cases


@pytest.mark.parametrize(
    "corpus,path", fixture_cases(), ids=lambda v: getattr(v, "name", v)
)
def test_token_stream_matches_old_lexer(corpus, path):
    fixture = FIXTURES / f"{corpus}__{path.name}.tokens"
    assert fixture.is_file(), f"missing fixture {fixture.name}"
    source = SourceFile(str(path), path.read_text())
    if path.suffix == ".c":
        tokens = c_tokenize(source)
    else:
        tokens = tokenize_ml(source)
    assert dump_tokens(tokens) == fixture.read_text()
