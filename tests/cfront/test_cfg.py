"""Tests for the basic-block CFG over the Figure 5 IR."""


from repro.cfront.cfg import build_cfg, check_wellformed, statement_successors
from repro.cfront.lower import lower_unit
from repro.cfront.parser import parse_c_text


def lower_fn(body, signature="value f(value x)"):
    program = lower_unit(parse_c_text(f"{signature} {{ {body} }}"))
    return program.function("f")


class TestStatementSuccessors:
    def test_return_has_none(self):
        fn = lower_fn("return x;")
        assert statement_successors(fn, 0) == []

    def test_branch_has_two(self):
        fn = lower_fn("if (Is_long(x)) return Val_int(0); return Val_int(1);")
        # statement 0 is the SIfUnboxed
        succs = statement_successors(fn, 0)
        assert len(succs) == 2


class TestCFGConstruction:
    def test_straight_line_single_block(self):
        fn = lower_fn("int n = Int_val(x); return Val_int(n);")
        cfg = build_cfg(fn)
        assert len(cfg.blocks) == 1
        assert cfg.entry.successors == []

    def test_if_produces_diamond(self):
        fn = lower_fn(
            "int r; if (Is_long(x)) { r = 1; } else { r = 2; } return Val_int(r);"
        )
        cfg = build_cfg(fn)
        assert len(cfg.blocks) >= 4
        assert len(cfg.entry.successors) == 2
        # the join block has two predecessors
        joins = [b for b in cfg.blocks if len(b.predecessors) >= 2]
        assert joins

    def test_loop_back_edge(self):
        fn = lower_fn(
            "int i = 0; while (i < 3) { i = i + 1; } return Val_int(i);"
        )
        cfg = build_cfg(fn)
        edges = set(cfg.edges())
        assert any(dst <= src for src, dst in edges), "no back edge found"

    def test_every_statement_in_exactly_one_block(self):
        fn = lower_fn(
            "int i = 0; if (Is_long(x)) { i = 1; } while (i < 9) { i = i + 2; } return Val_int(i);"
        )
        cfg = build_cfg(fn)
        covered = []
        for block in cfg.blocks:
            covered.extend(range(block.start, block.end))
        assert sorted(covered) == list(range(len(fn.body)))

    def test_block_lookup(self):
        fn = lower_fn("int n = Int_val(x); return Val_int(n);")
        cfg = build_cfg(fn)
        assert cfg.block_at(0) is cfg.entry


class TestReachability:
    def test_all_reachable_in_simple_function(self):
        fn = lower_fn("return Val_int(0);")
        cfg = build_cfg(fn)
        assert cfg.reachable_blocks() == {0}
        assert cfg.unreachable_statements() == []

    def test_code_after_return_unreachable(self):
        fn = lower_fn("return Val_int(0); x = Val_int(1);")
        cfg = build_cfg(fn)
        dead = cfg.unreachable_statements()
        assert dead  # the assignment (and trailing implicit return)

    def test_lowered_control_flow_fully_reachable(self):
        # realistic lowering artifacts (gotos, nops) stay reachable
        fn = lower_fn(
            """
            int r = 0;
            if (Is_long(x)) {
                switch (Int_val(x)) { case 0: r = 1; break; case 1: r = 2; break; }
            } else {
                switch (Tag_val(x)) { case 0: r = 3; break; }
            }
            return Val_int(r);
            """
        )
        cfg = build_cfg(fn)
        assert cfg.unreachable_statements() == []


class TestWellFormedness:
    def test_lowered_functions_are_wellformed(self):
        sources = [
            "value f(value x) { return x; }",
            "value f(value x) { if (Is_long(x)) return x; return Val_int(0); }",
            "value f(value x) { int i; for (i = 0; i < 3; i++) {} return Val_int(i); }",
            "value f(value x) { goto out; out: return x; }",
        ]
        for source in sources:
            fn = lower_unit(parse_c_text(source)).function("f")
            assert check_wellformed(fn) == []

    def test_dot_output(self):
        fn = lower_fn("if (Is_long(x)) return Val_int(0); return Val_int(1);")
        dot = build_cfg(fn).to_dot()
        assert dot.startswith("digraph")
        assert "->" in dot


class TestCFGOverBenchmarks:
    def test_synthesized_suite_is_wellformed(self):
        """Every function in a mid-size synthesized benchmark lowers to a
        well-formed CFG with no stranded statements."""
        from repro.bench.specs import spec_by_name
        from repro.bench.synth import synthesize

        program = synthesize(spec_by_name("ocaml-glpk-0.1.1"), unique_prefix=60)
        lowered = lower_unit(parse_c_text(program.c_source))
        for fn in lowered.functions:
            if not fn.is_definition:
                continue
            assert check_wellformed(fn) == [], fn.name
            build_cfg(fn)  # must not raise
