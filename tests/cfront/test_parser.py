"""Tests for the C subset parser."""

import pytest

from repro.cfront import ast
from repro.cfront.parser import ParseError, parse_c_text
from repro.core.srctypes import CSrcFun, CSrcPtr, CSrcScalar, CSrcStruct, CSrcValue


class TestTopLevel:
    def test_empty_unit(self):
        unit = parse_c_text("")
        assert unit.functions == [] and unit.globals == []

    def test_prototype(self):
        unit = parse_c_text("value f(value x);")
        (fn,) = unit.functions
        assert fn.name == "f"
        assert fn.body is None
        assert fn.params == [("x", CSrcValue())]
        assert fn.return_type == CSrcValue()

    def test_definition(self):
        unit = parse_c_text("int f(int a, int b) { return a; }")
        (fn,) = unit.functions
        assert fn.body is not None
        assert len(fn.params) == 2

    def test_void_params(self):
        unit = parse_c_text("int f(void) { return 0; }")
        assert unit.functions[0].params == []

    def test_unnamed_prototype_params_get_names(self):
        unit = parse_c_text("int f(int, value);")
        names = [n for n, _ in unit.functions[0].params]
        assert names == ["__arg0", "__arg1"]

    def test_global_variable(self):
        unit = parse_c_text("static int counter = 0;")
        (g,) = unit.globals
        assert g.name == "counter"
        assert isinstance(g.init, ast.Num)

    def test_global_value(self):
        unit = parse_c_text("value cache;")
        assert unit.globals[0].ctype == CSrcValue()

    def test_multiple_globals_comma(self):
        unit = parse_c_text("int a, b;")
        assert [g.name for g in unit.globals] == ["a", "b"]

    def test_typedef_scalar(self):
        unit = parse_c_text("typedef long mytime;\nmytime now(void);")
        assert unit.functions[0].return_type == CSrcScalar("long")

    def test_typedef_fnptr(self):
        unit = parse_c_text(
            "typedef int (*cb_t)(int, value);\nint go(cb_t cb);"
        )
        param_type = unit.functions[0].params[0][1]
        assert isinstance(param_type, CSrcFun)
        assert len(param_type.params) == 2

    def test_struct_definition_skipped(self):
        unit = parse_c_text("struct win { int w; int h; };\nint f(void);")
        assert len(unit.functions) == 1

    def test_struct_pointer_param(self):
        unit = parse_c_text("int f(struct win *w);")
        assert unit.functions[0].params[0][1] == CSrcPtr(CSrcStruct("win"))

    def test_camlprim_qualifier(self):
        unit = parse_c_text("CAMLprim value f(value x) { return x; }")
        assert unit.functions[0].name == "f"

    def test_polymorphic_marker(self):
        unit = parse_c_text("MLFFI_POLYMORPHIC value id(value x) { return x; }")
        assert unit.functions[0].polymorphic

    def test_array_global_becomes_pointer(self):
        unit = parse_c_text("int table[16];")
        assert unit.globals[0].ctype == CSrcPtr(CSrcScalar("int"))


class TestStatements:
    def body(self, text):
        unit = parse_c_text("void f(void) { " + text + " }")
        return unit.functions[0].body.items

    def test_declaration_with_init(self):
        (decl,) = self.body("int x = 5;")
        assert isinstance(decl, ast.Declaration)
        assert decl.name == "x"

    def test_if_else(self):
        (stmt,) = self.body("if (x) { a = 1; } else { a = 2; }")
        assert isinstance(stmt, ast.IfStmt)
        assert stmt.other is not None

    def test_dangling_else(self):
        (stmt,) = self.body("if (a) if (b) x = 1; else x = 2;")
        assert isinstance(stmt, ast.IfStmt)
        assert stmt.other is None
        assert isinstance(stmt.then, ast.IfStmt)
        assert stmt.then.other is not None

    def test_while(self):
        (stmt,) = self.body("while (i < 10) i = i + 1;")
        assert isinstance(stmt, ast.WhileStmt)

    def test_do_while(self):
        (stmt,) = self.body("do { i = i + 1; } while (i < 10);")
        assert isinstance(stmt, ast.DoWhileStmt)

    def test_for_loop(self):
        (stmt,) = self.body("for (i = 0; i < n; i++) total += i;")
        assert isinstance(stmt, ast.ForStmt)
        assert stmt.init is not None and stmt.cond is not None

    def test_for_with_declaration(self):
        (stmt,) = self.body("for (int i = 0; i < n; i++) ;")
        assert isinstance(stmt.init, ast.Declaration)

    def test_switch(self):
        (stmt,) = self.body(
            "switch (x) { case 0: a = 1; break; case 1: a = 2; break; default: a = 3; }"
        )
        assert isinstance(stmt, ast.SwitchStmt)
        assert len(stmt.cases) == 3
        assert stmt.cases[2].value is None

    def test_negative_case(self):
        (stmt,) = self.body("switch (x) { case -1: break; }")
        assert stmt.cases[0].value == -1

    def test_goto_and_label(self):
        items = self.body("goto out; out: return;")
        assert isinstance(items[0], ast.GotoStmt)
        assert isinstance(items[1], ast.LabeledStmt)

    def test_label_at_block_end(self):
        items = self.body("goto out; out: ;")
        assert isinstance(items[1], ast.LabeledStmt)

    def test_return_value(self):
        (stmt,) = self.body("return x + 1;")
        assert isinstance(stmt.value, ast.Binary)

    def test_empty_statement(self):
        (stmt,) = self.body(";")
        assert isinstance(stmt, ast.EmptyStmt)


class TestExpressions:
    def expr(self, text):
        unit = parse_c_text(f"void f(void) {{ __e = {text}; }}")
        stmt = unit.functions[0].body.items[0]
        return stmt.expr.value

    def test_precedence_mul_over_add(self):
        exp = self.expr("a + b * c")
        assert exp.op == "+"
        assert exp.right.op == "*"

    def test_parens_override(self):
        exp = self.expr("(a + b) * c")
        assert exp.op == "*"

    def test_comparison_chain(self):
        exp = self.expr("a < b == c")
        assert exp.op == "=="

    def test_logical_operators(self):
        exp = self.expr("a && b || c")
        assert exp.op == "||"

    def test_unary_deref(self):
        exp = self.expr("*p")
        assert isinstance(exp, ast.Unary) and exp.op == "*"

    def test_address_of(self):
        exp = self.expr("&x")
        assert isinstance(exp, ast.Unary) and exp.op == "&"

    def test_negative_literal_folded(self):
        exp = self.expr("-5")
        assert isinstance(exp, ast.Num) and exp.value == -5

    def test_cast(self):
        exp = self.expr("(value) p")
        assert isinstance(exp, ast.Cast)
        assert exp.ctype == CSrcValue()

    def test_cast_pointer(self):
        exp = self.expr("(struct win *) v")
        assert exp.ctype == CSrcPtr(CSrcStruct("win"))

    def test_call_no_args(self):
        exp = self.expr("f()")
        assert isinstance(exp, ast.Call) and exp.args == ()

    def test_call_nested(self):
        exp = self.expr("f(g(x), 1)")
        assert isinstance(exp.args[0], ast.Call)

    def test_index(self):
        exp = self.expr("a[i + 1]")
        assert isinstance(exp, ast.Index)

    def test_member_access(self):
        dot = self.expr("s.field")
        arrow = self.expr("p->field")
        assert isinstance(dot, ast.Member) and not dot.arrow
        assert isinstance(arrow, ast.Member) and arrow.arrow

    def test_sizeof_type(self):
        exp = self.expr("sizeof(struct win *)")
        assert isinstance(exp, ast.SizeOf)

    def test_sizeof_expr(self):
        exp = self.expr("sizeof x")
        assert isinstance(exp, ast.SizeOf)

    def test_conditional(self):
        exp = self.expr("a ? b : c")
        assert isinstance(exp, ast.Conditional)

    def test_null_is_zero(self):
        exp = self.expr("NULL")
        assert isinstance(exp, ast.Num) and exp.value == 0

    def test_assignment_chain(self):
        unit = parse_c_text("void f(void) { a = b = 0; }")
        outer = unit.functions[0].body.items[0].expr
        assert isinstance(outer, ast.Assign)
        assert isinstance(outer.value, ast.Assign)

    def test_compound_assign(self):
        unit = parse_c_text("void f(void) { a += 2; }")
        assign = unit.functions[0].body.items[0].expr
        assert assign.op == "+"

    def test_string_concatenation(self):
        exp = self.expr('"a" "b"')
        assert isinstance(exp, ast.Str) and exp.value == "ab"


class TestErrors:
    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse_c_text("int f(void) { return 0 }")

    def test_unbalanced_paren(self):
        with pytest.raises(ParseError):
            parse_c_text("int f(void { return 0; }")

    def test_garbage(self):
        from repro.cfront.lexer import LexError

        with pytest.raises((ParseError, LexError)):
            parse_c_text("$$$")
