/* block comment * with / stars **/
// line comment with "string" and 'c'
#include <caml/mlvalues.h>
#include "local_header.h"
#define TAG_POINT 0
#define TAG_HEX 0x1F
#define TAG_OCT 017
#define TAG_PAREN (42)
#define TAG_NEG -7
#define NOT_AN_INT some_expr(1)
#define MULTI \
    continued \
    more
#pragma once
value torture(value x, int n)
{
    int hex = 0xfFuL;
    int oct = 0755;
    int dec = 1234567890L;
    int zero = 0;
    int weird = 0779;
    char a = 'a';
    char nl = '\n';
    char tab = '\t';
    char quote = '\'';
    char backslash = '\\';
    char zeroch = '\0';
    const char *s = "hello \"world\"\n\t\\ with \0 nul";
    const char *adj = "one" "two";
    n <<= 2; n >>= 1; n += TAG_HEX; n -= TAG_OCT; n *= 2; n /= 3; n %= 5;
    n &= 7; n |= 8; n ^= 9;
    if (n <= 1 && n >= 0 || n == 2 && n != 3) { n++; --n; }
    int arr[3];
    arr[0] = n < 1 ? ~n : !n;
    struct pair { int fst; int snd; } p;
    p.fst = n >> 1; p.snd = n << 1;
    int *q = &oct;
    torture2(x, n, TAG_PAREN, TAG_NEG, MULTI_UNKNOWN);
    return Val_int(hex + oct + dec + zero + weird + a);
}
