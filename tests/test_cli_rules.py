"""The ``rules`` and ``conformance`` subcommands."""

import json

import pytest

from repro.cli import main
from repro.diagnostics import Kind


class TestRulesCommand:
    def test_text_groups_by_pack_with_footer(self, capsys):
        assert main(["rules"]) == 0
        out = capsys.readouterr().out
        for pack in ("ocaml", "pyext", "jni", "rust", "link"):
            assert f"== pack {pack}" in out
        # each pack header appears exactly once
        assert out.count("== pack rust") == 1
        assert f"-- {len(Kind)} rule(s) in 5 pack(s)" in out

    def test_dialect_filter(self, capsys):
        assert main(["rules", "--dialect", "rust"]) == 0
        out = capsys.readouterr().out
        assert "RUST_DECL_MISMATCH" in out
        assert "TYPE_MISMATCH" not in out
        assert "-- 5 rule(s) in 1 pack(s)" in out

    def test_json_payload_lists_every_rule(self, capsys):
        assert main(["rules", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        rules = payload["rules"]
        assert len(rules) == len(Kind)
        by_id = {rule["id"]: rule for rule in rules}
        assert by_id["RUST_PLATFORM_WIDTH"]["dialect"] == "rust"
        assert by_id["RUST_PLATFORM_WIDTH"]["severity"] == "error"
        assert by_id["RUST_PLATFORM_WIDTH"]["help_uri"].startswith("https://")
        assert "gui_" in by_id["RUST_PLATFORM_WIDTH"]["guideline"]

    def test_unknown_dialect_is_rejected_by_argparse(self, capsys):
        with pytest.raises(SystemExit):
            main(["rules", "--dialect", "cobol"])


class TestConformanceCommand:
    def test_bad_corpus_fails_its_rules(self, capsys):
        code = main(
            [
                "conformance",
                "examples/rust/bad_bindings",
                "--dialect",
                "rust",
                "--no-cache",
            ]
        )
        out = capsys.readouterr().out
        assert code > 0
        assert "== conformance: examples/rust/bad_bindings" in out
        assert "fail RUST_PLATFORM_WIDTH" in out
        assert "fail RUST_STR_PASSING" in out
        assert "pass LINK_DUPLICATE_DEFINITION" in out

    def test_clean_corpus_passes_every_rule(self, capsys):
        code = main(
            [
                "conformance",
                "examples/rust/clean_bindings",
                "--dialect",
                "rust",
                "--no-cache",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "   fail " not in out
        assert "0 failing" in out

    def test_json_document_shape(self, capsys):
        code = main(
            [
                "conformance",
                "examples/link/rust",
                "--dialect",
                "rust",
                "--no-cache",
                "--format",
                "json",
            ]
        )
        assert code == 2
        doc = json.loads(capsys.readouterr().out)
        conf = doc["conformance"]
        assert conf["dialect"] == "rust"
        status = {rule["id"]: rule["status"] for rule in conf["rules"]}
        assert status["LINK_CONFLICTING_DECL"] == "fail"
        assert status["LINK_UNRESOLVED_EXTERN"] == "warn"
        assert status["RUST_DECL_MISMATCH"] == "pass"

    def test_strict_promotes_warnings(self, capsys):
        code = main(
            [
                "conformance",
                "examples/link/rust",
                "--dialect",
                "rust",
                "--no-cache",
                "--strict",
            ]
        )
        out = capsys.readouterr().out
        assert code == 3
        assert "fail LINK_UNRESOLVED_EXTERN" in out

    def test_sarif_results_carry_registry_metadata(self, capsys):
        code = main(
            [
                "conformance",
                "examples/rust/bad_bindings",
                "--dialect",
                "rust",
                "--no-cache",
                "--format",
                "sarif",
            ]
        )
        assert code > 0
        log = json.loads(capsys.readouterr().out)
        run = log["runs"][0]
        rule_ids = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
        assert "RUST_STR_PASSING" in rule_ids
        by_id = {rule["id"]: rule for rule in run["tool"]["driver"]["rules"]}
        props = by_id["RUST_STR_PASSING"]["properties"]
        assert props["dialect"] == "rust"
        assert run["results"]

    def test_ocaml_corpus_covers_paper_taxonomy(self, capsys):
        code = main(
            [
                "conformance",
                "examples/glue",
                "--dialect",
                "ocaml",
                "--no-cache",
            ]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "TAG_OUT_OF_RANGE" in out
        assert "LINK_UNRESOLVED_EXTERN" in out


class TestRuleIdPlumbing:
    """rule_id rides the JSON surface without perturbing the text."""

    def test_batch_json_diagnostics_carry_rule_ids(self, capsys):
        code = main(
            [
                "batch",
                "examples/rust/bad_bindings",
                "--dialect",
                "rust",
                "--no-cache",
                "--format",
                "json",
            ]
        )
        assert code == 6
        payload = json.loads(capsys.readouterr().out)
        rule_ids = [
            diag["rule_id"]
            for unit in payload["units"]
            for diag in unit["diagnostics"]
        ]
        assert len(rule_ids) == 6
        assert set(rule_ids) == {
            "RUST_DECL_MISMATCH",
            "RUST_PLATFORM_WIDTH",
            "RUST_PTR_INT_CONFUSION",
            "RUST_ENUM_REPR",
            "RUST_STR_PASSING",
        }

    def test_text_output_has_no_rule_ids(self, capsys):
        code = main(
            [
                "batch",
                "examples/rust/bad_bindings",
                "--dialect",
                "rust",
                "--no-cache",
            ]
        )
        assert code == 6
        out = capsys.readouterr().out
        # the human render stays byte-identical to the pre-registry
        # format: kind names appear only in JSON/SARIF surfaces
        assert "RUST_" not in out
        assert "rule_id" not in out
