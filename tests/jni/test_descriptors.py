"""JVM descriptor grammar and the descriptor-use checking pass."""

import pytest

from repro.cfront.parser import parse_c_text
from repro.diagnostics import Kind
from repro.jni import runtime
from repro.jni.descriptors import (
    check_unit,
    class_name_ok,
    field_descriptor,
    method_descriptor,
)

HINTS = runtime.parse_hints()


def analyze(text):
    return check_unit(parse_c_text(text, hints=HINTS))


class TestFieldDescriptors:
    @pytest.mark.parametrize(
        "desc,letter",
        [
            ("I", "I"),
            ("Z", "Z"),
            ("D", "D"),
            ("Ljava/lang/String;", "L"),
            ("[I", "["),
            ("[[Ljava/lang/Object;", "["),
        ],
    )
    def test_valid(self, desc, letter):
        assert field_descriptor(desc) == letter

    @pytest.mark.parametrize(
        "desc",
        ["", "Q", "II", "L;", "Ljava/lang/String", "Ljava.lang.String;", "["],
    )
    def test_malformed(self, desc):
        assert field_descriptor(desc) is None


class TestMethodDescriptors:
    def test_params_and_return(self):
        assert method_descriptor("(ILjava/lang/String;)V") == (
            ("I", "L"),
            "V",
        )

    def test_array_params(self):
        assert method_descriptor("([I[Ljava/lang/Object;)J") == (
            ("[", "["),
            "J",
        )

    def test_no_params(self):
        assert method_descriptor("()I") == ((), "I")

    @pytest.mark.parametrize(
        "desc", ["", "I", "(I", "(I)", "()", "(Q)V", "()IV", "(I)V extra"]
    )
    def test_malformed(self, desc):
        assert method_descriptor(desc) is None


class TestClassNames:
    def test_internal_names_ok(self):
        assert class_name_ok("java/lang/String")
        assert class_name_ok("[Ljava/lang/String;")

    def test_dotted_names_rejected(self):
        assert not class_name_ok("java.lang.String")

    def test_descriptor_spelling_rejected(self):
        # FindClass("Ljava/lang/String;") is a NoClassDefFoundError at
        # runtime: ';' never appears in an internal name
        assert not class_name_ok("Ljava/lang/String;")


class TestLookupSites:
    def test_malformed_field_descriptor_reported(self):
        diags = analyze(
            "jint f(JNIEnv *env, jobject box)\n"
            "{\n"
            "    jclass cls = (*env)->GetObjectClass(env, box);\n"
            '    jfieldID fid = (*env)->GetFieldID(env, cls, "n", "Q");\n'
            "    return (*env)->GetIntField(env, box, fid);\n"
            "}\n"
        )
        assert [d.kind for d in diags] == [Kind.JNI_BAD_DESCRIPTOR]

    def test_dotted_find_class_reported(self):
        diags = analyze(
            "jclass f(JNIEnv *env)\n"
            "{\n"
            '    return (*env)->FindClass(env, "java.lang.String");\n'
            "}\n"
        )
        assert [d.kind for d in diags] == [Kind.JNI_BAD_DESCRIPTOR]

    def test_descriptor_spelled_find_class_reported(self):
        diags = analyze(
            "jclass f(JNIEnv *env)\n"
            "{\n"
            '    return (*env)->FindClass(env, "Ljava/lang/String;");\n'
            "}\n"
        )
        assert [d.kind for d in diags] == [Kind.JNI_BAD_DESCRIPTOR]
        assert "field-descriptor spelling" in diags[0].message

    def test_well_formed_lookups_are_silent(self):
        diags = analyze(
            "void f(JNIEnv *env, jclass cls)\n"
            "{\n"
            '    jmethodID m = (*env)->GetMethodID(env, cls, "get", "(I)Ljava/lang/Object;");\n'
            '    jfieldID fid = (*env)->GetStaticFieldID(env, cls, "N", "J");\n'
            "}\n"
        )
        assert diags == []


class TestUseSites:
    def test_return_variant_mismatch(self):
        diags = analyze(
            "jobject f(JNIEnv *env, jobject list)\n"
            "{\n"
            "    jclass cls = (*env)->GetObjectClass(env, list);\n"
            '    jmethodID size = (*env)->GetMethodID(env, cls, "size", "()I");\n'
            "    return (*env)->CallObjectMethod(env, list, size);\n"
            "}\n"
        )
        assert [d.kind for d in diags] == [Kind.JNI_DESCRIPTOR_MISMATCH]

    def test_argument_count_mismatch(self):
        diags = analyze(
            "void f(JNIEnv *env, jobject list, jint n)\n"
            "{\n"
            "    jclass cls = (*env)->GetObjectClass(env, list);\n"
            '    jmethodID m = (*env)->GetMethodID(env, cls, "add", "(I)V");\n'
            "    (*env)->CallVoidMethod(env, list, m, n, n);\n"
            "}\n"
        )
        assert [d.kind for d in diags] == [Kind.JNI_DESCRIPTOR_MISMATCH]

    def test_argument_class_mismatch(self):
        diags = analyze(
            "void f(JNIEnv *env, jobject list, jobject item)\n"
            "{\n"
            "    jclass cls = (*env)->GetObjectClass(env, list);\n"
            '    jmethodID m = (*env)->GetMethodID(env, cls, "get", "(I)V");\n'
            "    (*env)->CallVoidMethod(env, list, m, item);\n"
            "}\n"
        )
        assert [d.kind for d in diags] == [Kind.JNI_DESCRIPTOR_MISMATCH]

    def test_matching_call_is_silent(self):
        diags = analyze(
            "jint f(JNIEnv *env, jobject list, jint n)\n"
            "{\n"
            "    jclass cls = (*env)->GetObjectClass(env, list);\n"
            '    jmethodID m = (*env)->GetMethodID(env, cls, "get", "(I)I");\n'
            "    return (*env)->CallIntMethod(env, list, m, n);\n"
            "}\n"
        )
        assert diags == []

    def test_field_variant_mismatch(self):
        diags = analyze(
            "jint f(JNIEnv *env, jobject box)\n"
            "{\n"
            "    jclass cls = (*env)->GetObjectClass(env, box);\n"
            '    jfieldID fid = (*env)->GetFieldID(env, cls, "name", "Ljava/lang/String;");\n'
            "    return (*env)->GetIntField(env, box, fid);\n"
            "}\n"
        )
        assert [d.kind for d in diags] == [Kind.JNI_DESCRIPTOR_MISMATCH]

    def test_set_field_value_class_checked(self):
        diags = analyze(
            "void f(JNIEnv *env, jobject box, jobject item)\n"
            "{\n"
            "    jclass cls = (*env)->GetObjectClass(env, box);\n"
            '    jfieldID fid = (*env)->GetFieldID(env, cls, "n", "I");\n'
            "    (*env)->SetIntField(env, box, fid, item);\n"
            "}\n"
        )
        assert [d.kind for d in diags] == [Kind.JNI_DESCRIPTOR_MISMATCH]

    def test_object_field_accepts_arrays(self):
        diags = analyze(
            "jobject f(JNIEnv *env, jobject box)\n"
            "{\n"
            "    jclass cls = (*env)->GetObjectClass(env, box);\n"
            '    jfieldID fid = (*env)->GetFieldID(env, cls, "xs", "[I");\n'
            "    return (*env)->GetObjectField(env, box, fid);\n"
            "}\n"
        )
        assert diags == []

    def test_conflicting_rebind_is_never_guessed(self):
        diags = analyze(
            "jint f(JNIEnv *env, jobject box, jint which)\n"
            "{\n"
            "    jclass cls = (*env)->GetObjectClass(env, box);\n"
            '    jfieldID fid = (*env)->GetFieldID(env, cls, "a", "I");\n'
            "    if (which)\n"
            '        fid = (*env)->GetFieldID(env, cls, "b", "J");\n'
            "    return (*env)->GetIntField(env, box, fid);\n"
            "}\n"
        )
        assert diags == []


class TestNativeMethodTables:
    def test_malformed_table_signature(self):
        diags = analyze(
            "static jint work(JNIEnv *env, jobject self) { return 1; }\n"
            "static JNINativeMethod M[] = {\n"
            '    {"work", "(II", (void *) work},\n'
            "};\n"
        )
        assert [d.kind for d in diags] == [Kind.JNI_BAD_DESCRIPTOR]

    def test_well_formed_table_is_silent(self):
        diags = analyze(
            "static jint work(JNIEnv *env, jobject self) { return 1; }\n"
            "static JNINativeMethod M[] = {\n"
            '    {"work", "()I", (void *) work},\n'
            "};\n"
        )
        assert diags == []

    def test_designated_rows_resolve_by_field_name(self):
        # .signature may appear in any position; the row is valid
        diags = analyze(
            "static jint work(JNIEnv *env, jobject self) { return 1; }\n"
            "static JNINativeMethod M[] = {\n"
            '    {.signature = "()I", .name = "work", .fnPtr = (void *) work},\n'
            "};\n"
        )
        assert diags == []

    def test_designated_rows_still_catch_malformed_signatures(self):
        diags = analyze(
            "static jint work(JNIEnv *env, jobject self) { return 1; }\n"
            "static JNINativeMethod M[] = {\n"
            '    {.signature = "(II", .name = "work", .fnPtr = (void *) work},\n'
            "};\n"
        )
        assert [d.kind for d in diags] == [Kind.JNI_BAD_DESCRIPTOR]
