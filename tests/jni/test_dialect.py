"""End-to-end jni dialect: the acceptance-criteria scenarios."""

from pathlib import Path

import pytest

from repro.api import Project
from repro.diagnostics import Kind
from repro.source import SourceFile

EXAMPLES = Path(__file__).resolve().parent.parent.parent / "examples" / "jni"


def analyze_text(text, name="native.c"):
    return Project(dialect="jni").add_c(SourceFile(name, text)).analyze()


def analyze_example(filename):
    path = EXAMPLES / filename
    return analyze_text(path.read_text(), name=str(path))


class TestExampleCorpus:
    def test_clean_module_has_zero_errors_or_warnings(self):
        report = analyze_example("clean_native.c")
        tally = report.tally()
        assert tally["errors"] == 0
        assert tally["warnings"] == 0

    def test_bad_native_reports_the_seeded_defects(self):
        report = analyze_example("bad_native.c")
        kinds = {d.kind for d in report.diagnostics}
        assert Kind.JNI_BAD_DESCRIPTOR in kinds
        assert Kind.JNI_DESCRIPTOR_MISMATCH in kinds
        assert Kind.JNI_LOCAL_REF_LEAK in kinds
        assert Kind.JNI_USE_AFTER_DELETE in kinds
        assert Kind.JNI_GLOBAL_REF_LEAK in kinds
        assert Kind.JNI_LOCAL_ESCAPE in kinds

    def test_bad_native_defects_land_in_the_right_functions(self):
        report = analyze_example("bad_native.c")
        by_fn = {(d.kind, d.function) for d in report.diagnostics}
        assert (Kind.JNI_BAD_DESCRIPTOR, "bad_descriptor") in by_fn
        assert (Kind.JNI_BAD_DESCRIPTOR, "bad_dotted_class") in by_fn
        assert (Kind.JNI_DESCRIPTOR_MISMATCH, "bad_return_variant") in by_fn
        assert (Kind.JNI_DESCRIPTOR_MISMATCH, "bad_call_arity") in by_fn
        assert (Kind.JNI_LOCAL_REF_LEAK, "bad_loop_leak") in by_fn
        assert (Kind.JNI_USE_AFTER_DELETE, "bad_use_after_delete") in by_fn
        assert (Kind.JNI_GLOBAL_REF_LEAK, "bad_global_leak") in by_fn
        assert (Kind.JNI_LOCAL_ESCAPE, "bad_cache") in by_fn

    def test_bad_native_error_count_is_stable(self):
        # the CI smoke gate pins the `check` exit status to this number
        report = analyze_example("bad_native.c")
        assert report.tally()["errors"] == 8


class TestRegistrationContract:
    def test_wrong_arity_definition_is_flagged(self):
        # "(I)I" dictates (env, self, jint); a two-parameter definition
        # clashes with Γ_I exactly like an external/stub arity mismatch
        report = analyze_text(
            "static jint work(JNIEnv *env, jobject self) { return 1; }\n"
            'static JNINativeMethod M[] = {{"work", "(I)I", (void *) work}};\n'
        )
        assert any(d.kind is Kind.ARITY_MISMATCH for d in report.errors)

    def test_matching_definition_is_clean(self):
        report = analyze_text(
            "static jint work(JNIEnv *env, jobject self, jint n)\n"
            "{ return n; }\n"
            'static JNINativeMethod M[] = {{"work", "(I)I", (void *) work}};\n'
        )
        assert len(report.diagnostics) == 0

    def test_export_without_env_parameter_is_flagged(self):
        report = analyze_text(
            "JNIEXPORT jint JNICALL Java_A_f(jobject self, jint n)\n"
            "{ return n; }\n"
        )
        assert any(d.kind is Kind.TYPE_MISMATCH for d in report.errors)


class TestCoreInferenceReuse:
    def test_reference_used_as_scalar_is_a_type_error(self):
        # no CallIntMethod conversion: the shared rules reject the raw
        # jobject where arithmetic wants a C scalar
        report = analyze_text(
            "JNIEXPORT jint JNICALL Java_A_g(JNIEnv *env, jobject self, jobject x)\n"
            "{\n"
            "    return x + 1;\n"
            "}\n"
        )
        assert report.tally()["errors"] >= 1

    def test_signatures_render_value_types(self):
        report = analyze_text(
            "JNIEXPORT jobject JNICALL Java_A_id(JNIEnv *env, jobject self, jobject x)\n"
            "{\n"
            "    return x;\n"
            "}\n"
        )
        assert "value" in report.signatures["Java_A_id"]


class TestBatchIntegration:
    def test_jni_batch_over_examples(self):
        project = Project.from_directory(EXAMPLES, dialect="jni")
        assert [Path(s.filename).name for s in project.c_sources] == [
            "bad_native.c",
            "clean_native.c",
        ]
        report = project.analyze_batch()
        assert report.tally()["errors"] == 8
        names = {Path(r.name).name: r for r in report.results}
        assert names["clean_native.c"].tally()["errors"] == 0

    def test_dialect_rides_the_requests(self):
        project = Project.from_directory(EXAMPLES, dialect="jni")
        assert all(r.dialect == "jni" for r in project.to_requests())


@pytest.mark.parametrize("filename", ["clean_native.c", "bad_native.c"])
def test_examples_exist(filename):
    assert (EXAMPLES / filename).is_file()
