"""Phase one: JNINativeMethod tables, Java_* exports, the constant index."""

from repro.cfront.parser import parse_c_text
from repro.core.types import C_INT, C_VOID, CPtr, CStruct, CValue
from repro.jni import runtime
from repro.jni.repository import (
    build_initial_env,
    build_repository,
    is_native_export,
    native_method_entries,
)

HINTS = runtime.parse_hints()


def parse(text):
    return parse_c_text(text, hints=HINTS)


TABLE = (
    "static jint native_add(JNIEnv *env, jobject self, jint a, jint b)\n"
    "{ return a + b; }\n"
    "static JNINativeMethod gMethods[] = {\n"
    '    {"add", "(II)I", (void *) native_add},\n'
    '    {"name", "()Ljava/lang/String;", (void *) native_name},\n'
    "};\n"
)


class TestNativeMethodTables:
    def test_rows_parse(self):
        entries = native_method_entries(parse(TABLE))
        assert [(e.java_name, e.signature, e.c_name) for e in entries] == [
            ("add", "(II)I", "native_add"),
            ("name", "()Ljava/lang/String;", "native_name"),
        ]

    def test_descriptor_dictates_the_c_signature(self):
        entries = native_method_entries(parse(TABLE))
        add = entries[0]
        params = add.param_types()
        assert isinstance(params[0], CPtr)
        assert params[0].target == CStruct("JNIEnv")
        assert isinstance(params[1], CValue)
        assert params[2] is C_INT and params[3] is C_INT
        assert add.result_type() is C_INT

    def test_object_return_is_a_value(self):
        entries = native_method_entries(parse(TABLE))
        assert isinstance(entries[1].result_type(), CValue)

    def test_designated_initializers(self):
        unit = parse(
            "static JNINativeMethod M[] = {\n"
            '    {.name = "f", .signature = "()V", .fnPtr = (void *) g},\n'
            "};\n"
        )
        (entry,) = native_method_entries(unit)
        assert entry.c_name == "g"
        assert entry.signature == "()V"

    def test_malformed_signature_seeds_nothing(self):
        unit = parse(
            'static JNINativeMethod M[] = {{"f", "(II", (void *) g}};\n'
        )
        env = build_initial_env([unit])
        assert "g" not in env.functions


class TestInitialEnv:
    def test_table_rows_become_gamma_entries(self):
        env = build_initial_env([parse(TABLE)])
        fun = env.functions["native_add"]
        assert len(fun.params) == 4
        assert fun.result is C_INT

    def test_void_return(self):
        unit = parse(
            'static JNINativeMethod M[] = {{"f", "(I)V", (void *) g}};\n'
        )
        assert build_initial_env([unit]).functions["g"].result is C_VOID

    def test_java_exports_get_the_convention_contract(self):
        unit = parse(
            "JNIEXPORT jint JNICALL Java_A_f(JNIEnv *env, jobject self, jint n)\n"
            "{ return n; }\n"
        )
        env = build_initial_env([unit])
        fun = env.functions["Java_A_f"]
        assert len(fun.params) == 3
        assert fun.params[0] == CPtr(CStruct("JNIEnv"))
        assert isinstance(fun.params[1], CValue)

    def test_helpers_are_not_seeded(self):
        unit = parse("static jint helper(jint n) { return n; }\n")
        assert build_initial_env([unit]).functions == {}

    def test_is_native_export(self):
        assert is_native_export("Java_com_example_Native_add")
        assert not is_native_export("native_add")


class TestClassRepository:
    def test_constants_are_indexed(self):
        unit = parse(
            "void f(JNIEnv *env, jobject box)\n"
            "{\n"
            '    jclass cls = (*env)->FindClass(env, "java/util/List");\n'
            '    jmethodID m = (*env)->GetMethodID(env, cls, "size", "()I");\n'
            '    jfieldID fid = (*env)->GetFieldID(env, cls, "n", "I");\n'
            "}\n"
        )
        repo = build_repository([unit])
        assert "java/util/List" in repo.classes
        assert ("size", "()I") in repo.methods
        assert ("n", "I") in repo.fields

    def test_non_literal_lookups_are_skipped(self):
        unit = parse(
            "void f(JNIEnv *env, jclass cls, char *name)\n"
            "{\n"
            '    jmethodID m = (*env)->GetMethodID(env, cls, name, "()I");\n'
            "}\n"
        )
        repo = build_repository([unit])
        assert repo.methods == {}
