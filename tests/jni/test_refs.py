"""The local/global reference discipline pass."""

from repro.cfront.parser import parse_c_text
from repro.diagnostics import Kind
from repro.jni import runtime
from repro.jni.refs import check_unit

HINTS = runtime.parse_hints()


def analyze(text):
    return check_unit(parse_c_text(text, hints=HINTS))


def kinds(diags):
    return [d.kind for d in diags]


class TestLoopLeak:
    def test_per_iteration_local_without_delete(self):
        diags = analyze(
            "jint f(JNIEnv *env, jobjectArray items, jsize n)\n"
            "{\n"
            "    jsize i;\n"
            "    for (i = 0; i < n; i = i + 1) {\n"
            "        jobject item = (*env)->GetObjectArrayElement(env, items, i);\n"
            "        (*env)->GetStringLength(env, item);\n"
            "    }\n"
            "    return 0;\n"
            "}\n"
        )
        assert kinds(diags) == [Kind.JNI_LOCAL_REF_LEAK]

    def test_deleted_per_iteration_is_clean(self):
        diags = analyze(
            "jint f(JNIEnv *env, jobjectArray items, jsize n)\n"
            "{\n"
            "    jsize i;\n"
            "    for (i = 0; i < n; i = i + 1) {\n"
            "        jobject item = (*env)->GetObjectArrayElement(env, items, i);\n"
            "        (*env)->GetStringLength(env, item);\n"
            "        (*env)->DeleteLocalRef(env, item);\n"
            "    }\n"
            "    return 0;\n"
            "}\n"
        )
        assert diags == []

    def test_while_loop_also_checked(self):
        diags = analyze(
            "void f(JNIEnv *env, jobject it, jmethodID next)\n"
            "{\n"
            "    while ((*env)->ExceptionCheck(env)) {\n"
            "        jobject item = (*env)->CallObjectMethod(env, it, next);\n"
            "        (*env)->GetStringLength(env, item);\n"
            "    }\n"
            "}\n"
        )
        assert kinds(diags) == [Kind.JNI_LOCAL_REF_LEAK]

    def test_straight_line_local_is_not_a_leak(self):
        # the VM frees the frame's locals itself; only iteration overflows
        diags = analyze(
            "void f(JNIEnv *env, jobject box)\n"
            "{\n"
            "    jclass cls = (*env)->GetObjectClass(env, box);\n"
            "    (*env)->IsInstanceOf(env, box, cls);\n"
            "}\n"
        )
        assert diags == []

    def test_body_that_returns_does_not_iterate(self):
        diags = analyze(
            "jobject f(JNIEnv *env, jobjectArray items, jsize n)\n"
            "{\n"
            "    jsize i;\n"
            "    for (i = 0; i < n; i = i + 1) {\n"
            "        jobject item = (*env)->GetObjectArrayElement(env, items, i);\n"
            "        return item;\n"
            "    }\n"
            "    return NULL;\n"
            "}\n"
        )
        assert diags == []


class TestUseAfterDelete:
    def test_use_after_delete_local(self):
        diags = analyze(
            "jint f(JNIEnv *env, jobject box)\n"
            "{\n"
            "    jclass cls = (*env)->GetObjectClass(env, box);\n"
            "    (*env)->DeleteLocalRef(env, cls);\n"
            "    return (*env)->IsInstanceOf(env, box, cls);\n"
            "}\n"
        )
        assert kinds(diags) == [Kind.JNI_USE_AFTER_DELETE]

    def test_double_delete(self):
        diags = analyze(
            "void f(JNIEnv *env, jobject box)\n"
            "{\n"
            "    jclass cls = (*env)->GetObjectClass(env, box);\n"
            "    (*env)->DeleteLocalRef(env, cls);\n"
            "    (*env)->DeleteLocalRef(env, cls);\n"
            "}\n"
        )
        assert kinds(diags) == [Kind.JNI_USE_AFTER_DELETE]

    def test_delete_on_one_path_only_is_unknown(self):
        diags = analyze(
            "void f(JNIEnv *env, jobject box, jint flag)\n"
            "{\n"
            "    jclass cls = (*env)->GetObjectClass(env, box);\n"
            "    if (flag)\n"
            "        (*env)->DeleteLocalRef(env, cls);\n"
            "    (*env)->IsInstanceOf(env, box, cls);\n"
            "}\n"
        )
        assert diags == []


class TestGlobalRefs:
    def test_unreleased_global_leaks(self):
        diags = analyze(
            "void f(JNIEnv *env, jobject obj, jmethodID m)\n"
            "{\n"
            "    jobject pinned = (*env)->NewGlobalRef(env, obj);\n"
            "    (*env)->CallVoidMethod(env, pinned, m);\n"
            "}\n"
        )
        assert kinds(diags) == [Kind.JNI_GLOBAL_REF_LEAK]

    def test_released_global_is_clean(self):
        diags = analyze(
            "void f(JNIEnv *env, jobject obj, jmethodID m)\n"
            "{\n"
            "    jobject pinned = (*env)->NewGlobalRef(env, obj);\n"
            "    (*env)->CallVoidMethod(env, pinned, m);\n"
            "    (*env)->DeleteGlobalRef(env, pinned);\n"
            "}\n"
        )
        assert diags == []

    def test_returned_global_escapes_cleanly(self):
        diags = analyze(
            "jobject f(JNIEnv *env, jobject obj)\n"
            "{\n"
            "    jobject pinned = (*env)->NewGlobalRef(env, obj);\n"
            "    return pinned;\n"
            "}\n"
        )
        assert diags == []

    def test_global_stored_in_global_var_is_clean(self):
        diags = analyze(
            "static jclass cached;\n"
            "void f(JNIEnv *env, jobject obj)\n"
            "{\n"
            "    jclass cls = (*env)->GetObjectClass(env, obj);\n"
            "    cached = (*env)->NewGlobalRef(env, cls);\n"
            "}\n"
        )
        assert diags == []

    def test_local_and_global_leaks_on_one_name_both_report(self):
        # the two leak kinds must not share a per-name dedup set
        diags = analyze(
            "void f(JNIEnv *env, jobjectArray items, jobject obj, jsize n)\n"
            "{\n"
            "    jsize i;\n"
            "    for (i = 0; i < n; i = i + 1) {\n"
            "        jobject x = (*env)->GetObjectArrayElement(env, items, i);\n"
            "        (*env)->GetStringLength(env, x);\n"
            "    }\n"
            "    jobject x = (*env)->NewGlobalRef(env, obj);\n"
            "    (*env)->GetStringLength(env, x);\n"
            "}\n"
        )
        assert sorted(d.kind.name for d in diags) == [
            "JNI_GLOBAL_REF_LEAK",
            "JNI_LOCAL_REF_LEAK",
        ]

    def test_overwritten_global_leaks(self):
        diags = analyze(
            "void f(JNIEnv *env, jobject a, jobject b)\n"
            "{\n"
            "    jobject pinned = (*env)->NewGlobalRef(env, a);\n"
            "    pinned = (*env)->NewGlobalRef(env, b);\n"
            "    (*env)->DeleteGlobalRef(env, pinned);\n"
            "}\n"
        )
        assert kinds(diags) == [Kind.JNI_GLOBAL_REF_LEAK]


class TestLocalEscape:
    def test_local_cached_in_global_var(self):
        diags = analyze(
            "static jclass cached;\n"
            "void f(JNIEnv *env)\n"
            "{\n"
            '    jclass cls = (*env)->FindClass(env, "java/lang/String");\n'
            "    cached = cls;\n"
            "}\n"
        )
        assert kinds(diags) == [Kind.JNI_LOCAL_ESCAPE]

    def test_parameter_cached_in_global_var(self):
        diags = analyze(
            "static jobject cached;\n"
            "void f(JNIEnv *env, jobject obj)\n"
            "{\n"
            "    cached = obj;\n"
            "}\n"
        )
        assert kinds(diags) == [Kind.JNI_LOCAL_ESCAPE]

    def test_fresh_local_cached_directly(self):
        diags = analyze(
            "static jclass cached;\n"
            "void f(JNIEnv *env)\n"
            "{\n"
            '    cached = (*env)->FindClass(env, "java/lang/String");\n'
            "}\n"
        )
        assert kinds(diags) == [Kind.JNI_LOCAL_ESCAPE]


class TestNullRefinement:
    def test_failed_lookup_early_return_is_clean(self):
        diags = analyze(
            "jstring f(JNIEnv *env, jstring name)\n"
            "{\n"
            "    jstring result = (*env)->NewStringUTF(env, 0);\n"
            "    if (result == NULL)\n"
            "        return NULL;\n"
            "    return result;\n"
            "}\n"
        )
        assert diags == []
