"""Method dispatch of the analysis service, driven in-process."""

import json

import pytest

from repro.api import Project, Session
from repro.engine import IncrementalEngine
from repro.server import AnalysisService, protocol

ML = (
    "type t = A of int | B\n"
    'external get : t -> int = "ml_get"\n'
    'external bad : int -> int = "ml_bad"\n'
)

GOOD_C = """\
value ml_get(value x)
{
    if (Is_long(x)) return Val_int(0);
    return Field(x, 0);
}
"""

BAD_C = "value ml_bad(value x) { return Val_int(x); }\n"


@pytest.fixture()
def tree(tmp_path):
    root = tmp_path / "tree"
    root.mkdir()
    (root / "lib.ml").write_text(ML)
    (root / "good.c").write_text(GOOD_C)
    (root / "bad.c").write_text(BAD_C)
    return root


@pytest.fixture()
def service(tree):
    return AnalysisService(IncrementalEngine(tree))


def call(service, method, params=None, request_id=1):
    frame = {"id": request_id, "method": method}
    if params is not None:
        frame["params"] = params
    return service.handle(json.dumps(frame))


class TestMethods:
    def test_ping(self, service):
        response = call(service, "ping")
        assert response["result"]["pong"] is True
        assert response["result"]["units"] == 2

    def test_check_returns_full_report(self, service):
        response = call(service, "check")
        result = response["result"]
        assert result["tally"]["errors"] == 1
        assert len(result["units"]) == 2
        assert len(result["incremental"]["ran"]) == 2

    def test_check_twice_reuses_resident_state(self, service):
        call(service, "check")
        result = call(service, "check")["result"]
        assert result["incremental"]["ran"] == []
        assert result["incremental"]["reused"] == 2
        assert result["tally"]["errors"] == 1

    def test_invalidate_then_check_reruns_only_touched(self, service, tree):
        call(service, "check")
        (tree / "good.c").write_text(GOOD_C + "\n/* edit */\n")
        invalidated = call(
            service, "invalidate", {"paths": ["good.c"]}
        )["result"]["invalidated"]
        assert [p.rsplit("/", 1)[-1] for p in invalidated] == ["good.c"]
        result = call(service, "check")["result"]
        ran = [p.rsplit("/", 1)[-1] for p in result["incremental"]["ran"]]
        assert ran == ["good.c"]

    def test_status(self, service):
        result = call(service, "status")["result"]
        assert result["units"] == 2
        assert "cache" in result

    def test_shutdown_sets_the_event(self, service):
        assert not service.shutdown_requested.is_set()
        response = call(service, "shutdown")
        assert response["result"] == {"ok": True}
        assert service.shutdown_requested.is_set()


class TestErrors:
    def test_unknown_method(self, service):
        response = call(service, "compile")
        assert response["error"]["code"] == protocol.METHOD_NOT_FOUND
        assert "compile" in response["error"]["message"]

    def test_malformed_frame(self, service):
        response = service.handle("{broken")
        assert response["error"]["code"] == protocol.PARSE_ERROR
        assert response["id"] is None

    def test_invalidate_requires_paths(self, service):
        response = call(service, "invalidate", {})
        assert response["error"]["code"] == protocol.INVALID_PARAMS

    def test_check_rejects_non_list_units(self, service):
        response = call(service, "check", {"units": "good.c"})
        assert response["error"]["code"] == protocol.INVALID_PARAMS

    def test_blank_lines_ignored(self, service):
        assert service.handle_line("   \n") is None

    def test_id_echoed_back(self, service):
        response = call(service, "ping", request_id="req-77")
        assert response["id"] == "req-77"


class TestLeaderFailureContainment:
    """A non-protocol engine failure inside a coalescing leader must
    come back as an INTERNAL_ERROR frame — never propagate out of
    ``handle_line``, where it would kill the transport's loop."""

    def test_engine_exception_becomes_internal_error(
        self, service, monkeypatch
    ):
        def explode(units=None):
            raise ValueError("unit path contains an embedded null byte")

        monkeypatch.setattr(service.engine, "check", explode)
        line = json.dumps({"id": 9, "method": "check"})
        response = json.loads(service.handle_line(line))
        assert response["id"] == 9
        assert response["error"]["code"] == protocol.INTERNAL_ERROR
        assert "ValueError" in response["error"]["message"]

    def test_failed_leader_does_not_wedge_later_checks(
        self, service, monkeypatch
    ):
        real_check = service.engine.check
        blew_up = []

        def explode_once(units=None):
            if not blew_up:
                blew_up.append(True)
                raise OSError("transient I/O failure")
            return real_check(units)

        monkeypatch.setattr(service.engine, "check", explode_once)
        first = json.loads(
            service.handle_line(json.dumps({"id": 1, "method": "check"}))
        )
        assert first["error"]["code"] == protocol.INTERNAL_ERROR
        # the failed computation was not memoized; a retry succeeds
        second = json.loads(
            service.handle_line(json.dumps({"id": 2, "method": "check"}))
        )
        assert second["result"]["tally"]["errors"] == 1


class TestWireStability:
    def test_daemon_diagnostics_byte_identical_to_one_shot(self, service, tree):
        """The bench gate's core claim, in miniature: serializing the
        daemon's diagnostics for a unit equals serializing a one-shot
        ``Project.analyze`` of the same sources."""
        result = call(service, "check")["result"]
        (unit,) = [
            u for u in result["units"] if u["name"].endswith("bad.c")
        ]
        project = Project().add_ocaml(
            (tree / "lib.ml").read_text(), name=str(tree / "lib.ml")
        )
        project.add_c((tree / "bad.c").read_text(), name=str(tree / "bad.c"))
        report = project.analyze()
        one_shot = [d.to_dict() for d in report.diagnostics]
        wire = protocol.encode({"diagnostics": unit["diagnostics"]})
        direct = protocol.encode({"diagnostics": one_shot})
        assert wire.encode() == direct.encode()


class TestSession:
    def test_session_context_manager_checks(self, tree):
        with Session(tree) as session:
            report = session.check()
            assert report.tally()["errors"] == 1
            assert session.status()["units"] == 2

    def test_session_invalidate_flow(self, tree):
        with Session(tree) as session:
            session.check()
            (tree / "good.c").write_text(GOOD_C + "\n")
            affected = session.invalidate(["good.c"])
            assert len(affected) == 1
            report = session.check()
            assert len(report.checked) == 1 and report.reused == 1

    def test_closed_session_raises(self, tree):
        session = Session(tree)
        session.close()
        with pytest.raises(RuntimeError, match="closed"):
            session.check()

    def test_session_service_shares_the_engine(self, tree):
        with Session(tree) as session:
            session.check()
            service = session.service()
            result = call(service, "check")["result"]
            assert result["incremental"]["reused"] == 2

    def test_session_cold_cache_dir(self, tree, tmp_path):
        with Session(tree, cache_dir=tmp_path / "cache") as session:
            session.check()
        with Session(tree, cache_dir=tmp_path / "cache") as session:
            report = session.check()
            assert report.ran == []  # disk tier warmed the new session

    def test_session_reload_rescans(self, tree):
        with Session(tree) as session:
            session.check()
            (tree / "extra.c").write_text("int f(void) { return 0; }\n")
            session.reload()
            report = session.check()
            assert len(report.results) == 3
