"""The service's link surface: the `link` method, `check` with
`link: true`, param validation, coalescing separation, and the status
stanzas the link/streaming work added."""

import json

import pytest

from repro.api import Session
from repro.engine import IncrementalEngine
from repro.server import AnalysisService, protocol

CONFLICT_DEF = """\
long shared_helper(long a, long b)
{
    return a + b;
}
"""
CONFLICT_USE = """\
long shared_helper(long a);

long use_helper(long x)
{
    return shared_helper(x);
}
"""


@pytest.fixture()
def tree(tmp_path):
    root = tmp_path / "tree"
    root.mkdir()
    (root / "lib.ml").write_text('external get : int -> int = "ml_get"\n')
    (root / "good.c").write_text(
        "value ml_get(value x) { return Val_int(Int_val(x) + 1); }\n"
    )
    (root / "def.c").write_text(CONFLICT_DEF)
    (root / "use.c").write_text(CONFLICT_USE)
    return root


@pytest.fixture()
def service(tree):
    return AnalysisService(IncrementalEngine(tree))


def call(service, method, params=None, request_id=1):
    frame = {"id": request_id, "method": method}
    if params is not None:
        frame["params"] = params
    return service.handle(json.dumps(frame))


class TestLinkMethod:
    def test_link_returns_check_report_plus_link_stanza(self, service):
        result = call(service, "link")["result"]
        assert result["tally"]["errors"] == 0  # per-unit side is clean
        link = result["link"]
        assert link["units"] == 3
        assert link["tally"]["errors"] == 1
        (diag,) = link["diagnostics"]
        assert diag["kind"] == "LINK_CONFLICTING_DECL"

    def test_check_with_link_true_matches_link(self, service):
        linked = call(service, "check", {"link": True})["result"]
        direct = call(service, "link")["result"]
        assert linked["link"]["diagnostics"] == direct["link"]["diagnostics"]

    def test_plain_check_has_no_link_stanza(self, service):
        result = call(service, "check")["result"]
        assert "link" not in result

    def test_link_param_must_be_boolean(self, service):
        response = call(service, "check", {"link": "yes"})
        assert response["error"]["code"] == -32602
        assert "boolean" in response["error"]["message"]

    def test_linked_and_plain_checks_never_share_a_memo(self, service):
        # same engine revision, different params: the coalescer must key
        # them apart or a plain check could replay a linked response
        plain_key = service.check_key({})
        linked_key = service.check_key({"link": True})
        assert plain_key != linked_key

    def test_coalesced_wire_path_carries_the_link_stanza(self, service):
        line = service.handle_line(
            json.dumps({"id": 7, "method": "check", "params": {"link": True}})
        )
        response = json.loads(line)
        assert response["id"] == 7
        assert response["result"]["link"]["tally"]["errors"] == 1


class TestStatusStanzas:
    def test_status_reports_graph_and_residency(self, service):
        status = call(service, "status")["result"]
        assert status["resident_units"] == 0
        assert status["graph"]["units"] == 3
        assert status["link"] is None
        call(service, "check")
        status = call(service, "status")["result"]
        assert status["resident_units"] == 3

    def test_status_link_stanza_after_a_link(self, service):
        call(service, "link")
        stanza = call(service, "status")["result"]["link"]
        assert stanza["errors"] == 1
        assert stanza["units"] == 3


class TestSessionLink:
    def test_session_link_returns_both_reports(self, tree):
        with Session(tree) as session:
            report, link_report = session.link()
            assert len(report.results) == 3
            assert [d.kind.name for d in link_report.diagnostics] == [
                "LINK_CONFLICTING_DECL"
            ]

    def test_session_service_exposes_link(self, tree):
        with Session(tree) as session:
            result = session.service().handle_request(
                protocol.Request(id=1, method="link", params={})
            )["result"]
            assert result["link"]["tally"]["errors"] == 1
