"""Request coalescing: in-flight sharing, the revision memo, and stats."""

import threading

from repro.server.coalesce import CheckCoalescer, InflightEntry


class TestProbe:
    def test_unknown_key_returns_none_and_counts_nothing(self):
        coalescer = CheckCoalescer()
        assert coalescer.probe(("k", 0)) is None
        assert coalescer.stats()["requests"] == 0

    def test_memo_hit_returns_fragment(self):
        coalescer = CheckCoalescer()
        role, entry = coalescer.begin(("k", 0))
        coalescer.resolve(entry, '{"x":1}')
        assert coalescer.probe(("k", 0)) == '{"x":1}'
        stats = coalescer.stats()
        assert stats["coalesced_memo"] == 1
        assert stats["computed"] == 1

    def test_revision_change_is_a_new_key(self):
        coalescer = CheckCoalescer()
        role, entry = coalescer.begin(("k", 0))
        coalescer.resolve(entry, '{"x":1}')
        assert coalescer.probe(("k", 1)) is None

    def test_inflight_probe_returns_the_entry(self):
        coalescer = CheckCoalescer()
        _, entry = coalescer.begin(("k", 0))
        assert coalescer.probe(("k", 0)) is entry
        assert coalescer.stats()["coalesced_inflight"] == 1


class TestBeginResolve:
    def test_first_begin_is_leader_second_is_follower(self):
        coalescer = CheckCoalescer()
        role_a, entry_a = coalescer.begin(("k", 0))
        role_b, entry_b = coalescer.begin(("k", 0))
        assert (role_a, role_b) == ("leader", "follower")
        assert entry_a is entry_b

    def test_followers_receive_the_leaders_fragment(self):
        coalescer = CheckCoalescer()
        _, entry = coalescer.begin(("k", 0))
        results = []

        def wait():
            probed = coalescer.probe(("k", 0))
            assert isinstance(probed, InflightEntry)
            results.append(probed.future.result(timeout=10))

        threads = [threading.Thread(target=wait) for _ in range(4)]
        for thread in threads:
            thread.start()
        coalescer.resolve(entry, '{"shared":true}')
        for thread in threads:
            thread.join(timeout=10)
        assert results == ['{"shared":true}'] * 4

    def test_failure_propagates_and_memoizes_nothing(self):
        coalescer = CheckCoalescer()
        _, entry = coalescer.begin(("k", 0))
        coalescer.fail(entry, RuntimeError("boom"))
        try:
            entry.future.result(timeout=1)
            raise AssertionError("expected the leader's failure")
        except RuntimeError:
            pass
        # the failed key is retryable: next begin is a fresh leader
        role, _ = coalescer.begin(("k", 0))
        assert role == "leader"

    def test_resolved_entry_leaves_inflight(self):
        coalescer = CheckCoalescer()
        _, entry = coalescer.begin(("k", 0))
        coalescer.resolve(entry, "{}")
        probed = coalescer.probe(("k", 0))
        assert probed == "{}"  # memo, not the dead in-flight entry


class TestMemoEviction:
    def test_memo_is_lru_bounded(self):
        coalescer = CheckCoalescer(memo_entries=2)
        for index in range(3):
            _, entry = coalescer.begin(("k", index))
            coalescer.resolve(entry, f'{{"v":{index}}}')
        assert coalescer.probe(("k", 0)) is None  # evicted
        assert coalescer.probe(("k", 2)) == '{"v":2}'


class TestStats:
    def test_dedup_ratio_counts_shared_requests(self):
        coalescer = CheckCoalescer()
        assert coalescer.dedup_ratio() == 0.0
        _, entry = coalescer.begin(("k", 0))
        coalescer.resolve(entry, "{}")
        for _ in range(9):
            assert coalescer.probe(("k", 0)) == "{}"
        assert coalescer.dedup_ratio() == 0.9
        stats = coalescer.stats()
        assert stats["requests"] == 10
        assert stats["computed"] == 1
        assert stats["dedup_ratio"] == 0.9
