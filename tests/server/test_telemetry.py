"""The live telemetry surface: the ``metrics`` RPC, the cache-tier
status breakdown, and the async daemon's ``--log-json`` event stream."""

import json
import socket
import threading

import pytest

from repro.engine import IncrementalEngine
from repro.server import AnalysisService, serve_async_tcp
from repro.telemetry import JsonLogger
from repro.telemetry.metrics import PROM_CONTENT_TYPE

ML = (
    "type t = A of int | B\n"
    'external get : t -> int = "ml_get"\n'
)

GOOD_C = """\
value ml_get(value x)
{
    if (Is_long(x)) return Val_int(0);
    return Field(x, 0);
}
"""


@pytest.fixture()
def tree(tmp_path):
    root = tmp_path / "tree"
    root.mkdir()
    (root / "lib.ml").write_text(ML)
    (root / "good.c").write_text(GOOD_C)
    return root


@pytest.fixture()
def service(tree):
    return AnalysisService(IncrementalEngine(tree))


def call(service, method, params=None, request_id=1):
    frame = {"id": request_id, "method": method}
    if params is not None:
        frame["params"] = params
    return service.handle(json.dumps(frame))


class TestMetricsRPC:
    def test_exposition_shape_and_content_type(self, service):
        result = call(service, "metrics")["result"]
        assert result["content_type"] == PROM_CONTENT_TYPE
        text = result["text"]
        for family in (
            "mlffi_cache_hits",
            "mlffi_coalesce_requests",
            "mlffi_coalesce_dedup_ratio",
            "mlffi_server_queue_depth",
            "mlffi_server_shed_total",
            "mlffi_server_uptime_seconds",
            "mlffi_engine_revision",
        ):
            assert f"# TYPE {family} " in text, family

    def test_cache_counters_split_by_tier(self, service, tree):
        call(service, "check")
        # dirty the unit without changing bytes: same key, memory hit
        (tree / "good.c").write_text(GOOD_C)
        call(service, "invalidate", {"paths": ["good.c"]})
        call(service, "check")
        text = call(service, "metrics")["result"]["text"]
        assert 'mlffi_cache_hits{tier="memory"} 1' in text
        assert 'mlffi_cache_misses{tier="memory"} 1' in text

    def test_metrics_is_read_only(self, service):
        revision = service.engine.revision
        call(service, "metrics")
        assert service.engine.revision == revision
        assert service.engine.status()["checks_run"] == 0


class TestStatusBreakdown:
    def test_status_reports_uptime_and_tier_breakdown(self, service):
        call(service, "check")
        status = call(service, "status")["result"]
        assert status["server"]["uptime_seconds"] >= 0
        cache = status["cache"]
        assert set(cache) == {
            "memory",
            "disk",
            "cold_tier",
            "hits",
            "misses",
        }
        assert set(cache["memory"]) >= {"hits", "misses"}
        assert cache["hits"] == cache["memory"]["hits"] + cache["disk"]["hits"]


class LoggedDaemon:
    """serve_async_tcp with a JSON event log, on an ephemeral port."""

    def __init__(self, root, log_path=None):
        self.service = AnalysisService(IncrementalEngine(root))
        self.log = JsonLogger(path=log_path) if log_path else None
        ready = threading.Event()
        bound = []
        self.thread = threading.Thread(
            target=serve_async_tcp,
            args=(self.service,),
            kwargs={
                "port": 0,
                "workers": 2,
                "max_queue": 4,
                "ready": ready,
                "bound": bound,
                "log": self.log,
            },
            daemon=True,
        )
        self.thread.start()
        assert ready.wait(timeout=30), "daemon did not come up"
        self.address = bound[0]

    def call(self, *requests):
        with socket.create_connection(self.address, timeout=30) as conn:
            handle = conn.makefile("rw", encoding="utf-8")
            responses = []
            for request in requests:
                handle.write(json.dumps(request) + "\n")
                handle.flush()
                responses.append(json.loads(handle.readline()))
            return responses

    def stop(self):
        if self.thread.is_alive():
            self.call({"id": "stop", "method": "shutdown"})
        self.thread.join(timeout=10)
        assert not self.thread.is_alive()
        if self.log is not None:
            self.log.close()


class TestCoalesceCounters:
    def test_memo_replays_count_in_the_exposition(self, tree):
        # coalescing lives in the async transport: the first check leads
        # and bumps the revision, the second leads at the settled
        # revision and seeds the memo, the third replays it
        daemon = LoggedDaemon(tree)
        try:
            daemon.call(
                {"id": 1, "method": "check"},
                {"id": 2, "method": "check"},
                {"id": 3, "method": "check"},
            )
            (response,) = daemon.call({"id": 4, "method": "metrics"})
        finally:
            daemon.stop()
        text = response["result"]["text"]
        assert "mlffi_coalesce_requests 3" in text
        assert "mlffi_coalesce_computed 2" in text
        assert "mlffi_coalesce_coalesced_memo 1" in text


class TestJsonEventLog:
    def test_stdio_transport_logs_every_frame(self, tree, tmp_path):
        # --log-json is documented for `serve` without qualification, so
        # the sync stdio transport must log too, not just the asyncio one
        import io

        from repro.server import serve_stdio

        log_path = tmp_path / "events.jsonl"
        service = AnalysisService(IncrementalEngine(tree))
        stdin = io.StringIO(
            '{"id": 1, "method": "check"}\n'
            '{"id": 2, "method": "nonsense"}\n'
            '{"id": 3, "method": "shutdown"}\n'
        )
        with JsonLogger(path=log_path) as log:
            assert serve_stdio(
                service, stdin=stdin, stdout=io.StringIO(), log=log
            ) == 0
        by_id = {
            e["id"]: e
            for e in map(json.loads, log_path.read_text().splitlines())
        }
        assert set(by_id) == {1, 2, 3}
        assert by_id[1]["method"] == "check"
        assert by_id[1]["outcome"] == "ok"
        assert by_id[1]["duration_ms"] >= 0
        assert by_id[2]["outcome"] == "error"
        assert by_id[2]["code"] == -32601


    def test_one_event_per_request_with_outcome_and_duration(
        self, tree, tmp_path
    ):
        log_path = tmp_path / "events.jsonl"
        daemon = LoggedDaemon(tree, log_path)
        try:
            ping, check, metrics = daemon.call(
                {"id": 1, "method": "ping"},
                {"id": 2, "method": "check"},
                {"id": 3, "method": "metrics"},
            )
            assert ping["result"]["pong"] is True
            assert "mlffi_" in metrics["result"]["text"]
        finally:
            daemon.stop()
        events = [
            json.loads(line)
            for line in log_path.read_text().splitlines()
        ]
        by_id = {e["id"]: e for e in events}
        assert {1, 2, 3} <= set(by_id)
        for event in events:
            assert event["event"] == "request"
            assert event["outcome"] == "ok"
            assert event["duration_ms"] >= 0
            assert event["ts"] > 0
        assert by_id[1]["method"] == "ping"
        # the first check at a fresh revision computes: it is the leader
        assert by_id[2]["coalesce"] == "leader"

    def test_memo_and_error_outcomes_recorded(self, tree, tmp_path):
        log_path = tmp_path / "events.jsonl"
        daemon = LoggedDaemon(tree, log_path)
        try:
            daemon.call(
                {"id": 1, "method": "check"},
                {"id": 2, "method": "check"},
                {"id": 3, "method": "check"},
                {"id": 4, "method": "nonsense"},
            )
        finally:
            daemon.stop()
        by_id = {
            e["id"]: e
            for e in map(
                json.loads, log_path.read_text().splitlines()
            )
        }
        # 1 leads and bumps the revision; 2 leads at the settled
        # revision and seeds the memo; 3 replays it
        assert by_id[2]["coalesce"] == "leader"
        assert by_id[3]["coalesce"] == "memo"
        assert by_id[4]["outcome"] == "error"
        assert by_id[4]["code"] == -32601
