"""Transports: the stdio loop, the TCP server, and the real CLI daemon."""

import io
import json
import os
import socket
import subprocess
import sys
import threading
from pathlib import Path

import pytest

from repro.engine import IncrementalEngine
from repro.server import AnalysisService, serve_stdio
from repro.server.daemon import AnalysisTCPServer

ML = 'type t = A of int | B\nexternal get : t -> int = "ml_get"\n'

GOOD_C = """\
value ml_get(value x)
{
    if (Is_long(x)) return Val_int(0);
    return Field(x, 0);
}
"""


@pytest.fixture()
def tree(tmp_path):
    root = tmp_path / "tree"
    root.mkdir()
    (root / "lib.ml").write_text(ML)
    (root / "good.c").write_text(GOOD_C)
    return root


@pytest.fixture()
def service(tree):
    return AnalysisService(IncrementalEngine(tree))


def frames(*requests):
    return "".join(json.dumps(r) + "\n" for r in requests)


class TestStdio:
    def test_loop_serves_until_shutdown(self, service):
        stdin = io.StringIO(
            frames(
                {"id": 1, "method": "ping"},
                {"id": 2, "method": "check"},
                {"id": 3, "method": "shutdown"},
                {"id": 4, "method": "ping"},  # after shutdown: never served
            )
        )
        stdout = io.StringIO()
        assert serve_stdio(service, stdin, stdout) == 0
        responses = [json.loads(line) for line in stdout.getvalue().splitlines()]
        assert [r["id"] for r in responses] == [1, 2, 3]
        assert responses[1]["result"]["tally"]["errors"] == 0

    def test_loop_ends_at_eof_without_shutdown(self, service):
        stdin = io.StringIO(frames({"id": 1, "method": "ping"}))
        stdout = io.StringIO()
        assert serve_stdio(service, stdin, stdout) == 0
        assert not service.shutdown_requested.is_set()

    def test_malformed_lines_answered_not_fatal(self, service):
        stdin = io.StringIO("{nope\n" + frames({"id": 2, "method": "ping"}))
        stdout = io.StringIO()
        serve_stdio(service, stdin, stdout)
        first, second = [
            json.loads(line) for line in stdout.getvalue().splitlines()
        ]
        assert "error" in first
        assert second["result"]["pong"] is True


class TestTCP:
    def _call(self, address, *requests):
        with socket.create_connection(address, timeout=10) as conn:
            handle = conn.makefile("rw", encoding="utf-8")
            responses = []
            for request in requests:
                handle.write(json.dumps(request) + "\n")
                handle.flush()
                responses.append(json.loads(handle.readline()))
            return responses

    def test_serves_concurrent_connections(self, service):
        with AnalysisTCPServer(("127.0.0.1", 0), service) as server:
            thread = threading.Thread(
                target=server.serve_forever, kwargs={"poll_interval": 0.05}
            )
            thread.start()
            try:
                address = server.server_address
                (first,) = self._call(address, {"id": 1, "method": "check"})
                assert first["result"]["tally"]["errors"] == 0
                # a second client sees the warm engine
                (second,) = self._call(address, {"id": 2, "method": "check"})
                assert second["result"]["incremental"]["reused"] == 1
            finally:
                server.shutdown()
                thread.join(timeout=10)

    def test_shutdown_frame_stops_the_server(self, service):
        with AnalysisTCPServer(("127.0.0.1", 0), service) as server:
            thread = threading.Thread(
                target=server.serve_forever, kwargs={"poll_interval": 0.05}
            )
            thread.start()
            (response,) = self._call(
                server.server_address, {"id": 1, "method": "shutdown"}
            )
            assert response["result"] == {"ok": True}
            thread.join(timeout=10)
            assert not thread.is_alive()


class TestRebind:
    def test_restart_can_rebind_the_same_port_immediately(self, service):
        """The rebind regression test referenced by the pinned
        ``allow_reuse_address = True`` in :mod:`repro.server.daemon`:
        a restarted daemon must reclaim its port while the old
        connection lingers in TIME_WAIT, not crash with EADDRINUSE."""
        with AnalysisTCPServer(("127.0.0.1", 0), service) as server:
            assert server.allow_reuse_address is True
            thread = threading.Thread(
                target=server.serve_forever, kwargs={"poll_interval": 0.05}
            )
            thread.start()
            host, port = server.server_address
            # a completed exchange leaves the client socket in TIME_WAIT
            with socket.create_connection((host, port), timeout=10) as conn:
                handle = conn.makefile("rw", encoding="utf-8")
                handle.write(json.dumps({"id": 1, "method": "ping"}) + "\n")
                handle.flush()
                assert json.loads(handle.readline())["result"]["pong"]
            server.shutdown()
            thread.join(timeout=10)

        # without SO_REUSEADDR this raises OSError(EADDRINUSE)
        with AnalysisTCPServer((host, port), service) as reborn:
            assert reborn.server_address[1] == port


class TestCLIDaemon:
    """End-to-end: `mlffi-check serve` as a real child process."""

    @staticmethod
    def _serve(args, payload, cwd):
        repo_root = Path(__file__).resolve().parent.parent.parent
        env = dict(os.environ)
        env["PYTHONPATH"] = (
            str(repo_root / "src") + os.pathsep + env.get("PYTHONPATH", "")
        )
        return subprocess.run(
            [sys.executable, "-m", "repro.cli", "serve", *args],
            input=payload,
            capture_output=True,
            text=True,
            cwd=cwd,
            env=env,
            timeout=120,
        )

    def test_stdio_daemon_incremental_session(self, tree, tmp_path):
        proc = self._serve(
            [str(tree), "--no-cache"],
            frames(
                {"id": 1, "method": "check"},
                {"id": 2, "method": "check"},
                {"id": 3, "method": "shutdown"},
            ),
            cwd=tmp_path,
        )
        assert proc.returncode == 0, proc.stderr
        responses = [json.loads(line) for line in proc.stdout.splitlines()]
        assert len(responses[0]["result"]["incremental"]["ran"]) == 1
        assert responses[1]["result"]["incremental"]["ran"] == []
        assert responses[1]["result"]["incremental"]["reused"] == 1

    def test_missing_root_exits_125(self, tmp_path):
        proc = self._serve([str(tmp_path / "absent")], "", cwd=tmp_path)
        assert proc.returncode == 125
        assert "no such directory" in proc.stderr
