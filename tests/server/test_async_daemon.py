"""The asyncio daemon: coalescing, backpressure, and wire stability."""

import json
import socket
import threading

import pytest

from repro.engine import IncrementalEngine
from repro.server import AnalysisService, serve_async_tcp
from repro.server.protocol import OVERLOADED

ML = 'type t = A of int | B\nexternal get : t -> int = "ml_get"\n'

GOOD_C = """\
value ml_get(value x)
{
    if (Is_long(x)) return Val_int(0);
    return Field(x, 0);
}
"""


@pytest.fixture()
def tree(tmp_path):
    root = tmp_path / "tree"
    root.mkdir()
    (root / "lib.ml").write_text(ML)
    (root / "good.c").write_text(GOOD_C)
    return root


class Daemon:
    """serve_async_tcp on an ephemeral port, in a background thread."""

    def __init__(self, root, *, workers=2, max_queue=4):
        self.service = AnalysisService(IncrementalEngine(root))
        ready = threading.Event()
        bound = []
        self.thread = threading.Thread(
            target=serve_async_tcp,
            args=(self.service,),
            kwargs={
                "port": 0,
                "workers": workers,
                "max_queue": max_queue,
                "ready": ready,
                "bound": bound,
            },
            daemon=True,
        )
        self.thread.start()
        assert ready.wait(timeout=30), "daemon did not come up"
        self.address = bound[0]

    def call_lines(self, *requests):
        """One connection, sequential round-trips; raw response lines."""
        with socket.create_connection(self.address, timeout=30) as conn:
            handle = conn.makefile("rw", encoding="utf-8")
            lines = []
            for request in requests:
                handle.write(json.dumps(request) + "\n")
                handle.flush()
                lines.append(handle.readline())
            return lines

    def call(self, *requests):
        return [json.loads(line) for line in self.call_lines(*requests)]

    def stop(self):
        if self.thread.is_alive():
            self.call({"id": "stop", "method": "shutdown"})
        self.thread.join(timeout=10)
        assert not self.thread.is_alive()


@pytest.fixture()
def daemon(tree):
    handle = Daemon(tree)
    yield handle
    handle.stop()


class TestWire:
    def test_ping_check_status(self, daemon):
        ping, check, status = daemon.call(
            {"id": 1, "method": "ping"},
            {"id": 2, "method": "check"},
            {"id": 3, "method": "status"},
        )
        assert ping["result"]["pong"] is True
        assert check["result"]["tally"]["errors"] == 0
        server = status["result"]["server"]
        assert server["workers"] == 2
        assert server["max_queue"] == 4
        assert server["shed"] == 0
        assert status["result"]["coalescing"]["requests"] >= 1

    def test_invalid_check_params_rejected(self, daemon):
        (response,) = daemon.call(
            {"id": 1, "method": "check", "params": {"units": "nope"}}
        )
        assert response["error"]["code"] == -32602

    def test_malformed_frame_answered_not_fatal(self, daemon):
        with socket.create_connection(daemon.address, timeout=30) as conn:
            handle = conn.makefile("rw", encoding="utf-8")
            handle.write("{nope\n")
            handle.flush()
            first = json.loads(handle.readline())
            handle.write(json.dumps({"id": 2, "method": "ping"}) + "\n")
            handle.flush()
            second = json.loads(handle.readline())
        assert "error" in first
        assert second["result"]["pong"] is True

    def test_shutdown_frame_stops_the_daemon(self, tree):
        handle = Daemon(tree)
        (response,) = handle.call({"id": 1, "method": "shutdown"})
        assert response["result"] == {"ok": True}
        handle.thread.join(timeout=10)
        assert not handle.thread.is_alive()


class TestCoalescing:
    def test_concurrent_identical_checks_compute_once(self, daemon):
        """Two identical in-flight checks elect one leader; the follower
        shares its computation — the tentpole's core contract.  The
        leader is wedged on an event until the follower has provably
        coalesced, so the overlap is deterministic, not a race."""
        engine = daemon.service.engine
        coalescer = daemon.service.coalescer
        original = engine.check
        started = threading.Event()
        release = threading.Event()

        def wedged_check(*args, **kwargs):
            started.set()
            assert release.wait(timeout=30)
            return original(*args, **kwargs)

        engine.check = wedged_check
        lines = []
        lock = threading.Lock()

        def fire():
            line = daemon.call_lines({"id": 9, "method": "check"})[0]
            with lock:
                lines.append(line)

        leader = threading.Thread(target=fire)
        leader.start()
        assert started.wait(timeout=30), "leader never computed"
        follower = threading.Thread(target=fire)
        follower.start()
        try:
            deadline = threading.Event()
            for _ in range(200):
                if coalescer.coalesced_inflight >= 1:
                    break
                deadline.wait(0.05)
        finally:
            release.set()
        leader.join(timeout=60)
        follower.join(timeout=60)
        engine.check = original

        assert len(lines) == 2
        # identical ids -> byte-identical responses (the splice contract)
        assert lines[0] == lines[1]
        assert json.loads(lines[0])["result"]["tally"]["errors"] == 0
        assert coalescer.computed == 1
        assert coalescer.coalesced_inflight == 1

    def test_memo_replay_is_byte_identical_across_connections(self, daemon):
        # reach steady state first: the cold check re-analyzes (and so
        # bumps the engine revision); the next check computes the
        # steady-state response that the memo then replays verbatim
        daemon.call({"id": "cold", "method": "check"})
        daemon.call({"id": "steady", "method": "check"})
        (first,) = daemon.call_lines({"id": 5, "method": "check"})
        (second,) = daemon.call_lines({"id": 5, "method": "check"})
        assert first == second
        stats = daemon.service.coalescer.stats()
        assert stats["coalesced_memo"] >= 2

    def test_invalidate_busts_the_memo(self, daemon, tree):
        (first,) = daemon.call({"id": 1, "method": "check"})
        assert first["result"]["incremental"]["ran"]
        edited = tree / "good.c"
        edited.write_text(edited.read_text() + "\n/* edit */\n")
        daemon.call(
            {
                "id": 2,
                "method": "invalidate",
                "params": {"paths": [str(edited)]},
            }
        )
        (after,) = daemon.call({"id": 3, "method": "check"})
        # a memo replay would report ran == []; the edit must re-run
        assert len(after["result"]["incremental"]["ran"]) == 1


class TestBackpressure:
    def test_saturated_daemon_sheds_with_overloaded_code(self, tree):
        """With one worker, no queue, and the only worker wedged, every
        further computation is shed with the distinct wire error."""
        handle = Daemon(tree, workers=1, max_queue=0)
        try:
            handle.call({"id": "warm", "method": "check"})
            engine = handle.service.engine
            original = engine.check
            started = threading.Event()
            release = threading.Event()

            def wedged_check(*args, **kwargs):
                started.set()
                assert release.wait(timeout=30)
                return original(*args, **kwargs)

            engine.check = wedged_check
            leader_lines = []

            def lead():
                leader_lines.extend(
                    handle.call(
                        {"id": "slow", "method": "check", "params": {"tag": 0}}
                    )
                )

            leader = threading.Thread(target=lead)
            leader.start()
            try:
                assert started.wait(timeout=30), "leader never computed"
                sheds = handle.call(
                    *[
                        {"id": i, "method": "check", "params": {"tag": i + 1}}
                        for i in range(4)
                    ]
                )
            finally:
                release.set()
                leader.join(timeout=30)
            engine.check = original

            for response in sheds:
                error = response["error"]
                assert error["code"] == OVERLOADED == -32005
                assert "overloaded" in error["message"]
                assert "queue_depth" in error["data"]
                assert error["data"]["workers"] == 1
            assert leader_lines and "result" in leader_lines[0]
            # shed requests never strand followers: the same params
            # compute fine once the daemon has capacity again
            (retry,) = handle.call(
                {"id": "retry", "method": "check", "params": {"tag": 1}}
            )
            assert "result" in retry
            status = handle.call({"id": "s", "method": "status"})[0]
            assert status["result"]["server"]["shed"] >= 4
        finally:
            handle.stop()
