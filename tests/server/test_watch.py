"""Polling watcher: snapshot diffs driving incremental re-checks."""

import pytest

from repro.engine import IncrementalEngine
from repro.server import Watcher

ML = (
    "type t = A of int | B\n"
    'external get : t -> int = "ml_get"\n'
    'external bad : int -> int = "ml_bad"\n'
)

GOOD_C = """\
value ml_get(value x)
{
    if (Is_long(x)) return Val_int(0);
    return Field(x, 0);
}
"""

BAD_C = "value ml_bad(value x) { return Val_int(x); }\n"


@pytest.fixture()
def tree(tmp_path):
    root = tmp_path / "tree"
    root.mkdir()
    (root / "lib.ml").write_text(ML)
    (root / "good.c").write_text(GOOD_C)
    (root / "bad.c").write_text(BAD_C)
    return root


@pytest.fixture()
def engine(tree):
    engine = IncrementalEngine(tree)
    engine.check()  # watcher sessions start from a checked corpus
    return engine


def _bump_mtime(path):
    """Force an observable stat change even on coarse-mtime filesystems."""
    import os
    import time

    later = time.time() + 10
    os.utime(path, (later, later))


class TestPoll:
    def test_quiet_tree_yields_no_event(self, engine):
        assert Watcher(engine).poll() is None

    def test_edit_triggers_targeted_recheck(self, engine, tree):
        watcher = Watcher(engine)
        (tree / "good.c").write_text(GOOD_C + "\n/* touched */\n")
        _bump_mtime(tree / "good.c")
        event = watcher.poll()
        assert event is not None
        assert [p.rsplit("/", 1)[-1] for p in event.changed] == ["good.c"]
        assert [p.rsplit("/", 1)[-1] for p in event.report.ran] == ["good.c"]
        assert event.report.reused == 1

    def test_size_preserving_edit_detected_via_mtime(self, engine, tree):
        watcher = Watcher(engine)
        text = (tree / "good.c").read_text()
        (tree / "good.c").write_text(text[:-2] + "x\n")  # same byte count
        _bump_mtime(tree / "good.c")
        event = watcher.poll()
        assert event is not None

    def test_new_and_deleted_files_observed(self, engine, tree):
        watcher = Watcher(engine)
        (tree / "bad.c").unlink()
        (tree / "new.c").write_text("int f(void) { return 0; }\n")
        event = watcher.poll()
        changed = {p.rsplit("/", 1)[-1] for p in event.changed}
        assert changed == {"bad.c", "new.c"}
        names = {r.name.rsplit("/", 1)[-1] for r in event.report.results}
        assert names == {"good.c", "new.c"}

    def test_host_edit_rechecks_everything(self, engine, tree):
        watcher = Watcher(engine)
        (tree / "lib.ml").write_text(ML + "type u = C\n")
        _bump_mtime(tree / "lib.ml")
        event = watcher.poll()
        assert len(event.report.ran) == 2

    def test_irrelevant_files_ignored(self, engine, tree):
        watcher = Watcher(engine)
        (tree / "notes.txt").write_text("not a source\n")
        assert watcher.poll() is None


class TestRun:
    def test_run_polls_and_reports_events(self, engine, tree):
        watcher = Watcher(engine, interval=0.01)
        events = []
        slept = []

        def fake_sleep(seconds):
            slept.append(seconds)
            if len(slept) == 2:  # edit between the first and second poll
                (tree / "good.c").write_text(GOOD_C + "\n")
                _bump_mtime(tree / "good.c")

        polls = watcher.run(
            max_polls=3, on_event=events.append, sleep=fake_sleep
        )
        assert polls == 3
        assert len(events) == 1
        assert slept == [0.01] * 3
