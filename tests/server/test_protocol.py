"""Wire-format semantics: framing, stability, and error mapping."""

import json

import pytest

from repro.server import protocol


class TestDecode:
    def test_roundtrip_minimal_request(self):
        request = protocol.decode_line('{"id": 1, "method": "ping"}')
        assert request.id == 1
        assert request.method == "ping"
        assert request.params == {}

    def test_params_passed_through(self):
        request = protocol.decode_line(
            '{"id": "a", "method": "check", "params": {"units": ["x.c"]}}'
        )
        assert request.params == {"units": ["x.c"]}

    def test_invalid_json_is_parse_error(self):
        with pytest.raises(protocol.ProtocolError) as err:
            protocol.decode_line("{nope")
        assert err.value.code == protocol.PARSE_ERROR

    @pytest.mark.parametrize(
        "line",
        ["[1,2]", '"just a string"', "42"],
    )
    def test_non_object_is_invalid_request(self, line):
        with pytest.raises(protocol.ProtocolError) as err:
            protocol.decode_line(line)
        assert err.value.code == protocol.INVALID_REQUEST

    def test_missing_method_is_invalid_request(self):
        with pytest.raises(protocol.ProtocolError) as err:
            protocol.decode_line('{"id": 1}')
        assert err.value.code == protocol.INVALID_REQUEST

    def test_non_object_params_is_invalid_params(self):
        with pytest.raises(protocol.ProtocolError) as err:
            protocol.decode_line('{"id": 1, "method": "check", "params": [1]}')
        assert err.value.code == protocol.INVALID_PARAMS


class TestEncode:
    def test_one_line_per_frame(self):
        frame = protocol.encode({"id": 1, "result": {"ok": True}})
        assert frame.endswith("\n")
        assert "\n" not in frame[:-1]

    def test_serialization_is_stable(self):
        """Same payload, same bytes: key order must never leak through."""
        first = protocol.encode({"b": 1, "a": {"d": 2, "c": 3}})
        second = protocol.encode({"a": {"c": 3, "d": 2}, "b": 1})
        assert first == second
        assert first == '{"a":{"c":3,"d":2},"b":1}\n'

    def test_responses_carry_protocol_version(self):
        ok = protocol.result_response(7, {"x": 1})
        bad = protocol.error_response(7, protocol.INTERNAL_ERROR, "boom")
        assert ok["protocol"] == protocol.PROTOCOL_VERSION
        assert bad["protocol"] == protocol.PROTOCOL_VERSION
        assert ok["id"] == bad["id"] == 7

    def test_error_data_is_optional(self):
        plain = protocol.error_response(1, -1, "m")
        detailed = protocol.error_response(1, -1, "m", {"k": "v"})
        assert "data" not in plain["error"]
        assert detailed["error"]["data"] == {"k": "v"}

    def test_encoded_frames_parse_back(self):
        payload = protocol.result_response(3, {"tally": {"errors": 0}})
        assert json.loads(protocol.encode(payload)) == payload


class TestSplice:
    def test_splice_is_byte_identical_to_full_encode(self):
        """The coalescing fan-out contract: splicing a pre-encoded result
        fragment around a request id must produce exactly the bytes
        ``encode(result_response(...))`` would."""
        result = {
            "tally": {"errors": 1, "warnings": 0},
            "units": [{"name": "x.c", "diagnostics": []}],
        }
        fragment = protocol.encode_fragment(result)
        for request_id in (1, 0, -3, "abc", None, ["compound", 2]):
            spliced = protocol.splice_result(request_id, fragment)
            direct = protocol.encode(
                protocol.result_response(request_id, result)
            )
            assert spliced == direct

    def test_fragment_matches_encode_inner_bytes(self):
        payload = {"b": 1, "a": {"d": 2, "c": 3}}
        assert protocol.encode_fragment(payload) + "\n" == protocol.encode(
            payload
        )

    def test_overloaded_code_is_distinct_and_server_range(self):
        codes = {
            protocol.PARSE_ERROR,
            protocol.INVALID_REQUEST,
            protocol.METHOD_NOT_FOUND,
            protocol.INVALID_PARAMS,
            protocol.INTERNAL_ERROR,
        }
        assert protocol.OVERLOADED == -32005
        assert protocol.OVERLOADED not in codes
        # JSON-RPC reserves -32000..-32099 for implementation-defined
        # server errors; OVERLOADED must stay inside it
        assert -32099 <= protocol.OVERLOADED <= -32000
