"""Wire-format semantics: framing, stability, and error mapping."""

import json

import pytest

from repro.server import protocol


class TestDecode:
    def test_roundtrip_minimal_request(self):
        request = protocol.decode_line('{"id": 1, "method": "ping"}')
        assert request.id == 1
        assert request.method == "ping"
        assert request.params == {}

    def test_params_passed_through(self):
        request = protocol.decode_line(
            '{"id": "a", "method": "check", "params": {"units": ["x.c"]}}'
        )
        assert request.params == {"units": ["x.c"]}

    def test_invalid_json_is_parse_error(self):
        with pytest.raises(protocol.ProtocolError) as err:
            protocol.decode_line("{nope")
        assert err.value.code == protocol.PARSE_ERROR

    @pytest.mark.parametrize(
        "line",
        ["[1,2]", '"just a string"', "42"],
    )
    def test_non_object_is_invalid_request(self, line):
        with pytest.raises(protocol.ProtocolError) as err:
            protocol.decode_line(line)
        assert err.value.code == protocol.INVALID_REQUEST

    def test_missing_method_is_invalid_request(self):
        with pytest.raises(protocol.ProtocolError) as err:
            protocol.decode_line('{"id": 1}')
        assert err.value.code == protocol.INVALID_REQUEST

    def test_non_object_params_is_invalid_params(self):
        with pytest.raises(protocol.ProtocolError) as err:
            protocol.decode_line('{"id": 1, "method": "check", "params": [1]}')
        assert err.value.code == protocol.INVALID_PARAMS


class TestEncode:
    def test_one_line_per_frame(self):
        frame = protocol.encode({"id": 1, "result": {"ok": True}})
        assert frame.endswith("\n")
        assert "\n" not in frame[:-1]

    def test_serialization_is_stable(self):
        """Same payload, same bytes: key order must never leak through."""
        first = protocol.encode({"b": 1, "a": {"d": 2, "c": 3}})
        second = protocol.encode({"a": {"c": 3, "d": 2}, "b": 1})
        assert first == second
        assert first == '{"a":{"c":3,"d":2},"b":1}\n'

    def test_responses_carry_protocol_version(self):
        ok = protocol.result_response(7, {"x": 1})
        bad = protocol.error_response(7, protocol.INTERNAL_ERROR, "boom")
        assert ok["protocol"] == protocol.PROTOCOL_VERSION
        assert bad["protocol"] == protocol.PROTOCOL_VERSION
        assert ok["id"] == bad["id"] == 7

    def test_error_data_is_optional(self):
        plain = protocol.error_response(1, -1, "m")
        detailed = protocol.error_response(1, -1, "m", {"k": "v"})
        assert "data" not in plain["error"]
        assert detailed["error"]["data"] == {"k": "v"}

    def test_encoded_frames_parse_back(self):
        payload = protocol.result_response(3, {"tally": {"errors": 0}})
        assert json.loads(protocol.encode(payload)) == payload
