"""Tests for the central type repository and Γ_I construction (phase one)."""

from repro.core.checker import InitialEnv
from repro.core.srctypes import (
    SConstrApp,
    SInt,
    SOpaque,
    SSum,
    STuple,
    SVar,
)
from repro.core.types import CFun, CValue, GCVar, MTCustom, MTRepr, NOGC, PsiConst
from repro.ocamlfront.repository import (
    TypeRepository,
    build_initial_env,
    substitute,
)


class TestSubstitution:
    def test_var_replaced(self):
        assert substitute(SVar("a"), {"a": SInt()}) == SInt()

    def test_unbound_var_kept(self):
        assert substitute(SVar("b"), {"a": SInt()}) == SVar("b")

    def test_inside_tuple(self):
        result = substitute(STuple((SVar("a"), SVar("a"))), {"a": SInt()})
        assert result == STuple((SInt(), SInt()))

    def test_inside_constr_app(self):
        result = substitute(
            SConstrApp("list", (SVar("a"),)), {"a": SInt()}
        )
        assert result == SConstrApp("list", (SInt(),))


class TestRepository:
    def test_resolve_simple(self):
        repo = TypeRepository()
        repo.add_text("type t = A | B of int")
        body = repo.resolve("t", ())
        assert isinstance(body, SSum)

    def test_resolve_unknown_is_none(self):
        assert TypeRepository().resolve("nope", ()) is None

    def test_resolve_opaque(self):
        repo = TypeRepository()
        repo.add_text("type window")
        assert isinstance(repo.resolve("window", ()), SOpaque)

    def test_resolve_parameterized(self):
        repo = TypeRepository()
        repo.add_text("type 'a pair = 'a * 'a")
        body = repo.resolve("pair", (SInt(),))
        assert body == STuple((SInt(), SInt()))

    def test_arity_mismatch_becomes_opaque(self):
        repo = TypeRepository()
        repo.add_text("type 'a pair = 'a * 'a")
        assert isinstance(repo.resolve("pair", ()), SOpaque)

    def test_concrete_body_wins_over_opaque(self):
        repo = TypeRepository()
        repo.add_text("type t = A | B", "impl.ml")
        repo.add_text("type t", "intf.mli")
        assert isinstance(repo.resolve("t", ()), SSum)

    def test_later_unit_overrides(self):
        repo = TypeRepository()
        repo.add_text("type t = int")
        repo.add_text("type t = bool")
        body = repo.resolve("t", ())
        assert body is not None and body != SInt()

    def test_stdlib_seeded(self):
        repo = TypeRepository.with_stdlib()
        assert repo.resolve("Unix.file_descr", ()) == SInt()
        assert isinstance(repo.resolve("in_channel", ()), SOpaque)


class TestInitialEnv:
    def test_external_translated(self):
        repo = TypeRepository()
        repo.add_text(
            'type t = A of int | B\nexternal get : t -> int = "ml_get"'
        )
        env = build_initial_env(repo)
        fn = env.functions["ml_get"]
        assert isinstance(fn, CFun)
        assert len(fn.params) == 1
        param = fn.params[0]
        assert isinstance(param, CValue)
        assert isinstance(param.mt, MTRepr)
        assert param.mt.psi == PsiConst(1)

    def test_effect_is_variable_by_default(self):
        repo = TypeRepository()
        repo.add_text('external f : int -> int = "ml_f"')
        env = build_initial_env(repo)
        assert isinstance(env.functions["ml_f"].effect, GCVar)

    def test_noalloc_forces_nogc(self):
        repo = TypeRepository()
        repo.add_text('external f : int -> int = "ml_f" "noalloc"')
        env = build_initial_env(repo)
        assert env.functions["ml_f"].effect is NOGC

    def test_poly_params_recorded(self):
        repo = TypeRepository()
        repo.add_text("external seek : 'a -> int -> unit = \"ml_seek\"")
        env = build_initial_env(repo)
        assert len(env.poly_params) == 1
        assert env.poly_params[0].c_name == "ml_seek"
        assert env.poly_params[0].param_index == 0

    def test_poly_variant_users_recorded(self):
        repo = TypeRepository()
        repo.add_text(
            "external f : [ `A | `B ] -> unit = \"ml_f\""
        )
        env = build_initial_env(repo)
        assert "ml_f" in env.poly_variant_users

    def test_opaque_types_shared_across_externals(self):
        repo = TypeRepository()
        repo.add_text(
            """
            type window
            external a : window -> unit = "ml_a"
            external b : window -> unit = "ml_b"
            """
        )
        env = build_initial_env(repo)
        mt_a = env.functions["ml_a"].params[0].mt
        mt_b = env.functions["ml_b"].params[0].mt
        assert isinstance(mt_a, MTCustom)
        assert mt_a is mt_b  # the same hidden representation

    def test_bytecode_and_native_stub_types(self):
        from repro.core.types import CPtr

        repo = TypeRepository()
        repo.add_text(
            'external f : int -> int -> int -> int -> int -> int -> int'
            ' = "ml_b" "ml_n"'
        )
        env = build_initial_env(repo)
        native = env.functions["ml_n"]
        assert len(native.params) == 6
        stub = env.functions["ml_b"]
        # uniform signature: (value *argv, int argn)
        assert len(stub.params) == 2
        assert isinstance(stub.params[0], CPtr)
        # same effect: solving one solves the other
        assert stub.effect is native.effect

    def test_merge(self):
        left = InitialEnv(functions={"a": None})  # type: ignore[dict-item]
        right = InitialEnv(functions={"b": None})  # type: ignore[dict-item]
        merged = left.merge(right)
        assert set(merged.functions) == {"a", "b"}
