"""Tests for the OCaml tokenizer."""

import pytest

from repro.ocamlfront.lexer import MLLexError, MLTokKind, tokenize_ml
from repro.source import SourceFile


def toks(text):
    return tokenize_ml(SourceFile("t.ml", text))


def texts(text):
    return [t.text for t in toks(text) if t.kind is not MLTokKind.EOF]


class TestBasics:
    def test_identifiers(self):
        tokens = toks("type foo Bar")
        assert tokens[0].kind is MLTokKind.LIDENT
        assert tokens[1].kind is MLTokKind.LIDENT
        assert tokens[2].kind is MLTokKind.UIDENT

    def test_dotted_path_merged(self):
        tokens = toks("Unix.file_descr")
        assert tokens[0].text == "Unix.file_descr"
        assert tokens[0].kind is MLTokKind.LIDENT

    def test_type_variable(self):
        tokens = toks("'a 'key")
        assert tokens[0].kind is MLTokKind.TYVAR
        assert tokens[0].text == "a"
        assert tokens[1].text == "key"

    def test_char_literal_not_tyvar(self):
        tokens = toks("'x'")
        assert tokens[0].kind is MLTokKind.INT
        assert tokens[0].text == str(ord("x"))

    def test_string(self):
        tokens = toks('"ml_stub_name"')
        assert tokens[0].kind is MLTokKind.STRING
        assert tokens[0].text == "ml_stub_name"

    def test_string_with_escape(self):
        assert toks('"a\\"b"')[0].text == 'a"b'

    def test_integers(self):
        assert texts("42 1_000") == ["42", "1000"]

    def test_arrow_and_star(self):
        assert texts("int -> int * int") == ["int", "->", "int", "*", "int"]

    def test_polymorphic_variant_backtick(self):
        tokens = toks("`On")
        assert tokens[0].is_punct("`")
        assert tokens[1].kind is MLTokKind.UIDENT


class TestComments:
    def test_simple_comment(self):
        assert texts("(* hi *) type") == ["type"]

    def test_nested_comment(self):
        assert texts("(* a (* b *) c *) type") == ["type"]

    def test_unterminated_comment(self):
        with pytest.raises(MLLexError):
            toks("(* never")

    def test_string_inside_comment_ignored(self):
        # our lexer treats comment content as opaque text
        assert texts('(* "quoted" *) x') == ["x"]


class TestErrors:
    def test_unterminated_string(self):
        with pytest.raises(MLLexError):
            toks('"open')
