"""Tests for the OCaml declaration parser."""

import pytest

from repro.core.srctypes import (
    SArrow,
    SBool,
    SConstrApp,
    SInt,
    SPolyVariant,
    SRecord,
    SSum,
    SString,
    STuple,
    SUnit,
    SVar,
)
from repro.ocamlfront.parser import MLParseError, parse_ml_text, parse_type_text


class TestTypeExpressions:
    def test_builtins(self):
        assert parse_type_text("int") == SInt()
        assert parse_type_text("unit") == SUnit()
        assert parse_type_text("bool") == SBool()
        assert parse_type_text("string") == SString()

    def test_arrow(self):
        result = parse_type_text("int -> unit")
        assert result == SArrow(SInt(), SUnit())

    def test_arrow_right_associative(self):
        result = parse_type_text("int -> bool -> unit")
        assert isinstance(result.result, SArrow)

    def test_tuple(self):
        result = parse_type_text("int * bool")
        assert result == STuple((SInt(), SBool()))

    def test_tuple_binds_tighter_than_arrow(self):
        result = parse_type_text("int * bool -> unit")
        assert isinstance(result, SArrow)
        assert isinstance(result.param, STuple)

    def test_postfix_application(self):
        result = parse_type_text("int list")
        assert result == SConstrApp("list", (SInt(),))

    def test_stacked_postfix(self):
        result = parse_type_text("int list array")
        assert result == SConstrApp("array", (SConstrApp("list", (SInt(),)),))

    def test_type_variable(self):
        assert parse_type_text("'a") == SVar("a")

    def test_parenthesized_multi_args(self):
        result = parse_type_text("(int, string) Hashtbl.t")
        assert result == SConstrApp("Hashtbl.t", (SInt(), SString()))

    def test_dotted_path(self):
        assert parse_type_text("Unix.file_descr") == SConstrApp("Unix.file_descr")

    def test_poly_variant(self):
        result = parse_type_text("[ `A | `B of int ]")
        assert isinstance(result, SPolyVariant)
        assert len(result.tags) == 2
        assert result.tags[1].args == (SInt(),)

    def test_labelled_argument_skipped(self):
        result = parse_type_text("~x:int -> unit")
        assert result == SArrow(SInt(), SUnit())

    def test_optional_argument_skipped(self):
        result = parse_type_text("?x:int -> unit")
        assert result == SArrow(SInt(), SUnit())


class TestTypeDeclarations:
    def test_simple_variant(self):
        unit = parse_ml_text("type t = A of int | B | C of int * int | D")
        (decl,) = unit.types
        assert decl.name == "t"
        body = decl.body
        assert isinstance(body, SSum)
        assert [c.name for c in body.constructors] == ["A", "B", "C", "D"]
        assert body.constructors[2].args == (SInt(), SInt())

    def test_leading_bar(self):
        unit = parse_ml_text("type t = | A | B")
        assert len(unit.types[0].body.constructors) == 2

    def test_constructor_of_tuple_type(self):
        # `C of (int * int)` takes ONE tuple argument... but unparenthesized
        # `C of int * int` takes two.  Both shapes parse; we model the
        # unparenthesized form as multiple fields like the compiler does.
        unit = parse_ml_text("type t = C of int * bool")
        assert unit.types[0].body.constructors[0].args == (SInt(), SBool())

    def test_record(self):
        unit = parse_ml_text("type p = { x : int; mutable y : int }")
        body = unit.types[0].body
        assert isinstance(body, SRecord)
        assert [f.name for f in body.fields] == ["x", "y"]
        assert body.fields[1].mutable

    def test_alias(self):
        unit = parse_ml_text("type fd = int")
        assert unit.types[0].body == SInt()

    def test_opaque(self):
        unit = parse_ml_text("type window")
        assert unit.types[0].is_opaque

    def test_parameterized(self):
        unit = parse_ml_text("type 'a pair = 'a * 'a")
        decl = unit.types[0]
        assert decl.params == ("a",)
        assert decl.body == STuple((SVar("a"), SVar("a")))

    def test_two_parameters(self):
        unit = parse_ml_text("type ('k, 'v) entry = 'k * 'v")
        assert unit.types[0].params == ("k", "v")

    def test_mutually_recursive_and(self):
        unit = parse_ml_text("type a = A of b and b = B of a")
        assert [d.name for d in unit.types] == ["a", "b"]

    def test_private_type(self):
        unit = parse_ml_text("type t = private int")
        assert unit.types[0].body == SInt()


class TestExternals:
    def test_basic(self):
        unit = parse_ml_text('external f : int -> unit = "ml_f"')
        (ext,) = unit.externals
        assert ext.ml_name == "f"
        assert ext.c_name == "ml_f"
        assert ext.mltype == SArrow(SInt(), SUnit())

    def test_noalloc_attribute(self):
        unit = parse_ml_text('external f : int -> int = "ml_f" "noalloc"')
        assert unit.externals[0].noalloc

    def test_bytecode_native_pair(self):
        unit = parse_ml_text(
            'external f : int -> int -> int -> int -> int -> int -> int'
            ' = "ml_f_bytecode" "ml_f_native"'
        )
        ext = unit.externals[0]
        assert ext.c_name == "ml_f_bytecode"
        assert ext.c_name_bytecode == "ml_f_native"

    def test_missing_c_name_fails(self):
        with pytest.raises(MLParseError):
            parse_ml_text("external f : int -> unit = 3")


class TestSkipping:
    def test_let_bindings_skipped(self):
        unit = parse_ml_text(
            """
            let helper x = x + 1
            type t = A | B
            let other = function A -> 0 | B -> 1
            external f : t -> int = "ml_f"
            """
        )
        assert len(unit.types) == 1
        assert len(unit.externals) == 1

    def test_open_and_module_skipped(self):
        unit = parse_ml_text(
            """
            open Printf
            module M = struct let x = 1 end
            type t = int
            """
        )
        assert unit.types[0].name == "t"

    def test_nested_parens_in_skipped_code(self):
        unit = parse_ml_text(
            """
            let f x = (match x with (a, b) -> [a; b])
            external g : int -> int = "ml_g"
            """
        )
        assert len(unit.externals) == 1

    def test_comments_stripped(self):
        unit = parse_ml_text(
            """
            (* a comment (* nested! *) still comment *)
            type t = A (* trailing *) | B
            """
        )
        assert len(unit.types[0].body.constructors) == 2

    def test_exception_skipped(self):
        unit = parse_ml_text(
            """
            exception Failure of string
            type t = int
            """
        )
        assert unit.types[0].name == "t"
