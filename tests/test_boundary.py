"""The dialect registry and the BoundaryDialect contract."""

import pytest

from repro.boundary import (
    BoundaryDialect,
    DialectSpec,
    available_dialects,
    get_dialect,
    get_spec,
    register_dialect,
    spec_of,
)


class TestRegistry:
    def test_builtin_dialects_available(self):
        assert set(available_dialects()) >= {"ocaml", "pyext", "jni", "rust"}

    def test_get_dialect_resolves(self):
        assert get_dialect("ocaml").name == "ocaml"
        assert get_dialect("pyext").name == "pyext"
        assert get_dialect("jni").name == "jni"
        assert get_dialect("rust").name == "rust"

    def test_unknown_dialect_raises_with_known_names(self):
        with pytest.raises(ValueError, match="rustffi.*known.*ocaml"):
            get_dialect("rustffi")

    def test_dialects_satisfy_the_protocol(self):
        for name in ("ocaml", "pyext", "jni", "rust"):
            assert isinstance(get_dialect(name), BoundaryDialect)

    def test_third_dialect_registration(self):
        class Stub:
            name = "stub-test-dialect"
            host_suffixes = ()
            unit_suffixes = (".c",)

            def builtin_entries(self):
                return {}

            def polymorphic_builtins(self):
                return frozenset()

            def global_entries(self):
                return {}

            def alloc_result_tags(self):
                return {}

            def initial_env(self, request):
                raise NotImplementedError

            def analyze(self, request):
                raise NotImplementedError

            def unit_dependencies(self, request):
                return ()

        try:
            register_dialect(Stub())
            assert "stub-test-dialect" in available_dialects()
            assert isinstance(get_dialect("stub-test-dialect"), BoundaryDialect)
        finally:
            from repro import boundary

            boundary._REGISTRY.pop("stub-test-dialect", None)


class TestSuffixMaps:
    def test_ocaml_suffixes(self):
        dialect = get_dialect("ocaml")
        assert dialect.host_suffixes == (".ml", ".mli")
        assert ".c" in dialect.unit_suffixes

    def test_pyext_has_no_host_side(self):
        dialect = get_dialect("pyext")
        assert dialect.host_suffixes == ()
        assert ".c" in dialect.unit_suffixes

    def test_jni_has_no_host_side(self):
        dialect = get_dialect("jni")
        assert dialect.host_suffixes == ()
        assert ".c" in dialect.unit_suffixes

    def test_rust_reads_rs_hosts(self):
        dialect = get_dialect("rust")
        assert dialect.host_suffixes == (".rs",)
        assert ".c" in dialect.unit_suffixes


class TestDialectSpec:
    """The declarative capability surface that replaced the scattered
    getattr probes: every registered dialect carries a spec, and
    ``spec_of`` normalizes specs, registered dialects, and dialect-like
    objects to one shape."""

    def test_every_builtin_dialect_has_a_spec(self):
        for name in ("ocaml", "pyext", "jni", "rust"):
            spec = get_spec(name)
            assert spec.name == name
            assert spec.corpus_unit_suffixes == (".c",)
            assert spec.example_dir.startswith("examples/")
            assert spec.bench_module.startswith("benchmarks/")
            assert spec.rule_pack == name

    def test_spec_of_normalizes_all_three_shapes(self):
        spec = get_spec("rust")
        assert spec_of(spec) is spec
        assert spec_of("rust") is spec
        assert spec_of(get_dialect("rust")) is spec

    def test_spec_of_derives_for_unregistered_dialect_likes(self):
        class Bare:
            name = "bare"
            host_suffixes = (".x",)
            unit_suffixes = (".c", ".h")

        derived = spec_of(Bare())
        assert derived.name == "bare"
        assert derived.host_suffixes == (".x",)
        # headers drop out of the corpus-unit scan by derivation
        assert derived.corpus_unit_suffixes == (".c",)

    def test_spec_defaults_rule_pack_to_the_name(self):
        spec = DialectSpec(
            name="probe", host_suffixes=(), unit_suffixes=(".c",)
        )
        assert spec.rule_pack == "probe"


class TestSeedIsolation:
    """The PR 5 contract: seed tables are memoized per process, and that
    sharing is *safe* — builtins are polymorphic (instantiated afresh at
    each call site) and variable bindings live in each run's Unifier, so
    back-to-back analyses must not influence each other."""

    def test_builtin_entries_are_memoized(self):
        for name in ("ocaml", "pyext", "jni"):
            dialect = get_dialect(name)
            first = dialect.builtin_entries()
            second = dialect.builtin_entries()
            probe = next(iter(first))
            assert first[probe] is second[probe]

    def test_every_builtin_is_polymorphic(self):
        # memoized entries are only sound while every builtin is
        # instantiated per call site; a non-polymorphic builtin would be
        # unified in place and couple call sites within one run
        for name in ("ocaml", "pyext", "jni"):
            dialect = get_dialect(name)
            assert set(dialect.builtin_entries()) <= set(
                dialect.polymorphic_builtins()
            )

    def test_shared_seeds_do_not_leak_between_runs(self):
        from repro.api import Project

        ml = "type t = A of int | B\nexternal f : t -> int = 'ml_f'".replace(
            "'", '"'
        )
        c = (
            "value ml_f(value x)\n"
            "{\n"
            "    if (Is_long(x)) return Val_int(0);\n"
            "    return Val_int(Int_val(Field(x, 0)));\n"
            "}\n"
        )

        def run():
            report = Project().add_ocaml(ml).add_c(c).analyze()
            return (
                [d.render() for d in report.diagnostics],
                dict(report.signatures),
            )

        assert run() == run()


class TestCacheKeyIsolation:
    """Four dialects coexist without cache-key collisions: the same C
    text must never replay another dialect's cached analysis."""

    def test_same_source_four_dialects_four_keys(self):
        from repro.engine.jobs import CheckRequest
        from repro.source import SourceFile

        source = SourceFile("unit.c", "int f(void) { return 0; }\n")
        keys = {
            dialect: CheckRequest(
                name="unit.c", c_sources=(source,), dialect=dialect
            ).cache_key()
            for dialect in ("ocaml", "pyext", "jni", "rust")
        }
        assert len(set(keys.values())) == 4

    def test_rust_host_side_participates_in_the_key(self):
        from repro.engine.jobs import CheckRequest
        from repro.source import SourceFile

        unit = SourceFile("unit.c", "int f(void) { return 0; }\n")
        without = CheckRequest(
            name="unit.c", c_sources=(unit,), dialect="rust"
        ).cache_key()
        with_host = CheckRequest(
            name="unit.c",
            c_sources=(unit,),
            ocaml_sources=(
                SourceFile("lib.rs", 'extern "C" { fn f() -> i32; }\n'),
            ),
            dialect="rust",
        ).cache_key()
        assert without != with_host

    def test_schema_version_bumped_for_rule_ids_and_the_fourth_dialect(self):
        from repro.engine.jobs import CACHE_SCHEMA_VERSION

        assert CACHE_SCHEMA_VERSION >= 8
