"""Corpus scanning: dialect-derived unit suffixes and the lazy walk."""

import pytest

from repro.boundary import get_dialect
from repro.corpus import iter_tree, scan_tree, unit_suffixes


class _Spec:
    """A stub dialect spec with configurable suffix attributes."""

    def __init__(self, **attrs):
        self.host_suffixes = ()
        self.unit_suffixes = ()
        for name, value in attrs.items():
            setattr(self, name, value)


class TestUnitSuffixes:
    def test_pinned_corpus_suffixes_win(self):
        spec = _Spec(
            corpus_unit_suffixes=(".c", ".cc"),
            unit_suffixes=(".c", ".h"),
        )
        assert unit_suffixes(spec) == (".c", ".cc")

    def test_derived_from_unit_suffixes_minus_headers_and_hosts(self):
        # satellite fix: scan_tree used to hardcode `.c` regardless of
        # what the dialect declared
        spec = _Spec(
            unit_suffixes=(".c", ".cpp", ".h", ".ml"),
            host_suffixes=(".ml", ".mli"),
        )
        assert unit_suffixes(spec) == (".c", ".cpp")

    def test_falls_back_to_dot_c(self):
        assert unit_suffixes(_Spec()) == (".c",)
        assert unit_suffixes(_Spec(unit_suffixes=(".h",))) == (".c",)

    @pytest.mark.parametrize("dialect", ["ocaml", "pyext", "jni"])
    def test_registered_dialects_scan_c_units(self, dialect):
        assert ".c" in unit_suffixes(get_dialect(dialect))


@pytest.fixture()
def tree(tmp_path):
    (tmp_path / "sub").mkdir()
    (tmp_path / "lib.ml").write_text('external f : int -> int = "ml_f"\n')
    (tmp_path / "a.c").write_text("value ml_f(value x) { return x; }\n")
    (tmp_path / "sub" / "b.c").write_text("long helper(long x) { return x; }\n")
    (tmp_path / "shared.h").write_text("#define N 1\n")
    (tmp_path / "notes.txt").write_text("not a source\n")
    return tmp_path


class TestIterTree:
    def test_hosts_eager_units_lazy(self, tree):
        spec = get_dialect("ocaml")
        scan = iter_tree(tree, spec)
        assert [s.filename.rsplit("/", 1)[-1] for s in scan.hosts] == [
            "lib.ml"
        ]
        # only paths so far; headers and strays excluded
        names = sorted(p.name for p in scan.unit_paths)
        assert names == ["a.c", "b.c"]
        units = list(scan.iter_units())
        assert len(scan) == 2
        assert [u.filename.rsplit("/", 1)[-1] for u in units] == ["a.c", "b.c"]

    def test_iter_units_skips_unusable_files_late(self, tree):
        (tree / "empty.c").write_text("")
        spec = get_dialect("ocaml")
        scan = iter_tree(tree, spec)
        # the walk records the path; only iteration discovers and warns
        assert "empty.c" in {p.name for p in scan.unit_paths}
        with pytest.warns(UserWarning, match="empty"):
            units = list(scan.iter_units())
        assert "empty.c" not in {
            u.filename.rsplit("/", 1)[-1] for u in units
        }

    def test_name_for_controls_recorded_names(self, tree):
        scan = iter_tree(tree, get_dialect("ocaml"), name_for=lambda p: p.name)
        assert [u.filename for u in scan.iter_units()] == ["a.c", "b.c"]


class TestScanTree:
    def test_matches_iter_tree(self, tree):
        spec = get_dialect("ocaml")
        eager = scan_tree(tree, spec)
        lazy = iter_tree(tree, spec)
        assert [s.filename for s in eager.hosts] == [
            s.filename for s in lazy.hosts
        ]
        assert [u.filename for u in eager.units] == [
            u.filename for u in lazy.iter_units()
        ]

    def test_respects_dialect_suffixes_not_hardcoded_c(self, tree):
        (tree / "extra.cc").write_text("long g(long x) { return x; }\n")
        spec = _Spec(
            corpus_unit_suffixes=(".cc",),
            host_suffixes=(".ml", ".mli"),
        )
        scan = scan_tree(tree, spec)
        assert [u.filename.rsplit("/", 1)[-1] for u in scan.units] == [
            "extra.cc"
        ]
