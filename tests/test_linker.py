"""The whole-program linker: summaries, rules, and dialect extraction."""

import pytest

from repro.api import Project
from repro.diagnostics import Category, Kind
from repro.engine import run_batch
from repro.linker import InterfaceSummary, Linker, SymbolRow


def summary(unit, **groups):
    return InterfaceSummary(unit=unit, dialect="ocaml", **groups)


def export(symbol, type="value(value)", file="", line=1):
    return SymbolRow(symbol=symbol, type=type, file=file, line=line)


def kinds(report):
    return sorted(d.kind.name for d in report.diagnostics)


class TestSummaryRoundTrip:
    def test_symbol_row_round_trips(self):
        row = SymbolRow("ml_f", "value(value)", "a.c", 12, "external f")
        assert SymbolRow.from_dict(row.to_dict()) == row

    def test_summary_round_trips(self):
        original = summary(
            "a.c",
            exports=[export("ml_f", file="a.c")],
            externs=[SymbolRow("helper", "value(value)", "a.c", 3)],
            registrations=[SymbolRow("f", "", "a.c", 9, "ml_f")],
            bindings=[SymbolRow("ml_f", "", "lib.ml", 2, "external f : ...")],
        )
        rebuilt = InterfaceSummary.from_dict(original.to_dict())
        assert rebuilt == original

    def test_from_dict_tolerates_missing_groups(self):
        rebuilt = InterfaceSummary.from_dict({"unit": "a.c"})
        assert rebuilt.unit == "a.c"
        assert rebuilt.exports == []
        assert rebuilt.bindings == []


class TestLinkerRules:
    def test_empty_corpus_links_clean(self):
        report = Linker().report()
        assert list(report.diagnostics) == []
        assert report.units == 0

    def test_conflicting_decl_across_units(self):
        linker = Linker()
        linker.add(
            summary(
                "a.c",
                exports=[export("helper", "value(value, value)", "a.c", 4)],
            )
        )
        linker.add(
            summary(
                "b.c",
                externs=[export("helper", "value(value)", "b.c", 2)],
            )
        )
        report = linker.report()
        assert kinds(report) == ["LINK_CONFLICTING_DECL"]
        (diag,) = report.diagnostics
        assert diag.category is Category.ERROR
        assert "helper" in diag.message
        assert "a.c:4" in diag.message and "b.c:2" in diag.message

    def test_identical_decls_do_not_conflict(self):
        linker = Linker()
        linker.add(summary("a.c", exports=[export("helper", file="a.c")]))
        linker.add(summary("b.c", externs=[export("helper", file="b.c")]))
        assert kinds(linker.report()) == []

    def test_duplicate_definition_requires_a_reference(self):
        # identical private helpers copied between units (the parser
        # drops `static`) must stay silent until something links to them
        linker = Linker()
        linker.add(summary("a.c", exports=[export("helper", file="a.c")]))
        linker.add(summary("b.c", exports=[export("helper", file="b.c")]))
        assert kinds(linker.report()) == []

        referenced = Linker()
        referenced.add(summary("a.c", exports=[export("helper", file="a.c")]))
        referenced.add(summary("b.c", exports=[export("helper", file="b.c")]))
        referenced.add(
            summary("c.c", externs=[export("helper", file="c.c")])
        )
        assert kinds(referenced.report()) == ["LINK_DUPLICATE_DEFINITION"]

    def test_duplicate_registration_wins_over_duplicate_definition(self):
        linker = Linker()
        for unit in ("a.c", "b.c"):
            linker.add(
                summary(
                    unit,
                    exports=[export("Java_M_f", "int(int)", unit, 5)],
                    registrations=[
                        SymbolRow("Java_M_f", "int(int)", unit, 5, "Java_M_f")
                    ],
                )
            )
        report = linker.report()
        assert kinds(report) == ["LINK_DUPLICATE_REGISTRATION"]
        (diag,) = report.diagnostics
        assert "a.c" in diag.message and "b.c" in diag.message

    def test_same_key_registered_twice_in_one_unit_is_flagged(self):
        linker = Linker()
        linker.add(
            summary(
                "a.c",
                exports=[export("ml_f", file="a.c")],
                registrations=[
                    SymbolRow("f", "", "a.c", 9, "ml_f"),
                    SymbolRow("f", "", "a.c", 10, "ml_f"),
                ],
            )
        )
        assert kinds(linker.report()) == ["LINK_DUPLICATE_REGISTRATION"]

    def test_unresolved_registration_target_is_a_warning(self):
        linker = Linker()
        linker.add(
            summary(
                "a.c",
                registrations=[SymbolRow("f", "", "a.c", 9, "ml_vanish")],
            )
        )
        report = linker.report()
        assert kinds(report) == ["LINK_UNRESOLVED_EXTERN"]
        (diag,) = report.diagnostics
        assert diag.category is Category.WARNING
        assert "ml_vanish" in diag.message
        assert "registered by" in diag.message

    def test_unresolved_host_binding_is_a_warning(self):
        linker = Linker()
        linker.add(
            summary(
                "a.c",
                bindings=[SymbolRow("ml_missing", "", "lib.ml", 3)],
            )
        )
        (diag,) = linker.report().diagnostics
        assert diag.kind is Kind.LINK_UNRESOLVED_EXTERN
        assert "bound by" in diag.message

    def test_plain_undefined_extern_is_not_unresolved(self):
        # an extern prototype alone (a libc declaration, say) creates no
        # obligation; only registrations and host bindings do
        linker = Linker()
        linker.add(summary("a.c", externs=[export("memcpy", "void*(...)")]))
        assert kinds(linker.report()) == []

    def test_bindings_dedupe_across_units(self):
        # every unit of an OCaml corpus reports the same shared host
        # externals; the report must count and check them once
        linker = Linker()
        binding = SymbolRow("ml_f", "", "lib.ml", 2, "external f")
        linker.add(
            summary(
                "a.c", exports=[export("ml_f", file="a.c")],
                bindings=[binding],
            )
        )
        linker.add(summary("b.c", bindings=[binding]))
        report = linker.report()
        assert report.bindings == 1
        assert kinds(report) == []


class TestLinkReport:
    def _report(self):
        linker = Linker()
        linker.add(
            summary(
                "a.c",
                exports=[export("ml_f", file="a.c", line=3)],
                bindings=[SymbolRow("ml_gone", "", "lib.ml", 7)],
            )
        )
        return linker.report()

    def test_render_has_header_and_footer(self):
        text = self._report().render()
        assert text.startswith("== link")
        assert "1 unit(s)" in text
        assert "0 error(s), 1 warning(s)" in text

    def test_to_dict_is_json_shaped(self):
        data = self._report().to_dict()
        assert data["units"] == 1
        assert data["tally"]["warnings"] == 1
        (diag,) = data["diagnostics"]
        assert diag["kind"] == "LINK_UNRESOLVED_EXTERN"

    def test_add_dict_accepts_serialized_summaries(self):
        linker = Linker()
        linker.add_dict(
            summary("a.c", exports=[export("ml_f", file="a.c")]).to_dict()
        )
        assert linker.report().exports == 1


class TestHostExports:
    """Host-side definitions (Rust ``#[no_mangle]``) join the link: they
    resolve externs, collide with C bodies, and their rendered types
    participate in conflicting-decl comparison."""

    def test_host_export_resolves_an_extern(self):
        linker = Linker()
        linker.add(
            summary(
                "a.c",
                externs=[SymbolRow("rs_go", "int(int)", "a.c", 2)],
                host_exports=[
                    SymbolRow("rs_go", "int(int)", "lib.rs", 5)
                ],
            )
        )
        report = linker.report()
        assert kinds(report) == []
        assert report.host_exports == 1

    def test_unmatched_typed_binding_warns_unresolved(self):
        linker = Linker()
        linker.add(
            summary(
                "a.c",
                bindings=[
                    SymbolRow("c_hook", "void()", "lib.rs", 3, "fn c_hook()")
                ],
            )
        )
        assert kinds(linker.report()) == ["LINK_UNRESOLVED_EXTERN"]

    def test_host_export_collides_with_a_c_definition(self):
        linker = Linker()
        linker.add(
            summary(
                "a.c",
                exports=[export("rs_go", "int(int)", "a.c", 4)],
                externs=[SymbolRow("rs_go", "int(int)", "b.c", 1)],
                host_exports=[
                    SymbolRow("rs_go", "int(int)", "lib.rs", 5)
                ],
            )
        )
        assert kinds(linker.report()) == ["LINK_DUPLICATE_DEFINITION"]

    def test_host_claim_type_joins_conflict_comparison(self):
        linker = Linker()
        linker.add(
            summary(
                "a.c",
                exports=[export("c_len", "size_t(char *)", "a.c", 4)],
                bindings=[
                    SymbolRow(
                        "c_len", "uintptr_t(char *)", "lib.rs", 2, "fn c_len"
                    )
                ],
            )
        )
        assert kinds(linker.report()) == ["LINK_CONFLICTING_DECL"]

    def test_stdint_aliases_do_not_conflict(self):
        # a Rust host renders u32 as `unsigned int`; a bindgen header
        # spells `uint32_t` — same platform type, not a link hazard
        linker = Linker()
        linker.add(
            summary(
                "a.c",
                exports=[export("c_crc", "uint32_t(uint8_t *)", "a.c", 4)],
                bindings=[
                    SymbolRow(
                        "c_crc",
                        "unsigned int(unsigned char *)",
                        "lib.rs",
                        2,
                        "fn c_crc",
                    )
                ],
            )
        )
        assert kinds(linker.report()) == []

    def test_shared_host_rows_dedupe_across_units(self):
        # every unit of a batch carries the same host-side rows; the
        # linker must not read N copies as N definitions
        linker = Linker()
        host_row = SymbolRow("rs_go", "int(int)", "lib.rs", 5)
        for unit in ("a.c", "b.c"):
            linker.add(
                summary(
                    unit,
                    externs=[SymbolRow("rs_go", "int(int)", unit, 2)],
                    host_exports=[host_row],
                )
            )
        report = linker.report()
        assert kinds(report) == []
        assert report.host_exports == 1

    def test_footer_mentions_host_exports_only_when_present(self):
        linker = Linker()
        linker.add(summary("a.c", exports=[export("ml_f", file="a.c")]))
        assert "host export" not in linker.report().render()
        linker.add(
            summary(
                "b.c",
                host_exports=[SymbolRow("rs_go", "int()", "lib.rs", 1)],
            )
        )
        assert "1 host export(s)" in linker.report().render()

    def test_host_exports_round_trip_summary_serialization(self):
        original = summary(
            "a.c",
            host_exports=[
                SymbolRow("rs_go", "int(int)", "lib.rs", 5, "fn rs_go")
            ],
        )
        rebuilt = InterfaceSummary.from_dict(original.to_dict())
        assert rebuilt == original


class TestDialectExtraction:
    """Every dialect's analyze() must attach a usable summary."""

    CORPORA = {
        "ocaml": "examples/link/ocaml",
        "pyext": "examples/link/pyext",
        "jni": "examples/link/jni",
        "rust": "examples/link/rust",
    }

    #: the exact seeded bugs per corpus (2 errors + 1 warning each)
    EXPECTED = {
        "ocaml": [
            "LINK_CONFLICTING_DECL",
            "LINK_DUPLICATE_DEFINITION",
            "LINK_UNRESOLVED_EXTERN",
        ],
        "pyext": [
            "LINK_CONFLICTING_DECL",
            "LINK_DUPLICATE_REGISTRATION",
            "LINK_UNRESOLVED_EXTERN",
        ],
        "jni": [
            "LINK_CONFLICTING_DECL",
            "LINK_DUPLICATE_REGISTRATION",
            "LINK_UNRESOLVED_EXTERN",
        ],
        "rust": [
            "LINK_CONFLICTING_DECL",
            "LINK_DUPLICATE_DEFINITION",
            "LINK_UNRESOLVED_EXTERN",
        ],
    }

    @pytest.mark.parametrize("dialect", sorted(CORPORA))
    def test_seeded_corpus_is_per_unit_clean_but_link_dirty(self, dialect):
        project = Project.from_directory(
            self.CORPORA[dialect], dialect=dialect
        )
        report = run_batch(project.to_requests(), jobs=1, cache=None)
        linker = Linker()
        for result in report.results:
            assert result.failure is None
            assert list(result.diagnostics) == []
            assert result.summary is not None
            linker.add_dict(result.summary)
        link_report = linker.report()
        assert kinds(link_report) == sorted(self.EXPECTED[dialect])
        assert link_report.tally()["errors"] == 2
        assert link_report.tally()["warnings"] == 1

    def test_summaries_survive_result_serialization(self):
        from repro.engine import CheckResult

        project = Project.from_directory(
            self.CORPORA["ocaml"], dialect="ocaml"
        )
        report = run_batch(project.to_requests(), jobs=1, cache=None)
        linker = Linker()
        for result in report.results:
            rebuilt = CheckResult.from_dict(result.to_dict())
            assert rebuilt.summary == result.summary
            linker.add_dict(rebuilt.summary)
        assert kinds(linker.report()) == sorted(self.EXPECTED["ocaml"])
