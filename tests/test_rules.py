"""The stable rule-ID registry: the public API of the diagnostic packs."""

import pytest

from repro.diagnostics import Diagnostic, Kind
from repro.rules import REGISTRY, Rule, rule_for_kind, rules_pack
from repro.source import DUMMY_SPAN


class TestCoverage:
    def test_every_kind_has_exactly_one_rule(self):
        assert len(REGISTRY) == len(Kind)
        for kind in Kind:
            rule = rule_for_kind(kind)
            assert rule.id == kind.name
            assert rule.kind is kind

    def test_rule_severity_matches_the_kind(self):
        for kind in Kind:
            assert rule_for_kind(kind).category is kind.category

    def test_ids_are_stable_append_only_contract(self):
        # the published surface: removing or renaming any of these
        # breaks downstream severity maps and SARIF baselines
        published = {
            "TYPE_MISMATCH",
            "UNPROTECTED_VALUE",
            "PY_FORMAT_MISMATCH",
            "JNI_BAD_DESCRIPTOR",
            "RUST_DECL_MISMATCH",
            "RUST_PLATFORM_WIDTH",
            "RUST_PTR_INT_CONFUSION",
            "RUST_ENUM_REPR",
            "RUST_STR_PASSING",
            "LINK_CONFLICTING_DECL",
            "LINK_UNRESOLVED_EXTERN",
        }
        assert published <= {rule.id for rule in REGISTRY}


class TestPacks:
    def test_dialects_cover_all_four_fronts_plus_link(self):
        assert REGISTRY.dialects() == (
            "jni",
            "link",
            "ocaml",
            "pyext",
            "rust",
        )

    def test_pack_filtering(self):
        rust = rules_pack("rust")
        assert [rule.id for rule in rust] == [
            "RUST_DECL_MISMATCH",
            "RUST_PLATFORM_WIDTH",
            "RUST_PTR_INT_CONFUSION",
            "RUST_ENUM_REPR",
            "RUST_STR_PASSING",
        ]
        assert all(rule.dialect == "rust" for rule in rust)

    def test_unfiltered_pack_is_every_rule_in_kind_order(self):
        everything = rules_pack()
        assert len(everything) == len(Kind)
        assert [rule.id for rule in everything] == [
            kind.name for kind in Kind
        ]

    def test_every_rule_has_provenance(self):
        for rule in REGISTRY:
            assert rule.guideline
            assert rule.help_uri.startswith("https://")

    def test_rust_pack_cites_the_safety_guidelines(self):
        rule = REGISTRY.get("RUST_PLATFORM_WIDTH")
        assert "gui_QmEmKMYSuQSl" in rule.guideline
        assert "size_t vs int" in rule.guideline


class TestLookup:
    def test_unknown_id_raises_with_known_ids(self):
        with pytest.raises(KeyError, match="unknown rule id"):
            REGISTRY.get("NOT_A_RULE")

    def test_contains(self):
        assert "RUST_ENUM_REPR" in REGISTRY
        assert "NOT_A_RULE" not in REGISTRY

    def test_duplicate_registration_is_rejected(self):
        rule = REGISTRY.get("TYPE_MISMATCH")
        with pytest.raises(ValueError, match="duplicate rule id"):
            REGISTRY.register(rule)

    def test_to_dict_shape(self):
        payload = REGISTRY.get("RUST_DECL_MISMATCH").to_dict()
        assert payload["id"] == "RUST_DECL_MISMATCH"
        assert payload["dialect"] == "rust"
        assert payload["severity"] == "error"
        assert payload["sarif_level"] == "error"
        assert payload["guideline"]
        assert payload["help_uri"]


class TestDiagnosticPlumbing:
    def diag(self, kind=Kind.TYPE_MISMATCH):
        return Diagnostic(kind=kind, span=DUMMY_SPAN, message="boom")

    def test_rule_id_rides_the_diagnostic(self):
        diag = self.diag(Kind.RUST_STR_PASSING)
        assert diag.rule_id == "RUST_STR_PASSING"
        assert diag.to_dict()["rule_id"] == "RUST_STR_PASSING"

    def test_rendered_text_is_unchanged_by_rule_ids(self):
        # byte-identity contract: the human-facing render has no rule id
        diag = self.diag()
        assert "rule" not in diag.render().lower()
        assert "TYPE_MISMATCH" not in diag.render()


class TestRuleValue:
    def test_rules_are_frozen(self):
        rule = REGISTRY.get("TYPE_MISMATCH")
        with pytest.raises(AttributeError):
            rule.id = "RENAMED"

    def test_rule_is_a_plain_value(self):
        rule = REGISTRY.get("TYPE_MISMATCH")
        clone = Rule(
            id=rule.id,
            dialect=rule.dialect,
            category=rule.category,
            summary=rule.summary,
            guideline=rule.guideline,
            help_uri=rule.help_uri,
        )
        assert clone == rule
