"""Tests for the B/I/T qualifier lattices (paper §3.3)."""

import operator

from hypothesis import given
from hypothesis import strategies as st

from repro.core.lattice import (
    BOT_B,
    BOTTOM_QUALIFIER,
    BOXED,
    Boxedness,
    FLAT_BOT,
    FLAT_TOP,
    Qualifier,
    TOP_B,
    UNBOXED,
    UNKNOWN_QUALIFIER,
    flat_aop,
    flat_join,
    flat_leq,
    flat_meet,
    is_const,
    qualifier_for_int,
)

BOXEDNESS_VALUES = list(Boxedness)
flat_values = st.one_of(
    st.sampled_from([FLAT_BOT, FLAT_TOP]), st.integers(min_value=-8, max_value=8)
)
boxedness_values = st.sampled_from(BOXEDNESS_VALUES)
qualifiers = st.builds(Qualifier, boxedness_values, flat_values, flat_values)


class TestBoxedness:
    def test_bottom_below_everything(self):
        for b in BOXEDNESS_VALUES:
            assert BOT_B.leq(b)

    def test_top_above_everything(self):
        for b in BOXEDNESS_VALUES:
            assert b.leq(TOP_B)

    def test_boxed_unboxed_incomparable(self):
        assert not BOXED.leq(UNBOXED)
        assert not UNBOXED.leq(BOXED)

    def test_join_of_incomparables_is_top(self):
        assert BOXED.join(UNBOXED) is TOP_B

    def test_meet_of_incomparables_is_bottom(self):
        assert BOXED.meet(UNBOXED) is BOT_B

    @given(boxedness_values, boxedness_values)
    def test_join_commutative(self, a, b):
        assert a.join(b) is b.join(a)

    @given(boxedness_values, boxedness_values, boxedness_values)
    def test_join_associative(self, a, b, c):
        assert a.join(b).join(c) is a.join(b.join(c))

    @given(boxedness_values)
    def test_join_idempotent(self, a):
        assert a.join(a) is a

    @given(boxedness_values, boxedness_values)
    def test_join_is_upper_bound(self, a, b):
        join = a.join(b)
        assert a.leq(join) and b.leq(join)

    @given(boxedness_values, boxedness_values)
    def test_meet_is_lower_bound(self, a, b):
        meet = a.meet(b)
        assert meet.leq(a) and meet.leq(b)

    @given(boxedness_values, boxedness_values)
    def test_leq_antisymmetric(self, a, b):
        if a.leq(b) and b.leq(a):
            assert a is b


class TestFlatLattice:
    def test_bot_below_const_below_top(self):
        assert flat_leq(FLAT_BOT, 3)
        assert flat_leq(3, FLAT_TOP)
        assert flat_leq(FLAT_BOT, FLAT_TOP)

    def test_distinct_constants_incomparable(self):
        assert not flat_leq(2, 3)
        assert not flat_leq(3, 2)

    def test_join_distinct_constants_is_top(self):
        assert flat_join(2, 3) is FLAT_TOP

    def test_meet_distinct_constants_is_bottom(self):
        assert flat_meet(2, 3) is FLAT_BOT

    def test_is_const(self):
        assert is_const(0)
        assert is_const(-5)
        assert not is_const(FLAT_TOP)
        assert not is_const(FLAT_BOT)

    @given(flat_values, flat_values)
    def test_join_commutative(self, a, b):
        assert flat_join(a, b) == flat_join(b, a)

    @given(flat_values, flat_values, flat_values)
    def test_join_associative(self, a, b, c):
        assert flat_join(flat_join(a, b), c) == flat_join(a, flat_join(b, c))

    @given(flat_values)
    def test_join_idempotent(self, a):
        assert flat_join(a, a) == a

    @given(flat_values, flat_values)
    def test_join_upper_bound(self, a, b):
        join = flat_join(a, b)
        assert flat_leq(a, join) and flat_leq(b, join)


class TestFlatArithmetic:
    def test_known_values_compute(self):
        assert flat_aop(operator.add, 2, 3) == 5

    def test_top_absorbs(self):
        assert flat_aop(operator.add, FLAT_TOP, 3) is FLAT_TOP
        assert flat_aop(operator.add, 3, FLAT_TOP) is FLAT_TOP

    def test_bottom_is_strict(self):
        # unreachable stays unreachable, even against ⊤ (paper: ⊥ aop I = ⊥)
        assert flat_aop(operator.add, FLAT_BOT, 3) is FLAT_BOT
        assert flat_aop(operator.add, FLAT_TOP, FLAT_BOT) is FLAT_BOT

    def test_division_by_zero_defused(self):
        from repro.core.exprs import _INT_OPS

        assert _INT_OPS["/"](1, 0) == 0
        assert _INT_OPS["%"](1, 0) == 0


class TestQualifier:
    def test_unknown_is_safe(self):
        assert UNKNOWN_QUALIFIER.is_safe

    def test_nonzero_offset_unsafe(self):
        assert not Qualifier(BOXED, 2, 0).is_safe

    def test_top_offset_unsafe(self):
        assert not Qualifier(BOXED, FLAT_TOP, 0).is_safe

    def test_bottom_offset_safe(self):
        assert Qualifier(BOT_B, FLAT_BOT, FLAT_BOT).is_safe

    def test_bottom_detection(self):
        assert BOTTOM_QUALIFIER.is_bottom
        assert not UNKNOWN_QUALIFIER.is_bottom

    def test_qualifier_for_int(self):
        qual = qualifier_for_int(7)
        assert qual.tag == 7
        assert qual.offset == 0
        assert qual.boxedness is TOP_B

    @given(qualifiers, qualifiers)
    def test_join_commutative(self, a, b):
        assert a.join(b) == b.join(a)

    @given(qualifiers, qualifiers, qualifiers)
    def test_join_associative(self, a, b, c):
        assert a.join(b).join(c) == a.join(b.join(c))

    @given(qualifiers)
    def test_join_idempotent(self, a):
        assert a.join(a) == a

    @given(qualifiers, qualifiers)
    def test_join_upper_bound(self, a, b):
        join = a.join(b)
        assert a.leq(join) and b.leq(join)

    @given(qualifiers, qualifiers)
    def test_leq_antisymmetric(self, a, b):
        if a.leq(b) and b.leq(a):
            assert a == b

    @given(qualifiers, qualifiers, qualifiers)
    def test_leq_transitive(self, a, b, c):
        if a.leq(b) and b.leq(c):
            assert a.leq(c)

    def test_str_rendering(self):
        assert str(Qualifier(BOXED, 0, 1)) == "[boxed{0}]{1}"
        assert "⊤" in str(UNKNOWN_QUALIFIER)
