"""Tests for the backward liveness analysis over the Figure 5 IR."""

from repro.cfront.ir import (
    AOp,
    CallExp,
    FunctionIR,
    IntLit,
    MemLval,
    SAssign,
    SGoto,
    SIf,
    SIfUnboxed,
    SNop,
    SReturn,
    VarExp,
    expr_vars,
)
from repro.core.liveness import compute_liveness, statement_facts
from repro.core.srctypes import CSrcScalar


def make_fn(body, labels=None, params=None):
    return FunctionIR(
        name="f",
        params=params or [],
        return_type=CSrcScalar("int"),
        body=body,
        labels=labels or {},
    )


class TestExprVars:
    def test_simple_var(self):
        assert expr_vars(VarExp("x")) == {"x"}

    def test_nested(self):
        exp = AOp("+", VarExp("a"), AOp("*", VarExp("b"), IntLit(2)))
        assert expr_vars(exp) == {"a", "b"}

    def test_call_args(self):
        call = CallExp("f", (VarExp("x"), VarExp("y")))
        assert expr_vars(call) == {"x", "y"}

    def test_indirect_call_target_used(self):
        call = CallExp("fp", (VarExp("x"),), is_indirect=True)
        assert expr_vars(call) == {"x", "fp"}

    def test_none(self):
        assert expr_vars(None) == set()


class TestStatementFacts:
    def test_assign_defs_and_uses(self):
        fn = make_fn([SAssign(VarExp("x"), AOp("+", VarExp("y"), IntLit(1)))])
        facts = statement_facts(fn, 0)
        assert facts.defs == {"x"}
        assert facts.use == {"y"}

    def test_heap_store_uses_base(self):
        fn = make_fn([SAssign(MemLval(VarExp("b"), 1), VarExp("v"))])
        facts = statement_facts(fn, 0)
        assert facts.defs == set()
        assert facts.use == {"b", "v"}

    def test_return_has_no_successors(self):
        fn = make_fn([SReturn(VarExp("x"))])
        facts = statement_facts(fn, 0)
        assert facts.succs == ()
        assert facts.use == {"x"}

    def test_goto_successor(self):
        fn = make_fn([SGoto("L"), SNop()], labels={"L": 1})
        assert statement_facts(fn, 0).succs == (1,)

    def test_branch_two_successors(self):
        fn = make_fn(
            [SIf(VarExp("c"), "L"), SNop(), SNop()], labels={"L": 2}
        )
        assert set(statement_facts(fn, 0).succs) == {1, 2}

    def test_tag_test_uses_var(self):
        fn = make_fn([SIfUnboxed("x", "L"), SNop()], labels={"L": 1})
        assert statement_facts(fn, 0).use == {"x"}


class TestLiveness:
    def test_straight_line(self):
        # x = 1; y = x; return y
        fn = make_fn(
            [
                SAssign(VarExp("x"), IntLit(1)),
                SAssign(VarExp("y"), VarExp("x")),
                SReturn(VarExp("y")),
            ]
        )
        live = compute_liveness(fn)
        assert "x" not in live.live_in[0]
        assert "x" in live.live_in[1]
        assert "y" in live.live_in[2]
        assert "y" not in live.live_in[1]

    def test_dead_variable(self):
        fn = make_fn(
            [
                SAssign(VarExp("x"), IntLit(1)),
                SReturn(IntLit(0)),
            ]
        )
        live = compute_liveness(fn)
        assert all("x" not in s for s in live.live_in)

    def test_live_through_branch(self):
        # if c then L; y = 0; goto end; L: y = x; end: return y
        fn = make_fn(
            [
                SIf(VarExp("c"), "L"),
                SAssign(VarExp("y"), IntLit(0)),
                SGoto("end"),
                SAssign(VarExp("y"), VarExp("x")),  # L
                SReturn(VarExp("y")),  # end
            ],
            labels={"L": 3, "end": 4},
        )
        live = compute_liveness(fn)
        # x is live at entry because the branch may reach L
        assert "x" in live.live_in[0]
        # x is not live in the fall-through assignment
        assert "x" not in live.live_in[1]

    def test_loop_keeps_variable_live(self):
        # L: x = x + 1; if c then L; return x
        fn = make_fn(
            [
                SAssign(VarExp("x"), AOp("+", VarExp("x"), IntLit(1))),
                SIf(VarExp("c"), "L"),
                SReturn(VarExp("x")),
            ],
            labels={"L": 0},
        )
        live = compute_liveness(fn)
        assert "x" in live.live_in[0]
        assert "x" in live.live_out[1]

    def test_call_args_live_before_call(self):
        fn = make_fn(
            [
                SAssign(VarExp("r"), CallExp("g", (VarExp("a"), VarExp("b")))),
                SReturn(VarExp("r")),
            ]
        )
        live = compute_liveness(fn)
        assert {"a", "b"} <= set(live.live_in[0])
        assert "a" not in live.live_out[0]

    def test_variable_live_across_call(self):
        # r = g(); return a  — `a` is live across the call
        fn = make_fn(
            [
                SAssign(VarExp("r"), CallExp("g", ())),
                SReturn(VarExp("a")),
            ]
        )
        live = compute_liveness(fn)
        assert "a" in live.live_in[0]
        assert "a" in live.live_out[0]
