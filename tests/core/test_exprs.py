"""Direct unit tests of the Figure 6 expression rules.

The integration suite exercises the rules through the full pipeline; here
each rule is driven in isolation against a hand-built environment, so a
regression pinpoints the exact judgment that broke.
"""

import pytest

from repro.cfront.ir import (
    AOp,
    AddrOf,
    CastExp,
    Deref,
    IntLit,
    IntValExp,
    PtrAdd,
    StrLit,
    ValIntExp,
    VarExp,
)
from repro.core.constraints import EffectConstraintStore, PsiConstraintStore
from repro.core.environment import Entry, TypeEnv
from repro.core.exprs import Context, ExprTyper, RuleError
from repro.core.lattice import (
    BOXED,
    FLAT_TOP,
    Qualifier,
    TOP_B,
    UNBOXED,
    UNKNOWN_QUALIFIER,
)
from repro.core.srctypes import CSrcPtr, CSrcStruct, CSrcValue, CSrcVoid
from repro.core.types import (
    C_INT,
    CPtr,
    CStruct,
    CValue,
    CInt,
    INT_REPR,
    MTCustom,
    MTRepr,
    PsiConst,
    closed_pi,
    closed_sigma,
    fresh_mt,
)
from repro.core.unify import Unifier
from repro.diagnostics import DiagnosticBag, Kind


@pytest.fixture()
def ctx():
    effects = EffectConstraintStore()
    return Context(
        unifier=Unifier(on_effect_equal=effects.equate),
        psi_constraints=PsiConstraintStore(),
        effect_constraints=effects,
        diagnostics=DiagnosticBag(),
    )


@pytest.fixture()
def typer(ctx):
    return ExprTyper(ctx, "test_fn")


def pair_type():
    return CValue(
        MTRepr(psi=PsiConst(0), sigma=closed_sigma([closed_pi([INT_REPR, INT_REPR])]))
    )


def sum_type():
    """type t = A of int | B | C of int * int | D"""
    return CValue(
        MTRepr(
            psi=PsiConst(2),
            sigma=closed_sigma([closed_pi([INT_REPR]), closed_pi([INT_REPR, INT_REPR])]),
        )
    )


class TestIntExp:
    def test_literal(self, typer):
        ct, qual = typer.type_expr(TypeEnv(), IntLit(7))
        assert isinstance(ct, CInt)
        assert qual.tag == 7 and qual.offset == 0

    def test_string_literal_is_char_ptr(self, typer):
        ct, _ = typer.type_expr(TypeEnv(), StrLit("hi"))
        assert ct == CPtr(C_INT)


class TestVarExp:
    def test_bound_variable(self, typer):
        env = TypeEnv().set("x", Entry(C_INT, Qualifier(TOP_B, 0, 3)))
        ct, qual = typer.type_expr(env, VarExp("x"))
        assert isinstance(ct, CInt) and qual.tag == 3

    def test_unbound_raises(self, typer):
        with pytest.raises(RuleError):
            typer.type_expr(TypeEnv(), VarExp("ghost"))

    def test_address_taken_variable_loses_precision(self, ctx, typer):
        ctx.address_taken.add("x")
        env = TypeEnv().set("x", Entry(C_INT, Qualifier(TOP_B, 0, 3)))
        _, qual = typer.type_expr(env, VarExp("x"))
        assert qual.tag is FLAT_TOP


class TestValDerefExp:
    def test_known_tag_and_offset(self, typer):
        env = TypeEnv().set("x", Entry(sum_type(), Qualifier(BOXED, 0, 1)))
        ct, qual = typer.type_expr(env, Deref(VarExp("x")))
        assert isinstance(ct, CValue)
        assert qual.offset == 0  # result is safe

    def test_deref_unboxed_rejected(self, typer):
        env = TypeEnv().set("x", Entry(sum_type(), Qualifier(UNBOXED, 0, 0)))
        with pytest.raises(RuleError) as err:
            typer.type_expr(env, Deref(VarExp("x")))
        assert err.value.kind is Kind.BAD_FIELD_ACCESS

    def test_tuple_rule_without_test(self, typer):
        env = TypeEnv().set("x", Entry(pair_type(), UNKNOWN_QUALIFIER))
        ct, _ = typer.type_expr(env, Deref(VarExp("x")))
        assert isinstance(ct, CValue)

    def test_sum_without_test_rejected(self, typer):
        env = TypeEnv().set("x", Entry(sum_type(), UNKNOWN_QUALIFIER))
        with pytest.raises(RuleError):
            typer.type_expr(env, Deref(VarExp("x")))

    def test_row_growth_on_unconstrained_value(self, ctx, typer):
        env = TypeEnv().set(
            "x", Entry(CValue(fresh_mt()), Qualifier(BOXED, 0, 2))
        )
        typer.type_expr(env, Deref(VarExp("x")))
        mt = ctx.unifier.resolve_mt(env["x"].ct.mt)
        sigma = ctx.unifier.resolve_sigma(mt.sigma)
        assert len(sigma.prods) >= 3  # grew to cover tag 2


class TestCDerefExp:
    def test_through_pointer(self, typer):
        env = TypeEnv().set("p", Entry(CPtr(C_INT), UNKNOWN_QUALIFIER))
        ct, qual = typer.type_expr(env, Deref(VarExp("p")))
        assert isinstance(ct, CInt)
        assert qual.tag is FLAT_TOP

    def test_deref_scalar_rejected(self, typer):
        env = TypeEnv().set("n", Entry(C_INT, UNKNOWN_QUALIFIER))
        with pytest.raises(RuleError):
            typer.type_expr(env, Deref(VarExp("n")))


class TestAOpExp:
    def test_constant_folding(self, typer):
        ct, qual = typer.type_expr(
            TypeEnv(), AOp("*", IntLit(6), IntLit(7))
        )
        assert qual.tag == 42

    def test_comparison_produces_boolean_int(self, typer):
        _, qual = typer.type_expr(TypeEnv(), AOp("<", IntLit(1), IntLit(2)))
        assert qual.tag == 1

    def test_value_operand_rejected(self, typer):
        env = TypeEnv().set("x", Entry(CValue(INT_REPR), UNKNOWN_QUALIFIER))
        with pytest.raises(RuleError):
            typer.type_expr(env, AOp("+", VarExp("x"), IntLit(1)))

    def test_custom_value_operand_is_false_positive_prone(self, ctx, typer):
        custom = CValue(MTCustom(CPtr(CStruct("win"))))
        env = TypeEnv().set("v", Entry(custom, UNKNOWN_QUALIFIER))
        ct, _ = typer.type_expr(env, AOp("+", VarExp("v"), IntLit(8)))
        assert isinstance(ct, CInt)
        assert [d.kind for d in ctx.diagnostics] == [Kind.DISGUISED_PTR_ARITH]

    def test_pointer_comparison_degrades(self, typer):
        env = TypeEnv().set("p", Entry(CPtr(C_INT), UNKNOWN_QUALIFIER))
        ct, qual = typer.type_expr(env, AOp("==", VarExp("p"), IntLit(0)))
        assert isinstance(ct, CInt)


class TestAddValExp:
    def test_known_everything(self, typer):
        env = TypeEnv().set("x", Entry(sum_type(), Qualifier(BOXED, 0, 1)))
        ct, qual = typer.type_expr(env, PtrAdd(VarExp("x"), IntLit(1)))
        assert qual.boxedness is BOXED
        assert qual.offset == 1
        assert qual.tag == 1

    def test_negative_offset_rejected(self, typer):
        env = TypeEnv().set("x", Entry(sum_type(), Qualifier(BOXED, 0, 1)))
        with pytest.raises(RuleError):
            typer.type_expr(env, PtrAdd(VarExp("x"), IntLit(-1)))

    def test_unknown_offset_is_imprecision(self, ctx, typer):
        env = TypeEnv().set("x", Entry(sum_type(), Qualifier(BOXED, 0, 1)))
        env = env.set("n", Entry(C_INT, UNKNOWN_QUALIFIER))
        typer.type_expr(env, PtrAdd(VarExp("x"), VarExp("n")))
        assert [d.kind for d in ctx.diagnostics] == [Kind.UNKNOWN_OFFSET]

    def test_add_c_exp(self, typer):
        env = TypeEnv().set("p", Entry(CPtr(C_INT), UNKNOWN_QUALIFIER))
        ct, _ = typer.type_expr(env, PtrAdd(VarExp("p"), IntLit(4)))
        assert ct == CPtr(C_INT)


class TestCasts:
    def test_custom_exp(self, typer):
        env = TypeEnv().set(
            "p", Entry(CPtr(CStruct("win")), UNKNOWN_QUALIFIER)
        )
        ct, _ = typer.type_expr(env, CastExp(CSrcValue(), VarExp("p")))
        assert isinstance(ct, CValue)
        mt = ct.mt
        assert isinstance(mt, MTCustom)

    def test_val_cast_exp_roundtrip(self, ctx, typer):
        env = TypeEnv().set(
            "p", Entry(CPtr(CStruct("win")), UNKNOWN_QUALIFIER)
        )
        value_ct, _ = typer.type_expr(env, CastExp(CSrcValue(), VarExp("p")))
        env = env.set("v", Entry(value_ct, UNKNOWN_QUALIFIER))
        back_ct, _ = typer.type_expr(
            env, CastExp(CSrcPtr(CSrcStruct("win")), VarExp("v"))
        )
        assert back_ct == CPtr(CStruct("win"))

    def test_val_cast_to_wrong_type_rejected(self, typer):
        env = TypeEnv().set(
            "p", Entry(CPtr(CStruct("win")), UNKNOWN_QUALIFIER)
        )
        value_ct, _ = typer.type_expr(env, CastExp(CSrcValue(), VarExp("p")))
        env = env.set("v", Entry(value_ct, UNKNOWN_QUALIFIER))
        with pytest.raises(RuleError) as err:
            typer.type_expr(
                env, CastExp(CSrcPtr(CSrcStruct("cursor")), VarExp("v"))
            )
        assert err.value.kind is Kind.VALUE_CAST

    def test_void_ptr_heuristic(self, typer):
        env = TypeEnv().set("v", Entry(CValue(INT_REPR), UNKNOWN_QUALIFIER))
        # §5.1: casts through void* are ignored, no error
        ct, _ = typer.type_expr(
            env, CastExp(CSrcPtr(CSrcVoid()), VarExp("v"))
        )
        assert ct == CPtr(type(ct.target)()) if False else True

    def test_int_to_value_cast_warns(self, ctx, typer):
        typer.type_expr(TypeEnv(), CastExp(CSrcValue(), IntLit(3)))
        assert [d.kind for d in ctx.diagnostics] == [Kind.VALUE_CAST]


class TestValIntExp:
    def test_constraint_recorded(self, ctx, typer):
        ct, qual = typer.type_expr(TypeEnv(), ValIntExp(IntLit(1)))
        assert isinstance(ct, CValue)
        assert qual.boxedness is UNBOXED
        assert qual.tag == 1
        assert len(ctx.psi_constraints.bounds) == 1
        assert ctx.psi_constraints.bounds[0].tag == 1

    def test_on_value_rejected(self, typer):
        env = TypeEnv().set("v", Entry(CValue(INT_REPR), UNKNOWN_QUALIFIER))
        with pytest.raises(RuleError) as err:
            typer.type_expr(env, ValIntExp(VarExp("v")))
        assert err.value.kind is Kind.BAD_VAL_INT


class TestIntValExp:
    def test_on_unboxed(self, typer):
        env = TypeEnv().set(
            "v", Entry(CValue(INT_REPR), Qualifier(UNBOXED, 0, 5))
        )
        ct, qual = typer.type_expr(env, IntValExp(VarExp("v")))
        assert isinstance(ct, CInt)
        assert qual.tag == 5

    def test_on_boxed_rejected(self, typer):
        env = TypeEnv().set(
            "v", Entry(pair_type(), Qualifier(BOXED, 0, 0))
        )
        with pytest.raises(RuleError) as err:
            typer.type_expr(env, IntValExp(VarExp("v")))
        assert err.value.kind is Kind.BAD_INT_VAL

    def test_on_statically_boxed_type_rejected_without_test(self, typer):
        env = TypeEnv().set("v", Entry(pair_type(), UNKNOWN_QUALIFIER))
        with pytest.raises(RuleError) as err:
            typer.type_expr(env, IntValExp(VarExp("v")))
        assert err.value.kind is Kind.BAD_INT_VAL

    def test_on_c_int_rejected(self, typer):
        with pytest.raises(RuleError) as err:
            typer.type_expr(TypeEnv(), IntValExp(IntLit(3)))
        assert err.value.kind is Kind.BAD_INT_VAL


class TestAddrOf:
    def test_value_address_is_imprecision(self, ctx, typer):
        env = TypeEnv().set("v", Entry(CValue(INT_REPR), UNKNOWN_QUALIFIER))
        ct, _ = typer.type_expr(env, AddrOf("v"))
        assert isinstance(ct, CPtr)
        assert [d.kind for d in ctx.diagnostics] == [Kind.ADDRESS_TAKEN]
        assert "v" in ctx.address_taken

    def test_int_address_silent(self, ctx, typer):
        env = TypeEnv().set("n", Entry(C_INT, UNKNOWN_QUALIFIER))
        typer.type_expr(env, AddrOf("n"))
        assert not ctx.diagnostics
        assert "n" in ctx.address_taken
