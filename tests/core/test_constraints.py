"""Tests for the deferred constraint stores (paper §3.3.3)."""

import pytest

from repro.core.constraints import (
    EffectConstraintError,
    EffectConstraintStore,
    PsiConstraintStore,
)
from repro.core.lattice import FLAT_BOT, FLAT_TOP
from repro.core.types import GC, NOGC, PSI_TOP, PsiConst, fresh_gc, fresh_psi
from repro.core.unify import Unifier
from repro.diagnostics import DiagnosticBag
from repro.source import DUMMY_SPAN


class TestPsiConstraints:
    def check(self, tag, psi):
        store = PsiConstraintStore()
        unifier = Unifier()
        bag = DiagnosticBag()
        store.require(tag, psi, DUMMY_SPAN, "test")
        return store.check(unifier, bag)

    def test_tag_within_bound_ok(self):
        assert self.check(1, PsiConst(2)) == []

    def test_tag_at_bound_edge_ok(self):
        assert self.check(1, PsiConst(2)) == []
        assert self.check(0, PsiConst(1)) == []

    def test_tag_exceeding_bound_fails(self):
        assert len(self.check(2, PsiConst(2))) == 1

    def test_top_psi_accepts_everything(self):
        assert self.check(5, PSI_TOP) == []
        assert self.check(FLAT_TOP, PSI_TOP) == []
        assert self.check(-3, PSI_TOP) == []

    def test_negative_tag_requires_top(self):
        # negative numbers are never constructors (paper §3.3.3)
        assert len(self.check(-1, PsiConst(3))) == 1

    def test_unknown_tag_vs_const_fails(self):
        # an arbitrary int flowing into a finite sum
        assert len(self.check(FLAT_TOP, PsiConst(2))) == 1

    def test_bottom_tag_unconstrained(self):
        assert self.check(FLAT_BOT, PsiConst(0)) == []

    def test_unbound_psi_var_satisfiable(self):
        assert self.check(7, fresh_psi()) == []

    def test_bound_psi_var_checked_through_binding(self):
        store = PsiConstraintStore()
        unifier = Unifier()
        bag = DiagnosticBag()
        var = fresh_psi()
        store.require(3, var, DUMMY_SPAN, "test")
        unifier.unify_psi(var, PsiConst(2))
        assert len(store.check(unifier, bag)) == 1

    def test_multiple_constraints_all_checked(self):
        store = PsiConstraintStore()
        unifier = Unifier()
        bag = DiagnosticBag()
        store.require(0, PsiConst(1), DUMMY_SPAN, "ok")
        store.require(9, PsiConst(1), DUMMY_SPAN, "bad")
        store.require(1, PSI_TOP, DUMMY_SPAN, "ok")
        assert len(store.check(unifier, bag)) == 1


class TestEffectConstraints:
    def test_no_constraints_nothing_gc(self):
        store = EffectConstraintStore()
        var = fresh_gc()
        assert not store.may_gc(var)
        assert not store.may_gc(NOGC)
        assert store.may_gc(GC)

    def test_direct_propagation(self):
        store = EffectConstraintStore()
        var = fresh_gc()
        store.constrain(GC, var)
        assert store.may_gc(var)

    def test_transitive_propagation(self):
        store = EffectConstraintStore()
        a, b, c = fresh_gc(), fresh_gc(), fresh_gc()
        store.constrain(GC, a)
        store.constrain(a, b)
        store.constrain(b, c)
        assert store.may_gc(c)

    def test_direction_matters(self):
        store = EffectConstraintStore()
        a, b = fresh_gc(), fresh_gc()
        store.constrain(GC, a)
        store.constrain(b, a)  # b ⊑ a does not taint b
        assert store.may_gc(a)
        assert not store.may_gc(b)

    def test_nogc_lower_bound_harmless(self):
        store = EffectConstraintStore()
        var = fresh_gc()
        store.constrain(NOGC, var)
        assert not store.may_gc(var)

    def test_gc_flowing_into_nogc_detected(self):
        store = EffectConstraintStore()
        store.constrain(GC, NOGC)
        with pytest.raises(EffectConstraintError):
            store.solve()

    def test_equate_is_bidirectional(self):
        store = EffectConstraintStore()
        a, b = fresh_gc(), fresh_gc()
        store.equate(a, b)
        store.constrain(GC, a)
        assert store.may_gc(b)

    def test_cycle_terminates(self):
        store = EffectConstraintStore()
        a, b = fresh_gc(), fresh_gc()
        store.constrain(a, b)
        store.constrain(b, a)
        store.constrain(GC, a)
        assert store.may_gc(a) and store.may_gc(b)

    def test_cache_invalidation_on_new_edge(self):
        store = EffectConstraintStore()
        var = fresh_gc()
        assert not store.may_gc(var)
        store.constrain(GC, var)
        assert store.may_gc(var)

    def test_variables_iteration(self):
        store = EffectConstraintStore()
        a, b = fresh_gc(), fresh_gc()
        store.constrain(a, b)
        assert set(store.variables()) == {a, b}
