"""Direct unit tests of the Figure 7 statement rules and the fixpoint.

Programs are written directly in the Figure 5 IR (no parsing/lowering), so
these tests pin down the statement judgments themselves: environment
threading, label joins, reset after unconditional branches, the protection
set discipline, and the (App) rule.
"""


from repro.cfront.ir import (
    CallExp,
    FunctionIR,
    IntLit,
    IntValExp,
    MemLval,
    ProtectDecl,
    SAssign,
    SCamlReturn,
    SGoto,
    SIf,
    SIfIntTag,
    SIfSumTag,
    SIfUnboxed,
    SNop,
    SReturn,
    ValIntExp,
    VarDecl,
    VarExp,
)
from repro.core.constraints import EffectConstraintStore, PsiConstraintStore
from repro.core.environment import Entry
from repro.core.exprs import Context, Options
from repro.core.srctypes import CSrcScalar, CSrcValue
from repro.core.stmts import FunctionAnalyzer
from repro.core.types import CFun, CValue, INT_REPR, UNIT_REPR, fresh_gc
from repro.core.unify import Unifier
from repro.diagnostics import DiagnosticBag, Kind
from repro.cfront.macros import builtin_entries, POLYMORPHIC_BUILTINS


def make_ctx(options=None):
    effects = EffectConstraintStore()
    ctx = Context(
        unifier=Unifier(on_effect_equal=effects.equate),
        psi_constraints=PsiConstraintStore(),
        effect_constraints=effects,
        diagnostics=DiagnosticBag(),
        options=options or Options(),
    )
    ctx.functions.update(builtin_entries())
    ctx.polymorphic.update(POLYMORPHIC_BUILTINS)
    return ctx


def make_fn(body, labels=None, params=None, decls=None, return_type=None):
    return FunctionIR(
        name="f",
        params=params or [("x", CSrcValue())],
        return_type=return_type or CSrcValue(),
        decls=decls or [],
        body=body,
        labels=labels or {},
    )


def run_fn(ctx, fn):
    analyzer = FunctionAnalyzer(ctx, fn)
    return analyzer.run()


def kinds(ctx):
    return [d.kind for d in ctx.diagnostics]


class TestVSet:
    def test_assignment_updates_qualifier(self):
        ctx = make_ctx()
        # no return: the fall-off-the-end environment is still live
        fn = make_fn(
            [SAssign(VarExp("n"), IntLit(5)), SNop()],
            decls=[VarDecl("n", CSrcScalar("int"))],
        )
        result = run_fn(ctx, fn)
        assert result.env_out["n"].qual.tag == 5

    def test_env_reset_after_return(self):
        ctx = make_ctx()
        fn = make_fn(
            [
                SAssign(VarExp("n"), IntLit(5)),
                SReturn(ValIntExp(VarExp("n"))),
            ],
            decls=[VarDecl("n", CSrcScalar("int"))],
        )
        result = run_fn(ctx, fn)
        assert not ctx.diagnostics
        # after the unconditional exit everything is ⊥ (reset(Γ))
        assert result.env_out["n"].qual.is_bottom

    def test_binding_replaced_not_unified(self):
        # reuse a value temp at two different OCaml types (legal per VSet)
        ctx = make_ctx()
        from repro.cfront.ir import StrLit

        fn = make_fn(
            [
                SAssign(VarExp("t"), ValIntExp(IntLit(0))),
                SAssign(VarExp("t"), CallExp("caml_copy_string", (StrLit("s"),))),
                SReturn(VarExp("x")),
            ],
            decls=[VarDecl("t", CSrcValue())],
        )
        run_fn(ctx, fn)
        # crucially no TYPE_MISMATCH from reusing t at a second OCaml type
        assert Kind.TYPE_MISMATCH not in kinds(ctx)

    def test_undeclared_assignment_reported(self):
        ctx = make_ctx()
        fn = make_fn([SAssign(VarExp("ghost"), IntLit(1)), SReturn(VarExp("x"))])
        run_fn(ctx, fn)
        assert Kind.TYPE_MISMATCH in kinds(ctx)


class TestReturns:
    def test_plain_return_requires_empty_p(self):
        ctx = make_ctx()
        fn = make_fn(
            [SReturn(VarExp("x"))],
            decls=[ProtectDecl("x")],
        )
        run_fn(ctx, fn)
        assert kinds(ctx) == [Kind.MISSING_CAMLRETURN]

    def test_camlreturn_requires_nonempty_p(self):
        ctx = make_ctx()
        fn = make_fn([SCamlReturn(VarExp("x"))])
        run_fn(ctx, fn)
        assert kinds(ctx) == [Kind.SPURIOUS_CAMLRETURN]

    def test_balanced_protection_clean(self):
        ctx = make_ctx()
        fn = make_fn(
            [SCamlReturn(VarExp("x"))],
            decls=[ProtectDecl("x")],
        )
        run_fn(ctx, fn)
        assert not ctx.diagnostics

    def test_return_type_unified(self):
        ctx = make_ctx()
        fn = make_fn(
            [SReturn(IntLit(3))],  # returns C int where value expected
        )
        run_fn(ctx, fn)
        assert Kind.TYPE_MISMATCH in kinds(ctx)

    def test_every_exit_path_checked(self):
        # one good exit, one leaking exit
        ctx = make_ctx()
        fn = make_fn(
            [
                SIf(IntLit(1), "good"),
                SReturn(VarExp("x")),  # leak: plain return with P != {}
                SCamlReturn(VarExp("x")),  # good
            ],
            labels={"good": 2},
            decls=[ProtectDecl("x")],
        )
        run_fn(ctx, fn)
        assert kinds(ctx) == [Kind.MISSING_CAMLRETURN]


class TestBranching:
    def test_if_unboxed_refines_both_arms(self):

        ctx = make_ctx()
        fn = make_fn(
            [
                SIfUnboxed("x", "unboxed_arm"),
                # fall-through: boxed
                SAssign(VarExp("b"), IntLit(1)),
                SReturn(VarExp("x")),
                SNop(),  # unboxed_arm
                SReturn(VarExp("x")),
            ],
            labels={"unboxed_arm": 3},
            decls=[VarDecl("b", CSrcScalar("int"))],
        )
        analyzer = FunctionAnalyzer(ctx, fn)
        analyzer.run()
        assert not ctx.diagnostics

    def test_if_int_tag_requires_possible_constructor(self):
        ctx = make_ctx()
        # x : unit value has exactly 1 nullary ctor; testing == 3 is a bug
        fn = make_fn(
            [
                SIfUnboxed("x", "arm"),
                SReturn(VarExp("x")),
                SIfIntTag("x", 3, "hit"),  # arm
                SReturn(VarExp("x")),
                SReturn(VarExp("x")),  # hit
            ],
            labels={"arm": 2, "hit": 4},
        )
        analyzer = FunctionAnalyzer(ctx, fn)
        # pin x to unit by unifying with the declared external type
        ctx.functions["f"] = Entry(
            CFun((CValue(UNIT_REPR),), CValue(UNIT_REPR), fresh_gc())
        )
        analyzer = FunctionAnalyzer(ctx, fn)
        analyzer.run()
        ctx.psi_constraints.check(ctx.unifier, ctx.diagnostics)
        assert Kind.TAG_OUT_OF_RANGE in kinds(ctx)

    def test_sum_tag_without_boxedness_rejected(self):
        ctx = make_ctx()
        ctx.functions["f"] = Entry(
            CFun((CValue(INT_REPR),), CValue(INT_REPR), fresh_gc())
        )
        fn = make_fn(
            [
                SIfSumTag("x", 0, "arm"),
                SReturn(VarExp("x")),
                SReturn(VarExp("x")),  # arm
            ],
            labels={"arm": 2},
        )
        run_fn(ctx, fn)
        assert kinds(ctx) and kinds(ctx)[0] in (
            Kind.BAD_FIELD_ACCESS,
            Kind.BAD_INT_VAL,
        )

    def test_goto_resets_flow_facts(self):
        ctx = make_ctx()
        fn = make_fn(
            [
                SAssign(VarExp("n"), IntLit(1)),
                SGoto("end"),
                SAssign(VarExp("n"), IntLit(2)),  # unreachable
                SReturn(ValIntExp(VarExp("n"))),  # end
            ],
            labels={"end": 3},
            decls=[VarDecl("n", CSrcScalar("int"))],
        )
        result = run_fn(ctx, fn)
        assert not ctx.diagnostics

    def test_loop_reaches_fixpoint(self):
        ctx = make_ctx()
        fn = make_fn(
            [
                SAssign(VarExp("n"), IntLit(0)),  # 0
                SNop(),  # 1: head
                SIf(VarExp("c"), "body"),  # 2
                SGoto("end"),  # 3
                SAssign(VarExp("n"), IntLit(1)),  # 4: body
                SGoto("head"),  # 5
                SReturn(ValIntExp(VarExp("n"))),  # 6: end
            ],
            labels={"head": 1, "body": 4, "end": 6},
            decls=[
                VarDecl("n", CSrcScalar("int")),
                VarDecl("c", CSrcScalar("int")),
            ],
        )
        result = run_fn(ctx, fn)
        assert not ctx.diagnostics
        assert result.passes >= 2  # the loop forced re-analysis
        # n joins 0 ⊔ 1 = ⊤ at the head
        assert result.env_out["n"].qual.tag is not None


class TestApp:
    def test_effect_constraint_recorded(self):
        ctx = make_ctx()
        fn = make_fn(
            [
                SAssign(VarExp("t"), CallExp("caml_alloc", (IntLit(1), IntLit(0)))),
                SReturn(VarExp("t")),
            ],
            decls=[VarDecl("t", CSrcValue())],
        )
        result = run_fn(ctx, fn)
        assert ctx.effect_constraints.may_gc(result.effect)

    def test_nogc_callee_keeps_caller_clean(self):
        ctx = make_ctx()
        fn = make_fn(
            [
                SAssign(
                    VarExp("n"),
                    CallExp("caml_string_length", (VarExp("x"),)),
                ),
                SReturn(ValIntExp(VarExp("n"))),
            ],
            decls=[VarDecl("n", CSrcScalar("int"))],
        )
        result = run_fn(ctx, fn)
        assert not ctx.effect_constraints.may_gc(result.effect)

    def test_arity_mismatch(self):
        ctx = make_ctx()
        fn = make_fn(
            [
                SAssign(VarExp("t"), CallExp("caml_alloc", (IntLit(1),))),
                SReturn(VarExp("x")),
            ],
            decls=[VarDecl("t", CSrcValue())],
        )
        run_fn(ctx, fn)
        assert Kind.ARITY_MISMATCH in kinds(ctx)

    def test_unknown_function_assumed_nogc(self):
        ctx = make_ctx()
        fn = make_fn(
            [
                SAssign(VarExp("n"), CallExp("mystery", (IntLit(1),))),
                SReturn(ValIntExp(VarExp("n"))),
            ],
            decls=[VarDecl("n", CSrcScalar("int"))],
        )
        result = run_fn(ctx, fn)
        assert not ctx.effect_constraints.may_gc(result.effect)
        assert "mystery" in ctx.functions

    def test_gc_check_queued_with_live_candidates(self):
        ctx = make_ctx()
        fn = make_fn(
            [
                SAssign(VarExp("t"), CallExp("caml_alloc", (IntLit(1), IntLit(0)))),
                SAssign(MemLval(VarExp("t"), 0), VarExp("x")),
                SReturn(VarExp("t")),
            ],
            decls=[VarDecl("t", CSrcValue())],
        )
        run_fn(ctx, fn)
        assert ctx.pending_gc_checks
        candidates = {
            name for check in ctx.pending_gc_checks for name, _ in check.candidates
        }
        assert "x" in candidates

    def test_protected_variables_not_candidates(self):
        ctx = make_ctx()
        fn = make_fn(
            [
                SAssign(VarExp("t"), CallExp("caml_alloc", (IntLit(1), IntLit(0)))),
                SAssign(MemLval(VarExp("t"), 0), VarExp("x")),
                SCamlReturn(VarExp("t")),
            ],
            decls=[ProtectDecl("x"), VarDecl("t", CSrcValue()), ProtectDecl("t")],
        )
        run_fn(ctx, fn)
        for check in ctx.pending_gc_checks:
            names = [name for name, _ in check.candidates]
            assert "x" not in names

    def test_polymorphic_builtin_not_conflated(self):
        # two caml_alloc calls at different result types must not clash
        ctx = make_ctx()
        fn = make_fn(
            [
                SAssign(VarExp("a"), CallExp("caml_alloc", (IntLit(1), IntLit(0)))),
                SAssign(MemLval(VarExp("a"), 0), ValIntExp(IntLit(0))),
                SAssign(VarExp("b"), CallExp("caml_alloc", (IntLit(1), IntLit(0)))),
                SAssign(MemLval(VarExp("b"), 0), VarExp("a")),
                SReturn(VarExp("b")),
            ],
            decls=[VarDecl("a", CSrcValue()), VarDecl("b", CSrcValue())],
        )
        run_fn(ctx, fn)
        assert Kind.TYPE_MISMATCH not in kinds(ctx)


class TestAblationOptions:
    def test_flow_insensitive_drops_refinement(self):
        ctx = make_ctx(Options(flow_sensitive=False))
        ctx.functions["f"] = Entry(
            CFun((CValue(INT_REPR),), CValue(INT_REPR), fresh_gc())
        )
        fn = make_fn(
            [
                SIfUnboxed("x", "arm"),
                SReturn(VarExp("x")),
                SAssign(VarExp("n"), IntValExp(VarExp("x"))),  # arm
                SReturn(ValIntExp(VarExp("n"))),
            ],
            labels={"arm": 2},
            decls=[VarDecl("n", CSrcScalar("int"))],
        )
        run_fn(ctx, fn)
        # without refinement Int_val on an int-typed value still passes
        # (psi = ⊤), so this particular program stays clean...
        fn2 = make_fn(
            [
                SIfUnboxed("x", "arm"),
                SReturn(VarExp("x")),
                SIfIntTag("x", 0, "hit"),  # arm — needs unboxed refinement
                SReturn(VarExp("x")),
                SReturn(VarExp("x")),  # hit
            ],
            labels={"arm": 2, "hit": 4},
        )
        ctx2 = make_ctx(Options(flow_sensitive=False))
        run_fn(ctx2, fn2)
        # ...but the tag-test idiom breaks, exactly the ablation's point
        assert ctx2.diagnostics

    def test_gc_effects_off_queues_nothing(self):
        ctx = make_ctx(Options(gc_effects=False))
        fn = make_fn(
            [
                SAssign(VarExp("t"), CallExp("caml_alloc", (IntLit(1), IntLit(0)))),
                SAssign(MemLval(VarExp("t"), 0), VarExp("x")),
                SReturn(VarExp("t")),
            ],
            decls=[VarDecl("t", CSrcValue())],
        )
        run_fn(ctx, fn)
        assert not ctx.pending_gc_checks
