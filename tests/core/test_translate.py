"""Tests for Φ / ρ / η (paper Figure 4 and §3.3.2)."""

import pytest

from repro.core.srctypes import (
    CSrcPtr,
    CSrcScalar,
    CSrcStruct,
    CSrcValue,
    CSrcVoid,
    SArrow,
    SBool,
    SConstrApp,
    SConstructor,
    SField,
    SInt,
    SOpaque,
    SPolyVariant,
    SRecord,
    SSum,
    SString,
    STuple,
    SUnit,
    SVar,
    arrow_chain,
    make_arrows,
)
from repro.core.translate import (
    TranslationError,
    Translator,
    eta,
    phi,
    rho,
)
from repro.core.types import (
    C_INT,
    C_VOID,
    CFun,
    CPtr,
    CStruct,
    CTVar,
    CValue,
    GCVar,
    MTArrow,
    MTCustom,
    MTRepr,
    MTVar,
    PSI_TOP,
    PsiConst,
)


class TestRho:
    def test_unit(self):
        result = rho(SUnit())
        assert isinstance(result, MTRepr)
        assert result.psi == PsiConst(1)
        assert result.sigma.is_closed and not result.sigma.prods

    def test_int(self):
        result = rho(SInt())
        assert result.psi is PSI_TOP
        assert not result.sigma.prods

    def test_bool_is_two_constructor_sum(self):
        result = rho(SBool())
        assert result.psi == PsiConst(2)

    def test_ref_single_boxed_field(self):
        result = rho(SConstrApp("ref", (SInt(),)))
        assert result.psi == PsiConst(0)
        assert len(result.sigma.prods) == 1
        assert len(result.sigma.prods[0].elems) == 1

    def test_tuple(self):
        result = rho(STuple((SInt(), SUnit())))
        assert result.psi == PsiConst(0)
        (prod,) = result.sigma.prods
        assert len(prod.elems) == 2
        assert prod.is_closed

    def test_record_like_tuple(self):
        record = SRecord(
            (SField("x", SInt()), SField("y", SInt(), mutable=True))
        )
        result = rho(record)
        assert result.psi == PsiConst(0)
        assert len(result.sigma.prods[0].elems) == 2

    def test_paper_type_t(self):
        # type t = A of int | B | C of int * int | D  →  (2, (⊤,∅) + (⊤,∅)×(⊤,∅))
        t = SSum(
            (
                SConstructor("A", (SInt(),)),
                SConstructor("B"),
                SConstructor("C", (SInt(), SInt())),
                SConstructor("D"),
            )
        )
        result = rho(t)
        assert result.psi == PsiConst(2)
        assert len(result.sigma.prods) == 2
        assert len(result.sigma.prods[0].elems) == 1
        assert len(result.sigma.prods[1].elems) == 2

    def test_option(self):
        result = rho(SConstrApp("option", (SInt(),)))
        assert result.psi == PsiConst(1)
        assert len(result.sigma.prods) == 1

    def test_list_recursive_cutoff(self):
        result = rho(SConstrApp("list", (SInt(),)))
        assert result.psi == PsiConst(1)
        (cons,) = result.sigma.prods
        assert len(cons.elems) == 2  # head, tail
        assert isinstance(cons.elems[1], MTVar)  # recursion cut to a var

    def test_array_open_product(self):
        result = rho(SConstrApp("array", (SInt(),)))
        (prod,) = result.sigma.prods
        assert not prod.is_closed  # arity unknown statically

    def test_string_is_custom_block(self):
        result = rho(SString())
        assert isinstance(result, MTCustom)

    def test_arrow(self):
        result = rho(SArrow(SInt(), SUnit()))
        assert isinstance(result, MTArrow)

    def test_tyvars_shared_within_declaration(self):
        translator = Translator()
        first = translator.rho(SVar("a"))
        second = translator.rho(SVar("a"))
        other = translator.rho(SVar("b"))
        assert first is second
        assert first is not other

    def test_opaque_shared_per_name(self):
        translator = Translator()
        first = translator.rho(SOpaque("window"))
        second = translator.rho(SOpaque("window"))
        other = translator.rho(SOpaque("cursor"))
        assert first is second
        assert first is not other
        assert isinstance(first, MTCustom)
        assert isinstance(first.ctype, CTVar)

    def test_unknown_named_type_is_opaque(self):
        result = rho(SConstrApp("mystery", ()))
        assert isinstance(result, MTCustom)

    def test_poly_variant_callback(self):
        seen = []
        translator = Translator(on_poly_variant=seen.append)
        result = translator.rho(SPolyVariant((SConstructor("A"),)))
        assert isinstance(result, MTVar)
        assert len(seen) == 1

    def test_named_resolution(self):
        def resolve(name, args):
            if name == "t":
                return SSum((SConstructor("X"), SConstructor("Y", (SInt(),))))
            return None

        translator = Translator(resolve=resolve)
        result = translator.rho(SConstrApp("t"))
        assert isinstance(result, MTRepr)
        assert result.psi == PsiConst(1)

    def test_mutual_recursion_terminates(self):
        def resolve(name, args):
            if name == "even":
                return SSum((SConstructor("Z"), SConstructor("S", (SConstrApp("odd"),))))
            if name == "odd":
                return SSum((SConstructor("S'", (SConstrApp("even"),)),))
            return None

        translator = Translator(resolve=resolve)
        result = translator.rho(SConstrApp("even"))
        assert isinstance(result, MTRepr)


class TestPhi:
    def test_simple_external(self):
        fn = phi(SArrow(SInt(), SUnit()))
        assert isinstance(fn, CFun)
        assert len(fn.params) == 1
        assert isinstance(fn.params[0], CValue)
        assert isinstance(fn.result, CValue)
        assert isinstance(fn.effect, GCVar)

    def test_multi_arg_uncurried(self):
        mltype = make_arrows([SInt(), SBool(), SUnit()], SInt())
        fn = phi(mltype)
        assert len(fn.params) == 3

    def test_non_function_rejected(self):
        with pytest.raises(TranslationError):
            phi(SInt())

    def test_explicit_arity_keeps_result_curried(self):
        mltype = make_arrows([SInt(), SInt()], SInt())
        fn = Translator().phi(mltype, arity=1)
        assert len(fn.params) == 1
        assert isinstance(fn.result, CValue)
        assert isinstance(fn.result.mt, MTArrow)


class TestEta:
    def test_void(self):
        assert eta(CSrcVoid()) is C_VOID

    def test_scalars_collapse(self):
        assert eta(CSrcScalar("int")) is C_INT
        assert eta(CSrcScalar("unsigned long")) is C_INT

    def test_value_gets_fresh_var(self):
        first = eta(CSrcValue())
        second = eta(CSrcValue())
        assert isinstance(first, CValue)
        assert first.mt is not second.mt

    def test_pointer(self):
        result = eta(CSrcPtr(CSrcScalar("char")))
        assert result == CPtr(C_INT)

    def test_struct(self):
        assert eta(CSrcStruct("win")) == CStruct("win")


class TestArrowChain:
    def test_chain_roundtrip(self):
        mltype = make_arrows([SInt(), SBool()], SUnit())
        chain = arrow_chain(mltype)
        assert len(chain) == 3
        assert chain[-1] == SUnit()

    def test_non_arrow_single(self):
        assert arrow_chain(SInt()) == [SInt()]
