"""Tests for type environments Γ and label environments G."""

from repro.core.environment import Entry, LabelEnv, TypeEnv
from repro.core.lattice import (
    BOTTOM_QUALIFIER,
    BOXED,
    FLAT_TOP,
    Qualifier,
    TOP_B,
    UNBOXED,
    UNKNOWN_QUALIFIER,
)
from repro.core.types import CValue, fresh_mt


def entry(qual=UNKNOWN_QUALIFIER):
    return Entry(CValue(fresh_mt()), qual)


class TestTypeEnv:
    def test_set_get(self):
        env = TypeEnv().set("x", entry())
        assert "x" in env
        assert env["x"].qual == UNKNOWN_QUALIFIER

    def test_set_is_persistent(self):
        env = TypeEnv()
        env2 = env.set("x", entry())
        assert "x" not in env
        assert "x" in env2

    def test_set_qual_keeps_ct(self):
        env = TypeEnv().set("x", entry())
        ct = env["x"].ct
        env2 = env.set_qual("x", Qualifier(BOXED, 0, 3))
        assert env2["x"].ct is ct
        assert env2["x"].qual.tag == 3

    def test_reset_bottoms_all_quals(self):
        env = TypeEnv().set("x", entry(Qualifier(BOXED, 0, 1)))
        reset = env.reset()
        assert reset["x"].qual == BOTTOM_QUALIFIER
        assert reset["x"].ct is env["x"].ct

    def test_join_pointwise(self):
        shared = entry(Qualifier(BOXED, 0, 1))
        left = TypeEnv().set("x", shared)
        right = TypeEnv().set("x", Entry(shared.ct, Qualifier(BOXED, 0, 2)))
        joined = left.join(right)
        assert joined["x"].qual.tag is FLAT_TOP
        assert joined["x"].qual.boxedness is BOXED

    def test_join_missing_binding_taken_whole(self):
        left = TypeEnv().set("x", entry())
        right = TypeEnv()
        assert left.join(right)["x"].qual == UNKNOWN_QUALIFIER
        assert right.join(left)["x"].qual == UNKNOWN_QUALIFIER

    def test_join_unifies_differing_cts(self):
        calls = []
        a, b = entry(), entry()
        left = TypeEnv().set("x", a)
        right = TypeEnv().set("x", b)
        left.join(right, unify=lambda l, r: calls.append((l, r)))
        assert calls == [(a.ct, b.ct)]

    def test_join_skips_unify_for_shared_ct(self):
        calls = []
        shared = entry()
        left = TypeEnv().set("x", shared)
        right = TypeEnv().set("x", Entry(shared.ct, Qualifier(UNBOXED, 0, 0)))
        left.join(right, unify=lambda l, r: calls.append(1))
        assert calls == []

    def test_leq_reflexive(self):
        env = TypeEnv().set("x", entry(Qualifier(BOXED, 0, 1)))
        assert env.leq(env)

    def test_leq_respects_qualifier_order(self):
        shared = entry(Qualifier(BOXED, 0, 1))
        smaller = TypeEnv().set("x", shared)
        bigger = TypeEnv().set("x", Entry(shared.ct, Qualifier(TOP_B, 0, FLAT_TOP)))
        assert smaller.leq(bigger)
        assert not bigger.leq(smaller)

    def test_leq_missing_on_left_is_bottom(self):
        empty_with_bottom = TypeEnv().set("x", entry(BOTTOM_QUALIFIER))
        other = TypeEnv().set("x", entry())
        assert empty_with_bottom.leq(other)


class TestLabelEnv:
    def test_first_join_initializes(self):
        labels = LabelEnv()
        env = TypeEnv().set("x", entry())
        assert labels.join_into("L", env)
        assert "x" in labels.get("L")

    def test_second_identical_join_stable(self):
        labels = LabelEnv()
        env = TypeEnv().set("x", entry(Qualifier(BOXED, 0, 1)))
        labels.join_into("L", env)
        assert not labels.join_into("L", env)

    def test_growing_join_reports_change(self):
        labels = LabelEnv()
        shared = entry(Qualifier(BOXED, 0, 1))
        labels.join_into("L", TypeEnv().set("x", shared))
        bigger = TypeEnv().set("x", Entry(shared.ct, Qualifier(BOXED, 0, 2)))
        assert labels.join_into("L", bigger)
        assert labels.get("L")["x"].qual.tag is FLAT_TOP

    def test_initialize_then_join(self):
        labels = LabelEnv()
        base = TypeEnv().set("x", entry(BOTTOM_QUALIFIER))
        labels.initialize("L", base)
        incoming = TypeEnv().set("x", Entry(base["x"].ct, Qualifier(UNBOXED, 0, 0)))
        assert labels.join_into("L", incoming)
        assert labels.get("L")["x"].qual.boxedness is UNBOXED
