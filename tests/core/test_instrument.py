"""Tests for runtime-check instrumentation (the paper's future-work note)."""

from repro import Kind, analyze_project
from repro.core.instrument import plan_instrumentation


def plan_for(ml, c):
    report = analyze_project([ml] if ml else [], [c])
    return report, plan_instrumentation(report)


class TestUnknownOffset:
    def test_guard_proposed(self):
        report, plan = plan_for(
            'external nth : int * int -> int = "ml_nth"',
            """
            value ml_nth(value p)
            {
                int idx = runtime_index();
                return Field(p, idx);
            }
            """,
        )
        checks = plan.by_kind(Kind.UNKNOWN_OFFSET)
        assert len(checks) == 1
        assert "Wosize_val" in checks[0].guard
        assert "Is_block" in checks[0].guard


class TestGlobalValue:
    def test_root_registration_proposed(self):
        report, plan = plan_for(
            "",
            "value cache;\n",
        )
        checks = plan.by_kind(Kind.GLOBAL_VALUE)
        assert len(checks) == 1
        assert "caml_register_global_root" in checks[0].guard
        assert "cache" in checks[0].guard


class TestAddressTaken:
    def test_pin_and_unpin_proposed(self):
        report, plan = plan_for(
            'external root : string -> unit = "ml_root"',
            """
            value ml_root(value v)
            {
                caml_register_global_root(&v);
                return Val_unit;
            }
            """,
        )
        checks = plan.by_kind(Kind.ADDRESS_TAKEN)
        assert len(checks) == 1
        assert "caml_remove_global_root" in checks[0].guard


class TestFunctionPointer:
    def test_null_guard_proposed(self):
        report, plan = plan_for(
            "",
            """
            typedef int (*cb_t)(int);
            int apply(cb_t cb, int x)
            {
                int r = cb(x);
                return r;
            }
            """,
        )
        checks = plan.by_kind(Kind.FUNCTION_POINTER)
        assert len(checks) == 1
        assert "NULL" in checks[0].guard


class TestPlanShape:
    def test_clean_program_yields_empty_plan(self):
        report, plan = plan_for(
            'external f : int -> int = "ml_f"',
            "value ml_f(value x) { return Val_int(Int_val(x)); }",
        )
        assert plan.count == 0
        assert "nothing to instrument" in plan.render()

    def test_errors_do_not_generate_checks(self):
        # instrumentation is for imprecision, not for outright bugs
        report, plan = plan_for(
            'external f : int -> int = "ml_f"',
            "value ml_f(value x) { return Val_int(x); }",
        )
        assert report.tally()["errors"] == 1
        assert plan.count == 0

    def test_render_lists_every_check(self):
        report, plan = plan_for(
            "",
            "value cache_a;\nvalue cache_b;\n",
        )
        rendered = plan.render()
        assert "2 runtime check(s)" in rendered
        assert "cache_a" in rendered and "cache_b" in rendered

    def test_figure9_imprecision_fully_instrumentable(self):
        """Every imprecision report in a Figure 9 row gets a proposal."""
        from repro.bench.runner import run_benchmark
        from repro.bench.specs import spec_by_name

        result = run_benchmark(spec_by_name("ocaml-vorbis-0.1.1"), unique_prefix=70)
        plan = plan_instrumentation(result.report)
        assert plan.count == result.tally["imprecision"]
