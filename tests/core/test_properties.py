"""Hypothesis property tests on the core data structures and invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.srctypes import SBool, SConstructor, SInt, SSum, STuple, SUnit
from repro.core.translate import rho
from repro.core.types import (
    INT_REPR,
    MTRepr,
    Pi,
    PiVar,
    PsiConst,
    Sigma,
    SigmaVar,
    UNIT_REPR,
    closed_pi,
    closed_sigma,
)
from repro.core.unify import UnificationError, Unifier

# -- strategies ---------------------------------------------------------------

simple_src_types = st.sampled_from([SInt(), SUnit(), SBool()])


@st.composite
def variants(draw):
    """Random sum declarations with int-ish payloads."""
    n_ctors = draw(st.integers(min_value=1, max_value=6))
    constructors = []
    for index in range(n_ctors):
        arity = draw(st.integers(min_value=0, max_value=3))
        args = tuple(draw(simple_src_types) for _ in range(arity))
        constructors.append(SConstructor(f"C{index}", args))
    return SSum(tuple(constructors))


@st.composite
def closed_sigmas(draw):
    n_prods = draw(st.integers(min_value=0, max_value=3))
    prods = []
    for _ in range(n_prods):
        n_elems = draw(st.integers(min_value=0, max_value=3))
        prods.append(
            closed_pi([draw(st.sampled_from([INT_REPR, UNIT_REPR])) for _ in range(n_elems)])
        )
    return closed_sigma(prods)


# -- translation properties ------------------------------------------------------


class TestRhoProperties:
    @given(variants())
    def test_psi_counts_nullary_constructors(self, sum_type):
        result = rho(sum_type)
        assert isinstance(result, MTRepr)
        assert result.psi == PsiConst(len(sum_type.nullary()))

    @given(variants())
    def test_sigma_mirrors_non_nullary_constructors(self, sum_type):
        result = rho(sum_type)
        boxed = sum_type.non_nullary()
        assert len(result.sigma.prods) == len(boxed)
        for product, ctor in zip(result.sigma.prods, boxed):
            assert len(product.elems) == len(ctor.args)
            assert product.is_closed
        assert result.sigma.is_closed

    @given(variants())
    def test_rho_deterministic(self, sum_type):
        assert str(rho(sum_type)) == str(rho(sum_type))

    @given(st.lists(simple_src_types, min_size=2, max_size=5))
    def test_tuple_single_product(self, elems):
        result = rho(STuple(tuple(elems)))
        assert result.psi == PsiConst(0)
        assert len(result.sigma.prods) == 1
        assert len(result.sigma.prods[0].elems) == len(elems)

    @given(variants())
    def test_same_declaration_unifies_with_itself(self, sum_type):
        unifier = Unifier()
        unifier.unify_mt(rho(sum_type), rho(sum_type))


# -- row unification properties -----------------------------------------------------


class TestRowProperties:
    @given(closed_sigmas())
    def test_unify_with_self(self, sigma):
        Unifier().unify_sigma(sigma, sigma)

    @given(closed_sigmas())
    def test_open_row_grows_to_any_closed_row(self, sigma):
        unifier = Unifier()
        open_row = Sigma(prods=(), tail=SigmaVar())
        unifier.unify_sigma(open_row, sigma)
        resolved = unifier.resolve_sigma(open_row)
        assert len(resolved.prods) == len(sigma.prods)
        assert resolved.is_closed == sigma.is_closed

    @given(closed_sigmas(), closed_sigmas())
    def test_unification_symmetric(self, left, right):
        forward = Unifier()
        backward = Unifier()
        try:
            forward.unify_sigma(left, right)
            ok_forward = True
        except UnificationError:
            ok_forward = False
        try:
            backward.unify_sigma(right, left)
            ok_backward = True
        except UnificationError:
            ok_backward = False
        assert ok_forward == ok_backward

    @given(closed_sigmas())
    def test_growth_is_monotone(self, sigma):
        """Growing an open row twice ends at the larger of the two shapes."""
        unifier = Unifier()
        open_row = Sigma(prods=(), tail=SigmaVar())
        partial = Sigma(
            prods=tuple(Pi(elems=(), tail=PiVar()) for _ in sigma.prods),
            tail=SigmaVar(),
        )
        unifier.unify_sigma(open_row, partial)
        unifier.unify_sigma(open_row, sigma)
        resolved = unifier.resolve_sigma(open_row)
        assert len(resolved.prods) == len(sigma.prods)

    @given(st.integers(min_value=0, max_value=6))
    def test_pi_growth_reaches_requested_index(self, index):
        from repro.core.types import fresh_mt

        unifier = Unifier()
        open_pi = Pi(elems=(), tail=PiVar())
        needed = Pi(
            elems=tuple(fresh_mt() for _ in range(index + 1)), tail=PiVar()
        )
        unifier.unify_pi(open_pi, needed)
        assert len(unifier.resolve_pi(open_pi).elems) >= index + 1


# -- whole-pipeline property ---------------------------------------------------------


@st.composite
def dispatch_projects(draw):
    """A variant declaration + a correct dispatcher over a prefix of it."""
    sum_type = draw(variants())
    decl_parts = []
    for ctor in sum_type.constructors:
        if ctor.args:
            decl_parts.append(
                f"{ctor.name} of " + " * ".join("int" for _ in ctor.args)
            )
        else:
            decl_parts.append(ctor.name)
    ml = (
        "type t = "
        + " | ".join(decl_parts)
        + '\nexternal f : t -> int = "ml_f"'
    )
    nullary = [c for c in sum_type.constructors if not c.args]
    boxed = [c for c in sum_type.constructors if c.args]
    lines = ["value ml_f(value x)", "{", "    int r = 0;"]
    lines.append("    if (Is_long(x)) {")
    for number in range(len(nullary)):
        lines.append(
            f"        if (Int_val(x) == {number}) r = {number};"
        )
    lines.append("    } else {")
    for tag, ctor in enumerate(boxed):
        field = draw(st.integers(min_value=0, max_value=len(ctor.args) - 1))
        lines.append(
            f"        if (Tag_val(x) == {tag}) r = Int_val(Field(x, {field}));"
        )
    lines.append("    }")
    lines.append("    return Val_int(r);")
    lines.append("}")
    return ml, "\n".join(lines), sum_type


@settings(max_examples=40, deadline=None)
@given(dispatch_projects())
def test_correct_dispatchers_always_accepted(project):
    """Any Is_long/Tag_val-guarded dispatch within the type is accepted.

    Caveat: payload reads type-check against int only because the generated
    payloads are ints — this mirrors the Figure 2/8 discussion.
    """
    from repro import analyze_project

    ml, c, _sum_type = project
    report = analyze_project([ml], [c])
    assert not report.diagnostics, [d.render() for d in report.diagnostics]


@settings(max_examples=25, deadline=None)
@given(dispatch_projects(), st.integers(min_value=1, max_value=3))
def test_out_of_range_tag_always_rejected(project, excess):
    from repro import analyze_project
    from repro.diagnostics import Kind

    ml, c, sum_type = project
    boxed = [ctor for ctor in sum_type.constructors if ctor.args]
    bad_tag = len(boxed) + excess - 1
    bad_line = (
        f"        if (Tag_val(x) == {bad_tag}) r = 99;"
    )
    c = c.replace("    } else {", "    } else {\n" + bad_line)
    report = analyze_project([ml], [c])
    assert Kind.TAG_OUT_OF_RANGE in [d.kind for d in report.diagnostics]
