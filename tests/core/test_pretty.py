"""Tests for the type pretty-printer."""

from repro.core.pretty import TypePrinter, render_ct, render_mt
from repro.core.types import (
    C_INT,
    C_VOID,
    CFun,
    CPtr,
    CStruct,
    CTVar,
    CValue,
    INT_REPR,
    MTArrow,
    MTCustom,
    MTRepr,
    NOGC,
    PsiConst,
    UNIT_REPR,
    closed_pi,
    closed_sigma,
    fresh_gc,
    fresh_mt,
    fresh_sigma_row,
)
from repro.core.unify import Unifier


def test_scalars():
    unifier = Unifier()
    assert render_ct(unifier, C_INT) == "int"
    assert render_ct(unifier, C_VOID) == "void"
    assert render_ct(unifier, CStruct("win")) == "struct win"


def test_mt_variables_get_stable_letters():
    unifier = Unifier()
    printer = TypePrinter(unifier)
    a, b = fresh_mt(), fresh_mt()
    first = printer.mt(a)
    assert printer.mt(a) == first  # stable
    assert printer.mt(b) != first  # distinct


def test_named_variable_kept():
    unifier = Unifier()
    var = fresh_mt("'payload")
    assert render_mt(unifier, var) == "'payload"


def test_resolution_applied():
    unifier = Unifier()
    var = fresh_mt()
    unifier.unify_mt(var, INT_REPR)
    assert render_mt(unifier, var) == "(⊤, ∅)"


def test_repr_rendering():
    unifier = Unifier()
    t_repr = MTRepr(
        psi=PsiConst(2),
        sigma=closed_sigma([closed_pi([INT_REPR]), closed_pi([INT_REPR, INT_REPR])]),
    )
    rendered = render_mt(unifier, t_repr)
    assert rendered == "(2, ((⊤, ∅)) + ((⊤, ∅) × (⊤, ∅)))"


def test_open_rows_named():
    unifier = Unifier()
    open_repr = MTRepr(psi=PsiConst(0), sigma=fresh_sigma_row())
    rendered = render_mt(unifier, open_repr)
    assert "σ1" in rendered


def test_custom_and_ctvar():
    unifier = Unifier()
    custom = MTCustom(CPtr(CStruct("win")))
    assert render_mt(unifier, custom) == "struct win * custom"
    opaque = MTCustom(CTVar(name="window"))
    assert "window" in render_mt(unifier, opaque)


def test_bound_ctvar_resolves():
    unifier = Unifier()
    var = CTVar(name="window")
    unifier.unify_ct(var, CPtr(CStruct("win")))
    assert render_ct(unifier, var) == "struct win *"


def test_function_signature():
    unifier = Unifier()
    fn = CFun((CValue(UNIT_REPR),), CValue(INT_REPR), NOGC)
    rendered = TypePrinter(unifier).signature("ml_f", fn)
    assert rendered.startswith("ml_f : ")
    assert "nogc" in rendered


def test_effect_variable_named():
    unifier = Unifier()
    fn = CFun((), C_INT, fresh_gc())
    rendered = render_ct(unifier, fn)
    assert "γ1" in rendered


def test_arrow():
    unifier = Unifier()
    assert (
        render_mt(unifier, MTArrow(UNIT_REPR, INT_REPR))
        == "((1, ∅) -> (⊤, ∅))"
    )
