"""Tests for unification over the multi-lingual type language."""

import pytest

from repro.core.types import (
    C_INT,
    C_VOID,
    CFun,
    CPtr,
    CStruct,
    CTVar,
    CValue,
    MTArrow,
    MTCustom,
    MTRepr,
    MTVar,
    NOGC,
    PSI_TOP,
    Pi,
    PiVar,
    PsiConst,
    Sigma,
    SigmaVar,
    closed_pi,
    closed_sigma,
    fresh_gc,
    fresh_mt,
    fresh_psi,
    fresh_sigma_row,
    INT_REPR,
    UNIT_REPR,
)
from repro.core.unify import (
    OccursCheckError,
    UnificationError,
    Unifier,
    instantiate_ct,
)


@pytest.fixture()
def unifier():
    return Unifier()


class TestMTUnification:
    def test_var_binds_to_term(self, unifier):
        var = fresh_mt()
        unifier.unify_mt(var, INT_REPR)
        assert unifier.resolve_mt(var) == INT_REPR

    def test_var_var_chain(self, unifier):
        a, b = fresh_mt(), fresh_mt()
        unifier.unify_mt(a, b)
        unifier.unify_mt(b, UNIT_REPR)
        assert unifier.resolve_mt(a) == UNIT_REPR

    def test_same_var_is_noop(self, unifier):
        var = fresh_mt()
        unifier.unify_mt(var, var)
        assert unifier.resolve_mt(var) is var

    def test_arrow_components_unify(self, unifier):
        a, b = fresh_mt(), fresh_mt()
        unifier.unify_mt(MTArrow(a, INT_REPR), MTArrow(UNIT_REPR, b))
        assert unifier.resolve_mt(a) == UNIT_REPR
        assert unifier.resolve_mt(b) == INT_REPR

    def test_arrow_vs_repr_fails(self, unifier):
        arrow = MTArrow(INT_REPR, INT_REPR)
        with pytest.raises(UnificationError):
            unifier.unify_mt(arrow, INT_REPR)

    def test_custom_components_unify(self, unifier):
        with pytest.raises(UnificationError):
            unifier.unify_mt(
                MTCustom(CPtr(CStruct("a"))), MTCustom(CPtr(CStruct("b")))
            )
        unifier.unify_mt(
            MTCustom(CPtr(CStruct("a"))), MTCustom(CPtr(CStruct("a")))
        )

    def test_occurs_check(self, unifier):
        var = fresh_mt()
        looped = MTArrow(var, INT_REPR)
        with pytest.raises(OccursCheckError):
            unifier.unify_mt(var, looped)

    def test_occurs_check_through_sigma(self, unifier):
        var = fresh_mt()
        repr_with_var = MTRepr(
            psi=PsiConst(0), sigma=closed_sigma([closed_pi([var])])
        )
        with pytest.raises(OccursCheckError):
            unifier.unify_mt(var, repr_with_var)


class TestPsiUnification:
    def test_const_with_same_const(self, unifier):
        unifier.unify_psi(PsiConst(2), PsiConst(2))

    def test_const_with_different_const_fails(self, unifier):
        with pytest.raises(UnificationError):
            unifier.unify_psi(PsiConst(2), PsiConst(3))

    def test_const_never_unifies_with_top(self, unifier):
        # paper §3.3.3: an int is not a sum
        with pytest.raises(UnificationError):
            unifier.unify_psi(PsiConst(1), PSI_TOP)
        with pytest.raises(UnificationError):
            unifier.unify_psi(PSI_TOP, PsiConst(1))

    def test_top_with_top(self, unifier):
        unifier.unify_psi(PSI_TOP, PSI_TOP)

    def test_var_binds_either_way(self, unifier):
        var = fresh_psi()
        unifier.unify_psi(var, PsiConst(4))
        assert unifier.resolve_psi(var) == PsiConst(4)
        var2 = fresh_psi()
        unifier.unify_psi(PSI_TOP, var2)
        assert unifier.resolve_psi(var2) is PSI_TOP

    def test_unit_int_incompatible(self, unifier):
        # ρ(unit) = (1, ∅) vs ρ(int) = (⊤, ∅)
        with pytest.raises(UnificationError):
            unifier.unify_mt(UNIT_REPR, INT_REPR)


class TestSigmaRowUnification:
    def test_closed_rows_same_arity(self, unifier):
        a, b = fresh_mt(), fresh_mt()
        left = closed_sigma([closed_pi([a])])
        right = closed_sigma([closed_pi([INT_REPR])])
        unifier.unify_sigma(left, right)
        assert unifier.resolve_mt(a) == INT_REPR
        assert unifier.resolve_mt(b) is b

    def test_open_row_grows(self, unifier):
        tail = SigmaVar()
        open_row = Sigma(prods=(), tail=tail)
        closed = closed_sigma([closed_pi([INT_REPR]), closed_pi([])])
        unifier.unify_sigma(open_row, closed)
        resolved = unifier.resolve_sigma(open_row)
        assert len(resolved.prods) == 2
        assert resolved.is_closed

    def test_closed_row_cannot_grow(self, unifier):
        small = closed_sigma([closed_pi([])])
        large = closed_sigma([closed_pi([]), closed_pi([])])
        with pytest.raises(UnificationError):
            unifier.unify_sigma(small, large)

    def test_two_open_rows_link_tails(self, unifier):
        left = Sigma(prods=(closed_pi([INT_REPR]),), tail=SigmaVar())
        right = Sigma(prods=(), tail=SigmaVar())
        unifier.unify_sigma(left, right)
        resolved_right = unifier.resolve_sigma(right)
        assert len(resolved_right.prods) == 1

    def test_open_vs_closed_empty_closes(self, unifier):
        open_row = Sigma(prods=(), tail=SigmaVar())
        unifier.unify_sigma(open_row, closed_sigma([]))
        assert unifier.resolve_sigma(open_row).is_closed

    def test_figure8_growth_scenario(self, unifier):
        """Paper §3.4: σ = π0 + σ', then σ' = π1 + σ'', then unify with t."""
        sigma = fresh_sigma_row()
        mt = MTRepr(psi=fresh_psi(), sigma=sigma)
        # tag test 0, then tag test 1 grow the row
        grow_to_0 = Sigma(prods=(Pi(elems=(), tail=PiVar()),), tail=SigmaVar())
        unifier.unify_sigma(mt.sigma, grow_to_0)
        grown = unifier.resolve_sigma(mt.sigma)
        assert len(grown.prods) >= 1
        grow_to_1 = Sigma(
            prods=(Pi(elems=(), tail=PiVar()), Pi(elems=(), tail=PiVar())),
            tail=SigmaVar(),
        )
        unifier.unify_sigma(mt.sigma, grow_to_1)
        # now unify with the closed representational type of t:
        # (2, (int) + (int × int))
        t_repr = MTRepr(
            psi=PsiConst(2),
            sigma=closed_sigma(
                [closed_pi([INT_REPR]), closed_pi([INT_REPR, INT_REPR])]
            ),
        )
        unifier.unify_mt(mt, t_repr)
        final = unifier.resolve_sigma(mt.sigma)
        assert final.is_closed
        assert len(final.prods) == 2
        assert unifier.resolve_psi(mt.psi) == PsiConst(2)


class TestPiRowUnification:
    def test_element_growth(self, unifier):
        open_pi = Pi(elems=(), tail=PiVar())
        closed = closed_pi([INT_REPR, UNIT_REPR])
        unifier.unify_pi(open_pi, closed)
        resolved = unifier.resolve_pi(open_pi)
        assert len(resolved.elems) == 2
        assert resolved.is_closed

    def test_closed_too_short_fails(self, unifier):
        with pytest.raises(UnificationError):
            unifier.unify_pi(closed_pi([INT_REPR]), closed_pi([INT_REPR, INT_REPR]))

    def test_elements_unify_pointwise(self, unifier):
        a = fresh_mt()
        unifier.unify_pi(closed_pi([a]), closed_pi([UNIT_REPR]))
        assert unifier.resolve_mt(a) == UNIT_REPR


class TestCTUnification:
    def test_scalars(self, unifier):
        unifier.unify_ct(C_INT, C_INT)
        unifier.unify_ct(C_VOID, C_VOID)
        with pytest.raises(UnificationError):
            unifier.unify_ct(C_INT, C_VOID)

    def test_struct_names(self, unifier):
        unifier.unify_ct(CStruct("a"), CStruct("a"))
        with pytest.raises(UnificationError):
            unifier.unify_ct(CStruct("a"), CStruct("b"))

    def test_value_vs_int_fails(self, unifier):
        with pytest.raises(UnificationError):
            unifier.unify_ct(CValue(fresh_mt()), C_INT)

    def test_pointer_targets(self, unifier):
        var = fresh_mt()
        unifier.unify_ct(CPtr(CValue(var)), CPtr(CValue(INT_REPR)))
        assert unifier.resolve_mt(var) == INT_REPR

    def test_function_arity_mismatch(self, unifier):
        f1 = CFun((C_INT,), C_INT, NOGC)
        f2 = CFun((C_INT, C_INT), C_INT, NOGC)
        with pytest.raises(UnificationError, match="arity"):
            unifier.unify_ct(f1, f2)

    def test_function_effects_reported_to_hook(self):
        seen = []
        unifier = Unifier(on_effect_equal=lambda a, b: seen.append((a, b)))
        g1, g2 = fresh_gc(), fresh_gc()
        unifier.unify_ct(CFun((), C_INT, g1), CFun((), C_INT, g2))
        assert seen == [(g1, g2)]

    def test_ctvar_binds(self, unifier):
        var = CTVar(name="window")
        unifier.unify_ct(var, CPtr(CStruct("win")))
        assert unifier.resolve_ct(var) == CPtr(CStruct("win"))
        # second binding at a different type must fail
        with pytest.raises(UnificationError):
            unifier.unify_ct(var, CPtr(CStruct("cursor")))

    def test_ctvar_occurs_check(self, unifier):
        var = CTVar()
        with pytest.raises(OccursCheckError):
            unifier.unify_ct(var, CPtr(var))


class TestDeepResolve:
    def test_deep_resolve_substitutes_everywhere(self, unifier):
        a = fresh_mt()
        ct = CValue(MTRepr(psi=PsiConst(0), sigma=closed_sigma([closed_pi([a])])))
        unifier.unify_mt(a, INT_REPR)
        resolved = unifier.deep_resolve_ct(ct)
        assert "⊤" in str(resolved)

    def test_heap_pointer_detection(self, unifier):
        boxed = CValue(
            MTRepr(psi=PsiConst(0), sigma=closed_sigma([closed_pi([INT_REPR])]))
        )
        unboxed = CValue(INT_REPR)
        assert unifier.is_heap_pointer_type(boxed)
        assert not unifier.is_heap_pointer_type(unboxed)
        assert not unifier.is_heap_pointer_type(C_INT)

    def test_heap_pointer_boxed_builtin(self, unifier):
        string = CValue(MTCustom(CPtr(CStruct("caml_string"))))
        naked = CValue(MTCustom(CPtr(CStruct("win"))))
        assert unifier.is_heap_pointer_type(string)
        assert not unifier.is_heap_pointer_type(naked)


class TestInstantiate:
    def test_fresh_vars_per_instantiation(self):
        var = MTVar(name="a")
        fn = CFun((CValue(var),), CValue(var), NOGC)
        inst1 = instantiate_ct(fn)
        inst2 = instantiate_ct(fn)
        assert isinstance(inst1, CFun)
        v1 = inst1.params[0].mt
        v2 = inst2.params[0].mt
        assert v1 is not var and v2 is not var and v1 is not v2
        # sharing within one instantiation is preserved
        assert inst1.params[0].mt is inst1.result.mt

    def test_effect_identity_preserved(self):
        effect = fresh_gc()
        fn = CFun((), C_INT, effect)
        assert instantiate_ct(fn).effect is effect
