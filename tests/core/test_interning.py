"""Hash-consing of the immutable type languages (PR 5).

The interned constructors must behave observably identically to plain
construction — same equality, same rendering, same diagnostics — while
making structurally equal terms *identical*, which is what the unifier's
``a is b`` fast path and the flow-join's ``ct is ct`` check rely on.
"""

from repro.cfront.lower import lower_unit
from repro.cfront.parser import parse_c_text
from repro.core.intern import (
    INTERN_CACHE_LIMIT,
    clear_intern_caches,
    intern_stats,
)
from repro.core.srctypes import CSrcPtr, CSrcScalar, CSrcValue
from repro.core.types import (
    C_INT,
    CPtr,
    CStruct,
    MTCustom,
    Pi,
    PsiConst,
    Sigma,
)

SOURCE = """
value ml_pair(value a, value b)
{
    CAMLparam2(a, b);
    CAMLlocal1(result);
    result = caml_alloc(2, 0);
    Store_field(result, 0, a);
    Store_field(result, 1, b);
    CAMLreturn(result);
}

int helper(int *p, struct buf *q)
{
    return *p + 1;
}
"""


class TestCoreTypeInterning:
    def test_structurally_equal_terms_are_identical(self):
        assert CPtr(C_INT) is CPtr(C_INT)
        assert CStruct("camera") is CStruct("camera")
        assert PsiConst(3) is PsiConst(3)
        assert Sigma(prods=(), tail=None) is Sigma(prods=(), tail=None)
        assert Pi(elems=(), tail=None) is Pi(elems=(), tail=None)
        assert MTCustom(CPtr(CStruct("caml_string"))) is MTCustom(
            CPtr(CStruct("caml_string"))
        )

    def test_distinct_terms_stay_distinct(self):
        assert CStruct("a") is not CStruct("b")
        assert PsiConst(1) is not PsiConst(2)

    def test_keyword_and_positional_construction_agree(self):
        assert Sigma((), None) is Sigma(prods=(), tail=None)

    def test_fresh_variables_are_never_conflated(self):
        from repro.core.types import CValue, fresh_mt

        # CValue embeds inference variables; two fresh ones must not merge
        assert CValue(fresh_mt()) is not CValue(fresh_mt())

    def test_cache_clear_is_safe(self):
        probe = CStruct("transient-intern-probe")
        clear_intern_caches()
        # a cleared cache only costs future hits; new terms still intern
        again = CStruct("transient-intern-probe")
        assert again == probe
        assert CStruct("transient-intern-probe") is again

    def test_stats_report_per_class_sizes(self):
        CStruct("stats-probe")
        stats = intern_stats()
        assert stats.get("CStruct", 0) >= 1
        assert all(size <= INTERN_CACHE_LIMIT for size in stats.values())


class TestParseLowerInterning:
    """parse -> lower twice yields identity-equal type objects and the
    same program shape (the satellite's equivalence requirement)."""

    def _lowered_types(self):
        program = lower_unit(parse_c_text(SOURCE))
        types = []
        for fn in program.functions:
            types.append(fn.return_type)
            types.extend(t for _, t in fn.params)
            types.extend(d.ctype for d in fn.local_decls)
        return types

    def test_two_lowerings_share_every_type_object(self):
        first = self._lowered_types()
        second = self._lowered_types()
        assert len(first) == len(second)
        for left, right in zip(first, second):
            assert left is right, (left, right)

    def test_srctype_constructors_are_interned(self):
        assert CSrcValue() is CSrcValue()
        assert CSrcScalar("int") is CSrcScalar("int")
        assert CSrcPtr(CSrcScalar("char")) is CSrcPtr(CSrcScalar("char"))
        assert CSrcScalar("int") is not CSrcScalar("long")

    def test_diagnostics_unchanged_across_repeat_analyses(self):
        from repro.api import Project

        ml = 'type t = { a : int; b : int }\nexternal f : t -> int = "ml_f"'
        c = (
            "value ml_f(value x)\n"
            "{\n"
            "    int first = Int_val(Field(x, 0));\n"
            "    int second = Int_val(Field(x, 2));\n"  # out of range
            "    return Val_int(first + second);\n"
            "}\n"
        )

        def run():
            report = Project().add_ocaml(ml).add_c(c).analyze()
            return [d.render() for d in report.diagnostics]

        first = run()
        second = run()
        assert first == second
        assert first  # the seeded defect is reported both times
