"""The CI workflow must stay a syntactically valid Actions definition."""

from pathlib import Path

import pytest

yaml = pytest.importorskip("yaml")

WORKFLOW = (
    Path(__file__).resolve().parent.parent
    / ".github"
    / "workflows"
    / "ci.yml"
)


@pytest.fixture(scope="module")
def workflow():
    assert WORKFLOW.is_file(), WORKFLOW
    return yaml.safe_load(WORKFLOW.read_text())


def test_triggers_on_push_and_pr(workflow):
    # PyYAML parses the bare `on:` key as boolean True
    triggers = workflow.get("on", workflow.get(True))
    assert "push" in triggers
    assert "pull_request" in triggers


def test_jobs_cover_lint_tests_and_bench(workflow):
    assert set(workflow["jobs"]) == {
        "lint",
        "test",
        "bench-smoke",
        "bench-trend",
        "serve-smoke",
        "concurrency-smoke",
        "link-smoke",
        "telemetry-smoke",
        "compiled-smoke",
    }


def test_serve_smoke_drives_the_daemon(workflow):
    steps = workflow["jobs"]["serve-smoke"]["steps"]
    commands = " ".join(step.get("run", "") for step in steps)
    assert "serve_smoke.py" in commands
    assert "watch" in commands


def test_bench_smoke_gates_the_serve_benchmark(workflow):
    steps = workflow["jobs"]["bench-smoke"]["steps"]
    commands = " ".join(step.get("run", "") for step in steps)
    assert "bench_serve.py" in commands
    assert "sarif" in commands


def test_every_step_is_well_formed(workflow):
    for name, job in workflow["jobs"].items():
        assert "runs-on" in job, name
        assert job["steps"], name
        for step in job["steps"]:
            assert "uses" in step or "run" in step, (name, step)


def test_python_matrix_spans_310_to_313(workflow):
    matrix = workflow["jobs"]["test"]["strategy"]["matrix"]
    assert matrix["python-version"] == ["3.10", "3.11", "3.12", "3.13"]


def test_lint_job_includes_format_check(workflow):
    runs = " ".join(
        step.get("run", "") for step in workflow["jobs"]["lint"]["steps"]
    )
    assert "ruff check" in runs
    assert "ruff format --check" in runs


def test_bench_smoke_runs_engine_benchmark_and_uploads_artifact(workflow):
    steps = workflow["jobs"]["bench-smoke"]["steps"]
    runs = " ".join(step.get("run", "") for step in steps)
    assert "mlffi-check bench" in runs
    assert "bench_batch.py --units 8 --quick" in runs
    uploads = [s for s in steps if "upload-artifact" in s.get("uses", "")]
    assert uploads and "batch-report.json" in uploads[0]["with"]["path"]


def test_bench_smoke_covers_the_pyext_dialect(workflow):
    steps = workflow["jobs"]["bench-smoke"]["steps"]
    runs = " ".join(step.get("run", "") for step in steps)
    assert "bench_pyext.py" in runs
    assert "--dialect pyext" in runs
    uploads = [s for s in steps if "upload-artifact" in s.get("uses", "")]
    assert "pyext-report.json" in uploads[0]["with"]["path"]


def test_bench_smoke_covers_the_jni_dialect(workflow):
    steps = workflow["jobs"]["bench-smoke"]["steps"]
    runs = " ".join(step.get("run", "") for step in steps)
    assert "bench_jni.py" in runs
    assert "--dialect jni" in runs
    uploads = [s for s in steps if "upload-artifact" in s.get("uses", "")]
    assert "jni-report.json" in uploads[0]["with"]["path"]


def test_bench_smoke_covers_the_rust_dialect(workflow):
    steps = workflow["jobs"]["bench-smoke"]["steps"]
    runs = " ".join(step.get("run", "") for step in steps)
    assert "bench_rust.py" in runs
    assert "--dialect rust" in runs
    # detection is exit-code visible: exactly the six seeded defects
    assert 'test "$status" -eq 6' in runs
    # the rule pack and the conformance report ride the same leg
    assert "mlffi-check rules --dialect rust" in runs
    assert "mlffi-check conformance examples/rust/bad_bindings" in runs
    uploads = [s for s in steps if "upload-artifact" in s.get("uses", "")]
    path = uploads[0]["with"]["path"]
    assert "rust-report.json" in path
    assert "rust-conformance.sarif" in path


def test_concurrency_cancels_superseded_runs(workflow):
    concurrency = workflow["concurrency"]
    assert concurrency["cancel-in-progress"] is True
    assert "group" in concurrency


def test_every_setup_python_step_caches_pip_on_pyproject(workflow):
    for name, job in workflow["jobs"].items():
        for step in job["steps"]:
            if "setup-python" not in step.get("uses", ""):
                continue
            with_ = step["with"]
            assert with_.get("cache") == "pip", (name, step)
            assert with_.get("cache-dependency-path") == "pyproject.toml", name


def test_bench_trend_merges_and_gates_the_trajectory(workflow):
    steps = workflow["jobs"]["bench-trend"]["steps"]
    runs = " ".join(step.get("run", "") for step in steps)
    assert "bench_trend.py" in runs
    assert "BENCH_PR10.json" in runs
    uploads = [s for s in steps if "upload-artifact" in s.get("uses", "")]
    assert uploads and "BENCH_PR10.json" in uploads[0]["with"]["path"]


def test_bench_smoke_runs_the_cold_benchmark_and_uploads_its_json(workflow):
    steps = workflow["jobs"]["bench-smoke"]["steps"]
    runs = " ".join(step.get("run", "") for step in steps)
    assert "bench_cold.py --quick" in runs
    uploads = [s for s in steps if "upload-artifact" in s.get("uses", "")]
    assert uploads and "cold-report.json" in uploads[0]["with"]["path"]


def test_bench_trend_stages_the_committed_baseline(workflow):
    # the regression gate must compare against the committed trajectory
    # even when the output filename matches the newest BENCH_*.json
    steps = workflow["jobs"]["bench-trend"]["steps"]
    runs = " ".join(step.get("run", "") for step in steps)
    assert ".bench-baseline" in runs
    assert "--baseline-dir" in runs


def test_artifacts_upload_only_from_canonical_py312_jobs(workflow):
    # bench JSON + SARIF artifacts come from single-leg py3.12 jobs; the
    # version matrix legs upload nothing
    for name, job in workflow["jobs"].items():
        uploads = [
            s for s in job["steps"] if "upload-artifact" in s.get("uses", "")
        ]
        if "strategy" in job:
            assert not uploads, f"matrix job {name} must not upload artifacts"
        for step in uploads:
            versions = [
                s["with"]["python-version"]
                for s in job["steps"]
                if "setup-python" in s.get("uses", "")
            ]
            assert versions == ["3.12"], name


def test_sarif_artifact_rides_the_bench_smoke_leg(workflow):
    steps = workflow["jobs"]["bench-smoke"]["steps"]
    uploads = [s for s in steps if "upload-artifact" in s.get("uses", "")]
    assert "glue.sarif" in uploads[0]["with"]["path"]


def test_concurrency_smoke_runs_the_gated_benchmark(workflow):
    job = workflow["jobs"]["concurrency-smoke"]
    assert job["needs"] == ["test"]
    runs = " ".join(step.get("run", "") for step in job["steps"])
    assert "bench_concurrency.py --quick" in runs
    # the smoke also drives the CLI-level async daemon once
    assert "mlffi-check" in runs and "serve" in runs


def test_bench_smoke_bundles_the_concurrency_report(workflow):
    # artifact@v4 forbids two jobs writing one artifact name, so the
    # report copy for the bundle is produced here, not in
    # concurrency-smoke
    steps = workflow["jobs"]["bench-smoke"]["steps"]
    runs = " ".join(step.get("run", "") for step in steps)
    assert "bench_concurrency.py" in runs
    uploads = [s for s in steps if "upload-artifact" in s.get("uses", "")]
    assert "concurrency-report.json" in uploads[0]["with"]["path"]


def test_link_smoke_gates_recall_rss_and_exit_codes(workflow):
    job = workflow["jobs"]["link-smoke"]
    assert job["needs"] == ["test"]
    runs = " ".join(step.get("run", "") for step in job["steps"])
    assert "bench_link.py --quick" in runs
    # every seeded corpus must be exit-code visible for all four dialects
    assert "mlffi-check link" in runs
    assert "--strict" in runs
    for dialect in ("ocaml", "pyext", "jni", "rust"):
        assert dialect in runs
    uploads = [
        s for s in job["steps"] if "upload-artifact" in s.get("uses", "")
    ]
    assert uploads and "link-report.json" in uploads[0]["with"]["path"]


def test_telemetry_smoke_validates_trace_and_metrics_artifacts(workflow):
    job = workflow["jobs"]["telemetry-smoke"]
    assert job["needs"] == ["test"]
    runs = " ".join(step.get("run", "") for step in job["steps"])
    # the traced sweep keeps the seeded corpus' exit code (2 link errors)
    assert "--trace-out trace.json" in runs
    assert "--metrics-out metrics.prom" in runs
    assert 'test "$status" -eq 2' in runs
    # shape gates: Perfetto nesting and the Prometheus sample grammar
    assert "traceEvents" in runs
    assert "mlffi_unit_seconds" in runs
    assert "mlffi_cache_probes_total" in runs
    uploads = [
        s for s in job["steps"] if "upload-artifact" in s.get("uses", "")
    ]
    assert uploads, "telemetry artifacts must be uploaded"
    path = uploads[0]["with"]["path"]
    assert "trace.json" in path and "metrics.prom" in path


def test_compiled_smoke_builds_runs_both_flavors_and_ships_a_wheel(workflow):
    job = workflow["jobs"]["compiled-smoke"]
    assert job["needs"] == ["test"]
    runs = " ".join(step.get("run", "") for step in job["steps"])
    # in-place mypyc compile, then the whole suite under both kernels
    assert "build_kernel.py" in runs
    assert "MLFFI_COMPILE" in runs or any(
        "MLFFI_COMPILE" in str(step.get("env", {})) for step in job["steps"]
    )
    envs = " ".join(str(step.get("env", {})) for step in job["steps"])
    assert "MLFFI_PURE_PYTHON" in runs or "MLFFI_PURE_PYTHON" in envs
    # byte-identity of diagnostics between the two kernel flavors
    assert "diagnostics_byte_identical" in runs
    assert "--compare-kernels" in runs
    # the compiled wheel is built and published as an artifact
    assert "pip wheel" in runs
    uploads = [
        s for s in job["steps"] if "upload-artifact" in s.get("uses", "")
    ]
    assert uploads and ".whl" in uploads[0]["with"]["path"]


def test_every_job_has_a_hang_watchdog_timeout(workflow):
    # a wedged daemon or benchmark must fail the job, not eat the
    # runner's 6-hour default
    for name, job in workflow["jobs"].items():
        assert isinstance(job.get("timeout-minutes"), int), name
        assert job["timeout-minutes"] <= 30, name
