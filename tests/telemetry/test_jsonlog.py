"""The JSON-lines event sink behind ``serve --log-json``."""

import io
import json
import threading

from repro.telemetry import JsonLogger


class TestJsonLogger:
    def test_emit_stamps_ts_and_writes_one_compact_line(self):
        stream = io.StringIO()
        logger = JsonLogger(stream=stream)
        logger.emit({"event": "request", "method": "ping", "id": 1})
        (line,) = stream.getvalue().splitlines()
        event = json.loads(line)
        assert event["event"] == "request"
        assert event["method"] == "ping"
        assert event["ts"] > 0
        assert ": " not in line  # compact separators, machine-first

    def test_explicit_ts_preserved(self):
        stream = io.StringIO()
        JsonLogger(stream=stream).emit({"ts": 42, "event": "request"})
        assert json.loads(stream.getvalue())["ts"] == 42

    def test_path_sink_appends_and_close_owns_the_handle(self, tmp_path):
        target = tmp_path / "events.jsonl"
        with JsonLogger(path=target) as logger:
            logger.emit({"event": "request", "id": 1})
        with JsonLogger(path=target) as logger:
            logger.emit({"event": "request", "id": 2})
        events = [
            json.loads(line) for line in target.read_text().splitlines()
        ]
        assert [e["id"] for e in events] == [1, 2]

    def test_close_leaves_borrowed_streams_open(self):
        stream = io.StringIO()
        logger = JsonLogger(stream=stream)
        logger.close()
        assert not stream.closed

    def test_concurrent_emits_stay_line_atomic(self, tmp_path):
        target = tmp_path / "events.jsonl"
        logger = JsonLogger(path=target)

        def write(worker):
            for index in range(50):
                logger.emit({"worker": worker, "index": index})

        threads = [
            threading.Thread(target=write, args=(n,)) for n in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        logger.close()
        lines = target.read_text().splitlines()
        assert len(lines) == 200
        for line in lines:
            json.loads(line)  # no interleaved garbage
