"""Instruments, the process registry, gated helpers, and exposition."""

import pytest

from repro.telemetry.metrics import (
    PROM_CONTENT_TYPE,
    Counter,
    Exposition,
    Gauge,
    Histogram,
    MetricsRegistry,
    REGISTRY,
    count_cache,
    count_link_conflicts,
    metrics_enabled,
    observe_stream_window,
    observe_unit,
    set_metrics_enabled,
)


@pytest.fixture(autouse=True)
def clean_registry():
    REGISTRY.reset()
    set_metrics_enabled(False)
    yield
    REGISTRY.reset()
    set_metrics_enabled(False)


class TestCounter:
    def test_inc_and_value(self):
        counter = Counter("hits", "", ("tier",))
        counter.inc(tier="memory")
        counter.inc(2, tier="memory")
        assert counter.value(tier="memory") == 3
        assert counter.value(tier="disk") == 0

    def test_render_includes_type_header_and_sorted_samples(self):
        counter = Counter("hits", "Cache hits", ("tier",))
        counter.inc(tier="memory")
        counter.inc(tier="disk")
        assert counter.render() == [
            "# HELP hits Cache hits",
            "# TYPE hits counter",
            'hits{tier="disk"} 1',
            'hits{tier="memory"} 1',
        ]

    def test_label_mismatch_rejected(self):
        counter = Counter("hits", "", ("tier",))
        with pytest.raises(ValueError):
            counter.inc(wrong="x")
        with pytest.raises(ValueError):
            counter.inc()

    def test_label_values_escaped(self):
        counter = Counter("c", "", ("path",))
        counter.inc(path='a"b\\c')
        (sample,) = [s for s in counter.render() if not s.startswith("#")]
        assert sample == 'c{path="a\\"b\\\\c"} 1'


class TestGauge:
    def test_set_overwrites(self):
        gauge = Gauge("depth", "")
        gauge.set(4)
        gauge.set(2)
        assert gauge.value() == 2
        assert gauge.render()[-1] == "depth 2"


class TestHistogram:
    def test_observe_fills_cumulative_buckets(self):
        histogram = Histogram("lat", "", buckets=(0.01, 0.1, 1.0))
        histogram.observe(0.05)
        histogram.observe(0.5)
        lines = histogram.render()
        assert 'lat_bucket{le="0.01"} 0' in lines
        assert 'lat_bucket{le="0.1"} 1' in lines
        assert 'lat_bucket{le="1.0"} 2' in lines
        assert 'lat_bucket{le="+Inf"} 2' in lines
        assert "lat_sum 0.55" in lines
        assert "lat_count 2" in lines
        assert histogram.count() == 2

    def test_labeled_series_stay_separate(self):
        histogram = Histogram("lat", "", ("dialect",), buckets=(1.0,))
        histogram.observe(0.5, dialect="jni")
        histogram.observe(0.5, dialect="pyext")
        assert histogram.count(dialect="jni") == 1
        assert histogram.count(dialect="pyext") == 1


class TestRegistry:
    def test_get_or_create_returns_the_same_instrument(self):
        registry = MetricsRegistry()
        first = registry.counter("c", "", ("tier",))
        second = registry.counter("c", "", ("tier",))
        assert first is second

    def test_type_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("c")
        with pytest.raises(ValueError):
            registry.gauge("c")

    def test_label_set_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("c", "", ("tier",))
        with pytest.raises(ValueError):
            registry.counter("c", "", ("dialect",))

    def test_render_sorts_families_and_reset_clears(self):
        registry = MetricsRegistry()
        registry.counter("zzz").inc()
        registry.gauge("aaa").set(1)
        text = registry.render()
        assert text.index("aaa") < text.index("zzz")
        assert text.endswith("\n")
        registry.reset()
        assert registry.render() == ""


class TestGatedHelpers:
    def test_disabled_helpers_touch_nothing(self):
        assert not metrics_enabled()
        observe_unit("ocaml", 0.1, fresh=True)
        count_cache("memory", hit=True)
        observe_stream_window(4)
        count_link_conflicts("link_conflicting_decl")
        assert REGISTRY.render() == ""

    def test_enabled_helpers_populate_the_registry(self):
        set_metrics_enabled(True)
        observe_unit("jni", 0.02, fresh=True)
        observe_unit("jni", 0.001, fresh=False)
        count_cache("memory", hit=True)
        count_cache("", hit=False)
        observe_stream_window(8)
        count_link_conflicts("link_unresolved_extern", 2)
        text = REGISTRY.render()
        assert (
            'mlffi_unit_seconds_count{dialect="jni",outcome="fresh"} 1'
            in text
        )
        assert (
            'mlffi_unit_seconds_count{dialect="jni",outcome="hit"} 1' in text
        )
        assert (
            'mlffi_cache_probes_total{tier="memory",outcome="hit"} 1' in text
        )
        # a miss has no serving tier; it lands under the `none` label
        assert (
            'mlffi_cache_probes_total{tier="none",outcome="miss"} 1' in text
        )
        assert "mlffi_stream_window_occupancy_count 1" in text
        assert (
            'mlffi_link_conflicts_total{kind="link_unresolved_extern"} 2'
            in text
        )

    def test_zero_conflicts_record_nothing(self):
        set_metrics_enabled(True)
        count_link_conflicts("link_unresolved_extern", 0)
        assert REGISTRY.render() == ""


class TestExposition:
    def test_render_sorts_families_and_samples(self):
        exposition = Exposition()
        exposition.add("zzz", 1, kind="counter")
        exposition.add("aaa", 2.5, help_text="first", tier="memory")
        text = exposition.render()
        assert text.splitlines() == [
            "# HELP aaa first",
            "# TYPE aaa gauge",
            'aaa{tier="memory"} 2.5',
            "# TYPE zzz counter",
            "zzz 1",
        ]

    def test_add_stats_skips_bools_and_non_numerics(self):
        exposition = Exposition()
        exposition.add_stats(
            "mlffi_cache",
            {"hits": 3, "path": "/tmp/x", "shared": True, "ratio": 0.5},
            kind="counter",
            tier="disk",
        )
        text = exposition.render()
        assert 'mlffi_cache_hits{tier="disk"} 3' in text
        assert 'mlffi_cache_ratio{tier="disk"} 0.5' in text
        assert "path" not in text
        assert "shared" not in text

    def test_registry_instruments_appended(self):
        registry = MetricsRegistry()
        registry.counter("pushed").inc()
        exposition = Exposition(registry)
        exposition.add("pulled", 1)
        text = exposition.render()
        assert text.index("pulled") < text.index("pushed")

    def test_content_type_is_the_prometheus_text_subset(self):
        assert PROM_CONTENT_TYPE == "text/plain; version=0.0.4"
