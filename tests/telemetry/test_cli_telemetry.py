"""CLI telemetry flags: trace/metrics artifacts, and the guarantee that
turning them on never perturbs the analysis output itself."""

import json

import pytest

from repro.cli import main

ML = (
    "type t = A of int | B\n"
    'external get : t -> int = "ml_get"\n'
    'external bad : int -> int = "ml_bad"\n'
)

GOOD_C = """\
value ml_get(value x)
{
    if (Is_long(x)) return Val_int(0);
    return Field(x, 0);
}
"""

BAD_C = "value ml_bad(value x) { return Val_int(x); }\n"


@pytest.fixture()
def tree(tmp_path):
    root = tmp_path / "tree"
    root.mkdir()
    (root / "lib.ml").write_text(ML)
    (root / "good.c").write_text(GOOD_C)
    (root / "bad.c").write_text(BAD_C)
    return root


def normalized(text: str) -> str:
    """The JSON output with volatile wall-clock numbers zeroed and the
    opt-in telemetry stanza removed — everything else must match to the
    byte when telemetry is switched on."""

    def scrub(node):
        if isinstance(node, dict):
            return {
                key: 0.0 if key.endswith("_seconds") else scrub(value)
                for key, value in node.items()
                if key != "telemetry"
            }
        if isinstance(node, list):
            return [scrub(item) for item in node]
        return node

    return json.dumps(scrub(json.loads(text)), sort_keys=True)


class TestOutputUnperturbed:
    def test_check_json_identical_with_and_without_telemetry(
        self, tree, tmp_path, capsys
    ):
        argv = [
            "check",
            str(tree / "lib.ml"),
            str(tree / "good.c"),
            "--format",
            "json",
        ]
        code_off = main(argv)
        plain = capsys.readouterr().out
        code_on = main(
            argv
            + [
                "--trace-out",
                str(tmp_path / "t.json"),
                "--metrics-out",
                str(tmp_path / "m.prom"),
            ]
        )
        traced = capsys.readouterr().out
        assert code_on == code_off
        assert normalized(traced) == normalized(plain)

    def test_batch_json_identical_with_and_without_telemetry(
        self, tree, tmp_path, capsys
    ):
        argv = [
            "batch",
            str(tree),
            "--no-cache",
            "--jobs",
            "1",
            "--format",
            "json",
        ]
        code_off = main(argv)
        plain = capsys.readouterr().out
        code_on = main(
            argv
            + [
                "--trace-out",
                str(tmp_path / "t.json"),
                "--metrics-out",
                str(tmp_path / "m.prom"),
            ]
        )
        traced = capsys.readouterr().out
        assert code_on == code_off == 1  # the seeded Val_int bug
        assert normalized(traced) == normalized(plain)

    def test_stanza_only_appears_when_tracing(self, tree, tmp_path, capsys):
        main(["batch", str(tree), "--no-cache", "--format", "json"])
        assert "telemetry" not in json.loads(capsys.readouterr().out)
        main(
            [
                "batch",
                str(tree),
                "--no-cache",
                "--format",
                "json",
                "--trace-out",
                str(tmp_path / "t.json"),
            ]
        )
        doc = json.loads(capsys.readouterr().out)
        assert doc["telemetry"]["phases"]["unit"]["count"] == 2


class TestTraceArtifact:
    def test_batch_trace_nests_phases_inside_unit_spans(
        self, tree, tmp_path, capsys
    ):
        out = tmp_path / "t.json"
        main(
            [
                "batch",
                str(tree),
                "--no-cache",
                "--format",
                "json",
                "--trace-out",
                str(out),
            ]
        )
        capsys.readouterr()
        events = json.loads(out.read_text())["traceEvents"]
        units = [e for e in events if e["cat"] == "unit"]
        assert len(units) == 2
        for unit in units:
            lo, hi = unit["ts"], unit["ts"] + unit["dur"]
            nested = {
                e["name"]
                for e in events
                if e["cat"] == "phase"
                and e["pid"] == unit["pid"]
                and lo <= e["ts"]
                and e["ts"] + e["dur"] <= hi + 1
            }
            assert {"lex", "parse", "lower", "dataflow"} <= nested

    def test_check_trace_records_the_single_unit(
        self, tree, tmp_path, capsys
    ):
        out = tmp_path / "t.json"
        main(
            [
                "check",
                str(tree / "lib.ml"),
                str(tree / "good.c"),
                "--trace-out",
                str(out),
            ]
        )
        capsys.readouterr()
        events = json.loads(out.read_text())["traceEvents"]
        (unit,) = [e for e in events if e["cat"] == "unit"]
        assert unit["name"] == "<project>"
        assert unit["args"]["dialect"] == "ocaml"


class TestMetricsArtifact:
    def test_batch_metrics_carry_units_and_cache_probes(
        self, tree, tmp_path, capsys
    ):
        out = tmp_path / "m.prom"
        main(
            [
                "batch",
                str(tree),
                "--no-cache",
                "--format",
                "json",
                "--metrics-out",
                str(out),
            ]
        )
        capsys.readouterr()
        text = out.read_text()
        assert "mlffi_run_units 2" in text
        assert (
            'mlffi_cache_probes_total{tier="none",outcome="miss"} 2' in text
        )
        assert (
            'mlffi_unit_seconds_count{dialect="ocaml",outcome="fresh"} 2'
            in text
        )

    def test_warm_batch_metrics_split_hits_by_tier(
        self, tree, tmp_path, capsys
    ):
        cache_dir = str(tmp_path / "cache")
        argv = ["batch", str(tree), "--cache-dir", cache_dir, "--format", "json"]
        main(argv)
        capsys.readouterr()
        out = tmp_path / "m.prom"
        main(argv + ["--metrics-out", str(out)])
        capsys.readouterr()
        text = out.read_text()
        assert (
            'mlffi_cache_probes_total{tier="disk",outcome="hit"} 2' in text
        )
        assert (
            'mlffi_unit_seconds_count{dialect="ocaml",outcome="hit"} 2'
            in text
        )

    def test_metrics_disabled_outside_the_run(self, tree, tmp_path, capsys):
        from repro.telemetry import REGISTRY, metrics_enabled

        main(
            [
                "batch",
                str(tree),
                "--no-cache",
                "--format",
                "json",
                "--metrics-out",
                str(tmp_path / "m.prom"),
            ]
        )
        capsys.readouterr()
        assert not metrics_enabled()
        REGISTRY.reset()
