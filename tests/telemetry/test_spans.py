"""Span recording, tracer scoping, and Chrome trace-event export."""

import json
import os
import threading
import time

import pytest

from repro.telemetry import (
    Tracer,
    aggregate_phases,
    current_tracer,
    install,
    set_hooks_enabled,
    span,
    uninstall,
    use,
    write_trace,
)


@pytest.fixture(autouse=True)
def clean_scopes():
    yield
    uninstall()
    set_hooks_enabled(True)


class TestSpanRecording:
    def test_span_produces_a_complete_event(self):
        tracer = Tracer()
        with tracer.span("parse", "phase"):
            pass
        (event,) = tracer.export()
        assert event["name"] == "parse"
        assert event["cat"] == "phase"
        assert event["ph"] == "X"
        assert event["pid"] == os.getpid()
        assert event["tid"] == threading.get_ident()
        assert event["dur"] >= 0
        assert isinstance(event["ts"], int)

    def test_duration_tracks_wall_time(self):
        tracer = Tracer()
        with tracer.span("sleep"):
            time.sleep(0.01)
        (event,) = tracer.export()
        assert event["dur"] >= 9_000  # microseconds

    def test_category_defaults_to_phase(self):
        tracer = Tracer()
        with tracer.span("lex"):
            pass
        assert tracer.export()[0]["cat"] == "phase"

    def test_args_attached_only_when_present(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        with tracer.span("b", "unit", {"dialect": "jni"}):
            pass
        bare, labeled = tracer.export()
        assert "args" not in bare
        assert labeled["args"] == {"dialect": "jni"}

    def test_absorb_merges_foreign_events(self):
        parent, worker = Tracer(), Tracer()
        with worker.span("unit", "unit"):
            pass
        parent.absorb(worker.export())
        assert len(parent) == 1

    def test_concurrent_spans_all_land(self):
        tracer = Tracer()

        def record():
            for _ in range(50):
                with tracer.span("work"):
                    pass

        threads = [threading.Thread(target=record) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(tracer) == 200


class TestScoping:
    def test_module_span_is_noop_without_any_tracer(self):
        assert current_tracer() is None
        with span("orphan"):
            pass  # nothing to record into; must not raise

    def test_install_makes_a_global_fallback(self):
        tracer = Tracer()
        install(tracer)
        with span("global", cat="phase"):
            pass
        assert current_tracer() is tracer
        assert len(tracer) == 1
        uninstall()
        with span("after"):
            pass
        assert len(tracer) == 1

    def test_use_shadows_the_global_tracer(self):
        fallback, contextual = Tracer(), Tracer()
        install(fallback)
        with use(contextual):
            assert current_tracer() is contextual
            with span("shadowed"):
                pass
        assert current_tracer() is fallback
        assert len(contextual) == 1
        assert len(fallback) == 0

    def test_hooks_disabled_bypasses_everything(self):
        tracer = Tracer()
        install(tracer)
        set_hooks_enabled(False)
        assert current_tracer() is None
        with span("invisible"):
            pass
        assert len(tracer) == 0
        set_hooks_enabled(True)
        with span("visible"):
            pass
        assert len(tracer) == 1


class TestExport:
    def test_write_trace_is_perfetto_loadable_json(self, tmp_path):
        tracer = Tracer()
        with tracer.span("unit", "unit"):
            with tracer.span("parse"):
                pass
        out = tmp_path / "trace.json"
        write_trace(out, tracer.export())
        document = json.loads(out.read_text())
        assert document["displayTimeUnit"] == "ms"
        assert [e["name"] for e in document["traceEvents"]] == [
            "parse",
            "unit",
        ]

    def test_nesting_by_time_containment(self):
        # Perfetto nests same-pid/tid events by containment; the inner
        # span must close inside the outer one's window
        tracer = Tracer()
        with tracer.span("unit", "unit"):
            with tracer.span("parse"):
                time.sleep(0.001)
        parse, unit = tracer.export()
        assert unit["ts"] <= parse["ts"]
        assert parse["ts"] + parse["dur"] <= unit["ts"] + unit["dur"] + 1


class TestAggregatePhases:
    def test_phases_group_by_name(self):
        events = [
            {"name": "lex", "cat": "phase", "ph": "X", "dur": 1_000_000},
            {"name": "lex", "cat": "phase", "ph": "X", "dur": 500_000},
            {"name": "parse", "cat": "phase", "ph": "X", "dur": 250_000},
        ]
        phases = aggregate_phases(events)
        assert phases["lex"] == {"count": 2, "seconds": 1.5}
        assert phases["parse"] == {"count": 1, "seconds": 0.25}

    def test_unit_and_request_spans_group_by_category(self):
        # one `unit` row, not one row per translation unit name
        events = [
            {"name": "a.c", "cat": "unit", "ph": "X", "dur": 100},
            {"name": "b.c", "cat": "unit", "ph": "X", "dur": 100},
            {"name": "check", "cat": "request", "ph": "X", "dur": 100},
        ]
        phases = aggregate_phases(events)
        assert phases["unit"]["count"] == 2
        assert phases["request"]["count"] == 1

    def test_non_complete_events_skipped_and_keys_sorted(self):
        events = [
            {"name": "meta", "ph": "M"},
            {"name": "zz", "cat": "phase", "ph": "X", "dur": 1},
            {"name": "aa", "cat": "phase", "ph": "X", "dur": 1},
        ]
        assert list(aggregate_phases(events)) == ["aa", "zz"]
