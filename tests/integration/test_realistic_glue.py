"""Integration pack: realistic 2004-era glue idioms end to end.

Each test is modeled on a pattern that appears in the paper's benchmark
libraries (zlib/ssl/gtk-style wrappers): exception raising, custom handles
threaded through sums, bytecode stubs, blocking sections, early-error
gotos, and multi-function modules sharing helpers.
"""


from repro import Kind, analyze_project


def kinds(report):
    return [d.kind for d in report.diagnostics]


class TestExceptionRaising:
    def test_failwith_on_error_path(self):
        ml = 'external openf : string -> int = "ml_openf"'
        c = """
        value ml_openf(value path)
        {
            CAMLparam1(path);
            int fd = sys_open(String_val(path));
            if (fd < 0) {
                caml_failwith("open failed");
            }
            CAMLreturn(Val_int(fd));
        }
        """
        report = analyze_project([ml], [c])
        assert kinds(report) == []

    def test_failwith_makes_function_gc(self):
        # raising allocates the exception: callers must protect across it
        ml = """
        external check : string -> string -> unit = "ml_check"
        """
        c = """
        void die(void)
        {
            caml_failwith("bad");
        }
        value ml_check(value a, value b)
        {
            if (caml_string_length(a) == 0) die();
            use_string(String_val(b));
            return Val_unit;
        }
        """
        report = analyze_project([ml], [c])
        assert Kind.UNPROTECTED_VALUE in kinds(report)

    def test_invalid_argument_clean_when_nothing_live(self):
        ml = 'external halve : int -> int = "ml_halve"'
        c = """
        value ml_halve(value n)
        {
            int k = Int_val(n);
            if (k % 2) caml_invalid_argument("odd");
            return Val_int(k / 2);
        }
        """
        assert kinds(analyze_project([ml], [c])) == []


class TestErrorGotoIdiom:
    def test_cleanup_label(self):
        ml = 'external run : int -> int = "ml_run"'
        c = """
        value ml_run(value n)
        {
            int rc = 0;
            int handle = acquire(Int_val(n));
            if (handle < 0) goto fail;
            rc = use_handle(handle);
            if (rc < 0) goto fail;
            release(handle);
            return Val_int(rc);
        fail:
            release(handle);
            return Val_int(-1);
        }
        """
        assert kinds(analyze_project([ml], [c])) == []

    def test_tag_facts_flow_along_goto(self):
        ml = """
        type t = A of int | B of int * int
        external pick : t -> int = "ml_pick"
        """
        c = """
        value ml_pick(value x)
        {
            value payload;
            if (Is_block(x)) {
                if (Tag_val(x) == 1) goto second;
                if (Tag_val(x) == 0) {
                    payload = Field(x, 0);
                    return payload;
                }
            }
            return Val_int(0);
        second:
            payload = Field(x, 1);
            return payload;
        }
        """
        # at `second`, x is boxed with tag 1 — Field(x, 1) is B's 2nd field
        assert kinds(analyze_project([ml], [c])) == []

    def test_untested_tag_after_failed_test_rejected(self):
        # the fall-through of a tag test learns nothing (paper (If sum tag));
        # reading a field there without another test is an error
        ml = """
        type t = A of int | B of int * int
        external pick : t -> int = "ml_pick"
        """
        c = """
        value ml_pick(value x)
        {
            value payload;
            if (Is_block(x)) {
                if (Tag_val(x) == 1) goto second;
                payload = Field(x, 0);   /* tag untested here */
                return payload;
            }
            return Val_int(0);
        second:
            payload = Field(x, 1);
            return payload;
        }
        """
        assert Kind.BAD_FIELD_ACCESS in kinds(analyze_project([ml], [c]))


class TestCustomHandleLifecycle:
    def test_handle_in_option(self):
        ml = """
        type db
        external find : db -> int -> int option = "ml_find"
        """
        c = """
        struct database;
        int db_lookup(struct database *d, int key);
        value ml_find(value dbv, value key)
        {
            CAMLparam2(dbv, key);
            CAMLlocal1(some);
            struct database *db = (struct database *)dbv;
            int hit = db_lookup(db, Int_val(key));
            if (hit < 0) CAMLreturn(Val_none);
            some = caml_alloc(1, 0);
            Store_field(some, 0, Val_int(hit));
            CAMLreturn(some);
        }
        """
        report = analyze_project([ml], [c])
        assert kinds(report) == []

    def test_blocking_section_around_syscall(self):
        ml = 'external wait : int -> int = "ml_wait"'
        c = """
        value ml_wait(value fd)
        {
            int n = Int_val(fd);
            int r;
            caml_enter_blocking_section();
            r = do_wait(n);
            caml_leave_blocking_section();
            return Val_int(r);
        }
        """
        assert kinds(analyze_project([ml], [c])) == []


class TestBytecodeStubs:
    ML = (
        "external blit : int -> int -> int -> int -> int -> int -> unit"
        ' = "ml_blit_bc" "ml_blit"'
    )

    def test_native_stub_checked_per_argument(self):
        c = """
        value ml_blit(value a, value b, value c, value d, value e, value f)
        {
            do_blit(Int_val(a), Int_val(b), Int_val(c),
                    Int_val(d), Int_val(e), Int_val(f));
            return Val_unit;
        }
        value ml_blit_bc(value *argv, int argn)
        {
            value r = ml_blit(argv[0], argv[1], argv[2], argv[3], argv[4], argv[5]);
            return r;
        }
        """
        report = analyze_project([self.ML], [c])
        assert kinds(report) == []

    def test_native_stub_bug_still_found(self):
        c = """
        value ml_blit(value a, value b, value c, value d, value e, value f)
        {
            return Val_int(a);
        }
        value ml_blit_bc(value *argv, int argn)
        {
            value r = ml_blit(argv[0], argv[1], argv[2], argv[3], argv[4], argv[5]);
            return r;
        }
        """
        report = analyze_project([self.ML], [c])
        assert Kind.BAD_VAL_INT in kinds(report)


class TestMultiFunctionModules:
    def test_shared_helper_effects_propagate_transitively(self):
        ml = 'external push : string -> unit = "ml_push"'
        c = """
        value make_node(value v)
        {
            CAMLparam1(v);
            CAMLlocal1(n);
            n = caml_alloc(2, 0);
            Store_field(n, 0, v);
            CAMLreturn(n);
        }
        value wrap_node(value v)
        {
            CAMLparam1(v);
            CAMLlocal1(r);
            r = make_node(v);
            CAMLreturn(r);
        }
        value ml_push(value s)
        {
            value node = wrap_node(s);
            touch_string(String_val(s));
            return Val_unit;
        }
        """
        # make_node allocates -> wrap_node may GC -> ml_push must protect s
        report = analyze_project([ml], [c])
        assert Kind.UNPROTECTED_VALUE in kinds(report)

    def test_fixed_version_clean(self):
        ml = 'external push : string -> unit = "ml_push"'
        c = """
        value make_node(value v)
        {
            CAMLparam1(v);
            CAMLlocal1(n);
            n = caml_alloc(2, 0);
            Store_field(n, 0, v);
            CAMLreturn(n);
        }
        value ml_push(value s)
        {
            CAMLparam1(s);
            CAMLlocal1(node);
            node = make_node(s);
            touch_string(String_val(s));
            CAMLreturn(Val_unit);
        }
        """
        assert kinds(analyze_project([ml], [c])) == []


class TestNestedData:
    def test_pair_of_options(self):
        ml = 'external both : int option * int option -> int = "ml_both"'
        c = """
        value ml_both(value p)
        {
            value left = Field(p, 0);
            value right = Field(p, 1);
            int total = 0;
            if (Is_block(left)) total += Int_val(Field(left, 0));
            if (Is_block(right)) total += Int_val(Field(right, 0));
            return Val_int(total);
        }
        """
        assert kinds(analyze_project([ml], [c])) == []

    def test_sum_carrying_tuple(self):
        ml = """
        type shape = Dot | Box of (int * int)
        external area : shape -> int = "ml_area"
        """
        c = """
        value ml_area(value s)
        {
            if (Is_long(s)) return Val_int(0);
            if (Tag_val(s) == 0) {
                value dims = Field(s, 0);
                return Val_int(Int_val(Field(dims, 0)) * Int_val(Field(dims, 1)));
            }
            return Val_int(0);
        }
        """
        assert kinds(analyze_project([ml], [c])) == []

    def test_record_with_string_field(self):
        ml = """
        type entry = { key : string; weight : int }
        external weigh : entry -> int = "ml_weigh"
        """
        c = """
        value ml_weigh(value e)
        {
            value k = Field(e, 0);
            int w = Int_val(Field(e, 1));
            int len = caml_string_length(k);
            return Val_int(w * len);
        }
        """
        assert kinds(analyze_project([ml], [c])) == []

    def test_wrong_field_order_caught(self):
        ml = """
        type entry = { key : string; weight : int }
        external weigh : entry -> int = "ml_weigh"
        """
        c = """
        value ml_weigh(value e)
        {
            int w = Int_val(Field(e, 0));   /* field 0 is the string! */
            return Val_int(w);
        }
        """
        report = analyze_project([ml], [c])
        assert report.errors
