"""Tests for the inferred-signature dump on analysis reports."""

from repro import analyze_project


class TestSignatureDump:
    def test_signature_for_every_analyzed_function(self):
        report = analyze_project(
            ['external f : int -> int = "ml_f"'],
            [
                "value ml_f(value x) { return Val_int(Int_val(x)); }\n"
                "int helper(int n) { return n + 1; }"
            ],
        )
        assert set(report.signatures) == {"ml_f", "helper"}

    def test_ocaml_types_visible_through_value(self):
        report = analyze_project(
            [
                "type t = A of int | B\n"
                'external f : t -> int = "ml_f"'
            ],
            [
                """
                value ml_f(value x)
                {
                    if (Is_long(x)) return Val_int(0);
                    return Field(x, 0);
                }
                """
            ],
        )
        signature = report.signatures["ml_f"]
        # ρ(t) = (1, (⊤,∅)) — one nullary ctor, one int-payload product
        assert "(1, " in signature
        assert "value" in signature

    def test_solved_effects_rendered(self):
        report = analyze_project(
            ['external f : unit -> string = "ml_f"'],
            [
                """
                value ml_f(value u)
                {
                    value s = caml_copy_string("x");
                    return s;
                }
                int pure(int n) { return n; }
                """
            ],
        )
        assert "-[gc]->" in report.signatures["ml_f"]
        assert "-[nogc]->" in report.signatures["pure"]

    def test_transitive_gc_effect_in_signature(self):
        report = analyze_project(
            [],
            [
                """
                value mk(void)
                {
                    value v = caml_alloc(1, 0);
                    return v;
                }
                value outer(void)
                {
                    value v = mk();
                    return v;
                }
                """
            ],
        )
        assert "-[gc]->" in report.signatures["outer"]
