"""The §5.1 hand annotations: C helpers polymorphic in value parameters.

The analysis of C functions is monomorphic; a helper like "store this
value into that block" used at two different OCaml types would conflate
them.  The paper allowed hand-annotating such functions (4 in its suite);
ours uses the ``MLFFI_POLYMORPHIC`` marker.
"""

from repro import Kind, analyze_project


def kinds(report):
    return [d.kind for d in report.diagnostics]


ML = """
external wrap_int    : int -> int ref       = "ml_wrap_int"
external wrap_string : string -> string ref = "ml_wrap_string"
"""

HELPER = """
MLFFI_POLYMORPHIC value make_ref(value v)
{
    CAMLparam1(v);
    CAMLlocal1(r);
    r = caml_alloc(1, 0);
    Store_field(r, 0, v);
    CAMLreturn(r);
}
"""

MONO_HELPER = HELPER.replace("MLFFI_POLYMORPHIC ", "")

USERS = """
value ml_wrap_int(value n)
{
    CAMLparam1(n);
    CAMLlocal1(r);
    r = make_ref(n);
    CAMLreturn(r);
}
value ml_wrap_string(value s)
{
    CAMLparam1(s);
    CAMLlocal1(r);
    r = make_ref(s);
    CAMLreturn(r);
}
"""


class TestPolymorphicHelper:
    def test_annotated_helper_usable_at_two_types(self):
        report = analyze_project([ML], [HELPER + USERS])
        assert kinds(report) == []

    def test_monomorphic_helper_conflates(self):
        report = analyze_project([ML], [MONO_HELPER + USERS])
        # int ref and string ref meet in make_ref's parameter: a mismatch
        assert Kind.TYPE_MISMATCH in kinds(report)

    def test_single_use_needs_no_annotation(self):
        single = """
        value ml_wrap_int(value n)
        {
            CAMLparam1(n);
            CAMLlocal1(r);
            r = make_ref(n);
            CAMLreturn(r);
        }
        """
        report = analyze_project(
            ['external wrap_int : int -> int ref = "ml_wrap_int"'],
            [MONO_HELPER + single],
        )
        assert kinds(report) == []

    def test_annotation_does_not_weaken_checking(self):
        # a genuinely wrong use through the polymorphic helper still fails
        bad_users = USERS.replace(
            "r = make_ref(s);", "r = make_ref(Val_int(s));"
        )
        report = analyze_project([ML], [HELPER + bad_users])
        assert Kind.BAD_VAL_INT in kinds(report)
