"""End-to-end tests of the multi-lingual checker (paper Figures 6/7, §5.2).

Each test is a miniature OCaml+C project; the assertions pin down which
Figure 9 column every construct lands in — errors, questionable-practice
warnings, false-positive-prone reports, imprecision — or that correct glue
code is accepted silently.
"""


from repro import Kind, Options, analyze_project


def kinds(report):
    return [d.kind for d in report.diagnostics]


def analyze(ml, c, options=None):
    return analyze_project([ml] if ml else [], [c], options)


# ---------------------------------------------------------------------------
# Clean programs: correct glue code must be accepted
# ---------------------------------------------------------------------------


class TestCleanPrograms:
    def test_figure2_tag_dispatch(self):
        ml = """
        type t = A of int | B | C of int * int | D
        external examine : t -> int = "ml_examine"
        """
        c = """
        value ml_examine(value x)
        {
            int result = 0;
            if (Is_long(x)) {
                switch (Int_val(x)) {
                case 0: result = 1; break;
                case 1: result = 2; break;
                }
            } else {
                switch (Tag_val(x)) {
                case 0: result = Int_val(Field(x, 0)); break;
                case 1: result = Int_val(Field(x, 1)); break;
                }
            }
            return Val_int(result);
        }
        """
        assert kinds(analyze(ml, c)) == []

    def test_tuple_access_without_test(self):
        # products are always boxed; no Is_long needed (Val Deref Tuple Exp)
        ml = 'external fst2 : int * int -> int = "ml_fst2"'
        c = "value ml_fst2(value p) { return Field(p, 0); }"
        assert kinds(analyze(ml, c)) == []

    def test_record_field_access(self):
        ml = """
        type point = { x : int; mutable y : int }
        external get_y : point -> int = "ml_get_y"
        """
        c = "value ml_get_y(value p) { return Field(p, 1); }"
        assert kinds(analyze(ml, c)) == []

    def test_ref_read_and_write(self):
        ml = 'external bump : int ref -> unit = "ml_bump"'
        c = """
        value ml_bump(value r)
        {
            int v = Int_val(Field(r, 0));
            Store_field(r, 0, Val_int(v + 1));
            return Val_unit;
        }
        """
        assert kinds(analyze(ml, c)) == []

    def test_option_with_proper_test(self):
        ml = 'external get : int option -> int = "ml_get"'
        c = """
        value ml_get(value o)
        {
            if (Is_long(o)) return Val_int(0);
            return Field(o, 0);
        }
        """
        assert kinds(analyze(ml, c)) == []

    def test_protected_allocation(self):
        ml = 'external pair : string -> string -> string * string = "ml_pair"'
        c = """
        value ml_pair(value a, value b)
        {
            CAMLparam2(a, b);
            CAMLlocal1(block);
            block = caml_alloc(2, 0);
            Store_field(block, 0, a);
            Store_field(block, 1, b);
            CAMLreturn(block);
        }
        """
        assert kinds(analyze(ml, c)) == []

    def test_unprotected_ok_when_no_alloc(self):
        # Int-only code never needs registration.
        ml = 'external add : int -> int -> int = "ml_add"'
        c = "value ml_add(value a, value b) { return Val_int(Int_val(a) + Int_val(b)); }"
        assert kinds(analyze(ml, c)) == []

    def test_unprotected_ok_when_values_dead(self):
        # The value is consumed before the allocation; nothing live crosses.
        ml = 'external dup : string -> string = "ml_dup"'
        c = """
        value ml_dup(value s)
        {
            char *p = String_val(s);
            value r = caml_copy_string(p);
            return r;
        }
        """
        assert kinds(analyze(ml, c)) == []

    def test_bool_constants(self):
        ml = 'external flag : bool -> bool = "ml_flag"'
        c = """
        value ml_flag(value b)
        {
            if (Int_val(b) == 1) return Val_false;
            return Val_true;
        }
        """
        assert kinds(analyze(ml, c)) == []

    def test_custom_pointer_roundtrip(self):
        ml = """
        type window
        external make : unit -> window = "ml_make"
        external use : window -> unit = "ml_use"
        """
        c = """
        struct win;
        struct win *new_win(void);
        void use_win(struct win *w);
        value ml_make(value u)
        {
            struct win *w = new_win();
            return (value)w;
        }
        value ml_use(value v)
        {
            use_win((struct win *)v);
            return Val_unit;
        }
        """
        assert kinds(analyze(ml, c)) == []

    def test_list_head_after_test(self):
        ml = 'external hd : int list -> int = "ml_hd"'
        c = """
        value ml_hd(value l)
        {
            if (Is_block(l)) return Field(l, 0);
            return Val_int(0);
        }
        """
        assert kinds(analyze(ml, c)) == []

    def test_external_library_call(self):
        # calls to unknown C functions impose no GC obligations
        ml = 'external ping : int -> int = "ml_ping"'
        c = """
        value ml_ping(value n)
        {
            int r = net_ping(Int_val(n));
            return Val_int(r);
        }
        """
        assert kinds(analyze(ml, c)) == []

    def test_loop_over_int(self):
        ml = 'external sum : int -> int = "ml_sum"'
        c = """
        value ml_sum(value n)
        {
            int total = 0;
            int i;
            for (i = 0; i < Int_val(n); i++) total += i;
            return Val_int(total);
        }
        """
        assert kinds(analyze(ml, c)) == []


# ---------------------------------------------------------------------------
# Type-mismatch errors (19 of the paper's 24 errors)
# ---------------------------------------------------------------------------


class TestTypeErrors:
    def test_val_int_on_value(self):
        report = analyze(
            'external f : int -> int = "ml_f"',
            "value ml_f(value x) { return Val_int(x); }",
        )
        assert kinds(report) == [Kind.BAD_VAL_INT]

    def test_int_val_on_int(self):
        report = analyze(
            'external f : int -> int = "ml_f"',
            "value ml_f(value x) { int n = Int_val(x); return Int_val(n); }",
        )
        assert kinds(report) == [Kind.BAD_INT_VAL]

    def test_int_val_on_boxed_type(self):
        report = analyze(
            'external f : int * int -> int = "ml_f"',
            "value ml_f(value p) { return Val_int(Int_val(p)); }",
        )
        assert Kind.BAD_INT_VAL in kinds(report)

    def test_missing_val_int_on_return(self):
        report = analyze(
            'external f : int -> int = "ml_f"',
            "value ml_f(value x) { int n = Int_val(x); return n; }",
        )
        assert kinds(report) == [Kind.TYPE_MISMATCH]

    def test_tag_out_of_range(self):
        ml = """
        type t = A of int | B
        external f : t -> int = "ml_f"
        """
        c = """
        value ml_f(value x)
        {
            if (Is_long(x)) return Val_int(0);
            if (Tag_val(x) == 3) return Val_int(1);
            return Val_int(2);
        }
        """
        assert Kind.TAG_OUT_OF_RANGE in kinds(analyze(ml, c))

    def test_int_tag_out_of_range(self):
        ml = """
        type t = A | B
        external f : t -> int = "ml_f"
        """
        c = """
        value ml_f(value x)
        {
            if (Int_val(x) == 7) return Val_int(1);
            return Val_int(0);
        }
        """
        assert Kind.TAG_OUT_OF_RANGE in kinds(analyze(ml, c))

    def test_field_out_of_range(self):
        ml = 'external f : int * int -> int = "ml_f"'
        c = "value ml_f(value p) { return Field(p, 5); }"
        assert Kind.BAD_FIELD_ACCESS in kinds(analyze(ml, c))

    def test_option_misuse(self):
        report = analyze(
            'external f : int option -> int = "ml_f"',
            "value ml_f(value o) { return Field(o, 0); }",
        )
        assert kinds(report) == [Kind.OPTION_MISUSE]

    def test_field_on_sum_without_tag_test(self):
        ml = """
        type t = A of int | B of int
        external f : t -> int = "ml_f"
        """
        c = """
        value ml_f(value x)
        {
            if (Is_block(x)) return Field(x, 0);
            return Val_int(0);
        }
        """
        # two non-nullary constructors: needs a Tag_val test first
        assert Kind.BAD_FIELD_ACCESS in kinds(analyze(ml, c))

    def test_arity_mismatch(self):
        report = analyze(
            'external f : int -> int -> int = "ml_f"',
            "value ml_f(value a) { return a; }",
        )
        assert Kind.ARITY_MISMATCH in kinds(report)

    def test_wrong_payload_type(self):
        # writing an int where the external promises a string field
        ml = 'external f : unit -> string * string = "ml_f"'
        c = """
        value ml_f(value u)
        {
            CAMLlocal1(b);
            b = caml_alloc(2, 0);
            Store_field(b, 0, Val_int(3));
            CAMLreturn(b);
        }
        """
        report = analyze(ml, c)
        assert Kind.TYPE_MISMATCH in kinds(report)

    def test_value_as_condition(self):
        report = analyze(
            'external f : int -> int = "ml_f"',
            "value ml_f(value x) { if (x) return Val_int(1); return Val_int(0); }",
        )
        assert Kind.TYPE_MISMATCH in kinds(report)

    def test_conflicting_opaque_representations(self):
        ml = """
        type window
        external a : window -> unit = "ml_a"
        external b : window -> unit = "ml_b"
        """
        c = """
        struct win;
        struct cur;
        value ml_a(value v) { struct win *w = (struct win *)v; return Val_unit; }
        value ml_b(value v) { struct cur *c = (struct cur *)v; return Val_unit; }
        """
        assert Kind.VALUE_CAST in kinds(analyze(ml, c))


# ---------------------------------------------------------------------------
# GC errors (5 of the paper's 24)
# ---------------------------------------------------------------------------


class TestGCErrors:
    def test_unprotected_value_across_alloc(self):
        ml = 'external f : string -> string * string = "ml_f"'
        c = """
        value ml_f(value s)
        {
            value b = caml_alloc(2, 0);
            Store_field(b, 0, s);
            Store_field(b, 1, s);
            return b;
        }
        """
        report = analyze(ml, c)
        assert Kind.UNPROTECTED_VALUE in kinds(report)

    def test_indirect_gc_through_helper(self):
        # helper() allocates; caller's live value must still be registered
        ml = 'external f : string -> string = "ml_f"'
        c = """
        value helper(void)
        {
            value v = caml_alloc(1, 0);
            return v;
        }
        value ml_f(value s)
        {
            value t = helper();
            return s;
        }
        """
        report = analyze(ml, c)
        assert Kind.UNPROTECTED_VALUE in kinds(report)

    def test_no_error_through_nogc_helper(self):
        ml = 'external f : string -> int = "ml_f"'
        c = """
        int helper(int x) { return x + 1; }
        value ml_f(value s)
        {
            int n = helper(3);
            return Val_int(n);
        }
        """
        assert kinds(analyze(ml, c)) == []

    def test_missing_camlreturn(self):
        ml = 'external f : string -> int = "ml_f"'
        c = """
        value ml_f(value s)
        {
            CAMLparam1(s);
            int n = caml_string_length(s);
            return Val_int(n);
        }
        """
        assert kinds(analyze(ml, c)) == [Kind.MISSING_CAMLRETURN]

    def test_spurious_camlreturn(self):
        ml = 'external f : int -> int = "ml_f"'
        c = """
        value ml_f(value x)
        {
            CAMLreturn(x);
        }
        """
        assert kinds(analyze(ml, c)) == [Kind.SPURIOUS_CAMLRETURN]

    def test_callback_counts_as_gc(self):
        ml = 'external f : string -> string -> unit = "ml_f"'
        c = """
        value ml_f(value cb, value s)
        {
            value r = caml_callback(cb, Val_int(0));
            some_use(s);
            return Val_unit;
        }
        """
        report = analyze(ml, c)
        assert Kind.UNPROTECTED_VALUE in kinds(report)

    def test_noalloc_external_effect(self):
        # an external declared noalloc is nogc even though it is opaque
        ml = """
        external fast : int -> int = "ml_fast" "noalloc"
        external f : string -> int = "ml_f"
        """
        c = """
        value ml_fast(value x) { return Val_int(Int_val(x) * 2); }
        value ml_f(value s)
        {
            value r = ml_fast(Val_int(3));
            return Val_int(caml_string_length(s));
        }
        """
        assert kinds(analyze(ml, c)) == []


# ---------------------------------------------------------------------------
# Questionable-practice warnings (the paper's 22)
# ---------------------------------------------------------------------------


class TestWarnings:
    def test_trailing_unit(self):
        report = analyze(
            'external flush : int -> unit -> unit = "ml_flush"',
            'value ml_flush(value fd) { do_flush(Int_val(fd)); return Val_unit; }',
        )
        assert kinds(report) == [Kind.TRAILING_UNIT]

    def test_polymorphic_abuse_gz_idiom(self):
        ml = "external seek : 'a -> int -> unit = \"ml_seek\""
        c = """
        value ml_seek(value chan, value pos)
        {
            do_seek(Int_val(chan), Int_val(pos));
            return Val_unit;
        }
        """
        assert kinds(analyze(ml, c)) == [Kind.POLYMORPHIC_ABUSE]

    def test_unused_polymorphic_param_not_flagged(self):
        ml = "external ignore : 'a -> unit = \"ml_ignore\""
        c = "value ml_ignore(value x) { return Val_unit; }"
        assert kinds(analyze(ml, c)) == []

    def test_int_to_value_cast_warning(self):
        report = analyze(
            'external f : unit -> int = "ml_f"',
            "value ml_f(value u) { int n = 3; return (value)n; }",
        )
        assert Kind.VALUE_CAST in kinds(report)


# ---------------------------------------------------------------------------
# False-positive-prone patterns (the paper's 214)
# ---------------------------------------------------------------------------


class TestFalsePositivePatterns:
    def test_disguised_pointer_arithmetic(self):
        ml = """
        type window
        external next : window -> window = "ml_next"
        """
        c = """
        struct win;
        value ml_next(value v)
        {
            struct win *w = (struct win *)v;
            return (value)((struct win *)(v + sizeof(struct win *)));
        }
        """
        assert kinds(analyze(ml, c)) == [Kind.DISGUISED_PTR_ARITH]

    def test_poly_variant_flagged(self):
        ml = 'external f : [ `Left | `Right ] -> unit = "ml_f"'
        c = "value ml_f(value v) { return Val_unit; }"
        assert kinds(analyze(ml, c)) == [Kind.POLY_VARIANT]


# ---------------------------------------------------------------------------
# Imprecision warnings (the paper's 75)
# ---------------------------------------------------------------------------


class TestImprecision:
    def test_unknown_offset(self):
        ml = 'external f : int * int -> int = "ml_f"'
        c = """
        value ml_f(value p)
        {
            int i = unknown();
            return Field(p, i);
        }
        """
        assert Kind.UNKNOWN_OFFSET in kinds(analyze(ml, c))

    def test_global_value(self):
        report = analyze(
            'external f : unit -> unit = "ml_f"',
            "value cache;\nvalue ml_f(value u) { return Val_unit; }",
        )
        assert kinds(report) == [Kind.GLOBAL_VALUE]

    def test_address_taken_value(self):
        ml = 'external f : string -> unit = "ml_f"'
        c = """
        value ml_f(value v)
        {
            caml_register_global_root(&v);
            return Val_unit;
        }
        """
        assert kinds(analyze(ml, c)) == [Kind.ADDRESS_TAKEN]

    def test_function_pointer(self):
        c = """
        typedef int (*cb_t)(int);
        int apply(cb_t cb, int x)
        {
            int r = cb(x);
            return r;
        }
        """
        assert kinds(analyze("", c)) == [Kind.FUNCTION_POINTER]

    def test_scalar_global_is_fine(self):
        report = analyze(
            'external f : unit -> int = "ml_f"',
            "static int counter;\nvalue ml_f(value u) { counter = counter + 1; return Val_int(counter); }",
        )
        assert kinds(report) == []


# ---------------------------------------------------------------------------
# Ablations (DESIGN.md experiment index)
# ---------------------------------------------------------------------------


class TestAblations:
    FIG2_ML = """
    type t = A of int | B | C of int * int | D
    external examine : t -> int = "ml_examine"
    """
    FIG2_C = """
    value ml_examine(value x)
    {
        int result = 0;
        if (Is_long(x)) {
            if (Int_val(x) == 0) result = 1;
        } else {
            if (Tag_val(x) == 1) result = Int_val(Field(x, 1));
        }
        return Val_int(result);
    }
    """

    def test_flow_sensitivity_needed_for_fig2(self):
        clean = analyze(self.FIG2_ML, self.FIG2_C)
        assert kinds(clean) == []
        degraded = analyze(
            self.FIG2_ML, self.FIG2_C, Options(flow_sensitive=False)
        )
        assert len(degraded.diagnostics) > 0

    def test_gc_effects_needed_for_protection_errors(self):
        ml = 'external f : string -> string * string = "ml_f"'
        c = """
        value ml_f(value s)
        {
            value b = caml_alloc(2, 0);
            Store_field(b, 0, s);
            return b;
        }
        """
        with_gc = analyze(ml, c)
        assert Kind.UNPROTECTED_VALUE in kinds(with_gc)
        without_gc = analyze(ml, c, Options(gc_effects=False))
        assert Kind.UNPROTECTED_VALUE not in kinds(without_gc)


# ---------------------------------------------------------------------------
# Report plumbing
# ---------------------------------------------------------------------------


class TestReporting:
    def test_render_contains_counts(self):
        report = analyze(
            'external f : int -> int = "ml_f"',
            "value ml_f(value x) { return Val_int(x); }",
        )
        text = report.render()
        assert "1 error(s)" in text

    def test_tally_matches_categories(self):
        report = analyze(
            'external f : int -> int = "ml_f"',
            "value ml_f(value x) { return Val_int(x); }",
        )
        tally = report.tally()
        assert tally["errors"] == 1
        assert tally["warnings"] == 0

    def test_diagnostics_deduplicated_across_fixpoint(self):
        # a bug inside a loop body must be reported once, not per pass
        ml = 'external f : int -> int = "ml_f"'
        c = """
        value ml_f(value x)
        {
            int i;
            value bad;
            for (i = 0; i < 3; i++) {
                bad = Val_int(x);
            }
            return Val_int(0);
        }
        """
        report = analyze(ml, c)
        assert kinds(report) == [Kind.BAD_VAL_INT]

    def test_function_results_expose_passes(self):
        report = analyze(
            'external f : int -> int = "ml_f"',
            "value ml_f(value x) { return Val_int(Int_val(x)); }",
        )
        assert report.function_results["ml_f"].passes >= 1
