"""The central seed store and the on-disk artifact tier.

Covers the PR 10 acceptance points: every corruption mode an on-disk
cache can exhibit (stale schema, foreign registry fingerprint, garbage
bytes, truncation) falls back to rebuild without crashing; concurrent
warmup is safe; artifact-loaded seeds are observably identical to
freshly built ones; and :func:`repro.seeds.clear_seed_memos` is the one
invalidation point.
"""

from __future__ import annotations

import pickle
import threading

import pytest

from repro import seeds
from repro.api import Project
from repro.boundary import get_dialect
from repro.engine import run_batch
from repro.engine.jobs import CheckRequest, repository_fingerprint
from repro.source import SourceFile

ML = "external make : int -> int = \"ml_counter_make\"\n"
C = """
#include <caml/mlvalues.h>
value ml_counter_make(value n) {
    return Val_int(Int_val(n));
}
"""


@pytest.fixture(autouse=True)
def _isolated_seed_dir(tmp_path, monkeypatch):
    monkeypatch.setenv(seeds.SEED_DIR_ENV, str(tmp_path / "seeds"))
    seeds.clear_seed_memos()
    yield
    seeds.clear_seed_memos()


def _host_sources(tag: str = "counter") -> tuple[SourceFile, ...]:
    return (SourceFile(f"{tag}.ml", ML.replace("counter", tag)),)


def _request(tag: str = "counter") -> CheckRequest:
    return CheckRequest(
        name=f"{tag}.c",
        c_sources=(SourceFile(f"{tag}.c", C.replace("counter", tag)),),
        ocaml_sources=_host_sources(tag),
        dialect="ocaml",
    )


class TestSeedTables:
    def test_all_dialect_tables_register_centrally(self):
        tables = seeds.build_all_tables()
        for key in (
            "ocaml.builtin_entries",
            "ocaml.stdlib_declarations",
            "ocaml.base_tables",
            "pyext.parse_hints",
            "pyext.builtin_entries",
            "jni.parse_hints",
            "jni.lowering_return_types",
            "rust.parse_hints",
        ):
            assert key in tables, key

    def test_seed_table_memoizes(self):
        from repro.cfront.macros import builtin_entries

        assert builtin_entries() is builtin_entries()

    def test_cache_clear_escape_hatch(self):
        from repro.cfront.macros import builtin_entries

        first = builtin_entries()
        builtin_entries.cache_clear()
        again = builtin_entries()
        assert again is not first
        assert set(again) == set(first)

    def test_duplicate_table_key_rejected(self):
        with pytest.raises(ValueError, match="duplicate seed table"):
            seeds.seed_table("ocaml.builtin_entries")(lambda: {})

    def test_prime_tables_ignores_unregistered_keys(self):
        installed = seeds.prime_tables({"no.such.table": {"x": 1}})
        assert installed == 0
        assert "no.such.table" not in seeds.build_all_tables()

    def test_clear_seed_memos_is_the_one_invalidation_point(self):
        from repro.cfront.macros import builtin_entries

        table = builtin_entries()
        dialect = get_dialect("ocaml")
        request = _request()
        repo = dialect.repository_for(request)
        seeds.clear_seed_memos()
        # both the table memo and the host memo went seed-cold
        assert builtin_entries() is not table
        stats = seeds.seed_stats()
        assert all(n == 0 for n in stats["host_memos"].values())
        assert dialect.repository_for(request) is not repo


class TestRegistryFingerprint:
    def test_stable_within_a_process(self):
        assert seeds.registry_fingerprint() == seeds.registry_fingerprint()

    def test_tracks_package_version(self, monkeypatch):
        before = seeds.registry_fingerprint()
        import repro

        monkeypatch.setattr(repro, "__version__", "0.0.0-test")
        assert seeds.registry_fingerprint() != before

    def test_tracks_kernel_flavor(self, monkeypatch):
        from repro import kernel

        before = seeds.registry_fingerprint()
        monkeypatch.setattr(kernel, "kernel_flavor", lambda: "compiled")
        assert seeds.registry_fingerprint() != before

    def test_foreign_fingerprint_artifact_is_invisible(self, monkeypatch):
        seeds.store_artifact("host-ocaml", "f" * 64, {"x": 1})
        assert seeds.load_artifact("host-ocaml", "f" * 64) == {"x": 1}
        # same artifact dir, different revision: never trusted, never read
        import repro

        monkeypatch.setattr(repro, "__version__", "0.0.0-test")
        assert seeds.load_artifact("host-ocaml", "f" * 64) is None


class TestArtifactCorruption:
    """Every on-disk failure mode is a miss, never a crash."""

    def _artifact_file(self):
        files = list(seeds.seed_dir().glob("*.seed"))
        assert len(files) == 1
        return files[0]

    def test_stale_schema_version_falls_back_to_rebuild(self):
        seeds.store_artifact("host-ocaml", "a" * 64, {"x": 1})
        path = self._artifact_file()
        envelope = pickle.loads(path.read_bytes())
        envelope["seed_schema"] = seeds.SEED_SCHEMA_VERSION - 1
        path.write_bytes(pickle.dumps(envelope))
        before = seeds.seed_stats()["artifact_rejects"]
        assert seeds.load_artifact("host-ocaml", "a" * 64) is None
        assert seeds.seed_stats()["artifact_rejects"] == before + 1

    def test_corrupted_bytes_fall_back_to_rebuild(self):
        seeds.store_artifact("host-ocaml", "b" * 64, {"x": 1})
        path = self._artifact_file()
        path.write_bytes(b"\x80\x05garbage that is not a pickle")
        assert seeds.load_artifact("host-ocaml", "b" * 64) is None

    def test_truncated_pickle_falls_back_to_rebuild(self):
        seeds.store_artifact("host-ocaml", "c" * 64, {"payload": list(range(1000))})
        path = self._artifact_file()
        path.write_bytes(path.read_bytes()[: 40])
        assert seeds.load_artifact("host-ocaml", "c" * 64) is None

    def test_wrong_kind_or_fingerprint_rejected(self):
        seeds.store_artifact("host-ocaml", "d" * 64, {"x": 1})
        assert seeds.load_artifact("host-rust", "d" * 64) is None
        assert seeds.load_artifact("host-ocaml", "e" * 64) is None

    def test_non_dict_envelope_rejected(self):
        seeds.store_artifact("host-ocaml", "a" * 64, {"x": 1})
        path = self._artifact_file()
        path.write_bytes(pickle.dumps(["not", "an", "envelope"]))
        assert seeds.load_artifact("host-ocaml", "a" * 64) is None

    def test_end_to_end_check_survives_corrupt_artifact(self):
        """A corrupt artifact under a real request's fingerprint must not
        change the analysis outcome."""
        request = _request()
        fingerprint = repository_fingerprint(request.ocaml_sources)
        registry = seeds.registry_fingerprint()
        path = seeds._artifact_path("host-ocaml", fingerprint, registry)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(b"not a pickle at all")
        report = run_batch([request], jobs=1, cache=None)
        assert report.results[0].failure is None

    def test_disabled_tier_neither_reads_nor_writes(self, monkeypatch):
        monkeypatch.setenv(seeds.SEED_ARTIFACTS_ENV, "0")
        assert not seeds.store_artifact("host-ocaml", "a" * 64, {"x": 1})
        assert seeds.load_artifact("host-ocaml", "a" * 64) is None
        assert not list(seeds.seed_dir().glob("*.seed"))


class TestConcurrentWarmup:
    def test_parallel_warmup_static_is_safe(self):
        errors: list[BaseException] = []

        def warm():
            try:
                seeds.warmup_static()
            except BaseException as exc:  # noqa: BLE001 - recorded for assert
                errors.append(exc)

        threads = [threading.Thread(target=warm) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        bundle = seeds.load_artifact("static", "tables")
        assert isinstance(bundle, dict) and bundle

    def test_parallel_host_memo_builds_one_result(self):
        dialect = get_dialect("ocaml")
        request = _request()
        results: list[object] = []
        errors: list[BaseException] = []

        def resolve():
            try:
                results.append(dialect.repository_for(request))
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=resolve) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(results) == 8
        externals = {tuple(e.ml_name for e in r.externals) for r in results}
        assert len(externals) == 1

    def test_concurrent_writers_leave_no_torn_artifact(self):
        payload = {"table": list(range(500))}

        def write():
            seeds.store_artifact("static", "tables", payload)

        threads = [threading.Thread(target=write) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert seeds.load_artifact("static", "tables") == payload
        # no staged temp files leaked
        assert not list(seeds.seed_dir().glob(".tmp-*"))


class TestLoadedVsBuiltEquivalence:
    def test_artifact_loaded_repository_gives_identical_diagnostics(self):
        request = _request("shape")

        def diagnostics() -> list[str]:
            report = run_batch([request], jobs=1, cache=None)
            result = report.results[0]
            assert result.failure is None
            return [d.render() for d in result.diagnostics]

        built = diagnostics()  # cold build, writes the artifact through
        stats = seeds.seed_stats()
        assert stats["artifact_stores"] >= 1
        seeds.clear_seed_memos()
        loaded = diagnostics()  # same fingerprint now loads the pickle
        assert seeds.seed_stats()["artifact_loads"] >= 1
        assert built == loaded

    def test_warmup_then_analyze_matches_cold_analyze(self):
        sources = _host_sources("widget")
        result = seeds.warmup_hosts("ocaml", sources)
        assert result["hosts"] == 1
        request = CheckRequest(
            name="widget.c",
            c_sources=(SourceFile("widget.c", C.replace("counter", "widget")),),
            ocaml_sources=sources,
            dialect="ocaml",
        )
        seeds.clear_seed_memos()
        warmed = run_batch([request], jobs=1, cache=None)
        assert seeds.seed_stats()["artifact_loads"] >= 1
        seeds.clear_seed_memos()
        with pytest.MonkeyPatch.context() as mp:
            mp.setenv(seeds.SEED_ARTIFACTS_ENV, "0")
            cold = run_batch([request], jobs=1, cache=None)
        render = lambda rep: [  # noqa: E731
            d.render() for d in rep.results[0].diagnostics
        ]
        assert render(warmed) == render(cold)


class TestWarmupAndPrune:
    def test_warmup_static_builds_and_stores_every_table(self):
        result = seeds.warmup_static()
        assert result["stored"]
        assert result["tables"] == len(seeds.registered_tables())
        seeds.clear_seed_memos()
        primed = seeds.prime_from_static_bundle()
        assert primed == result["tables"]

    def test_prime_from_static_bundle_runs_once_per_process(self):
        seeds.warmup_static()
        seeds.clear_seed_memos()
        assert seeds.prime_from_static_bundle() > 0
        assert seeds.prime_from_static_bundle() == 0

    def test_prune_evicts_oldest_beyond_limit(self):
        import os
        import time as _time

        # fingerprints must differ within the 24-char prefix the
        # artifact filename keeps
        fingerprints = [f"{index}" * 64 for index in range(6)]
        for index, fingerprint in enumerate(fingerprints):
            seeds.store_artifact("host-ocaml", fingerprint, {"i": index})
            # distinct mtimes so eviction order is deterministic
            path = seeds._artifact_path(
                "host-ocaml", fingerprint, seeds.registry_fingerprint()
            )
            stamp = _time.time() - (6 - index)
            os.utime(path, (stamp, stamp))
        assert seeds.prune_artifacts(limit=2) == 4
        remaining = list(seeds.seed_dir().glob("*.seed"))
        assert len(remaining) == 2
        assert seeds.load_artifact("host-ocaml", fingerprints[5]) == {"i": 5}

    def test_warmup_cli_round_trip(self, tmp_path, capsys):
        from repro.cli import main

        corpus = tmp_path / "corpus"
        corpus.mkdir()
        (corpus / "counter.ml").write_text(ML)
        assert main(["warmup", str(corpus), "--format", "json"]) == 0
        import json

        payload = json.loads(capsys.readouterr().out)
        assert payload["static"]["stored"]
        assert payload["hosts"]["hosts"] == 1
        assert payload["kernel"] in ("interpreted", "compiled")


class TestProjectAnalysisStillWorks:
    """Sanity: the memo layers sit under the public API transparently."""

    def test_project_analyze_with_artifacts(self):
        project = (
            Project()
            .add_ocaml(SourceFile("counter.ml", ML))
            .add_c(SourceFile("counter.c", C))
        )
        first = project.analyze()
        seeds.clear_seed_memos()
        second = project.analyze()
        assert [d.render() for d in first.diagnostics] == [
            d.render() for d in second.diagnostics
        ]
