"""The bench-trend harness: schema of the committed trajectory document,
ratio extraction, and the regression gate."""

import importlib.util
import json
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent
TREND_DOC = ROOT / "BENCH_PR10.json"


def _load_trend_module():
    spec = importlib.util.spec_from_file_location(
        "bench_trend", ROOT / "benchmarks" / "bench_trend.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def trend():
    return _load_trend_module()


class TestCommittedDocument:
    """CI produces BENCH_PR9.json; this is the schema it must satisfy."""

    def test_document_is_committed(self):
        assert TREND_DOC.is_file(), TREND_DOC

    def test_document_validates(self, trend):
        document = json.loads(TREND_DOC.read_text())
        assert trend.validate(document) == []

    def test_document_covers_all_nine_benchmarks(self):
        document = json.loads(TREND_DOC.read_text())
        assert set(document["benchmarks"]) >= {
            "batch",
            "pyext",
            "serve",
            "jni",
            "rust",
            "cold",
            "concurrency",
            "link",
            "telemetry",
        }

    def test_document_tracks_serve_speedups_per_dialect(self):
        ratios = json.loads(TREND_DOC.read_text())["ratios"]
        for dialect in ("ocaml", "pyext", "jni"):
            assert ratios[f"serve_speedup_{dialect}"] > 0

    def test_document_tracks_the_concurrency_tier(self):
        ratios = json.loads(TREND_DOC.read_text())["ratios"]
        # the ISSUE's headline gate, recorded for trend tracking
        assert ratios["concurrency_warm_checks_per_sec"] > 10_000
        assert 0 < ratios["concurrency_p99_ms"] < 50
        assert 0 < ratios["concurrency_shed_rate"] <= 1

    def test_document_tracks_full_link_recall(self):
        # the PR 7 headline: every seeded and planted cross-unit bug in
        # the link benchmark's corpora was detected
        ratios = json.loads(TREND_DOC.read_text())["ratios"]
        assert ratios["link_recall"] == 1.0

    def test_document_tracks_the_telemetry_overhead(self):
        # the PR 8 headline pair: enabled telemetry stays cheap (its own
        # 1.25x gate) and bench_cold separately proves disabled hooks free
        document = json.loads(TREND_DOC.read_text())
        ratio = document["ratios"]["telemetry_overhead_ratio"]
        assert 0 < ratio <= document["benchmarks"]["telemetry"]["max_overhead"]

    def test_document_records_no_failures(self):
        gates = json.loads(TREND_DOC.read_text())["gates"]
        assert gates["bench_failures"] == []
        assert gates["regressions"] == []

    def test_document_has_a_non_null_baseline(self):
        # the PR 4 document recorded `"baseline": null` (nothing to
        # compare against); from PR 5 on the gate must actually compare
        gates = json.loads(TREND_DOC.read_text())["gates"]
        assert gates["baseline"] == "BENCH_PR9.json"


class TestValidate:
    def test_missing_ratio_is_a_problem(self, trend):
        document = json.loads(TREND_DOC.read_text())
        del document["ratios"]["serve_speedup_jni"]
        assert any("serve_speedup_jni" in p for p in trend.validate(document))

    def test_conditional_parallel_ratios_may_be_absent(self, trend):
        # single-core hosts record batch_parallel_overhead, multi-core
        # hosts batch_parallel_speedup; neither alone is a schema problem
        document = json.loads(TREND_DOC.read_text())
        document["ratios"].pop("batch_parallel_speedup", None)
        document["ratios"].pop("batch_parallel_overhead", None)
        assert trend.validate(document) == []

    def test_wrong_schema_name_is_a_problem(self, trend):
        document = json.loads(TREND_DOC.read_text())
        document["schema"] = "something-else"
        assert trend.validate(document)


class TestRegressionGate:
    RATIOS = {
        "batch_parallel_speedup": 2.0,
        "batch_warm_fraction_of_cold": 0.10,
        "pyext_warm_fraction_of_cold": 0.10,
        "jni_warm_fraction_of_cold": 0.10,
        "serve_speedup_ocaml": 10.0,
        "serve_speedup_pyext": 10.0,
        "serve_speedup_jni": 10.0,
    }

    def test_identical_ratios_pass(self, trend):
        assert trend.compare_ratios(self.RATIOS, self.RATIOS, 0.20) == []

    def test_speedup_drop_beyond_tolerance_fails(self, trend):
        current = dict(self.RATIOS, serve_speedup_jni=7.0)  # -30%
        problems = trend.compare_ratios(current, self.RATIOS, 0.20)
        assert any("serve_speedup_jni" in p for p in problems)

    def test_speedup_drop_within_tolerance_passes(self, trend):
        current = dict(self.RATIOS, serve_speedup_jni=8.5)  # -15%
        assert trend.compare_ratios(current, self.RATIOS, 0.20) == []

    def test_warm_fraction_growth_beyond_tolerance_fails(self, trend):
        current = dict(self.RATIOS, batch_warm_fraction_of_cold=0.15)  # +50%
        problems = trend.compare_ratios(current, self.RATIOS, 0.20)
        assert any("batch_warm_fraction_of_cold" in p for p in problems)

    def test_warm_fraction_below_floor_never_gates(self, trend):
        # a 2x faster cold path doubles the warm fraction without any
        # regression; tiny absolute fractions are exempt (RATIO_FLOORS)
        baseline = dict(self.RATIOS, batch_warm_fraction_of_cold=0.006)
        current = dict(self.RATIOS, batch_warm_fraction_of_cold=0.012)
        assert trend.compare_ratios(current, baseline, 0.20) == []

    def test_improvements_always_pass(self, trend):
        current = dict(
            self.RATIOS,
            serve_speedup_jni=20.0,
            batch_warm_fraction_of_cold=0.01,
        )
        assert trend.compare_ratios(current, self.RATIOS, 0.20) == []

    def test_ratios_absent_from_baseline_are_skipped(self, trend):
        baseline = {"serve_speedup_ocaml": 10.0}
        current = dict(self.RATIOS, serve_speedup_ocaml=9.0)
        assert trend.compare_ratios(current, baseline, 0.20) == []


class TestBaselineSelection:
    def test_highest_pr_number_wins(self, trend, tmp_path):
        for name in ("BENCH_PR2.json", "BENCH_PR10.json", "BENCH_PR4.json"):
            (tmp_path / name).write_text("{}")
        found = trend.find_baseline(tmp_path, None)
        assert found.name == "BENCH_PR10.json"

    def test_output_file_is_excluded(self, trend, tmp_path):
        for name in ("BENCH_PR2.json", "BENCH_PR4.json"):
            (tmp_path / name).write_text("{}")
        found = trend.find_baseline(tmp_path, tmp_path / "BENCH_PR4.json")
        assert found.name == "BENCH_PR2.json"

    def test_empty_trajectory_has_no_baseline(self, trend, tmp_path):
        assert trend.find_baseline(tmp_path, None) is None


class TestCompareOnlyCLI:
    def test_compare_only_gates_a_regressed_document(self, trend, tmp_path):
        baseline = json.loads(TREND_DOC.read_text())
        (tmp_path / "BENCH_PR3.json").write_text(json.dumps(baseline))
        regressed = json.loads(TREND_DOC.read_text())
        for key in regressed["ratios"]:
            if key.startswith("serve_speedup"):
                regressed["ratios"][key] = regressed["ratios"][key] * 0.5
        candidate = tmp_path / "BENCH_PR4.json"
        candidate.write_text(json.dumps(regressed))
        code = trend.main(
            [
                "--compare-only",
                str(candidate),
                "--baseline-dir",
                str(tmp_path),
            ]
        )
        assert code == 1

    def test_compare_only_passes_the_committed_document(self, trend, capsys):
        code = trend.main(
            [
                "--compare-only",
                str(TREND_DOC),
                "--baseline-dir",
                str(ROOT),
            ]
        )
        capsys.readouterr()
        assert code == 0
