"""Every example script must run to success (they self-verify)."""

import runpy
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "sum_types_demo.py",
    "gc_safety_demo.py",
    "custom_blocks_demo.py",
    "interpreter_demo.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs_clean(script, capsys):
    path = EXAMPLES / script
    assert path.exists(), f"missing example {script}"
    with pytest.raises(SystemExit) as exit_info:
        runpy.run_path(str(path), run_name="__main__")
    assert exit_info.value.code == 0, capsys.readouterr().out


def test_examples_directory_contents():
    names = {p.name for p in EXAMPLES.glob("*.py")}
    assert "quickstart.py" in names
    assert "figure9_table.py" in names
    assert len(names) >= 6  # quickstart + >=5 scenario walkthroughs
