"""Suite-wide fixtures.

Seed artifacts write through to ``~/.cache/mlffi/seeds`` by default
(see :mod:`repro.seeds`); the suite must neither read a developer's
warm cache (results would depend on machine state) nor litter it with
test-fingerprinted artifacts.  Point the artifact directory at a
per-session tmp dir before any ``repro`` module resolves it.
"""

from __future__ import annotations

import os

import pytest


@pytest.fixture(autouse=True, scope="session")
def _hermetic_seed_dir(tmp_path_factory):
    seed_dir = tmp_path_factory.mktemp("seed-artifacts")
    previous = os.environ.get("MLFFI_SEED_DIR")
    os.environ["MLFFI_SEED_DIR"] = str(seed_dir)
    yield seed_dir
    if previous is None:
        os.environ.pop("MLFFI_SEED_DIR", None)
    else:
        os.environ["MLFFI_SEED_DIR"] = previous
