"""Shared fixtures for the batch-engine tests.

Helpers are exposed as fixtures (not module imports): with pytest's
importlib import mode, test directories are not on ``sys.path``, so
``from conftest import ...`` would not resolve.
"""

import pytest

from repro.core.exprs import Options
from repro.engine import CheckRequest
from repro.source import SourceFile

ML_SOURCE = (
    "type t = A of int | B\n"
    'external get : t -> int = "ml_get"\n'
)

CLEAN_C = """\
value ml_get(value x)
{
    if (Is_long(x)) return Val_int(0);
    return Field(x, 0);
}
"""

BUGGY_C = "value ml_get(value x) { return Val_int(x); }\n"

MALFORMED_C = "value ml_get( {\n"


@pytest.fixture()
def sources():
    """The raw glue texts the engine tests compose requests from."""
    return {
        "ml": ML_SOURCE,
        "clean": CLEAN_C,
        "buggy": BUGGY_C,
        "malformed": MALFORMED_C,
    }


@pytest.fixture()
def make_request():
    """Factory: a single-unit CheckRequest over the shared OCaml side."""

    def _make(
        name="unit.c",
        c_text=CLEAN_C,
        ml_text=ML_SOURCE,
        options=None,
    ) -> CheckRequest:
        return CheckRequest(
            name=name,
            c_sources=(SourceFile(name, c_text),),
            ocaml_sources=(
                (SourceFile("lib.ml", ml_text),) if ml_text else ()
            ),
            options=options or Options(),
        )

    return _make


@pytest.fixture()
def clean_request(make_request):
    return make_request()


@pytest.fixture()
def buggy_request(make_request):
    return make_request(name="buggy.c", c_text=BUGGY_C)
