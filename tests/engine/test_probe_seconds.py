"""Cache-hit results must report what the probe cost (``probe_seconds``).

The batch benchmarks divide warm time by cold time per unit; before
PR 8 a served hit carried the *original* analysis' elapsed time and a
zero probe cost, so warm-path trend math on cached corpora divided by
zero.  A hit now records the measured cost of serving it, which is
always positive and distinct from the fresh ``elapsed_seconds``.
"""

from repro.engine import (
    CheckResult,
    IncrementalEngine,
    ResultCache,
    run_batch,
)


def test_fresh_results_record_no_probe_cost(clean_request):
    report = run_batch([clean_request], cache=None)
    (result,) = report.results
    assert not result.from_cache
    assert result.probe_seconds == 0.0


def test_disk_hits_record_a_positive_probe_cost(clean_request, tmp_path):
    cache = ResultCache(tmp_path / "cache")
    run_batch([clean_request], cache=cache)
    report = run_batch([clean_request], cache=cache)
    (result,) = report.results
    assert result.from_cache and result.cache_tier == "disk"
    assert result.probe_seconds > 0.0
    # the probe cost is its own number, not the fresh analysis replayed
    assert result.probe_seconds != result.elapsed_seconds


def test_resident_reuse_records_a_positive_probe_cost(tmp_path):
    root = tmp_path / "tree"
    root.mkdir()
    (root / "lib.ml").write_text(
        'type t = A of int | B\nexternal get : t -> int = "ml_get"\n'
    )
    (root / "good.c").write_text(
        "value ml_get(value x)\n"
        "{\n"
        "    if (Is_long(x)) return Val_int(0);\n"
        "    return Field(x, 0);\n"
        "}\n"
    )
    engine = IncrementalEngine(root)
    engine.check()
    report = engine.check()
    (result,) = report.results
    assert result.from_cache and result.cache_tier == "memory"
    assert result.probe_seconds > 0.0


def test_probe_seconds_survives_the_dict_round_trip():
    result = CheckResult(name="u.c", probe_seconds=0.00042)
    assert CheckResult.from_dict(result.to_dict()).probe_seconds == 0.00042
    # pre-v7 payloads default to zero instead of exploding
    legacy = result.to_dict()
    del legacy["probe_seconds"]
    assert CheckResult.from_dict(legacy).probe_seconds == 0.0
