"""Quoted-header dependencies under the incremental engine, pyext dialect.

The pyext and jni dialects have no host-language side: their only unit
dependencies are quoted ``#include`` targets found by
:func:`repro.cfront.lexer.scan_includes`.  These tests pin the contract
end to end: editing a quoted header re-checks exactly the dependent
``.c`` units, and nothing else.
"""

import pytest

from repro.boundary import get_dialect
from repro.cfront.lexer import scan_includes
from repro.engine import IncrementalEngine
from repro.engine.jobs import CheckRequest
from repro.source import SourceFile

USES_HEADER = """\
#include <Python.h>
#include "shared.h"

static PyObject *
uses_header(PyObject *self, PyObject *args)
{
    long a;
    if (!PyArg_ParseTuple(args, "l", &a))
        return NULL;
    return PyLong_FromLong(a);
}
"""

STANDALONE = """\
#include <Python.h>

static PyObject *
standalone(PyObject *self, PyObject *args)
{
    long b;
    if (!PyArg_ParseTuple(args, "l", &b))
        return NULL;
    return PyLong_FromLong(b + 1);
}
"""


@pytest.fixture()
def tree(tmp_path):
    root = tmp_path / "ext"
    root.mkdir()
    (root / "shared.h").write_text("#define SHARED 1\n")
    (root / "uses_header.c").write_text(USES_HEADER)
    (root / "standalone.c").write_text(STANDALONE)
    return root


@pytest.fixture()
def engine(tree):
    return IncrementalEngine(tree, dialect="pyext")


def names(paths):
    return sorted(p.rsplit("/", 1)[-1] for p in paths)


class TestUnitDependencies:
    def test_scan_includes_sees_quoted_headers_only(self):
        assert scan_includes(USES_HEADER) == ("shared.h",)
        assert scan_includes(STANDALONE) == ()

    def test_pyext_unit_dependencies_are_the_quoted_includes(self):
        dialect = get_dialect("pyext")
        request = CheckRequest(
            name="uses_header.c",
            c_sources=(SourceFile("uses_header.c", USES_HEADER),),
            dialect="pyext",
        )
        assert dialect.unit_dependencies(request) == ("shared.h",)

    def test_jni_unit_dependencies_are_the_quoted_includes(self):
        dialect = get_dialect("jni")
        request = CheckRequest(
            name="native.c",
            c_sources=(
                SourceFile(
                    "native.c", '#include <jni.h>\n#include "cls.h"\n'
                ),
            ),
            dialect="jni",
        )
        assert dialect.unit_dependencies(request) == ("cls.h",)

    def test_graph_links_unit_to_header(self, engine):
        (unit,) = [
            name for name in engine.unit_names if name.endswith("uses_header.c")
        ]
        assert "shared.h" in names(engine.dependencies(unit))


class TestHeaderEditRecheck:
    def test_header_edit_dirties_only_dependent_units(self, tree, engine):
        engine.check()
        assert engine.dirty == set()
        (tree / "shared.h").write_text("#define SHARED 2\n")
        affected = engine.invalidate([tree / "shared.h"])
        assert names(affected) == ["uses_header.c"]
        assert names(engine.dirty) == ["uses_header.c"]

    def test_recheck_runs_only_the_dependent_unit(self, tree, engine):
        engine.check()
        (tree / "shared.h").write_text("#define SHARED 3\n")
        engine.invalidate([tree / "shared.h"])
        report = engine.check()
        assert names(report.checked) == ["uses_header.c"]
        assert report.reused == 1  # standalone.c served from resident state
        assert len(report.results) == 2

    def test_unit_edit_does_not_drag_in_header_siblings(self, tree, engine):
        engine.check()
        (tree / "standalone.c").write_text(STANDALONE + "\n/* edit */\n")
        affected = engine.invalidate([tree / "standalone.c"])
        assert names(affected) == ["standalone.c"]
        report = engine.check()
        assert names(report.checked) == ["standalone.c"]

    def test_unrelated_header_edit_dirties_nothing(self, tree, engine):
        engine.check()
        (tree / "other.h").write_text("#define OTHER 1\n")
        assert engine.invalidate([tree / "other.h"]) == set()
