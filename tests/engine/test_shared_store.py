"""Cross-process shared result store: layout, safety, and real sharing."""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cli import main
from repro.engine import (
    CACHE_SCHEMA_VERSION,
    CheckResult,
    SharedResultStore,
    run_batch,
)

REPO_ROOT = Path(__file__).resolve().parent.parent.parent


def make_result(name="unit.c", key="k" * 64):
    return CheckResult(name=name, cache_key=key, unification_steps=7)


class TestRoundTrip:
    def test_miss_on_empty_store(self, tmp_path):
        store = SharedResultStore(tmp_path / "store")
        assert store.load("a" * 64) is None
        assert store.stats()["misses"] == 1

    def test_store_then_load_marks_the_tier(self, tmp_path):
        store = SharedResultStore(tmp_path / "store")
        store.store("a" * 64, make_result())
        loaded = store.load("a" * 64)
        assert loaded is not None
        assert loaded.from_cache is True
        assert loaded.cache_tier == "store"
        assert loaded.unification_steps == 7

    def test_objects_are_sharded_by_key_prefix(self, tmp_path):
        store = SharedResultStore(tmp_path / "store")
        key = "ab" + "c" * 62
        store.store(key, make_result(key=key))
        assert (tmp_path / "store" / "objects" / "ab" / f"{key}.json").is_file()

    def test_failure_results_are_never_stored(self, tmp_path):
        store = SharedResultStore(tmp_path / "store")
        failed = make_result()
        failed.failure = "worker exploded"
        store.store("a" * 64, failed)
        assert store.load("a" * 64) is None

    def test_stale_schema_version_is_a_miss(self, tmp_path):
        store = SharedResultStore(tmp_path / "store")
        key = "a" * 64
        store.store(key, make_result())
        path = tmp_path / "store" / "objects" / key[:2] / f"{key}.json"
        payload = json.loads(path.read_text())
        payload["schema_version"] = CACHE_SCHEMA_VERSION - 1
        path.write_text(json.dumps(payload))
        assert store.load(key) is None

    def test_corrupt_entry_is_a_miss_not_an_error(self, tmp_path):
        store = SharedResultStore(tmp_path / "store")
        key = "a" * 64
        store.store(key, make_result())
        path = tmp_path / "store" / "objects" / key[:2] / f"{key}.json"
        path.write_text("{torn write")
        assert store.load(key) is None

    def test_clear_empties_the_store(self, tmp_path):
        store = SharedResultStore(tmp_path / "store")
        for index in range(3):
            store.store(f"{index:02}" + "a" * 62, make_result())
        assert len(store) == 3
        assert store.clear() == 3
        assert len(store) == 0


class TestEviction:
    def test_lru_cap_is_enforced(self, tmp_path):
        store = SharedResultStore(tmp_path / "store", max_entries=2)
        for index in range(4):
            store.store(f"{index:02}" + "a" * 62, make_result())
        assert len(store) <= 2
        assert store.evictions >= 2

    def test_uncapped_store_keeps_everything(self, tmp_path):
        store = SharedResultStore(tmp_path / "store", max_entries=None)
        for index in range(5):
            store.store(f"{index:02}" + "a" * 62, make_result())
        assert len(store) == 5

    def test_scan_ignores_in_flight_temp_files(self, tmp_path):
        """A concurrent writer's ``.tmp-*.json`` spill is invisible to
        counting, eviction, and journal compaction: evicting it
        mid-write would break the writer's ``os.replace``, and its stem
        must never be compacted into ``index.log`` as a key."""
        store = SharedResultStore(tmp_path / "store", max_entries=2)
        for index in range(2):
            store.store(f"{index:02}" + "a" * 62, make_result())
        shard = tmp_path / "store" / "objects" / "zz"
        shard.mkdir(parents=True)
        temp = shard / ".tmp-abc123.json"
        temp.write_text("{mid-write spill}")
        assert len(store) == 2
        # push past the cap: the temp file has the oldest mtime, so the
        # old dotfile-matching scan would have evicted it first
        for index in range(2, 5):
            store.store(f"{index:02}" + "a" * 62, make_result())
        assert temp.exists()
        journal = (tmp_path / "store" / "index.log").read_text()
        assert ".tmp-abc123" not in journal


CHILD_SCRIPT = """\
import json, sys
from repro.api import Project
from repro.engine import SharedResultStore, run_batch

root, store_dir = sys.argv[1], sys.argv[2]
project = Project.from_directory(root)
report = run_batch(
    project.to_requests(), jobs=1, cache=SharedResultStore(store_dir)
)
print(json.dumps({
    "hits": report.cache_hits,
    "misses": report.cache_misses,
    "tiers": sorted({r.cache_tier for r in report.results}),
}))
"""


class TestCrossProcess:
    """The point of the store: separate worker processes share results."""

    @pytest.fixture()
    def tree(self, tmp_path):
        root = tmp_path / "tree"
        root.mkdir()
        (root / "lib.ml").write_text(
            'type t = A of int | B\nexternal get : t -> int = "ml_get"\n'
        )
        (root / "good.c").write_text(
            "value ml_get(value x)\n"
            "{\n"
            "    if (Is_long(x)) return Val_int(0);\n"
            "    return Field(x, 0);\n"
            "}\n"
        )
        return root

    def _run_child(self, tree, store_dir):
        env = dict(os.environ)
        env["PYTHONPATH"] = (
            str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
        )
        proc = subprocess.run(
            [sys.executable, "-c", CHILD_SCRIPT, str(tree), str(store_dir)],
            capture_output=True,
            text=True,
            env=env,
            timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        return json.loads(proc.stdout)

    def test_child_process_sees_parent_writes(self, tree, tmp_path):
        from repro.api import Project

        store_dir = tmp_path / "store"
        project = Project.from_directory(tree)
        cold = run_batch(
            project.to_requests(), jobs=1, cache=SharedResultStore(store_dir)
        )
        assert cold.cache_misses == 1

        child = self._run_child(tree, store_dir)
        assert child == {"hits": 1, "misses": 0, "tiers": ["store"]}

    def test_parent_process_sees_child_writes(self, tree, tmp_path):
        store_dir = tmp_path / "store"
        child = self._run_child(tree, store_dir)
        assert child["misses"] == 1

        from repro.api import Project

        project = Project.from_directory(tree)
        warm = run_batch(
            project.to_requests(), jobs=1, cache=SharedResultStore(store_dir)
        )
        assert warm.cache_hits == 1
        assert warm.results[0].cache_tier == "store"


class TestWiring:
    """--shared-store / Session(shared_store=...) select the store tier."""

    @pytest.fixture()
    def tree(self, tmp_path):
        root = tmp_path / "tree"
        root.mkdir()
        (root / "unit.c").write_text("int helper(void) { return 0; }\n")
        return root

    def test_batch_cli_flag_round_trips(self, tree, tmp_path, capsys):
        store_dir = str(tmp_path / "store")
        assert (
            main(
                [
                    "batch",
                    str(tree),
                    "--shared-store",
                    store_dir,
                    "--format",
                    "json",
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert (
            main(
                [
                    "batch",
                    str(tree),
                    "--shared-store",
                    store_dir,
                    "--format",
                    "json",
                ]
            )
            == 0
        )
        data = json.loads(capsys.readouterr().out)
        assert data["cache"]["hits"] == 1
        assert data["units"][0]["cache_tier"] == "store"

    def test_session_shared_store_parameter(self, tree, tmp_path):
        from repro.api import Session

        store_dir = tmp_path / "store"
        with Session(tree, shared_store=store_dir) as warmup:
            warmup.check()
        # a brand-new session (fresh memory tier) hits the shared store
        with Session(tree, shared_store=store_dir) as session:
            report = session.check()
        assert [r.cache_tier for r in report.results] == ["store"]
