"""Cache keying and storage semantics for the batch engine."""

import json

from repro.core.exprs import Options
from repro.engine import (
    CheckRequest,
    CACHE_SCHEMA_VERSION,
    CheckResult,
    NullCache,
    ResultCache,
    run_batch,
    run_request,
)


class TestCacheKey:
    def test_identical_input_same_key(self, make_request):
        assert make_request().cache_key() == make_request().cache_key()

    def test_c_source_change_misses(self, make_request, sources):
        assert (
            make_request(c_text=sources["clean"]).cache_key()
            != make_request(c_text=sources["buggy"]).cache_key()
        )

    def test_c_filename_change_misses(self, make_request):
        # spans embed the filename, so renamed files must re-analyze
        assert (
            make_request(name="a.c").cache_key()
            != make_request(name="b.c").cache_key()
        )

    def test_repository_change_misses(self, make_request):
        changed_ml = (
            "type t = A of int | B | C\n"
            'external get : t -> int = "ml_get"\n'
        )
        assert (
            make_request().cache_key()
            != make_request(ml_text=changed_ml).cache_key()
        )

    def test_options_change_misses(self, make_request):
        assert (
            make_request(options=Options()).cache_key()
            != make_request(options=Options(gc_effects=False)).cache_key()
        )

    def test_source_order_changes_key(self):
        # repository building is last-wins on type names, so permuted
        # .ml orders can analyze differently and must not share a key
        from repro.source import SourceFile

        first = SourceFile("a.ml", "type t = X of int")
        second = SourceFile("b.ml", "type t = Y of int")
        one = CheckRequest(
            name="u.c",
            c_sources=(SourceFile("u.c", "int f(void) { return 0; }"),),
            ocaml_sources=(first, second),
        )
        other = CheckRequest(
            name="u.c",
            c_sources=(SourceFile("u.c", "int f(void) { return 0; }"),),
            ocaml_sources=(second, first),
        )
        assert one.cache_key() != other.cache_key()

    def test_units_sharing_repository_get_distinct_keys(
        self, make_request, sources
    ):
        first = make_request(name="x.c", c_text=sources["clean"])
        second = make_request(name="y.c", c_text=sources["buggy"])
        assert first.cache_key() != second.cache_key()

    def test_dialect_change_misses(self):
        # same sources, different boundary dialect ⇒ different analysis
        from dataclasses import replace

        from repro.source import SourceFile

        base = CheckRequest(
            name="u.c",
            c_sources=(SourceFile("u.c", "int f(void) { return 0; }"),),
            dialect="ocaml",
        )
        assert base.cache_key() != replace(base, dialect="pyext").cache_key()


class TestResultCache:
    def test_round_trip(self, tmp_path, buggy_request):
        cache = ResultCache(tmp_path)
        result = run_request(buggy_request)
        assert result.failure is None and len(result.errors) == 1
        cache.store(result.cache_key, result)

        loaded = cache.load(result.cache_key)
        assert loaded is not None
        assert loaded.from_cache is True
        assert loaded.tally() == result.tally()
        assert [d.render() for d in loaded.diagnostics] == [
            d.render() for d in result.diagnostics
        ]
        assert loaded.signatures == result.signatures

    def test_missing_entry_is_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.load("0" * 64) is None
        assert cache.misses == 1

    def test_corrupt_entry_is_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        (tmp_path / ("f" * 64 + ".json")).write_text("{not json")
        assert cache.load("f" * 64) is None

    def test_schema_version_mismatch_is_miss(self, tmp_path, clean_request):
        cache = ResultCache(tmp_path)
        result = run_request(clean_request)
        cache.store(result.cache_key, result)
        path = tmp_path / f"{result.cache_key}.json"
        data = json.loads(path.read_text())
        data["schema_version"] = CACHE_SCHEMA_VERSION + 1
        path.write_text(json.dumps(data))
        assert cache.load(result.cache_key) is None

    def test_failures_never_cached(self, tmp_path):
        cache = ResultCache(tmp_path)
        failed = CheckResult(name="x.c", cache_key="a" * 64, failure="boom")
        cache.store(failed.cache_key, failed)
        assert cache.load(failed.cache_key) is None

    def test_clear_and_len(self, tmp_path, clean_request):
        cache = ResultCache(tmp_path)
        result = run_request(clean_request)
        cache.store(result.cache_key, result)
        assert len(cache) == 1
        assert cache.clear() == 1
        assert len(cache) == 0

    def test_null_cache_always_misses(self, clean_request):
        cache = NullCache()
        result = run_request(clean_request)
        cache.store(result.cache_key, result)
        assert cache.load(result.cache_key) is None


class TestCacheFailurePaths:
    """Corrupt, truncated, or stale entries must degrade to re-analysis —
    a poisoned cache directory may never crash or poison a batch."""

    def _store_one(self, tmp_path, request):
        cache = ResultCache(tmp_path)
        result = run_request(request)
        cache.store(result.cache_key, result)
        return cache, result, tmp_path / f"{result.cache_key}.json"

    def test_truncated_entry_is_miss(self, tmp_path, clean_request):
        cache, result, path = self._store_one(tmp_path, clean_request)
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
        assert cache.load(result.cache_key) is None

    def test_empty_entry_is_miss(self, tmp_path, clean_request):
        cache, result, path = self._store_one(tmp_path, clean_request)
        path.write_text("")
        assert cache.load(result.cache_key) is None

    def test_valid_json_wrong_shape_is_miss(self, tmp_path, clean_request):
        cache, result, path = self._store_one(tmp_path, clean_request)
        path.write_text(
            json.dumps({"schema_version": CACHE_SCHEMA_VERSION, "result": 42})
        )
        assert cache.load(result.cache_key) is None

    def test_entry_with_garbled_diagnostic_is_miss(
        self, tmp_path, buggy_request
    ):
        cache, result, path = self._store_one(tmp_path, buggy_request)
        data = json.loads(path.read_text())
        data["result"]["diagnostics"] = [{"kind": "NO_SUCH_KIND"}]
        path.write_text(json.dumps(data))
        assert cache.load(result.cache_key) is None

    def test_missing_schema_version_is_miss(self, tmp_path, clean_request):
        cache, result, path = self._store_one(tmp_path, clean_request)
        data = json.loads(path.read_text())
        del data["schema_version"]
        path.write_text(json.dumps(data))
        assert cache.load(result.cache_key) is None

    def test_batch_reanalyzes_over_corrupt_entries(
        self, tmp_path, make_request, sources
    ):
        requests = [
            make_request(name="clean.c"),
            make_request(name="buggy.c", c_text=sources["buggy"]),
        ]
        cache = ResultCache(tmp_path)
        cold = run_batch(requests, cache=cache)
        for path in tmp_path.glob("*.json"):
            path.write_text("{broken")

        rerun = run_batch(requests, cache=cache)
        assert rerun.cache_hits == 0 and rerun.cache_misses == 2
        assert rerun.tally() == cold.tally()
        assert not rerun.failures

    def test_store_into_unusable_directory_degrades(
        self, tmp_path, clean_request
    ):
        # a plain file squats on the cache-directory path: every store and
        # load hits OSError and must degrade to "no cache", never raise
        target = tmp_path / "cache"
        target.write_text("not a directory")
        cache = ResultCache(target)
        result = run_request(clean_request)
        cache.store(result.cache_key, result)  # must not raise
        assert cache.load(result.cache_key) is None


class TestBatchCaching:
    def test_second_run_is_all_hits_and_identical(
        self, tmp_path, make_request, sources
    ):
        requests = [
            make_request(name="clean.c"),
            make_request(name="buggy.c", c_text=sources["buggy"]),
        ]
        cache = ResultCache(tmp_path)
        cold = run_batch(requests, cache=cache)
        warm = run_batch(requests, cache=cache)

        assert cold.cache_hits == 0 and cold.cache_misses == 2
        assert warm.cache_hits == 2 and warm.cache_misses == 0
        assert warm.tally() == cold.tally()
        assert [r.name for r in warm.results] == [r.name for r in cold.results]
        assert [
            d.render() for r in warm.results for d in r.diagnostics
        ] == [d.render() for r in cold.results for d in r.diagnostics]

    def test_editing_one_unit_invalidates_only_it(
        self, tmp_path, make_request, sources
    ):
        requests = [
            make_request(name="clean.c"),
            make_request(name="buggy.c", c_text=sources["buggy"]),
        ]
        cache = ResultCache(tmp_path)
        run_batch(requests, cache=cache)

        edited = [
            make_request(name="clean.c"),
            make_request(
                name="buggy.c",
                c_text=sources["buggy"] + "\n/* touched */\n",
            ),
        ]
        rerun = run_batch(edited, cache=cache)
        assert rerun.cache_hits == 1 and rerun.cache_misses == 1
        assert rerun.results[0].from_cache is True
        assert rerun.results[1].from_cache is False
