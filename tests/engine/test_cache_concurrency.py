"""Concurrent cache access and LRU growth-cap semantics.

The satellite contract: two schedulers sharing one ``--cache-dir`` must
not corrupt or double-write entries, and the cache must not grow without
bound (``max_entries`` LRU cap with eviction accounting).
"""

import json
import threading

import pytest

from repro.core.exprs import Options
from repro.engine import (
    CACHE_SCHEMA_VERSION,
    CheckRequest,
    CheckResult,
    MemoryCache,
    ResultCache,
    run_batch,
)
from repro.source import SourceFile

ML = 'type t = A of int | B\nexternal get : t -> int = "ml_get"\n'

CLEAN_C = """\
value ml_get(value x)
{
    if (Is_long(x)) return Val_int(0);
    return Field(x, 0);
}
"""


def corpus(count):
    """``count`` distinct single-unit requests over a shared host side."""
    return [
        CheckRequest(
            name=f"unit{i:02}.c",
            c_sources=(SourceFile(f"unit{i:02}.c", CLEAN_C),),
            ocaml_sources=(SourceFile("lib.ml", ML),),
            options=Options(),
        )
        for i in range(count)
    ]


def result(name="u.c", key="k"):
    return CheckResult(name=name, cache_key=key)


class TestConcurrentSchedulers:
    def test_two_threads_share_one_cache_dir(self, tmp_path):
        """Racing schedulers must produce valid entries and equal reports."""
        requests = corpus(6)
        reports = [None, None]
        errors = []

        def sweep(slot):
            try:
                cache = ResultCache(tmp_path / "shared")
                reports[slot] = run_batch(requests, cache=cache)
            except Exception as exc:  # noqa: BLE001 - surfaced via the list
                errors.append(exc)

        threads = [
            threading.Thread(target=sweep, args=(slot,)) for slot in (0, 1)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert errors == []
        assert reports[0].tally() == reports[1].tally()
        # exactly one entry per unit: concurrent stores collapsed, no
        # double-writes under distinct names
        entries = sorted((tmp_path / "shared").glob("*.json"))
        assert len(entries) == len(requests)
        for path in entries:
            data = json.loads(path.read_text())  # every file parses whole
            assert data["schema_version"] == CACHE_SCHEMA_VERSION
        assert not list((tmp_path / "shared").glob(".tmp-*"))

    def test_store_race_leaves_readable_winner(self, tmp_path):
        """Many writers to one key: last write wins, file never torn."""
        cache = ResultCache(tmp_path)
        key = "deadbeef" * 8
        writers = [
            threading.Thread(
                target=cache.store, args=(key, result(name=f"w{i}.c", key=key))
            )
            for i in range(16)
        ]
        for thread in writers:
            thread.start()
        for thread in writers:
            thread.join()
        loaded = ResultCache(tmp_path).load(key)
        assert loaded is not None
        assert loaded.name.startswith("w")

    def test_concurrent_eviction_never_raises(self, tmp_path):
        """Two capped caches evicting the same directory race unlink()."""
        caches = [
            ResultCache(tmp_path, max_entries=4),
            ResultCache(tmp_path, max_entries=4),
        ]

        def hammer(cache, base):
            for i in range(24):
                cache.store(f"{base}{i:056}", result(key=f"{base}{i}"))

        threads = [
            threading.Thread(target=hammer, args=(cache, str(n)))
            for n, cache in enumerate(caches)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(caches[0]) <= 4


class TestResultCacheLRUCap:
    def test_cap_bounds_entry_count(self, tmp_path):
        cache = ResultCache(tmp_path, max_entries=3)
        for i in range(10):
            cache.store(f"{i:064}", result(key=str(i)))
        assert len(cache) == 3
        assert cache.evictions == 7

    def test_uncapped_cache_keeps_everything(self, tmp_path):
        cache = ResultCache(tmp_path, max_entries=None)
        for i in range(10):
            cache.store(f"{i:064}", result(key=str(i)))
        assert len(cache) == 10 and cache.evictions == 0

    def test_eviction_is_least_recently_used(self, tmp_path):
        import os
        import time

        cache = ResultCache(tmp_path, max_entries=2)
        old, hot, fresh = "a" * 64, "b" * 64, "c" * 64
        cache.store(old, result(key=old))
        cache.store(hot, result(key=hot))
        # age both, then touch `hot` via a load so it becomes recent
        stale = time.time() - 60
        for key in (old, hot):
            os.utime(tmp_path / f"{key}.json", (stale, stale))
        assert cache.load(hot) is not None
        cache.store(fresh, result(key=fresh))
        assert cache.load(old) is None  # evicted: least recently used
        assert cache.load(hot) is not None
        assert cache.load(fresh) is not None

    def test_batch_report_carries_eviction_count(self, tmp_path):
        cache = ResultCache(tmp_path, max_entries=2)
        report = run_batch(corpus(5), cache=cache)
        assert report.cache_evictions == 3
        assert report.to_dict()["cache"]["evictions"] == 3
        assert "evicted" in report.render()


class TestMemoryCacheLRU:
    def test_cap_and_eviction_order(self):
        cache = MemoryCache(max_entries=2)
        cache.store("a", result(key="a"))
        cache.store("b", result(key="b"))
        assert cache.load("a") is not None  # refresh recency
        cache.store("c", result(key="c"))
        assert cache.load("b") is None  # the stale entry went
        assert cache.load("a") is not None
        assert cache.evictions == 1

    def test_loaded_results_are_isolated_copies(self):
        cache = MemoryCache()
        cache.store("k", result(name="u.c", key="k"))
        first = cache.load("k")
        first.name = "mutated.c"
        assert cache.load("k").name == "u.c"

    def test_failures_never_stored(self):
        cache = MemoryCache()
        broken = result()
        broken.failure = "ParseError: boom"
        cache.store("k", broken)
        assert cache.load("k") is None
        assert len(cache) == 0


@pytest.mark.parametrize("max_entries", [0, 1])
def test_tiny_caps_still_functional(tmp_path, max_entries):
    cache = ResultCache(tmp_path, max_entries=max_entries)
    report = run_batch(corpus(3), cache=cache)
    assert len(report.results) == 3
    assert len(cache) <= max_entries
