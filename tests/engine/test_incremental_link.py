"""Incremental engine: the link pass, status stanzas, and dependency
edge cases (unit removal with shared headers, host-also-dependency
invalidation, unit-name collisions between subdirectories)."""

import pytest

from repro.engine import IncrementalEngine

ML = 'external get : int -> int = "ml_get"\n'
GOOD_C = "value ml_get(value x) { return Val_int(Int_val(x) + 1); }\n"

CONFLICT_DEF = """\
long shared_helper(long a, long b)
{
    return a + b;
}
"""
CONFLICT_USE = """\
long shared_helper(long a);

long use_helper(long x)
{
    return shared_helper(x);
}
"""


def basenames(names):
    return sorted(str(n).replace("\\", "/").rsplit("/", 1)[-1] for n in names)


@pytest.fixture()
def tree(tmp_path):
    root = tmp_path / "tree"
    root.mkdir()
    (root / "lib.ml").write_text(ML)
    (root / "good.c").write_text(GOOD_C)
    return root


class TestLinkPass:
    def test_clean_corpus_links_clean(self, tree):
        engine = IncrementalEngine(tree)
        report, link_report = engine.link()
        assert basenames(report.checked) == ["good.c"]
        assert link_report.units == 1
        assert list(link_report.diagnostics) == []

    def test_cross_unit_conflict_is_reported(self, tree):
        (tree / "def.c").write_text(CONFLICT_DEF)
        (tree / "use.c").write_text(CONFLICT_USE)
        engine = IncrementalEngine(tree)
        _report, link_report = engine.link()
        assert [d.kind.name for d in link_report.diagnostics] == [
            "LINK_CONFLICTING_DECL"
        ]
        assert "shared_helper" in link_report.errors[0].message

    def test_relink_reuses_clean_units(self, tree):
        (tree / "def.c").write_text(CONFLICT_DEF)
        (tree / "use.c").write_text(CONFLICT_USE)
        engine = IncrementalEngine(tree)
        engine.link()
        # fix the conflicting prototype; only use.c may re-analyze
        (tree / "use.c").write_text(
            CONFLICT_USE.replace("long shared_helper(long a);",
                                 "long shared_helper(long a, long b);")
            .replace("shared_helper(x)", "shared_helper(x, x)")
        )
        engine.invalidate([str(tree / "use.c")])
        report, link_report = engine.link()
        assert basenames(report.checked) == ["use.c"]
        assert report.reused == 2
        assert list(link_report.diagnostics) == []

    def test_link_summaries_survive_a_cold_restart(self, tree, tmp_path):
        from repro.engine import ResultCache

        (tree / "def.c").write_text(CONFLICT_DEF)
        (tree / "use.c").write_text(CONFLICT_USE)
        cache_dir = tmp_path / "cache"
        first = IncrementalEngine(tree, cache=ResultCache(cache_dir))
        _report, link_first = first.link()
        # a fresh engine on the same cache re-links from cached payloads
        second = IncrementalEngine(tree, cache=ResultCache(cache_dir))
        report, link_second = second.link()
        assert report.ran == []
        assert [d.message for d in link_second.diagnostics] == [
            d.message for d in link_first.diagnostics
        ]


class TestStatusStanzas:
    def test_graph_and_residency_surface(self, tree):
        engine = IncrementalEngine(tree)
        status = engine.status()
        assert status["resident_units"] == 0  # nothing checked yet
        assert status["graph"]["units"] == 1
        assert status["graph"]["paths"] >= 1
        assert status["link"] is None
        engine.check()
        status = engine.status()
        assert status["resident_units"] == 1

    def test_link_stanza_records_the_last_pass(self, tree):
        (tree / "def.c").write_text(CONFLICT_DEF)
        (tree / "use.c").write_text(CONFLICT_USE)
        engine = IncrementalEngine(tree)
        engine.link()
        stanza = engine.status()["link"]
        assert stanza["units"] == 3
        assert stanza["errors"] == 1


class TestSharedHeaderRemoval:
    HEADER = "#define STEP 2\n"
    WITH_INCLUDE = '#include "shared.h"\n' + GOOD_C

    def test_removing_a_unit_releases_its_header_edges(self, tree):
        (tree / "shared.h").write_text(self.HEADER)
        (tree / "good.c").write_text(
            self.WITH_INCLUDE.replace("ml_get", "ml_a")
        )
        (tree / "other.c").write_text(
            self.WITH_INCLUDE.replace("ml_get", "ml_b")
        )
        engine = IncrementalEngine(tree)
        engine.check()
        header = str(tree / "shared.h")
        assert basenames(engine.graph.dependents(header)) == [
            "good.c",
            "other.c",
        ]
        # delete one unit: the header must stop dirtying it
        (tree / "good.c").unlink()
        engine.invalidate([str(tree / "good.c")])
        assert basenames(engine.unit_names) == ["other.c"]
        affected = engine.invalidate([header])
        assert basenames(affected) == ["other.c"]
        status = engine.status()
        assert status["graph"]["units"] == 1

    def test_removing_the_last_dependent_drops_the_path(self, tree):
        (tree / "shared.h").write_text(self.HEADER)
        (tree / "good.c").write_text(self.WITH_INCLUDE)
        engine = IncrementalEngine(tree)
        header = str(tree / "shared.h")
        assert basenames(engine.graph.dependents(header)) == ["good.c"]
        (tree / "good.c").unlink()
        engine.invalidate([str(tree / "good.c")])
        assert engine.graph.dependents(header) == set()
        assert engine.invalidate([header]) == set()


class TestHostAlsoDependency:
    def test_host_edit_dirties_every_unit_exactly_once(self, tree):
        # lib.ml is both the corpus's host input and a recorded
        # dependency of every unit; one invalidate must not double-count
        (tree / "second.c").write_text(
            GOOD_C.replace("ml_get", "ml_more")
        )
        (tree / "lib.ml").write_text(
            ML + 'external more : int -> int = "ml_more"\n'
        )
        engine = IncrementalEngine(tree)
        engine.check()
        assert engine.dirty == set()
        (tree / "lib.ml").write_text(
            ML + 'external more : int -> unit = "ml_more"\n'
        )
        affected = engine.invalidate([str(tree / "lib.ml")])
        assert basenames(affected) == ["good.c", "second.c"]
        assert basenames(engine.dirty) == ["good.c", "second.c"]
        report = engine.check()
        assert basenames(report.checked) == ["good.c", "second.c"]

    def test_unchanged_host_reread_keeps_units_clean(self, tree):
        engine = IncrementalEngine(tree)
        engine.check()
        # touching the host without changing its text is a no-op
        (tree / "lib.ml").write_text(ML)
        affected = engine.invalidate([str(tree / "lib.ml")])
        assert affected == set()
        assert engine.dirty == set()


class TestUnitNameCollisions:
    def test_same_basename_in_two_subdirectories(self, tree):
        (tree / "a").mkdir()
        (tree / "b").mkdir()
        (tree / "a" / "x.c").write_text(GOOD_C)
        (tree / "b" / "x.c").write_text(
            GOOD_C.replace("Int_val(x) + 1", "Int_val(x) + 2")
        )
        (tree / "good.c").unlink()
        engine = IncrementalEngine(tree)
        assert len(engine.unit_names) == 2
        report = engine.check()
        assert len(report.results) == 2
        assert {r.name for r in report.results} == set(engine.unit_names)

    def test_editing_one_twin_leaves_the_other_clean(self, tree):
        (tree / "a").mkdir()
        (tree / "b").mkdir()
        (tree / "a" / "x.c").write_text(GOOD_C)
        (tree / "b" / "x.c").write_text(GOOD_C)
        (tree / "good.c").unlink()
        engine = IncrementalEngine(tree)
        engine.check()
        (tree / "a" / "x.c").write_text(
            GOOD_C.replace("Int_val(x) + 1", "Int_val(x) + 3")
        )
        affected = engine.invalidate([str(tree / "a" / "x.c")])
        assert affected == {str(tree / "a" / "x.c")}
        report = engine.check()
        assert report.checked == [str(tree / "a" / "x.c")]
        assert report.reused == 1

    def test_removing_one_twin_keeps_the_other(self, tree):
        (tree / "a").mkdir()
        (tree / "b").mkdir()
        (tree / "a" / "x.c").write_text(GOOD_C)
        (tree / "b" / "x.c").write_text(GOOD_C)
        (tree / "good.c").unlink()
        engine = IncrementalEngine(tree)
        engine.check()
        (tree / "a" / "x.c").unlink()
        engine.invalidate([str(tree / "a" / "x.c")])
        assert engine.unit_names == [str(tree / "b" / "x.c")]
        report = engine.check()
        assert [r.name for r in report.results] == engine.unit_names
