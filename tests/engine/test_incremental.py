"""Dependency graph and incremental re-checking semantics."""

import pytest

from repro.engine import (
    DependencyGraph,
    IncrementalEngine,
    MemoryCache,
    NullCache,
    ResultCache,
    TieredCache,
)

ML = (
    "type t = A of int | B\n"
    'external get : t -> int = "ml_get"\n'
    'external bad : int -> int = "ml_bad"\n'
)

GOOD_C = """\
value ml_get(value x)
{
    if (Is_long(x)) return Val_int(0);
    return Field(x, 0);
}
"""

BAD_C = "value ml_bad(value x) { return Val_int(x); }\n"


@pytest.fixture()
def tree(tmp_path):
    root = tmp_path / "tree"
    (root / "nested").mkdir(parents=True)
    (root / "lib.ml").write_text(ML)
    (root / "good.c").write_text(GOOD_C)
    (root / "nested" / "bad.c").write_text(BAD_C)
    return root


@pytest.fixture()
def engine(tree):
    return IncrementalEngine(tree)


def names(paths):
    return sorted(p.rsplit("/", 1)[-1] for p in paths)


class TestDependencyGraph:
    def test_set_and_query(self):
        graph = DependencyGraph()
        graph.set_dependencies("u.c", ["u.c", "lib.ml", "shared.h"])
        graph.set_dependencies("v.c", ["v.c", "lib.ml"])
        assert graph.dependents("lib.ml") == {"u.c", "v.c"}
        assert graph.dependents("shared.h") == {"u.c"}
        assert graph.dependencies("u.c") == {"u.c", "lib.ml", "shared.h"}
        assert len(graph) == 2

    def test_reset_replaces_old_edges(self):
        graph = DependencyGraph()
        graph.set_dependencies("u.c", ["old.h"])
        graph.set_dependencies("u.c", ["new.h"])
        assert graph.dependents("old.h") == set()
        assert graph.dependents("new.h") == {"u.c"}

    def test_remove_unit_clears_reverse_index(self):
        graph = DependencyGraph()
        graph.set_dependencies("u.c", ["lib.ml"])
        graph.remove_unit("u.c")
        assert graph.dependents("lib.ml") == set()
        assert len(graph) == 0

    def test_unknown_paths_are_empty(self):
        graph = DependencyGraph()
        assert graph.dependents("nowhere.h") == set()
        assert graph.dependencies("nowhere.c") == frozenset()


class TestCorpusLoading:
    def test_units_and_hosts_discovered(self, engine):
        assert names(engine.unit_names) == ["bad.c", "good.c"]
        assert engine.status()["hosts"] == 1

    def test_units_depend_on_host_side(self, engine):
        for unit in engine.unit_names:
            deps = engine.dependencies(unit)
            assert any(path.endswith("lib.ml") for path in deps)
            assert unit in deps

    def test_all_units_start_dirty(self, engine):
        assert names(engine.dirty) == ["bad.c", "good.c"]


class TestCheck:
    def test_cold_check_runs_everything(self, engine):
        report = engine.check()
        assert names(report.checked) == ["bad.c", "good.c"]
        assert names(report.ran) == ["bad.c", "good.c"]
        assert report.reused == 0
        assert report.tally()["errors"] == 1

    def test_noop_recheck_reuses_resident_results(self, engine):
        engine.check()
        report = engine.check()
        assert report.checked == [] and report.ran == []
        assert report.reused == 2
        # diagnostics survive verbatim in the reused results
        assert report.tally()["errors"] == 1
        assert all(r.from_cache and r.cache_tier == "memory" for r in report.results)

    def test_edit_recheck_runs_only_the_touched_unit(self, engine, tree):
        engine.check()
        good = tree / "good.c"
        good.write_text(GOOD_C + "\n/* touched */\n")
        affected = engine.invalidate([good])
        assert names(affected) == ["good.c"]
        report = engine.check()
        assert names(report.ran) == ["good.c"]
        assert report.reused == 1

    def test_host_edit_invalidates_every_unit(self, engine, tree):
        engine.check()
        (tree / "lib.ml").write_text(ML + "type u = C\n")
        affected = engine.invalidate([tree / "lib.ml"])
        assert names(affected) == ["bad.c", "good.c"]
        report = engine.check()
        assert names(report.ran) == ["bad.c", "good.c"]

    def test_unchanged_host_rewrite_is_not_an_invalidation(self, engine, tree):
        engine.check()
        (tree / "lib.ml").write_text(ML)  # same bytes
        assert engine.invalidate([tree / "lib.ml"]) == set()
        assert engine.check().checked == []

    def test_new_unit_joins_the_corpus(self, engine, tree):
        engine.check()
        fresh = tree / "fresh.c"
        fresh.write_text("int helper(void) { return 0; }\n")
        affected = engine.invalidate([fresh])
        assert names(affected) == ["fresh.c"]
        report = engine.check()
        assert names(report.ran) == ["fresh.c"]
        assert len(report.results) == 3

    def test_deleted_unit_leaves_the_corpus(self, engine, tree):
        engine.check()
        (tree / "nested" / "bad.c").unlink()
        engine.invalidate([tree / "nested" / "bad.c"])
        report = engine.check()
        assert names(r.name for r in report.results) == ["good.c"]
        assert report.tally()["errors"] == 0

    def test_restricted_check_only_submits_named_units(self, engine, tree):
        engine.check()
        for name in ("good.c", "nested/bad.c"):
            path = tree / name
            path.write_text(path.read_text() + "\n")
        engine.invalidate([tree / "good.c", tree / "nested" / "bad.c"])
        report = engine.check([tree / "good.c"])
        assert names(report.checked) == ["good.c"]
        # the other unit stays dirty for the next full check, and the
        # report flags its result as stale (pre-edit, not re-verified)
        assert names(engine.dirty) == ["bad.c"]
        assert names(report.stale) == ["bad.c"]
        full = engine.check()
        assert full.stale == []

    def test_relative_paths_resolve_against_root(self, engine, tree):
        engine.check()
        (tree / "good.c").write_text(GOOD_C + "\n")
        assert names(engine.invalidate(["good.c"])) == ["good.c"]


class TestHeaderDependencies:
    def test_quoted_include_edges_recorded(self, tmp_path):
        root = tmp_path / "proj"
        root.mkdir()
        (root / "lib.ml").write_text(ML)
        (root / "tags.h").write_text("#define SHAPE_TAG 1\n")
        (root / "unit.c").write_text('#include "tags.h"\n' + GOOD_C)
        engine = IncrementalEngine(root)
        deps = engine.dependencies(root / "unit.c")
        assert any(path.endswith("tags.h") for path in deps)

    def test_header_edit_dirties_dependents_only(self, tmp_path):
        root = tmp_path / "proj"
        root.mkdir()
        (root / "lib.ml").write_text(ML)
        (root / "tags.h").write_text("#define SHAPE_TAG 1\n")
        (root / "uses.c").write_text('#include "tags.h"\n' + GOOD_C)
        (root / "plain.c").write_text(BAD_C)
        engine = IncrementalEngine(root)
        engine.check()
        (root / "tags.h").write_text("#define SHAPE_TAG 2\n")
        affected = engine.invalidate([root / "tags.h"])
        assert names(affected) == ["uses.c"]
        assert names(engine.dirty) == ["uses.c"]


class TestCacheTiers:
    def test_disk_cache_serves_cold_start(self, tree, tmp_path):
        cache_dir = tmp_path / "cache"
        first = IncrementalEngine(tree, cache=ResultCache(cache_dir))
        first.check()
        # a brand-new engine (fresh memory tier) over the same tree
        second = IncrementalEngine(tree, cache=ResultCache(cache_dir))
        report = second.check()
        assert report.ran == []
        assert names(report.checked) == ["bad.c", "good.c"]
        assert all(r.cache_tier == "disk" for r in report.results)

    def test_memory_tier_beats_disk_on_rewarm(self, tree, tmp_path):
        engine = IncrementalEngine(tree, cache=ResultCache(tmp_path / "c"))
        engine.check()
        # dirty the units without changing bytes: same key, memory hit
        (tree / "good.c").write_text(GOOD_C)
        engine.invalidate([tree / "good.c"])
        report = engine.check()
        assert report.ran == []
        assert names(report.checked) == ["good.c"]
        (unit,) = [r for r in report.results if r.name.endswith("good.c")]
        assert unit.cache_tier == "memory"

    def test_tiered_cache_promotes_disk_hits(self, tmp_path):
        memory = MemoryCache()
        disk = ResultCache(tmp_path / "cache")
        from repro.engine import CheckResult

        disk.store("k" * 64, CheckResult(name="u.c"))
        tiered = TieredCache(memory, disk)
        first = tiered.load("k" * 64)
        assert first.cache_tier == "disk"
        second = tiered.load("k" * 64)
        assert second.cache_tier == "memory"

    def test_status_reports_tier_stats(self, engine):
        engine.check()
        engine.check()
        status = engine.status()
        assert status["units"] == 2
        assert status["dirty"] == []
        assert status["checks_run"] == 2
        assert set(status["cache"]) == {
            "memory",
            "disk",
            "cold_tier",
            "hits",
            "misses",
        }
        assert status["uptime_seconds"] >= 0


class TestIncrementalReport:
    def test_to_dict_carries_incremental_stanza(self, engine):
        data = engine.check().to_dict()
        assert set(data["incremental"]) == {
            "checked",
            "ran",
            "reused",
            "stale",
        }
        assert names(data["incremental"]["ran"]) == ["bad.c", "good.c"]
        assert data["incremental"]["stale"] == []

    def test_reused_results_are_copies(self, engine):
        engine.check()
        report = engine.check()
        report.results[0].diagnostics.clear()
        again = engine.check()
        assert again.tally()["errors"] == 1  # engine state untouched

    def test_fresh_results_are_isolated_from_engine_state(self, engine):
        report = engine.check()  # every result fresh from the scheduler
        for result in report.results:
            result.diagnostics.clear()
        assert engine.check().tally()["errors"] == 1

    def test_null_cache_engine_still_incremental(self, tree):
        engine = IncrementalEngine(tree, cache=NullCache())
        engine.check()
        report = engine.check()
        assert report.reused == 2 and report.ran == []


class TestRevisionLocking:
    def test_revision_readable_while_engine_lock_held(self, engine):
        """The asyncio transport keys coalesced requests on
        ``engine.revision`` from its event loop; a check holding the
        engine lock for a whole analysis must not block that read
        (regression: ``revision`` used to take the engine lock)."""
        import threading

        acquired = threading.Event()
        release = threading.Event()

        def hold_lock():
            with engine._lock:
                acquired.set()
                release.wait(timeout=30)

        holder = threading.Thread(target=hold_lock, daemon=True)
        holder.start()
        assert acquired.wait(timeout=30)
        seen = []
        reader = threading.Thread(
            target=lambda: seen.append(engine.revision), daemon=True
        )
        try:
            reader.start()
            reader.join(timeout=10)
            assert not reader.is_alive(), (
                "engine.revision blocked behind the engine lock"
            )
            assert seen == [engine.revision]
        finally:
            release.set()
            holder.join(timeout=30)
