"""The bounded-memory streaming scheduler (`repro.engine.stream`)."""

from repro.engine import (
    MemoryCache,
    render_unit,
    run_batch,
    stream_batch,
    CheckRequest,
)
from repro.engine.stream import StreamStats, default_window
from repro.source import SourceFile

ML = 'external get : int -> int = "ml_get"\n'
GOOD_C = "value ml_get(value x) { return Val_int(Int_val(x) + 1); }\n"
BAD_C = "value ml_bad(value x) { return Val_int(x); }\n"
BAD_ML = 'external bad : int -> int = "ml_bad"\n'


def request(name, c_text=GOOD_C, ml_text=ML):
    return CheckRequest(
        name=name,
        c_sources=(SourceFile(name, c_text),),
        ocaml_sources=(SourceFile("lib.ml", ml_text),),
        dialect="ocaml",
    )


def distinct_requests(count):
    # distinct symbol per unit so no content-hash layer collapses them
    return [
        request(
            f"u{i}.c",
            GOOD_C.replace("ml_get", f"ml_get{i}"),
            ML.replace("ml_get", f"ml_get{i}"),
        )
        for i in range(count)
    ]


class TestStreamBatch:
    def test_results_arrive_in_submission_order(self):
        requests = distinct_requests(6)
        seen = []
        stats = stream_batch(
            requests, jobs=1, on_result=lambda r: seen.append(r.name)
        )
        assert seen == [r.name for r in requests]
        assert stats.units == 6
        assert stats.analyzed == 6
        assert stats.cache_hits == 0

    def test_consumes_a_lazy_generator(self):
        pulled = []

        def generate():
            for req in distinct_requests(5):
                pulled.append(req.name)
                yield req

        stats = stream_batch(generate(), jobs=1, window=2)
        assert stats.units == 5
        assert len(pulled) == 5

    def test_window_bounds_in_flight_results(self):
        # with window=2 the stream may hold at most 2 undrained results;
        # by the time unit i is submitted, everything before i-2 must
        # already have been handed to on_result
        drained = []

        def generate():
            for i, req in enumerate(distinct_requests(8)):
                assert len(drained) >= i - 2, (i, drained)
                yield req

        stream_batch(
            generate(),
            jobs=1,
            window=2,
            on_result=lambda r: drained.append(r.name),
        )
        assert len(drained) == 8

    def test_diagnostics_match_run_batch_byte_for_byte(self):
        requests = distinct_requests(4) + [request("bad.c", BAD_C, BAD_ML)]
        batch = run_batch(requests, jobs=1, cache=None)
        batch_lines = [
            line for result in batch.results for line in render_unit(result)
        ]
        streamed_lines = []
        stream_batch(
            requests,
            jobs=1,
            on_result=lambda r: streamed_lines.extend(render_unit(r)),
        )
        assert streamed_lines == batch_lines

    def test_cache_hits_are_counted_and_renamed(self):
        cache = MemoryCache()
        requests = distinct_requests(3)
        first = stream_batch(requests, jobs=1, cache=cache)
        assert first.analyzed == 3
        names = []
        second = stream_batch(
            requests, jobs=1, cache=cache, on_result=lambda r: names.append(r.name)
        )
        assert second.cache_hits == 3
        assert second.analyzed == 0
        assert names == [r.name for r in requests]

    def test_parse_failure_is_absorbed_not_raised(self):
        stats = stream_batch(
            [request("broken.c", "value f( {", ML)], jobs=1
        )
        assert stats.failures == 1
        assert stats.units == 1

    def test_parallel_jobs_preserve_order_and_tally(self):
        requests = distinct_requests(6) + [request("bad.c", BAD_C, BAD_ML)]
        seen = []
        stats = stream_batch(
            requests, jobs=2, on_result=lambda r: seen.append(r.name)
        )
        assert seen == [r.name for r in requests]
        assert stats.jobs == 2
        assert stats.tally["errors"] == 1

    def test_parallel_run_stores_into_the_cache(self):
        cache = MemoryCache()
        requests = distinct_requests(5)
        stream_batch(requests, jobs=2, cache=cache)
        warm = stream_batch(requests, jobs=2, cache=cache)
        assert warm.cache_hits == 5


class TestStreamStats:
    def test_default_window_scales_with_jobs(self):
        assert default_window(1) == 4
        assert default_window(8) == 32

    def test_render_mirrors_the_batch_footer(self):
        stats = stream_batch(distinct_requests(2), jobs=1)
        text = stats.render()
        assert text.startswith("-- 2 unit(s):")
        assert "[0 cached, 2 analyzed, jobs=1]" in text

    def test_to_dict_shape(self):
        stats = StreamStats(jobs=3)
        data = stats.to_dict()
        assert data["jobs"] == 3
        assert data["cache"] == {"hits": 0}
        assert set(data["tally"]) == {
            "errors",
            "warnings",
            "false_positives",
            "imprecision",
        }
