"""Scheduler ordering, parallel/sequential equivalence, failure isolation."""


from repro.engine import ResultCache, run_batch, run_request
from repro.engine.scheduler import default_jobs


def _rendered(report):
    return [
        (r.name, r.failure, [d.render() for d in r.diagnostics])
        for r in report.results
    ]


class TestDeterminism:
    def test_results_in_submission_order(self, make_request, sources):
        names = [f"unit{i}.c" for i in range(6)]
        requests = [
            make_request(
                name=name,
                c_text=sources["buggy"] if i % 2 else sources["clean"],
            )
            for i, name in enumerate(names)
        ]
        report = run_batch(requests)
        assert [r.name for r in report.results] == names

    def test_parallel_matches_sequential(self, make_request, sources):
        requests = [
            make_request(name="a.c"),
            make_request(name="b.c", c_text=sources["buggy"]),
            make_request(name="c.c", c_text=sources["malformed"]),
            make_request(name="d.c"),
        ]
        sequential = run_batch(requests, jobs=1)
        parallel = run_batch(requests, jobs=2)
        assert _rendered(parallel) == _rendered(sequential)
        assert parallel.tally() == sequential.tally()

    def test_partial_cache_preserves_order(
        self, tmp_path, make_request, sources
    ):
        cache = ResultCache(tmp_path)
        first = make_request(name="a.c")
        run_batch([first], cache=cache)  # warm only unit a

        requests = [
            make_request(name="b.c", c_text=sources["buggy"]),
            first,
            make_request(name="c.c"),
        ]
        report = run_batch(requests, cache=cache)
        assert [r.name for r in report.results] == ["b.c", "a.c", "c.c"]
        assert [r.from_cache for r in report.results] == [False, True, False]


class TestFailureIsolation:
    def test_malformed_unit_does_not_kill_batch(self, make_request, sources):
        requests = [
            make_request(name="ok.c"),
            make_request(name="broken.c", c_text=sources["malformed"]),
            make_request(name="also-ok.c"),
        ]
        report = run_batch(requests)
        assert len(report.results) == 3
        assert [r.failure is not None for r in report.results] == [
            False,
            True,
            False,
        ]
        assert "ParseError" in report.results[1].failure
        assert report.failures == [report.results[1]]
        assert "engine failure" in report.render()

    def test_failure_reruns_after_cache_round(
        self, tmp_path, make_request, sources
    ):
        cache = ResultCache(tmp_path)
        requests = [make_request(name="broken.c", c_text=sources["malformed"])]
        run_batch(requests, cache=cache)
        rerun = run_batch(requests, cache=cache)
        assert rerun.results[0].from_cache is False
        assert rerun.results[0].failure is not None


class TestTallyMerge:
    def test_batch_tally_is_sum_of_units(self, make_request, sources):
        requests = [
            make_request(name=f"buggy{i}.c", c_text=sources["buggy"])
            for i in range(3)
        ] + [make_request(name="clean.c")]
        report = run_batch(requests)
        assert report.tally()["errors"] == 3
        assert len(report.errors) == 3
        per_unit = [r.tally()["errors"] for r in report.results]
        assert per_unit == [1, 1, 1, 0]

    def test_render_mentions_cache_and_jobs(self, make_request):
        report = run_batch([make_request()], jobs=1)
        summary = report.render().splitlines()[-1]
        assert "1 unit(s)" in summary
        assert "jobs=1" in summary

    def test_to_dict_round_trips_as_json(self, make_request, sources):
        import json

        report = run_batch(
            [make_request(name="buggy.c", c_text=sources["buggy"])]
        )
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["tally"]["errors"] == 1
        assert payload["units"][0]["name"] == "buggy.c"
        assert payload["units"][0]["diagnostics"][0]["category"] == "error"


class TestJobs:
    def test_auto_jobs_is_positive(self):
        assert default_jobs() >= 1

    def test_jobs_zero_means_auto(self, make_request):
        report = run_batch([make_request()], jobs=0)
        assert report.jobs == default_jobs()

    def test_worker_entry_point_is_module_level(self):
        # multiprocessing pickles workers by qualified name
        assert run_request.__module__ == "repro.engine.worker"
        assert run_request.__qualname__ == "run_request"


class TestSignatures:
    def test_signatures_survive_the_wire(self, make_request):
        result = run_request(make_request())
        assert "ml_get" in result.signatures


class _CountingCache:
    """A cold-miss cache: keys flow (so coalescing sees them), nothing
    is ever served back."""

    def load(self, key):
        return None

    def store(self, key, result):
        pass


class TestIntraBatchCoalescing:
    """Duplicate cache keys inside one batch analyze once."""

    def _aliases(self, make_request, count):
        # same sources (so the same cache key) under distinct unit names
        import dataclasses

        base = make_request(name="unit.c")
        return [
            dataclasses.replace(base, name=f"alias{i}.c")
            for i in range(count)
        ]

    def test_duplicates_compute_once_and_fan_out(self, make_request):
        report = run_batch(
            self._aliases(make_request, 4), jobs=1, cache=_CountingCache()
        )
        assert report.coalesced == 3
        assert [r.name for r in report.results] == [
            "alias0.c",
            "alias1.c",
            "alias2.c",
            "alias3.c",
        ]
        # every duplicate carries the shared analysis, costs nothing
        first = report.results[0]
        for duplicate in report.results[1:]:
            assert duplicate.wall_seconds == 0.0
            assert [d.render() for d in duplicate.diagnostics] == [
                d.render() for d in first.diagnostics
            ]

    def test_duplicates_do_not_count_as_analyzed(self, make_request):
        # replaying a leader's fresh run costs nothing, so stats must
        # report one analysis, not four
        report = run_batch(
            self._aliases(make_request, 4), jobs=1, cache=_CountingCache()
        )
        assert report.cache_hits == 0
        assert report.cache_misses == 1
        tiers = [r.cache_tier for r in report.results]
        assert tiers.count("coalesced") == 3
        assert "3 coalesced" in report.render()

    def test_duplicate_results_are_copies_not_aliases(self, make_request):
        report = run_batch(
            self._aliases(make_request, 2), jobs=1, cache=_CountingCache()
        )
        first, second = report.results
        assert first is not second
        assert first.diagnostics is not second.diagnostics

    def test_unkeyed_requests_are_never_coalesced(self, make_request):
        # cacheless runs have no content hash to prove identity
        report = run_batch(self._aliases(make_request, 2), jobs=1)
        assert report.coalesced == 0

    def test_distinct_content_is_not_coalesced(self, make_request, sources):
        report = run_batch(
            [
                make_request(name="clean.c"),
                make_request(name="buggy.c", c_text=sources["buggy"]),
            ],
            jobs=1,
            cache=_CountingCache(),
        )
        assert report.coalesced == 0

    def test_batch_report_json_carries_coalesced(self, make_request):
        import json

        report = run_batch(
            self._aliases(make_request, 2), jobs=1, cache=_CountingCache()
        )
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["cache"]["coalesced"] == 1
