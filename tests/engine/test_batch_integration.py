"""Batch over a real directory must agree with per-file single-shot checks."""

import json
from pathlib import Path

import pytest

from repro.api import Project
from repro.engine import ResultCache

GLUE_DIR = Path(__file__).resolve().parent.parent.parent / "examples" / "glue"


@pytest.fixture(scope="module")
def glue_project():
    assert GLUE_DIR.is_dir(), GLUE_DIR
    return Project.from_directory(GLUE_DIR)


class TestFromDirectory:
    def test_scan_finds_both_sides(self, glue_project):
        ml_names = {Path(s.filename).name for s in glue_project.ocaml_sources}
        c_names = {Path(s.filename).name for s in glue_project.c_sources}
        assert ml_names == {"counter.ml", "shapes.ml"}
        assert c_names == {"counter_stubs.c", "shapes_stubs.c"}

    def test_scan_order_is_deterministic(self):
        first = Project.from_directory(GLUE_DIR)
        second = Project.from_directory(GLUE_DIR)
        assert [s.filename for s in first.c_sources] == [
            s.filename for s in second.c_sources
        ]


class TestPerUnitTiming:
    """The JSON report carries per-unit wall time and cache provenance so
    CI artifacts can plot cold-vs-warm without re-deriving anything."""

    def test_cold_run_stamps_wall_time(self, glue_project):
        report = glue_project.analyze_batch()
        for result in report.results:
            assert result.from_cache is False
            assert result.wall_seconds > 0.0
            # wall time covers parse + analysis, so it bounds the fixpoint
            assert result.wall_seconds >= result.elapsed_seconds

    def test_warm_run_stamps_probe_time(self, tmp_path, glue_project):
        cache = ResultCache(tmp_path)
        glue_project.analyze_batch(cache=cache)
        warm = glue_project.analyze_batch(cache=cache)
        for result in warm.results:
            assert result.from_cache is True
            assert result.wall_seconds > 0.0

    def test_json_report_exposes_timing_and_cache_fields(
        self, tmp_path, glue_project
    ):
        cache = ResultCache(tmp_path)
        report = glue_project.analyze_batch(cache=cache)
        data = report.to_dict()
        assert data["cache"] == {
            "hits": 0,
            "misses": len(report.results),
            "evictions": 0,
            "coalesced": 0,
        }
        for unit in data["units"]:
            assert "wall_seconds" in unit
            assert "elapsed_seconds" in unit
            assert "from_cache" in unit

    def test_wall_time_round_trips_through_the_cache(
        self, tmp_path, glue_project
    ):
        cache = ResultCache(tmp_path)
        glue_project.analyze_batch(cache=cache)
        warm = glue_project.analyze_batch(cache=cache)
        parsed = [json.loads(json.dumps(r.to_dict())) for r in warm.results]
        assert all(u["from_cache"] for u in parsed)


class TestBatchMatchesPerFileCheck:
    def test_diagnostics_agree(self, glue_project):
        batch = glue_project.analyze_batch()

        for result in batch.results:
            assert result.failure is None
            single = Project(
                ocaml_sources=list(glue_project.ocaml_sources),
                c_sources=[
                    s
                    for s in glue_project.c_sources
                    if s.filename == result.name
                ],
            ).analyze()
            assert [d.render() for d in result.diagnostics] == [
                d.render() for d in single.diagnostics
            ]
            assert result.tally() == single.tally()
            assert result.signatures == single.signatures

    def test_seeded_defect_is_the_only_error(self, glue_project):
        batch = glue_project.analyze_batch()
        assert batch.tally()["errors"] == 1
        (error,) = batch.errors
        assert error.span.filename.endswith("shapes_stubs.c")
        assert "tag 2" in error.message

    def test_cached_batch_agrees_too(self, tmp_path, glue_project):
        cache = ResultCache(tmp_path)
        cold = glue_project.analyze_batch(cache=cache)
        warm = glue_project.analyze_batch(cache=cache)
        assert warm.cache_hits == len(warm.results)
        assert [
            d.render() for r in warm.results for d in r.diagnostics
        ] == [d.render() for r in cold.results for d in r.diagnostics]

    def test_parallel_batch_agrees(self, glue_project):
        sequential = glue_project.analyze_batch(jobs=1)
        parallel = glue_project.analyze_batch(jobs=2)
        assert parallel.tally() == sequential.tally()
        assert [
            d.render() for r in parallel.results for d in r.diagnostics
        ] == [d.render() for r in sequential.results for d in r.diagnostics]
