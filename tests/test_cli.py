"""Tests for the command-line interface."""

import pytest

from repro.cli import main


@pytest.fixture()
def project_files(tmp_path):
    ml = tmp_path / "lib.ml"
    ml.write_text(
        'type t = A of int | B\nexternal get : t -> int = "ml_get"\n'
    )
    c = tmp_path / "stubs.c"
    c.write_text(
        """
value ml_get(value x)
{
    if (Is_long(x)) return Val_int(0);
    return Field(x, 0);
}
"""
    )
    return ml, c


class TestCheck:
    def test_clean_project_exit_zero(self, project_files, capsys):
        ml, c = project_files
        code = main(["check", str(ml), str(c)])
        assert code == 0
        out = capsys.readouterr().out
        assert "0 error(s)" in out

    def test_buggy_project_exit_counts_errors(self, tmp_path, capsys):
        ml = tmp_path / "lib.ml"
        ml.write_text('external f : int -> int = "ml_f"\n')
        c = tmp_path / "stubs.c"
        c.write_text("value ml_f(value x) { return Val_int(x); }\n")
        code = main(["check", str(ml), str(c)])
        assert code == 1
        out = capsys.readouterr().out
        assert "Val_int" in out

    def test_quiet_mode(self, project_files, capsys):
        ml, c = project_files
        main(["check", "--quiet", str(ml), str(c)])
        out = capsys.readouterr().out.strip()
        assert out.startswith("--")
        assert len(out.splitlines()) == 1

    def test_missing_file(self, capsys):
        code = main(["check", "/nonexistent/file.c"])
        assert code == 125
        assert "no such file" in capsys.readouterr().err

    def test_unknown_extension(self, tmp_path, capsys):
        path = tmp_path / "data.txt"
        path.write_text("hello")
        code = main(["check", str(path)])
        assert code == 125

    def test_ablation_flags(self, tmp_path, capsys):
        ml = tmp_path / "lib.ml"
        ml.write_text(
            'external f : string -> string ref = "ml_f"\n'
        )
        c = tmp_path / "stubs.c"
        c.write_text(
            """
value ml_f(value s)
{
    value r = caml_alloc(1, 0);
    Store_field(r, 0, s);
    return r;
}
"""
        )
        assert main(["check", str(ml), str(c)]) == 1
        assert main(["check", "--no-gc-effects", str(ml), str(c)]) == 0


class TestBench:
    def test_single_program(self, capsys):
        code = main(["bench", "--program", "apm-1.00"])
        assert code == 0
        out = capsys.readouterr().out
        assert "apm-1.00" in out
        assert "Total" in out

    def test_unknown_program(self, capsys):
        code = main(["bench", "--program", "no-such-lib"])
        assert code == 125
        assert "unknown benchmark" in capsys.readouterr().err

    def test_compare_flag(self, capsys):
        code = main(["bench", "--program", "ocaml-mad-0.1.0", "--compare"])
        assert code == 0
        out = capsys.readouterr().out
        assert "paper/ours" in out


class TestExample:
    def test_example_is_clean(self, capsys):
        code = main(["example"])
        assert code == 0
        assert "0 error(s)" in capsys.readouterr().out
