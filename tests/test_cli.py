"""Tests for the command-line interface."""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cli import main


@pytest.fixture()
def project_files(tmp_path):
    ml = tmp_path / "lib.ml"
    ml.write_text(
        'type t = A of int | B\nexternal get : t -> int = "ml_get"\n'
    )
    c = tmp_path / "stubs.c"
    c.write_text(
        """
value ml_get(value x)
{
    if (Is_long(x)) return Val_int(0);
    return Field(x, 0);
}
"""
    )
    return ml, c


class TestCheck:
    def test_clean_project_exit_zero(self, project_files, capsys):
        ml, c = project_files
        code = main(["check", str(ml), str(c)])
        assert code == 0
        out = capsys.readouterr().out
        assert "0 error(s)" in out

    def test_buggy_project_exit_counts_errors(self, tmp_path, capsys):
        ml = tmp_path / "lib.ml"
        ml.write_text('external f : int -> int = "ml_f"\n')
        c = tmp_path / "stubs.c"
        c.write_text("value ml_f(value x) { return Val_int(x); }\n")
        code = main(["check", str(ml), str(c)])
        assert code == 1
        out = capsys.readouterr().out
        assert "Val_int" in out

    def test_quiet_mode(self, project_files, capsys):
        ml, c = project_files
        main(["check", "--quiet", str(ml), str(c)])
        out = capsys.readouterr().out.strip()
        assert out.startswith("--")
        assert len(out.splitlines()) == 1

    def test_missing_file(self, capsys):
        code = main(["check", "/nonexistent/file.c"])
        assert code == 125
        assert "no such file" in capsys.readouterr().err

    def test_unknown_extension(self, tmp_path, capsys):
        path = tmp_path / "data.txt"
        path.write_text("hello")
        code = main(["check", str(path)])
        assert code == 125

    def test_ablation_flags(self, tmp_path, capsys):
        ml = tmp_path / "lib.ml"
        ml.write_text(
            'external f : string -> string ref = "ml_f"\n'
        )
        c = tmp_path / "stubs.c"
        c.write_text(
            """
value ml_f(value s)
{
    value r = caml_alloc(1, 0);
    Store_field(r, 0, s);
    return r;
}
"""
        )
        assert main(["check", str(ml), str(c)]) == 1
        assert main(["check", "--no-gc-effects", str(ml), str(c)]) == 0


EXAMPLES_PYEXT = Path(__file__).resolve().parent.parent / "examples" / "pyext"


class TestProfileFlag:
    """``--profile [PATH]`` wraps the analysis in cProfile (PR 5): perf
    work starts from a profile, not guesswork."""

    def test_check_profile_to_stderr(self, project_files, capsys):
        ml, c = project_files
        code = main(["check", str(ml), str(c), "--profile"])
        assert code == 0
        captured = capsys.readouterr()
        assert "cumulative" in captured.err
        assert "function calls" in captured.err
        # stdout stays the ordinary report
        assert "0 error(s)" in captured.out

    def test_check_profile_to_path(self, project_files, tmp_path, capsys):
        ml, c = project_files
        out_path = tmp_path / "run.pstats"
        code = main(["check", str(ml), str(c), "--profile", str(out_path)])
        assert code == 0
        stats = out_path.read_text()
        assert "cumulative" in stats
        capsys.readouterr()

    def test_check_profile_keeps_json_parseable(self, project_files, capsys):
        ml, c = project_files
        code = main(
            ["check", str(ml), str(c), "--format", "json", "--profile"]
        )
        assert code == 0
        captured = capsys.readouterr()
        json.loads(captured.out)  # profile output must not pollute stdout

    def test_batch_profile_to_path(self, tmp_path, capsys):
        tree = tmp_path / "tree"
        tree.mkdir()
        (tree / "lib.ml").write_text(
            'external f : int -> int = "ml_f"\n'
        )
        (tree / "stubs.c").write_text(
            "value ml_f(value x) { return Val_int(Int_val(x)); }\n"
        )
        out_path = tmp_path / "batch.pstats"
        code = main(
            [
                "batch",
                str(tree),
                "--no-cache",
                "--profile",
                str(out_path),
            ]
        )
        assert code == 0
        assert "cumulative" in out_path.read_text()
        capsys.readouterr()


class TestDialectFlag:
    def test_pyext_clean_module_exits_zero(self, capsys):
        code = main(
            [
                "check",
                "--dialect",
                "pyext",
                str(EXAMPLES_PYEXT / "clean_module.c"),
            ]
        )
        assert code == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_pyext_bad_stubs_reports_seeded_defects(self, capsys):
        code = main(
            ["check", "--dialect", "pyext", str(EXAMPLES_PYEXT / "bad_stubs.c")]
        )
        out = capsys.readouterr().out
        assert code == 4
        assert "PyArg_ParseTuple" in out  # format/arity mismatch
        assert "Py_DECREF is missing" in out  # reference leak
        assert "after Py_DECREF" in out  # use-after-decref

    def test_ml_file_rejected_under_pyext(self, tmp_path, capsys):
        ml = tmp_path / "lib.ml"
        ml.write_text("type t = A\n")
        code = main(["check", "--dialect", "pyext", str(ml)])
        assert code == 125
        assert "dialect pyext" in capsys.readouterr().err

    def test_default_dialect_is_ocaml(self, project_files, capsys):
        ml, c = project_files
        assert main(["check", str(ml), str(c)]) == 0

    def test_batch_dialect_flag(self, tmp_path, capsys):
        code = main(
            [
                "batch",
                "--dialect",
                "pyext",
                str(EXAMPLES_PYEXT),
                "--no-cache",
                "--format",
                "json",
            ]
        )
        assert code == 4
        data = json.loads(capsys.readouterr().out)
        errors = {
            Path(u["name"]).name: u["tally"]["errors"] for u in data["units"]
        }
        assert errors == {"bad_stubs.c": 4, "clean_module.c": 0}
        assert all("wall_seconds" in u for u in data["units"])

    def test_dialects_cache_separately(self, tmp_path, capsys):
        # same file through both dialects: four analyses, zero cross-hits
        tree = tmp_path / "tree"
        tree.mkdir()
        (tree / "unit.c").write_text("int helper(void) { return 0; }\n")
        cache_dir = tmp_path / "cache"
        for dialect in ("ocaml", "pyext"):
            code = main(
                [
                    "batch",
                    "--dialect",
                    dialect,
                    str(tree),
                    "--cache-dir",
                    str(cache_dir),
                    "--format",
                    "json",
                ]
            )
            assert code == 0
            data = json.loads(capsys.readouterr().out)
            assert data["cache"] == {"hits": 0, "misses": 1, "evictions": 0, "coalesced": 0}


@pytest.fixture()
def glue_tree(tmp_path):
    """A tiny directory tree: one clean unit, one with a Val_int misuse."""
    root = tmp_path / "tree"
    (root / "nested").mkdir(parents=True)
    (root / "lib.ml").write_text(
        'type t = A of int | B\n'
        'external get : t -> int = "ml_get"\n'
        'external bad : int -> int = "ml_bad"\n'
    )
    (root / "good.c").write_text(
        "value ml_get(value x)\n"
        "{\n"
        "    if (Is_long(x)) return Val_int(0);\n"
        "    return Field(x, 0);\n"
        "}\n"
    )
    (root / "nested" / "bad.c").write_text(
        "value ml_bad(value x) { return Val_int(x); }\n"
    )
    return root


class TestBatch:
    def test_text_output_and_exit_code(self, glue_tree, tmp_path, capsys):
        code = main(
            ["batch", str(glue_tree), "--cache-dir", str(tmp_path / "cache")]
        )
        assert code == 1  # exactly the seeded Val_int error
        out = capsys.readouterr().out
        assert "bad.c" in out
        assert "2 unit(s)" in out
        assert "1 error(s)" in out

    def test_json_output_is_machine_readable(self, glue_tree, tmp_path, capsys):
        code = main(
            [
                "batch",
                str(glue_tree),
                "--format",
                "json",
                "--cache-dir",
                str(tmp_path / "cache"),
            ]
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["tally"]["errors"] == 1
        assert len(payload["units"]) == 2
        names = {Path(u["name"]).name for u in payload["units"]}
        assert names == {"good.c", "bad.c"}
        assert payload["cache"] == {"hits": 0, "misses": 2, "evictions": 0, "coalesced": 0}

    def test_second_run_hits_cache(self, glue_tree, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        main(["batch", str(glue_tree), "--cache-dir", cache_dir])
        capsys.readouterr()
        code = main(
            ["batch", str(glue_tree), "--format", "json", "--cache-dir", cache_dir]
        )
        assert code == 1  # cached diagnostics keep their exit semantics
        payload = json.loads(capsys.readouterr().out)
        assert payload["cache"] == {"hits": 2, "misses": 0, "evictions": 0, "coalesced": 0}

    def test_no_cache_flag(self, glue_tree, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        code = main(
            ["batch", str(glue_tree), "--no-cache", "--cache-dir", str(cache_dir)]
        )
        assert code == 1
        assert not cache_dir.exists()

    def test_parallel_jobs_flag(self, glue_tree, capsys):
        code = main(["batch", str(glue_tree), "--no-cache", "--jobs", "2"])
        assert code == 1
        assert "1 error(s)" in capsys.readouterr().out

    def test_ablation_flag_changes_cache_key(self, glue_tree, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        main(["batch", str(glue_tree), "--cache-dir", cache_dir])
        capsys.readouterr()
        code = main(
            [
                "batch",
                str(glue_tree),
                "--no-flow-sensitive",
                "--format",
                "json",
                "--cache-dir",
                cache_dir,
            ]
        )
        assert code >= 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["cache"]["hits"] == 0  # different Options, fresh keys

    def test_missing_directory(self, capsys):
        assert main(["batch", "/nonexistent/dir"]) == 125
        assert "no such directory" in capsys.readouterr().err

    def test_directory_without_units(self, tmp_path, capsys):
        (tmp_path / "readme.txt").write_text("nothing to check")
        assert main(["batch", str(tmp_path)]) == 125
        assert "no .c translation units" in capsys.readouterr().err

    def test_malformed_unit_exits_125(self, glue_tree, capsys):
        (glue_tree / "broken.c").write_text("value f( {\n")
        code = main(["batch", str(glue_tree), "--no-cache"])
        assert code == 125
        assert "engine failure" in capsys.readouterr().out


class TestBatchSubprocess:
    """End-to-end: drive `mlffi-check batch` as a real child process."""

    @staticmethod
    def _invoke(args, cwd):
        repo_root = Path(__file__).resolve().parent.parent
        env = dict(os.environ)
        src = str(repo_root / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        return subprocess.run(
            [sys.executable, "-m", "repro.cli", *args],
            capture_output=True,
            text=True,
            cwd=cwd,
            env=env,
            timeout=120,
        )

    def test_exit_code_counts_errors(self, glue_tree, tmp_path):
        proc = self._invoke(
            ["batch", str(glue_tree), "--no-cache"], cwd=tmp_path
        )
        assert proc.returncode == 1, proc.stderr
        assert "1 error(s)" in proc.stdout

    def test_json_output_parses_and_matches(self, glue_tree, tmp_path):
        proc = self._invoke(
            [
                "batch",
                str(glue_tree),
                "--jobs",
                "2",
                "--format",
                "json",
                "--cache-dir",
                str(tmp_path / "cache"),
            ],
            cwd=tmp_path,
        )
        assert proc.returncode == 1, proc.stderr
        payload = json.loads(proc.stdout)
        assert payload["tally"] == {
            "errors": 1,
            "warnings": 0,
            "false_positives": 0,
            "imprecision": 0,
        }
        assert payload["jobs"] == 2
        units = {Path(u["name"]).name: u for u in payload["units"]}
        assert units["bad.c"]["tally"]["errors"] == 1
        assert units["good.c"]["tally"]["errors"] == 0
        (diag,) = units["bad.c"]["diagnostics"]
        assert diag["kind"] == "BAD_VAL_INT"
        assert diag["span"]["filename"].endswith("bad.c")

    def test_missing_directory_exit_125(self, tmp_path):
        proc = self._invoke(["batch", str(tmp_path / "absent")], cwd=tmp_path)
        assert proc.returncode == 125
        assert "no such directory" in proc.stderr


@pytest.fixture()
def warning_tree(tmp_path):
    """A corpus whose only finding is a questionable-practice warning."""
    root = tmp_path / "warn"
    root.mkdir()
    (root / "lib.ml").write_text(
        'external flush : int -> unit -> unit = "ml_flush"\n'
    )
    (root / "stubs.c").write_text(
        "value ml_flush(value fd) { do_flush(Int_val(fd)); return Val_unit; }\n"
    )
    return root


class TestExitCodeContract:
    def test_warnings_only_batch_exits_zero(self, warning_tree, capsys):
        code = main(["batch", str(warning_tree), "--no-cache"])
        assert code == 0
        assert "1 warning(s)" in capsys.readouterr().out

    def test_strict_batch_counts_warnings(self, warning_tree, capsys):
        code = main(["batch", str(warning_tree), "--no-cache", "--strict"])
        assert code == 1

    def test_warnings_only_check_exits_zero(self, warning_tree, capsys):
        files = [str(warning_tree / "lib.ml"), str(warning_tree / "stubs.c")]
        assert main(["check", *files]) == 0
        assert main(["check", "--strict", *files]) == 1

    def test_strict_does_not_change_error_counting(self, glue_tree, capsys):
        code = main(["batch", str(glue_tree), "--no-cache", "--strict"])
        assert code == 1  # 1 error + 0 warnings

    def test_check_json_format(self, warning_tree, capsys):
        files = [str(warning_tree / "lib.ml"), str(warning_tree / "stubs.c")]
        code = main(["check", "--format", "json", *files])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["tally"]["warnings"] == 1
        (diag,) = payload["diagnostics"]
        assert diag["kind"] == "TRAILING_UNIT"


class TestCacheMaxEntries:
    def test_eviction_stats_surface_in_json(self, glue_tree, tmp_path, capsys):
        code = main(
            [
                "batch",
                str(glue_tree),
                "--cache-dir",
                str(tmp_path / "cache"),
                "--cache-max-entries",
                "1",
                "--format",
                "json",
            ]
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["cache"]["evictions"] == 1
        assert len(list((tmp_path / "cache").glob("*.json"))) == 1

    def test_zero_disables_the_cap(self, glue_tree, tmp_path, capsys):
        code = main(
            [
                "batch",
                str(glue_tree),
                "--cache-dir",
                str(tmp_path / "cache"),
                "--cache-max-entries",
                "0",
                "--format",
                "json",
            ]
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["cache"]["evictions"] == 0
        assert len(list((tmp_path / "cache").glob("*.json"))) == 2


class TestWatchCommand:
    def test_watch_initial_check_and_bounded_polls(self, glue_tree, capsys):
        code = main(
            [
                "watch",
                str(glue_tree),
                "--no-cache",
                "--interval",
                "0.01",
                "--max-polls",
                "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "2 unit(s)" in out  # the initial full check printed

    def test_watch_missing_directory(self, capsys):
        assert main(["watch", "/nonexistent/dir"]) == 125
        assert "no such directory" in capsys.readouterr().err


class TestServeCommand:
    def test_serve_missing_directory(self, capsys):
        assert main(["serve", "/nonexistent/dir"]) == 125
        assert "no such directory" in capsys.readouterr().err

    def test_serve_bad_tcp_address(self, glue_tree, capsys):
        code = main(["serve", str(glue_tree), "--no-cache", "--tcp", "nope"])
        assert code == 125
        assert "bad --tcp address" in capsys.readouterr().err


class TestBench:
    def test_single_program(self, capsys):
        code = main(["bench", "--program", "apm-1.00"])
        assert code == 0
        out = capsys.readouterr().out
        assert "apm-1.00" in out
        assert "Total" in out

    def test_unknown_program(self, capsys):
        code = main(["bench", "--program", "no-such-lib"])
        assert code == 125
        assert "unknown benchmark" in capsys.readouterr().err

    def test_compare_flag(self, capsys):
        code = main(["bench", "--program", "ocaml-mad-0.1.0", "--compare"])
        assert code == 0
        out = capsys.readouterr().out
        assert "paper/ours" in out


class TestExample:
    def test_example_is_clean(self, capsys):
        code = main(["example"])
        assert code == 0
        assert "0 error(s)" in capsys.readouterr().out


@pytest.fixture()
def link_tree(tmp_path):
    """Per-unit clean corpus with one cross-unit prototype conflict."""
    root = tmp_path / "linked"
    root.mkdir()
    (root / "lib.ml").write_text('external get : int -> int = "ml_get"\n')
    (root / "good.c").write_text(
        "value ml_get(value x) { return Val_int(Int_val(x) + 1); }\n"
    )
    (root / "def.c").write_text(
        "long shared_helper(long a, long b)\n"
        "{\n"
        "    return a + b;\n"
        "}\n"
    )
    (root / "use.c").write_text(
        "long shared_helper(long a);\n"
        "\n"
        "long use_helper(long x)\n"
        "{\n"
        "    return shared_helper(x);\n"
        "}\n"
    )
    return root


class TestLinkCommand:
    def test_conflict_is_exit_code_visible(self, link_tree, capsys):
        code = main(["link", str(link_tree), "--no-cache"])
        assert code == 1
        out = capsys.readouterr().out
        assert "== link" in out
        assert "LINK" not in out  # rendered messages, not kind names
        assert "shared_helper" in out
        assert "conflicting C types" in out

    def test_quiet_prints_only_the_link_report(self, link_tree, capsys):
        code = main(["link", str(link_tree), "--no-cache", "--quiet"])
        assert code == 1
        out = capsys.readouterr().out
        assert "== link" in out
        assert "== " + str(link_tree / "good.c") not in out

    def test_clean_corpus_exits_zero(self, link_tree, capsys):
        (link_tree / "use.c").unlink()
        code = main(["link", str(link_tree), "--no-cache", "--quiet"])
        assert code == 0
        assert "0 error(s), 0 warning(s)" in capsys.readouterr().out

    def test_json_reports_stream_and_link(self, link_tree, capsys):
        code = main(
            ["link", str(link_tree), "--no-cache", "--format", "json"]
        )
        assert code == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["stream"]["units"] == 3
        assert doc["stream"]["tally"]["errors"] == 0
        (diag,) = doc["link"]["diagnostics"]
        assert diag["kind"] == "LINK_CONFLICTING_DECL"

    def test_sarif_carries_the_cross_unit_diagnostics(self, link_tree, capsys):
        code = main(
            ["link", str(link_tree), "--no-cache", "--format", "sarif"]
        )
        assert code == 1
        log = json.loads(capsys.readouterr().out)
        results = log["runs"][0]["results"]
        assert [r["ruleId"] for r in results] == ["LINK_CONFLICTING_DECL"]

    def test_missing_directory_exits_125(self, tmp_path, capsys):
        code = main(["link", str(tmp_path / "absent"), "--no-cache"])
        assert code == 125

    EXAMPLES = Path(__file__).resolve().parent.parent / "examples" / "link"

    def test_seeded_example_corpora(self, capsys):
        for dialect in ("ocaml", "pyext", "jni"):
            code = main(
                [
                    "link",
                    str(self.EXAMPLES / dialect),
                    "--dialect",
                    dialect,
                    "--no-cache",
                    "--quiet",
                ]
            )
            assert code == 2, dialect
            out = capsys.readouterr().out
            assert "2 error(s), 1 warning(s)" in out, dialect

    def test_strict_counts_the_warning(self, capsys):
        code = main(
            [
                "link",
                str(self.EXAMPLES / "ocaml"),
                "--no-cache",
                "--quiet",
                "--strict",
            ]
        )
        assert code == 3


class TestBatchLinkAndStream:
    def test_batch_link_appends_the_link_report(self, link_tree, capsys):
        code = main(["batch", str(link_tree), "--no-cache", "--link"])
        assert code == 1
        out = capsys.readouterr().out
        assert "== link" in out
        assert "conflicting C types" in out

    def test_batch_without_link_stays_silent_about_linking(
        self, link_tree, capsys
    ):
        code = main(["batch", str(link_tree), "--no-cache"])
        assert code == 0
        assert "== link" not in capsys.readouterr().out

    def test_batch_link_json_stanza(self, link_tree, capsys):
        code = main(
            [
                "batch",
                str(link_tree),
                "--no-cache",
                "--link",
                "--format",
                "json",
            ]
        )
        assert code == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["link"]["tally"]["errors"] == 1

    def test_batch_link_sarif_merges_unit_and_link_rows(
        self, link_tree, capsys
    ):
        code = main(
            [
                "batch",
                str(link_tree),
                "--no-cache",
                "--link",
                "--format",
                "sarif",
            ]
        )
        assert code == 1
        log = json.loads(capsys.readouterr().out)
        rules = [
            r["id"] for r in log["runs"][0]["tool"]["driver"]["rules"]
        ]
        assert "LINK_CONFLICTING_DECL" in rules

    def test_streamed_batch_matches_batch_output(self, link_tree, capsys):
        code = main(["batch", str(link_tree), "--no-cache"])
        plain = capsys.readouterr().out
        stream_code = main(
            ["batch", str(link_tree), "--no-cache", "--stream"]
        )
        streamed = capsys.readouterr().out
        assert stream_code == code == 0
        plain_units = [
            line for line in plain.splitlines() if not line.startswith("--")
        ]
        streamed_units = [
            line
            for line in streamed.splitlines()
            if not line.startswith("--")
        ]
        assert streamed_units == plain_units

    def test_streamed_link_finds_the_conflict(self, link_tree, capsys):
        code = main(
            ["batch", str(link_tree), "--no-cache", "--stream", "--link"]
        )
        assert code == 1
        assert "conflicting C types" in capsys.readouterr().out

    def test_stream_rejects_sarif(self, link_tree, capsys):
        code = main(
            [
                "batch",
                str(link_tree),
                "--no-cache",
                "--stream",
                "--format",
                "sarif",
            ]
        )
        assert code == 125
        assert "sarif" in capsys.readouterr().err

    def test_stream_json_lines_per_unit(self, link_tree, capsys):
        code = main(
            [
                "batch",
                str(link_tree),
                "--no-cache",
                "--stream",
                "--format",
                "json",
            ]
        )
        assert code == 0
        lines = capsys.readouterr().out.splitlines()
        # one JSON object per unit, then one trailer object
        parsed = [json.loads(line) for line in lines if line.strip()]
        assert len(parsed) == 4
        assert parsed[-1]["stream"]["units"] == 3
