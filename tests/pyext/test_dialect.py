"""End-to-end pyext dialect: the acceptance-criteria scenarios."""

from pathlib import Path

import pytest

from repro.api import Project
from repro.diagnostics import Kind
from repro.source import SourceFile

EXAMPLES = Path(__file__).resolve().parent.parent.parent / "examples" / "pyext"


def analyze_text(text, name="mod.c"):
    return Project(dialect="pyext").add_c(SourceFile(name, text)).analyze()


def analyze_example(filename):
    path = EXAMPLES / filename
    return analyze_text(path.read_text(), name=str(path))


class TestExampleCorpus:
    def test_clean_module_has_zero_diagnostics(self):
        report = analyze_example("clean_module.c")
        assert len(report.diagnostics) == 0

    def test_bad_stubs_reports_the_seeded_defects(self):
        report = analyze_example("bad_stubs.c")
        kinds = {d.kind for d in report.diagnostics}
        assert Kind.PY_FORMAT_MISMATCH in kinds
        assert Kind.PY_REF_LEAK in kinds
        assert Kind.PY_USE_AFTER_DECREF in kinds
        assert Kind.PY_BORROWED_ESCAPE in kinds

    def test_bad_stubs_defects_land_in_the_right_functions(self):
        report = analyze_example("bad_stubs.c")
        by_fn = {(d.kind, d.function) for d in report.diagnostics}
        assert (Kind.PY_FORMAT_MISMATCH, "bad_arity") in by_fn
        assert (Kind.PY_FORMAT_MISMATCH, "bad_types") in by_fn
        assert (Kind.PY_REF_LEAK, "bad_leak") in by_fn
        assert (Kind.PY_USE_AFTER_DECREF, "bad_use") in by_fn
        assert (Kind.PY_BORROWED_ESCAPE, "bad_borrow") in by_fn


class TestMethodTableContract:
    def test_wrong_arity_definition_is_flagged(self):
        # METH_VARARGS dictates (self, args); a three-parameter definition
        # clashes with Γ_I exactly like an external/stub arity mismatch
        report = analyze_text(
            "static PyObject *f(PyObject *a, PyObject *b, PyObject *c)\n"
            "{\n"
            "    Py_INCREF(a);\n"
            "    return a;\n"
            "}\n"
            'static PyMethodDef M[] = {{"f", f, METH_VARARGS, "d"}};\n'
        )
        assert any(d.kind is Kind.ARITY_MISMATCH for d in report.errors)

    def test_fastcall_definition_is_clean(self):
        report = analyze_text(
            "static PyObject *\n"
            "f(PyObject *self, PyObject **args, Py_ssize_t nargs)\n"
            "{\n"
            "    return PyLong_FromLong(nargs);\n"
            "}\n"
            'static PyMethodDef M[] = {{"f", f, METH_FASTCALL, "d"}};\n'
        )
        assert len(report.diagnostics) == 0

    def test_keywords_method_with_three_params_is_clean(self):
        report = analyze_text(
            "static PyObject *f(PyObject *a, PyObject *b, PyObject *c)\n"
            "{\n"
            "    Py_INCREF(a);\n"
            "    return a;\n"
            "}\n"
            "static PyMethodDef M[] = "
            '{{"f", f, METH_VARARGS | METH_KEYWORDS, "d"}};\n'
        )
        assert len(report.diagnostics) == 0


class TestCoreInferenceReuse:
    def test_value_used_as_scalar_is_a_type_error(self):
        # no PyLong_AsLong conversion: the shared (App) rule rejects the
        # raw PyObject* where the API wants a C scalar
        report = analyze_text(
            "static PyObject *f(PyObject *self, PyObject *args)\n"
            "{\n"
            "    return PyLong_FromLong(args);\n"
            "}\n"
        )
        assert any(d.kind is Kind.TYPE_MISMATCH for d in report.errors)

    def test_signatures_render_value_types(self):
        report = analyze_text(
            "static PyObject *f(PyObject *self, PyObject *args)\n"
            "{\n"
            "    Py_INCREF(args);\n"
            "    return args;\n"
            "}\n"
        )
        assert "value" in report.signatures["f"]


class TestBatchIntegration:
    def test_pyext_batch_over_examples(self, tmp_path):
        project = Project.from_directory(EXAMPLES, dialect="pyext")
        assert [Path(s.filename).name for s in project.c_sources] == [
            "bad_stubs.c",
            "clean_module.c",
        ]
        report = project.analyze_batch()
        assert report.tally()["errors"] == 4
        names = {Path(r.name).name: r for r in report.results}
        assert names["clean_module.c"].tally()["errors"] == 0

    def test_dialect_rides_the_requests(self):
        project = Project.from_directory(EXAMPLES, dialect="pyext")
        assert all(r.dialect == "pyext" for r in project.to_requests())


class TestModuleBoilerplate:
    def test_module_init_is_clean(self):
        report = analyze_text(
            "static PyMethodDef M[] = {{NULL, NULL, 0, NULL}};\n"
            "static struct PyModuleDef mod = "
            '{PyModuleDef_HEAD_INIT, "m", NULL, -1, M};\n'
            "PyMODINIT_FUNC PyInit_m(void)\n"
            "{\n"
            "    return PyModule_Create(&mod);\n"
            "}\n"
        )
        assert len(report.diagnostics) == 0


@pytest.mark.parametrize("filename", ["clean_module.c", "bad_stubs.c"])
def test_examples_exist(filename):
    assert (EXAMPLES / filename).is_file()
