"""The Py_INCREF/Py_DECREF discipline: leaks, use-after-decref, escapes."""

from repro.diagnostics import Kind
from repro.pyext.dialect import PYEXT_DIALECT
from repro.pyext.refcount import check_unit
from repro.source import SourceFile


def diags_for(body, params="PyObject *self, PyObject *args"):
    text = f"static PyObject *f({params})\n{{\n{body}\n}}\n"
    unit = PYEXT_DIALECT.parse(SourceFile("mod.c", text))
    return check_unit(unit)


def kinds(body, **kw):
    return [d.kind for d in diags_for(body, **kw)]


class TestLeaks:
    def test_owned_never_released_leaks(self):
        assert kinds(
            "    PyObject *tmp = PyLong_FromLong(7);\n"
            "    return PyLong_FromLong(1);"
        ) == [Kind.PY_REF_LEAK]

    def test_released_does_not_leak(self):
        assert kinds(
            "    PyObject *tmp = PyLong_FromLong(7);\n"
            "    Py_DECREF(tmp);\n"
            "    return PyLong_FromLong(1);"
        ) == []

    def test_returned_reference_is_consumed(self):
        assert kinds(
            "    PyObject *tmp = PyLong_FromLong(7);\n"
            "    return tmp;"
        ) == []

    def test_overwrite_while_owned_leaks(self):
        assert kinds(
            "    PyObject *tmp = PyLong_FromLong(7);\n"
            "    tmp = PyLong_FromLong(8);\n"
            "    Py_DECREF(tmp);\n"
            "    return PyLong_FromLong(1);"
        ) == [Kind.PY_REF_LEAK]

    def test_transfer_to_stealing_call_is_not_a_leak(self):
        assert kinds(
            "    PyObject *pair = PyTuple_New(2);\n"
            "    PyObject *one = PyLong_FromLong(1);\n"
            "    PyTuple_SetItem(pair, 0, one);\n"
            "    return pair;"
        ) == []

    def test_leak_reported_on_early_error_return(self):
        out = diags_for(
            "    PyObject *tmp = PyList_New(0);\n"
            "    long x;\n"
            '    if (!PyArg_ParseTuple(args, "l", &x))\n'
            "        return NULL;\n"
            "    Py_DECREF(tmp);\n"
            "    return PyLong_FromLong(x);"
        )
        assert [d.kind for d in out] == [Kind.PY_REF_LEAK]

    def test_null_guarded_early_return_is_clean(self):
        # allocation-failure idiom: the pointer is null on the early path
        assert kinds(
            "    PyObject *tmp = PyList_New(0);\n"
            "    if (tmp == NULL)\n"
            "        return NULL;\n"
            "    Py_DECREF(tmp);\n"
            "    return PyLong_FromLong(1);"
        ) == []


class TestUseAfterDecref:
    def test_return_after_decref(self):
        assert kinds(
            "    PyObject *tmp = PyLong_FromLong(7);\n"
            "    Py_DECREF(tmp);\n"
            "    return tmp;"
        ) == [Kind.PY_USE_AFTER_DECREF]

    def test_call_argument_after_decref(self):
        assert kinds(
            "    PyObject *tmp = PyLong_FromLong(7);\n"
            "    Py_DECREF(tmp);\n"
            "    PyList_Append(args, tmp);\n"
            "    return PyLong_FromLong(1);"
        ) == [Kind.PY_USE_AFTER_DECREF]

    def test_double_decref(self):
        assert kinds(
            "    PyObject *tmp = PyLong_FromLong(7);\n"
            "    Py_DECREF(tmp);\n"
            "    Py_DECREF(tmp);\n"
            "    return PyLong_FromLong(1);"
        ) == [Kind.PY_USE_AFTER_DECREF]

    def test_reported_once_per_variable(self):
        out = diags_for(
            "    PyObject *tmp = PyLong_FromLong(7);\n"
            "    Py_DECREF(tmp);\n"
            "    PyList_Append(args, tmp);\n"
            "    PyList_Append(args, tmp);\n"
            "    return PyLong_FromLong(1);"
        )
        assert len(out) == 1

    def test_decref_on_one_branch_only_is_silent(self):
        # disagreement joins to unknown: no must-fact, no report
        assert kinds(
            "    PyObject *tmp = PyLong_FromLong(7);\n"
            "    long x;\n"
            '    if (!PyArg_ParseTuple(args, "l", &x)) {\n'
            "        Py_DECREF(tmp);\n"
            "    } else {\n"
            "        Py_DECREF(tmp);\n"
            "        tmp = NULL;\n"
            "    }\n"
            "    return PyLong_FromLong(1);"
        ) == []


class TestBorrowedEscapes:
    def test_returning_borrowed_item_warns(self):
        assert kinds(
            "    PyObject *item = PyTuple_GetItem(args, 0);\n"
            "    return item;"
        ) == [Kind.PY_BORROWED_ESCAPE]

    def test_increfed_item_returns_clean(self):
        assert kinds(
            "    PyObject *item = PyTuple_GetItem(args, 0);\n"
            "    Py_INCREF(item);\n"
            "    return item;"
        ) == []

    def test_returning_parameter_warns(self):
        assert kinds("    return self;") == [Kind.PY_BORROWED_ESCAPE]

    def test_singleton_without_incref_warns(self):
        assert kinds("    return Py_None;") == [Kind.PY_BORROWED_ESCAPE]

    def test_incref_then_singleton_return_is_clean(self):
        assert kinds(
            "    Py_INCREF(Py_None);\n"
            "    return Py_None;"
        ) == []

    def test_py_return_none_macro_is_clean(self):
        assert kinds("    Py_RETURN_NONE;") == []

    def test_stealing_a_borrowed_reference_warns(self):
        assert kinds(
            "    PyObject *pair = PyTuple_New(2);\n"
            "    PyObject *item = PyTuple_GetItem(args, 0);\n"
            "    PyTuple_SetItem(pair, 0, item);\n"
            "    return pair;"
        ) == [Kind.PY_BORROWED_ESCAPE]

    def test_returning_owned_through_cast_is_clean(self):
        assert kinds(
            "    PyObject *scratch = PyLong_FromLong(7);\n"
            "    return (PyObject *)scratch;"
        ) == []

    def test_alias_moves_ownership(self):
        # one object, one owned reference: returning the alias consumes it
        assert kinds(
            "    PyObject *x = PyLong_FromLong(1);\n"
            "    PyObject *y = x;\n"
            "    return y;"
        ) == []

    def test_alias_does_not_hide_a_real_leak(self):
        assert kinds(
            "    PyObject *x = PyLong_FromLong(1);\n"
            "    PyObject *y = x;\n"
            "    return PyLong_FromLong(2);"
        ) == [Kind.PY_REF_LEAK]

    def test_parse_tuple_outputs_are_borrowed(self):
        assert kinds(
            "    PyObject *obj;\n"
            '    if (!PyArg_ParseTuple(args, "O", &obj))\n'
            "        return NULL;\n"
            "    return obj;"
        ) == [Kind.PY_BORROWED_ESCAPE]
