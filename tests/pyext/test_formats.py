"""Format-string model and checker for PyArg_ParseTuple / Py_BuildValue."""

from repro.diagnostics import Kind
from repro.pyext.dialect import PYEXT_DIALECT
from repro.pyext.formats import (
    ANY,
    CHARPTR,
    SCALAR,
    VALUE,
    build_value_units,
    check_unit,
    parse_tuple_units,
)
from repro.source import SourceFile


def expects(fmt):
    units = parse_tuple_units(fmt)
    return None if units is None else [u.expect for u in units]


class TestParseTupleUnits:
    def test_scalars(self):
        assert expects("iil") == [SCALAR, SCALAR, SCALAR]

    def test_strings_and_values(self):
        assert expects("sO") == [CHARPTR, VALUE]

    def test_optional_marker_still_counts(self):
        assert expects("i|i") == [SCALAR, SCALAR]

    def test_length_suffix_adds_a_scalar(self):
        assert expects("s#") == [CHARPTR, SCALAR]

    def test_typed_object_takes_two(self):
        assert expects("O!") == [ANY, VALUE]

    def test_converter_takes_two_unchecked(self):
        assert expects("O&") == [ANY, ANY]

    def test_function_name_suffix_ignored(self):
        assert expects("ii:add") == [SCALAR, SCALAR]

    def test_unknown_code_disables_checking(self):
        assert expects("i?") is None

    def test_tuple_nesting(self):
        assert expects("(ii)s") == [SCALAR, SCALAR, CHARPTR]


class TestBuildValueUnits:
    def test_mixed(self):
        units = build_value_units("(is)O")
        assert [u.expect for u in units] == [SCALAR, CHARPTR, VALUE]

    def test_stolen_reference_code_counts(self):
        assert [u.expect for u in build_value_units("N")] == [VALUE]


def diags_for(text):
    unit = PYEXT_DIALECT.parse(SourceFile("mod.c", text))
    return check_unit(unit)


class TestChecker:
    def test_clean_call_silent(self):
        out = diags_for(
            "static PyObject *f(PyObject *self, PyObject *args)\n"
            "{\n"
            "    long a, b;\n"
            '    if (!PyArg_ParseTuple(args, "ll", &a, &b))\n'
            "        return NULL;\n"
            "    return PyLong_FromLong(a + b);\n"
            "}\n"
        )
        assert out == []

    def test_arity_mismatch(self):
        out = diags_for(
            "static PyObject *f(PyObject *self, PyObject *args)\n"
            "{\n"
            "    long a;\n"
            '    PyArg_ParseTuple(args, "ll", &a);\n'
            "    return PyLong_FromLong(a);\n"
            "}\n"
        )
        assert [d.kind for d in out] == [Kind.PY_FORMAT_MISMATCH]
        assert "2 argument(s)" in out[0].message

    def test_type_mismatch_scalar_for_string(self):
        out = diags_for(
            "static PyObject *f(PyObject *self, PyObject *args)\n"
            "{\n"
            "    long n;\n"
            '    PyArg_ParseTuple(args, "s", &n);\n'
            "    return PyLong_FromLong(n);\n"
            "}\n"
        )
        assert [d.kind for d in out] == [Kind.PY_FORMAT_MISMATCH]
        assert "&n" in out[0].message

    def test_value_slot_wants_pyobject(self):
        out = diags_for(
            "static PyObject *f(PyObject *self, PyObject *args)\n"
            "{\n"
            "    long n;\n"
            '    PyArg_ParseTuple(args, "O", &n);\n'
            "    return PyLong_FromLong(n);\n"
            "}\n"
        )
        assert [d.kind for d in out] == [Kind.PY_FORMAT_MISMATCH]

    def test_keywords_variant_skips_kwlist(self):
        out = diags_for(
            "static PyObject *f(PyObject *self, PyObject *args, PyObject *kw)\n"
            "{\n"
            "    long a;\n"
            "    char **names;\n"
            '    PyArg_ParseTupleAndKeywords(args, kw, "l", names, &a);\n'
            "    return PyLong_FromLong(a);\n"
            "}\n"
        )
        assert out == []

    def test_build_value_arity(self):
        out = diags_for(
            "static PyObject *f(PyObject *self, PyObject *args)\n"
            "{\n"
            "    long a;\n"
            '    return Py_BuildValue("ll", a);\n'
            "}\n"
        )
        assert [d.kind for d in out] == [Kind.PY_FORMAT_MISMATCH]

    def test_build_value_type(self):
        out = diags_for(
            "static PyObject *f(PyObject *self, PyObject *obj)\n"
            "{\n"
            '    return Py_BuildValue("i", obj);\n'
            "}\n"
        )
        assert [d.kind for d in out] == [Kind.PY_FORMAT_MISMATCH]
        assert "PyObject" in out[0].message

    def test_non_literal_format_skipped(self):
        out = diags_for(
            "static PyObject *f(PyObject *self, PyObject *args, char *fmt)\n"
            "{\n"
            "    long a;\n"
            "    PyArg_ParseTuple(args, fmt, &a);\n"
            "    return PyLong_FromLong(a);\n"
            "}\n"
        )
        assert out == []
