"""PyMethodDef tables become Γ_I."""

from repro.core.types import CFun, CValue
from repro.pyext.dialect import PYEXT_DIALECT
from repro.pyext.methods import build_initial_env, method_table_entries
from repro.source import SourceFile


def parse(text):
    return PYEXT_DIALECT.parse(SourceFile("mod.c", text))


TABLE = """
static PyMethodDef M[] = {
    {"plain", f_plain, METH_VARARGS, "doc"},
    {"kw", f_kw, METH_VARARGS | METH_KEYWORDS, "doc"},
    {"noargs", f_noargs, METH_NOARGS, "doc"},
    {"one", f_one, METH_O, "doc"},
    {NULL, NULL, 0, NULL}
};
"""


class TestExtraction:
    def test_rows_and_sentinel(self):
        entries = method_table_entries(parse(TABLE))
        assert [e.py_name for e in entries] == ["plain", "kw", "noargs", "one"]
        assert [e.c_name for e in entries] == [
            "f_plain", "f_kw", "f_noargs", "f_one",
        ]

    def test_flags_drive_arity(self):
        entries = {e.py_name: e for e in method_table_entries(parse(TABLE))}
        assert entries["plain"].arity == 2
        assert entries["kw"].arity == 3
        assert entries["noargs"].arity == 2
        assert entries["one"].arity == 2

    def test_fastcall_arity(self):
        unit = parse(
            "static PyMethodDef M[] = {\n"
            '    {"fast", f_fast, METH_FASTCALL, "doc"},\n'
            '    {"fastkw", f_fkw, METH_FASTCALL | METH_KEYWORDS, "doc"},\n'
            "};\n"
        )
        entries = {e.py_name: e for e in method_table_entries(unit)}
        assert entries["fast"].arity == 3
        assert entries["fastkw"].arity == 4

    def test_designated_rows(self):
        unit = parse(
            "static PyMethodDef M[] = {\n"
            '    {.ml_name = "x", .ml_meth = f_x, .ml_flags = METH_O},\n'
            "};\n"
        )
        (entry,) = method_table_entries(unit)
        assert entry.py_name == "x"
        assert entry.c_name == "f_x"
        assert entry.flags == ("METH_O",)

    def test_non_method_globals_ignored(self):
        unit = parse("static int counters[] = {1, 2, 3};")
        assert method_table_entries(unit) == []


class TestInitialEnv:
    def test_env_entries_are_value_functions(self):
        env = build_initial_env([parse(TABLE)])
        fn = env.functions["f_kw"]
        assert isinstance(fn, CFun)
        assert len(fn.params) == 3
        assert all(isinstance(p, CValue) for p in fn.params)
        assert isinstance(fn.result, CValue)

    def test_spans_recorded(self):
        env = build_initial_env([parse(TABLE)])
        assert env.spans["f_plain"].filename == "mod.c"

    def test_fresh_variables_per_build(self):
        units = [parse(TABLE)]
        first = build_initial_env(units).functions["f_plain"]
        second = build_initial_env(units).functions["f_plain"]
        assert first.params[0].mt is not second.params[0].mt
