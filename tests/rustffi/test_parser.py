"""The regex-and-brace scan over Rust sources: exactly the FFI surface."""

from repro.rustffi.parser import normalize_spelling, parse_rust, parse_sources
from repro.source import SourceFile


def parse(text, name="lib.rs"):
    return parse_rust(SourceFile(name, text))


class TestExternBlocks:
    def test_block_fns_are_imports(self):
        iface = parse(
            'extern "C" {\n'
            "    fn c_add(a: i32, b: i32) -> i32;\n"
            "    fn c_reset();\n"
            "}\n"
        )
        assert [fn.symbol for fn in iface.imports] == ["c_add", "c_reset"]
        add = iface.imports[0]
        assert add.params == ("i32", "i32")
        assert add.ret == "i32"
        assert iface.imports[1].ret == "()"
        assert not iface.exports

    def test_unsafe_extern_block_is_recognized(self):
        # Rust 2024 spells the block `unsafe extern "C"`
        iface = parse('unsafe extern "C" {\n    fn c_go() -> u64;\n}\n')
        assert [fn.symbol for fn in iface.imports] == ["c_go"]

    def test_link_name_overrides_the_symbol(self):
        iface = parse(
            'extern "C" {\n'
            '    #[link_name = "real_symbol"]\n'
            "    fn alias(x: usize) -> usize;\n"
            "}\n"
        )
        (fn,) = iface.imports
        assert fn.symbol == "real_symbol"
        assert fn.rust_name == "alias"

    def test_variadic_tail_is_flagged_not_a_parameter(self):
        iface = parse(
            'extern "C" { fn c_printf(fmt: *const c_char, ...) -> i32; }\n'
        )
        (fn,) = iface.imports
        assert fn.variadic
        assert fn.params == ("*const c_char",)


class TestExports:
    def test_no_mangle_extern_fn_is_an_export(self):
        iface = parse(
            "#[no_mangle]\n"
            'pub extern "C" fn rs_len(p: *const u8, n: usize) -> usize {\n'
            "    n\n"
            "}\n"
        )
        (fn,) = iface.exports
        assert fn.symbol == "rs_len"
        assert fn.params == ("*const u8", "usize")
        assert not iface.imports

    def test_export_name_attribute_overrides_the_symbol(self):
        iface = parse(
            '#[export_name = "rs_public"]\n'
            'pub extern "C" fn private_name() {}\n'
        )
        assert iface.exports[0].symbol == "rs_public"

    def test_plain_extern_fn_without_no_mangle_is_ignored(self):
        # mangled symbol: invisible to the C side, not boundary surface
        iface = parse('pub extern "C" fn helper(x: i32) -> i32 { x }\n')
        assert not iface.exports

    def test_fn_in_comment_or_string_is_ignored(self):
        iface = parse(
            '// extern "C" { fn ghost_a(); }\n'
            '/* extern "C" { fn ghost_b(); } */\n'
            'const DOC: &str = "extern \\"C\\" { fn ghost_c(); }";\n'
        )
        assert not iface.imports
        assert not iface.exports


class TestAdts:
    def test_repr_is_recorded(self):
        iface = parse(
            "#[repr(C)]\npub enum Mode { A, B }\n"
            "#[repr(u8)]\nenum Small { X }\n"
            "pub enum Bare { Y }\n"
            "#[repr(C)]\npub struct Pair { a: i32, b: i32 }\n"
        )
        assert iface.adts["Mode"].repr == "C"
        assert iface.adts["Small"].repr == "u8"
        assert iface.adts["Bare"].repr == ""
        assert iface.adts["Pair"].kind == "struct"

    def test_spans_point_into_the_source(self):
        iface = parse("#[repr(C)]\npub enum Mode { A }\n")
        assert iface.adts["Mode"].span.start.line == 2


class TestMerge:
    def test_parse_sources_merges_in_order(self):
        a = SourceFile("a.rs", 'extern "C" { fn one(); }\n')
        b = SourceFile(
            "b.rs",
            '#[no_mangle]\npub extern "C" fn two() {}\n',
        )
        iface = parse_sources([a, b])
        assert [fn.symbol for fn in iface.imports] == ["one"]
        assert [fn.symbol for fn in iface.exports] == ["two"]
        assert iface.filenames == ["a.rs", "b.rs"]


class TestNormalizeSpelling:
    def test_pointer_and_reference_spacing(self):
        assert normalize_spelling("* const   c_char") == "*const c_char"
        assert normalize_spelling("* mut u8") == "*mut u8"
        assert normalize_spelling("&  mut str") == "&mut str"
        assert normalize_spelling("std :: os :: raw :: c_int") == (
            "std::os::raw::c_int"
        )
        assert normalize_spelling("(  )") == "()"
