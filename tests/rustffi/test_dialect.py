"""End-to-end rust dialect: the acceptance-criteria scenarios."""

from pathlib import Path

from repro.api import Project
from repro.boundary import get_dialect
from repro.diagnostics import Kind
from repro.source import SourceFile

EXAMPLES = Path(__file__).resolve().parent.parent.parent / "examples"


def analyze(rust_text, c_text, name="glue.c"):
    project = Project(dialect="rust")
    project.add_ocaml(SourceFile("lib.rs", rust_text))
    project.add_c(SourceFile(name, c_text))
    return project.analyze()


def analyze_example(subdir):
    root = EXAMPLES / subdir
    project = Project.from_directory(root, dialect="rust")
    return project.analyze()


class TestExampleCorpus:
    def test_clean_bindings_have_zero_findings(self):
        report = analyze_example("rust/clean_bindings")
        tally = report.tally()
        assert tally["errors"] == 0
        assert tally["warnings"] == 0

    def test_bad_bindings_cover_every_rule_in_the_pack(self):
        report = analyze_example("rust/bad_bindings")
        kinds = {d.kind for d in report.diagnostics}
        assert Kind.RUST_DECL_MISMATCH in kinds
        assert Kind.RUST_PLATFORM_WIDTH in kinds
        assert Kind.RUST_PTR_INT_CONFUSION in kinds
        assert Kind.RUST_ENUM_REPR in kinds
        assert Kind.RUST_STR_PASSING in kinds

    def test_bad_bindings_error_count_is_stable(self):
        # the CI smoke gate pins the batch exit status to this number
        report = analyze_example("rust/bad_bindings")
        assert report.tally()["errors"] == 6

    def test_bad_bindings_defects_land_on_the_right_symbols(self):
        report = analyze_example("rust/bad_bindings")
        by_fn = {(d.kind, d.function) for d in report.diagnostics}
        assert (Kind.RUST_DECL_MISMATCH, "c_init") in by_fn
        assert (Kind.RUST_PLATFORM_WIDTH, "c_buf_len") in by_fn
        assert (Kind.RUST_DECL_MISMATCH, "c_crc") in by_fn
        assert (Kind.RUST_ENUM_REPR, "c_report_status") in by_fn
        assert (Kind.RUST_PTR_INT_CONFUSION, "rs_handle") in by_fn
        assert (Kind.RUST_STR_PASSING, "rs_log") in by_fn


class TestDeclarationAgreement:
    def test_agreeing_pair_is_clean(self):
        report = analyze(
            'extern "C" { fn c_add(a: i32, b: i32) -> i32; }\n',
            "int c_add(int a, int b) { return a + b; }\n",
        )
        assert not report.diagnostics

    def test_arity_mismatch(self):
        report = analyze(
            'extern "C" { fn c_add(a: i32) -> i32; }\n',
            "int c_add(int a, int b) { return a + b; }\n",
        )
        (diag,) = report.diagnostics
        assert diag.kind is Kind.RUST_DECL_MISMATCH
        assert "1 parameter(s) in Rust but 2 in C" in diag.message

    def test_diagnostic_points_at_the_rust_declaration(self):
        report = analyze(
            'extern "C" {\n    fn c_len(p: *const u8) -> usize;\n}\n',
            "int c_len(const uint8_t *p) { return p != 0; }\n",
        )
        (diag,) = report.diagnostics
        assert diag.span.filename == "lib.rs"
        assert diag.span.start.line == 2

    def test_export_mirror_is_checked_too(self):
        report = analyze(
            "#[no_mangle]\n"
            'pub extern "C" fn rs_go(n: usize) -> usize { n }\n',
            "extern int rs_go(int n);\n"
            "int drive(void) { return rs_go(1); }\n",
        )
        kinds = [d.kind for d in report.diagnostics]
        assert kinds == [
            Kind.RUST_PLATFORM_WIDTH,
            Kind.RUST_PLATFORM_WIDTH,
        ]

    def test_fn_without_c_mirror_is_skipped(self):
        # no declaration in this unit -> nothing to disagree with, and
        # rust-only hazards must not fire (they anchor to the mirror)
        report = analyze(
            'extern "C" { fn elsewhere(s: &str); }\n',
            "int unrelated(void) { return 0; }\n",
        )
        assert not report.diagnostics

    def test_prototype_suffices_as_mirror(self):
        report = analyze(
            'extern "C" { fn c_len(p: *const c_char) -> usize; }\n',
            "size_t c_len(const char *p);\n"
            "size_t use_it(void) { return c_len(\"x\"); }\n",
        )
        assert not report.diagnostics


class TestSummaries:
    def summary_of(self, rust_text, c_text):
        project = Project(dialect="rust")
        project.add_ocaml(SourceFile("lib.rs", rust_text))
        project.add_c(SourceFile("glue.c", c_text))
        return project.analyze().summary

    def test_imports_become_typed_bindings(self):
        summary = self.summary_of(
            'extern "C" { fn c_hash(p: *const u8, n: usize) -> u64; }\n',
            "uint64_t c_hash(const uint8_t *p, size_t n) { return n; }\n",
        )
        (row,) = summary["bindings"]
        assert row["symbol"] == "c_hash"
        assert row["type"] == "uint64_t(uint8_t *, size_t)"
        assert row["file"] == "lib.rs"

    def test_exports_become_host_exports(self):
        summary = self.summary_of(
            "#[no_mangle]\n"
            'pub extern "C" fn rs_tick(n: u32) -> u32 { n }\n',
            "extern unsigned int rs_tick(unsigned int n);\n"
            "unsigned int drive(void) { return rs_tick(1); }\n",
        )
        (row,) = summary["host_exports"]
        assert row["symbol"] == "rs_tick"
        assert row["type"] == "unsigned int(unsigned int)"
        assert row["detail"] == "fn rs_tick(u32) -> u32"


class TestDependencies:
    def test_rust_sources_and_quoted_includes_are_dependencies(self):
        project = Project(dialect="rust")
        project.add_ocaml(SourceFile("src/lib.rs", "pub fn x() {}\n"))
        project.add_c(
            SourceFile("glue.c", '#include "local.h"\nint f(void) { return 0; }\n')
        )
        request = project.to_request()
        deps = get_dialect("rust").unit_dependencies(request)
        assert "src/lib.rs" in deps
        assert "local.h" in deps
