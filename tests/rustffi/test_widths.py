"""Width-class tables and the pairwise agreement judgement."""

from repro.core.srctypes import CSrcPtr, CSrcScalar, CSrcVoid
from repro.diagnostics import Kind
from repro.rustffi.parser import parse_rust
from repro.rustffi.widths import (
    WidthClass,
    classify_c,
    classify_rust,
    compare,
    render_fn,
)
from repro.source import SourceFile


def iface(text):
    return parse_rust(SourceFile("lib.rs", text))


class TestClassifyRust:
    def test_scalars(self):
        assert classify_rust("i32").clazz is WidthClass.INT32
        assert classify_rust("usize").clazz is WidthClass.SIZE
        assert classify_rust("c_long").clazz is WidthClass.LONG
        assert classify_rust("u64").rendered == "uint64_t"
        assert classify_rust("()").clazz is WidthClass.VOID

    def test_path_prefixes_are_dropped(self):
        assert classify_rust("std::os::raw::c_int").rendered == "int"
        assert classify_rust("libc::size_t").clazz is WidthClass.UNKNOWN

    def test_pointers_render_c_style(self):
        info = classify_rust("*const c_char")
        assert info.clazz is WidthClass.POINTER
        assert info.rendered == "char *"
        assert classify_rust("*mut u8").rendered == "uint8_t *"
        assert classify_rust("Option<*mut c_void>").rendered == "void *"

    def test_str_shapes_carry_the_note(self):
        assert classify_rust("&str").note == "str"
        assert classify_rust("String").note == "str"
        assert classify_rust("&[u8]").note == "str"
        assert classify_rust("*const u8").note is None

    def test_enum_repr_decides_class_and_note(self):
        text = (
            "#[repr(C)]\npub enum Mode { A }\n"
            "#[repr(u8)]\npub enum Small { X }\n"
            "pub enum Bare { Y }\n"
        )
        i = iface(text)
        assert classify_rust("Mode", i).clazz is WidthClass.INT32
        assert classify_rust("Mode", i).note == "enum"
        assert classify_rust("Small", i).rendered == "uint8_t"
        assert classify_rust("Bare", i).note == "enum-norepr"

    def test_struct_renders_as_struct(self):
        i = iface("#[repr(C)]\npub struct Pair { a: i32 }\n")
        info = classify_rust("Pair", i)
        assert info.clazz is WidthClass.STRUCT
        assert info.rendered == "struct Pair"


class TestClassifyC:
    def test_scalar_spellings(self):
        assert classify_c(CSrcScalar("size_t")).clazz is WidthClass.SIZE
        assert classify_c(CSrcScalar("uintptr_t")).clazz is WidthClass.SIZE
        assert classify_c(CSrcScalar("long")).clazz is WidthClass.LONG
        assert classify_c(CSrcScalar("int")).clazz is WidthClass.INT32
        assert classify_c(CSrcVoid()).clazz is WidthClass.VOID

    def test_pointer(self):
        ptr = CSrcPtr(CSrcScalar("char"))
        assert classify_c(ptr).clazz is WidthClass.POINTER


class TestCompare:
    def test_agreement_is_none(self):
        assert compare(classify_rust("usize"), classify_c(CSrcScalar("size_t"))) is None
        assert compare(
            classify_rust("*const u8"),
            classify_c(CSrcPtr(CSrcScalar("uint8_t"))),
        ) is None

    def test_same_class_different_spelling_agrees(self):
        # size_t vs uintptr_t: both pointer-width, clean per unit —
        # only the cross-unit linker compares spellings
        assert compare(
            classify_rust("usize"), classify_c(CSrcScalar("uintptr_t"))
        ) is None

    def test_platform_vs_fixed_is_platform_width(self):
        kind, _ = compare(classify_rust("usize"), classify_c(CSrcScalar("int")))
        assert kind is Kind.RUST_PLATFORM_WIDTH
        kind, _ = compare(classify_rust("i64"), classify_c(CSrcScalar("long")))
        assert kind is Kind.RUST_PLATFORM_WIDTH

    def test_pointer_vs_integer_is_confusion(self):
        kind, _ = compare(
            classify_rust("*mut c_void"), classify_c(CSrcScalar("long"))
        )
        assert kind is Kind.RUST_PTR_INT_CONFUSION

    def test_fixed_width_clash_is_decl_mismatch(self):
        kind, _ = compare(
            classify_rust("u32"),
            classify_c(CSrcScalar("unsigned long long")),
        )
        assert kind is Kind.RUST_DECL_MISMATCH

    def test_str_note_wins(self):
        kind, _ = compare(
            classify_rust("&str"), classify_c(CSrcPtr(CSrcScalar("char")))
        )
        assert kind is Kind.RUST_STR_PASSING

    def test_enum_norepr_fires_even_when_classes_would_differ(self):
        i = iface("pub enum Bare { Y }\n")
        kind, _ = compare(classify_rust("Bare", i), classify_c(CSrcScalar("int")))
        assert kind is Kind.RUST_ENUM_REPR

    def test_repr_enum_width_clash_reports_enum_repr(self):
        i = iface("#[repr(u8)]\npub enum Small { X }\n")
        kind, _ = compare(
            classify_rust("Small", i), classify_c(CSrcScalar("int"))
        )
        assert kind is Kind.RUST_ENUM_REPR


class TestRenderFn:
    def test_matches_linker_shape(self):
        i = iface(
            'extern "C" { fn c_hash(p: *const u8, n: usize) -> u64; }\n'
        )
        (fn,) = i.imports
        assert render_fn(fn, i) == "uint64_t(uint8_t *, size_t)"
