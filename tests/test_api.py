"""Tests for the high-level API surface."""

import pytest

from repro import (
    AnalysisReport,
    Category,
    Kind,
    Options,
    Project,
    SourceFile,
    analyze_project,
    check_c_source,
)
from repro.source import count_code_lines


class TestProject:
    def test_fluent_building(self):
        project = (
            Project()
            .add_ocaml('external f : int -> int = "ml_f"', "a.ml")
            .add_c("value ml_f(value x) { return x; }", "a.c")
        )
        assert len(project.ocaml_sources) == 1
        assert len(project.c_sources) == 1
        assert project.ocaml_sources[0].filename == "a.ml"

    def test_source_file_objects_accepted(self):
        source = SourceFile("x.c", "int f(void) { return 0; }")
        report = analyze_project([], [source])
        assert isinstance(report, AnalysisReport)

    def test_repository_accessible(self):
        project = Project().add_ocaml("type t = A | B")
        repo = project.build_repository()
        assert repo.resolve("t", ()) is not None

    def test_lower_merges_multiple_c_files(self):
        project = (
            Project()
            .add_c("int f(void) { return 0; }", "a.c")
            .add_c("int g(void) { return 1; }", "b.c")
        )
        program = project.lower()
        assert {fn.name for fn in program.functions} == {"f", "g"}

    def test_diagnostics_point_at_right_file(self):
        project = (
            Project()
            .add_ocaml('external f : int -> int = "ml_f"', "lib.ml")
            .add_c("value ml_f(value x) { return Val_int(x); }", "stubs.c")
        )
        report = project.analyze()
        assert report.errors[0].span.filename == "stubs.c"


class TestFromDirectoryHardening:
    """Undecodable and empty files are skipped with a warning, not fatal."""

    def _tree(self, tmp_path):
        (tmp_path / "lib.ml").write_text(
            'external f : int -> int = "ml_f"\n'
        )
        (tmp_path / "stubs.c").write_text(
            "value ml_f(value x) { return x; }\n"
        )
        return tmp_path

    def test_undecodable_file_is_skipped_with_warning(self, tmp_path):
        self._tree(tmp_path)
        (tmp_path / "binary.c").write_bytes(b"\xff\xfe\x00\x80garbage")
        with pytest.warns(UserWarning, match="unreadable source.*binary.c"):
            project = Project.from_directory(tmp_path)
        assert [s.filename for s in project.c_sources] == [
            str(tmp_path / "stubs.c")
        ]

    def test_empty_file_is_skipped_with_warning(self, tmp_path):
        self._tree(tmp_path)
        (tmp_path / "empty.c").write_text("")
        (tmp_path / "blank.ml").write_text("   \n\t\n")
        with pytest.warns(UserWarning, match="empty source"):
            project = Project.from_directory(tmp_path)
        assert len(project.c_sources) == 1
        assert len(project.ocaml_sources) == 1

    def test_healthy_tree_emits_no_warnings(self, tmp_path, recwarn):
        self._tree(tmp_path)
        project = Project.from_directory(tmp_path)
        assert len(project.c_sources) == 1
        assert not [w for w in recwarn if w.category is UserWarning]

    def test_skipped_files_still_analyze_the_rest(self, tmp_path):
        self._tree(tmp_path)
        (tmp_path / "binary.c").write_bytes(b"\xff\xfe\x00\x80")
        with pytest.warns(UserWarning):
            report = Project.from_directory(tmp_path).analyze()
        assert isinstance(report, AnalysisReport)

    def test_pyext_scan_takes_only_c_files(self, tmp_path):
        (tmp_path / "mod.c").write_text("int f(void) { return 0; }\n")
        (tmp_path / "lib.ml").write_text("type t = A\n")
        project = Project.from_directory(tmp_path, dialect="pyext")
        assert len(project.c_sources) == 1
        assert project.ocaml_sources == []
        assert project.dialect == "pyext"


class TestAnalyzeProject:
    def test_multiple_ml_files_share_repository(self):
        ml_types = "type t = A of int | B"
        ml_externals = 'external get : t -> int = "ml_get"'
        c = """
        value ml_get(value x)
        {
            if (Is_long(x)) return Val_int(0);
            return Field(x, 0);
        }
        """
        report = analyze_project([ml_types, ml_externals], [c])
        assert not report.diagnostics

    def test_multiple_c_files_share_function_env(self):
        # helper defined in one file allocates; caller in another file
        ml = 'external f : string -> string = "ml_f"'
        helper = """
        value make_cell(value v)
        {
            CAMLparam1(v);
            CAMLlocal1(r);
            r = caml_alloc(1, 0);
            Store_field(r, 0, v);
            CAMLreturn(r);
        }
        """
        caller = """
        value make_cell(value v);
        value ml_f(value s)
        {
            value c = make_cell(s);
            return s;
        }
        """
        report = analyze_project([ml], [helper, caller])
        assert Kind.UNPROTECTED_VALUE in [d.kind for d in report.diagnostics]

    def test_options_threaded(self):
        ml = 'external f : string -> string ref = "ml_f"'
        c = """
        value ml_f(value s)
        {
            value r = caml_alloc(1, 0);
            Store_field(r, 0, s);
            return r;
        }
        """
        strict = analyze_project([ml], [c])
        relaxed = analyze_project([ml], [c], Options(gc_effects=False))
        assert strict.tally()["errors"] == 1
        assert relaxed.tally()["errors"] == 0

    def test_check_c_source_shortcut(self):
        report = check_c_source("int f(void) { return 0; }")
        assert not report.diagnostics

    def test_report_statistics(self):
        report = check_c_source("int f(void) { return 0; }")
        assert report.elapsed_seconds >= 0
        assert report.unification_steps >= 0
        assert "f" in report.function_results


class TestSourceHelpers:
    def test_count_code_lines_skips_blanks(self):
        assert count_code_lines("a\n\n  \nb\n") == 2

    def test_source_file_positions(self):
        source = SourceFile("t.c", "ab\ncd")
        assert source.position(0).line == 1
        assert source.position(3).line == 2
        assert source.position(3).column == 1
        assert source.line_text(2) == "cd"
        assert source.line_count == 2

    def test_span_merge(self):
        from repro.source import Span

        source = SourceFile("t.c", "hello world")
        first = source.span(0, 2)
        last = source.span(6, 11)
        merged = Span.merge(first, last)
        assert merged.start.offset == 0
        assert merged.end.offset == 11
        with pytest.raises(ValueError):
            Span.merge(first, SourceFile("u.c", "x").span(0, 1))


class TestDiagnosticsAPI:
    def test_category_tally_keys(self):
        report = check_c_source("int f(void) { return 0; }")
        assert set(report.tally()) == {
            "errors",
            "warnings",
            "false_positives",
            "imprecision",
        }

    def test_every_kind_has_category(self):
        for kind in Kind:
            assert isinstance(kind.category, Category)
            assert kind.summary

    def test_bag_iteration_and_len(self):
        from repro.diagnostics import DiagnosticBag
        from repro.source import DUMMY_SPAN

        bag = DiagnosticBag()
        assert not bag
        bag.emit(Kind.TYPE_MISMATCH, DUMMY_SPAN, "one")
        bag.emit(Kind.GLOBAL_VALUE, DUMMY_SPAN, "two")
        assert len(bag) == 2
        assert len(list(bag)) == 2
        assert bag.count(Category.ERROR) == 1
        assert bag.count(Category.IMPRECISION) == 1
