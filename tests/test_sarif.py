"""SARIF 2.1.0 emission: level mapping, rules, locations, CLI surface."""

import json

import pytest

from repro.api import check_c_source
from repro.cli import main
from repro.diagnostics import Category, Diagnostic, Kind
from repro.sarif import SARIF_VERSION, rule_for, sarif_log
from repro.source import DUMMY_SPAN, Position, Span


def span(filename="stubs.c", line=3):
    return Span(
        filename, Position(10, line, 5), Position(20, line, 15)
    )


def diag(kind=Kind.BAD_VAL_INT, message="boom", where=None, function="ml_f"):
    return Diagnostic(
        kind=kind,
        span=where if where is not None else span(),
        message=message,
        function=function,
    )


class TestLevelMapping:
    def test_error_column_maps_to_error(self):
        assert Category.ERROR.sarif_level == "error"

    def test_warning_column_maps_to_warning(self):
        assert Category.WARNING.sarif_level == "warning"

    @pytest.mark.parametrize(
        "category",
        [Category.FALSE_POSITIVE_PRONE, Category.IMPRECISION],
    )
    def test_confidence_columns_map_to_note(self, category):
        assert category.sarif_level == "note"

    def test_every_kind_has_a_level(self):
        for kind in Kind:
            assert rule_for(kind)["defaultConfiguration"]["level"] in (
                "error",
                "warning",
                "note",
            )


class TestLog:
    def test_shape_and_version(self):
        log = sarif_log([diag()])
        assert log["version"] == SARIF_VERSION
        assert len(log["runs"]) == 1
        driver = log["runs"][0]["tool"]["driver"]
        assert driver["name"] == "mlffi-check"

    def test_rules_cover_only_fired_kinds_once(self):
        log = sarif_log(
            [
                diag(Kind.BAD_VAL_INT),
                diag(Kind.BAD_VAL_INT),
                diag(Kind.TRAILING_UNIT),
            ]
        )
        rules = log["runs"][0]["tool"]["driver"]["rules"]
        assert [r["id"] for r in rules] == ["BAD_VAL_INT", "TRAILING_UNIT"]
        results = log["runs"][0]["results"]
        assert [r["ruleIndex"] for r in results] == [0, 0, 1]

    def test_result_location_regions_are_one_based(self):
        log = sarif_log([diag(where=span("glue.c", line=7))])
        (result,) = log["runs"][0]["results"]
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == "glue.c"
        assert location["region"]["startLine"] == 7
        assert location["region"]["startColumn"] == 5

    def test_builtin_span_omits_location(self):
        log = sarif_log([diag(where=DUMMY_SPAN)])
        (result,) = log["runs"][0]["results"]
        assert "locations" not in result

    def test_roundtripped_builtin_span_still_omits_location(self):
        # cache hits and daemon responses rebuild spans via from_dict; the
        # revived DUMMY_SPAN equal (not identical) twin must also vanish
        revived = Diagnostic.from_dict(diag(where=DUMMY_SPAN).to_dict())
        log = sarif_log([revived])
        (result,) = log["runs"][0]["results"]
        assert "locations" not in result

    def test_function_recorded_as_property(self):
        log = sarif_log([diag(function="ml_examine")])
        (result,) = log["runs"][0]["results"]
        assert result["properties"]["function"] == "ml_examine"

    def test_empty_report_is_valid_sarif(self):
        log = sarif_log([])
        assert log["runs"][0]["results"] == []
        assert log["runs"][0]["tool"]["driver"]["rules"] == []

    def test_real_analysis_diagnostics_serialize(self):
        report = check_c_source(
            "value ml_f(value x) { return Val_int(x); }\n",
            'external f : int -> int = "ml_f"\n',
        )
        log = sarif_log(report.diagnostics)
        (result,) = log["runs"][0]["results"]
        assert result["level"] == "error"
        json.dumps(log)  # fully JSON-able


@pytest.fixture()
def buggy_tree(tmp_path):
    root = tmp_path / "tree"
    root.mkdir()
    (root / "lib.ml").write_text('external f : int -> int = "ml_f"\n')
    (root / "stubs.c").write_text(
        "value ml_f(value x) { return Val_int(x); }\n"
    )
    return root


class TestCLISarif:
    def test_check_format_sarif(self, buggy_tree, capsys):
        code = main(
            [
                "check",
                "--format",
                "sarif",
                str(buggy_tree / "lib.ml"),
                str(buggy_tree / "stubs.c"),
            ]
        )
        assert code == 1  # exit contract unchanged by the format
        log = json.loads(capsys.readouterr().out)
        assert log["version"] == SARIF_VERSION
        (result,) = log["runs"][0]["results"]
        assert result["ruleId"] == "BAD_VAL_INT"
        assert result["level"] == "error"

    def test_batch_format_sarif(self, buggy_tree, capsys):
        code = main(
            ["batch", str(buggy_tree), "--no-cache", "--format", "sarif"]
        )
        assert code == 1
        log = json.loads(capsys.readouterr().out)
        results = log["runs"][0]["results"]
        assert len(results) == 1
        uri = results[0]["locations"][0]["physicalLocation"][
            "artifactLocation"
        ]["uri"]
        assert uri.endswith("stubs.c")

    def test_clean_project_sarif_is_empty_run(self, tmp_path, capsys):
        (tmp_path / "ok.c").write_text("int f(void) { return 0; }\n")
        code = main(
            ["batch", str(tmp_path), "--no-cache", "--format", "sarif"]
        )
        assert code == 0
        log = json.loads(capsys.readouterr().out)
        assert log["runs"][0]["results"] == []
