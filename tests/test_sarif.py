"""SARIF 2.1.0 emission: level mapping, rules, locations, CLI surface."""

import json

import pytest

from repro.api import check_c_source
from repro.cli import main
from repro.diagnostics import Category, Diagnostic, Kind
from repro.engine.jobs import BatchReport, CheckResult
from repro.sarif import SARIF_VERSION, batch_sarif_log, rule_for, sarif_log
from repro.source import DUMMY_SPAN, Position, Span


def span(filename="stubs.c", line=3):
    return Span(
        filename, Position(10, line, 5), Position(20, line, 15)
    )


def diag(kind=Kind.BAD_VAL_INT, message="boom", where=None, function="ml_f"):
    return Diagnostic(
        kind=kind,
        span=where if where is not None else span(),
        message=message,
        function=function,
    )


class TestLevelMapping:
    def test_error_column_maps_to_error(self):
        assert Category.ERROR.sarif_level == "error"

    def test_warning_column_maps_to_warning(self):
        assert Category.WARNING.sarif_level == "warning"

    @pytest.mark.parametrize(
        "category",
        [Category.FALSE_POSITIVE_PRONE, Category.IMPRECISION],
    )
    def test_confidence_columns_map_to_note(self, category):
        assert category.sarif_level == "note"

    def test_every_kind_has_a_level(self):
        for kind in Kind:
            assert rule_for(kind)["defaultConfiguration"]["level"] in (
                "error",
                "warning",
                "note",
            )


class TestLog:
    def test_shape_and_version(self):
        log = sarif_log([diag()])
        assert log["version"] == SARIF_VERSION
        assert len(log["runs"]) == 1
        driver = log["runs"][0]["tool"]["driver"]
        assert driver["name"] == "mlffi-check"

    def test_rules_cover_only_fired_kinds_once(self):
        log = sarif_log(
            [
                diag(Kind.BAD_VAL_INT),
                diag(Kind.BAD_VAL_INT),
                diag(Kind.TRAILING_UNIT),
            ]
        )
        rules = log["runs"][0]["tool"]["driver"]["rules"]
        assert [r["id"] for r in rules] == ["BAD_VAL_INT", "TRAILING_UNIT"]
        results = log["runs"][0]["results"]
        assert [r["ruleIndex"] for r in results] == [0, 0, 1]

    def test_result_location_regions_are_one_based(self):
        log = sarif_log([diag(where=span("glue.c", line=7))])
        (result,) = log["runs"][0]["results"]
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == "glue.c"
        assert location["region"]["startLine"] == 7
        assert location["region"]["startColumn"] == 5

    def test_builtin_span_omits_location(self):
        log = sarif_log([diag(where=DUMMY_SPAN)])
        (result,) = log["runs"][0]["results"]
        assert "locations" not in result

    def test_roundtripped_builtin_span_still_omits_location(self):
        # cache hits and daemon responses rebuild spans via from_dict; the
        # revived DUMMY_SPAN equal (not identical) twin must also vanish
        revived = Diagnostic.from_dict(diag(where=DUMMY_SPAN).to_dict())
        log = sarif_log([revived])
        (result,) = log["runs"][0]["results"]
        assert "locations" not in result

    def test_function_recorded_as_property(self):
        log = sarif_log([diag(function="ml_examine")])
        (result,) = log["runs"][0]["results"]
        assert result["properties"]["function"] == "ml_examine"

    def test_empty_report_is_valid_sarif(self):
        log = sarif_log([])
        assert log["runs"][0]["results"] == []
        assert log["runs"][0]["tool"]["driver"]["rules"] == []

    def test_real_analysis_diagnostics_serialize(self):
        report = check_c_source(
            "value ml_f(value x) { return Val_int(x); }\n",
            'external f : int -> int = "ml_f"\n',
        )
        log = sarif_log(report.diagnostics)
        (result,) = log["runs"][0]["results"]
        assert result["level"] == "error"
        json.dumps(log)  # fully JSON-able


class TestBatchMerging:
    """`mlffi-check batch --format sarif` emits ONE merged run with rule
    metadata deduplicated across units — never one run per unit."""

    def _report(self):
        return BatchReport(
            results=[
                CheckResult(
                    name="a.c",
                    diagnostics=[diag(Kind.BAD_VAL_INT, where=span("a.c"))],
                ),
                CheckResult(
                    name="b.c",
                    diagnostics=[
                        diag(Kind.BAD_VAL_INT, where=span("b.c")),
                        diag(Kind.PY_REF_LEAK, where=span("b.c")),
                    ],
                ),
            ]
        )

    def test_single_run_across_units(self):
        log = batch_sarif_log(self._report())
        assert len(log["runs"]) == 1
        assert len(log["runs"][0]["results"]) == 3

    def test_rules_deduplicated_across_units(self):
        log = batch_sarif_log(self._report())
        rules = log["runs"][0]["tool"]["driver"]["rules"]
        assert [r["id"] for r in rules] == ["BAD_VAL_INT", "PY_REF_LEAK"]
        indexes = [r["ruleIndex"] for r in log["runs"][0]["results"]]
        assert indexes == [0, 0, 1]

    def test_clean_batch_reports_successful_invocation(self):
        log = batch_sarif_log(self._report())
        (invocation,) = log["runs"][0]["invocations"]
        assert invocation["executionSuccessful"] is True
        assert "toolExecutionNotifications" not in invocation

    def test_unit_failures_become_notifications(self):
        report = self._report()
        report.results.append(
            CheckResult(name="broken.c", failure="ParseError: boom")
        )
        log = batch_sarif_log(report)
        (invocation,) = log["runs"][0]["invocations"]
        assert invocation["executionSuccessful"] is False
        (note,) = invocation["toolExecutionNotifications"]
        assert note["level"] == "error"
        assert "broken.c" in note["message"]["text"]
        json.dumps(log)  # fully JSON-able

    def test_results_keep_submission_order(self):
        log = batch_sarif_log(self._report())
        uris = [
            r["locations"][0]["physicalLocation"]["artifactLocation"]["uri"]
            for r in log["runs"][0]["results"]
        ]
        assert uris == ["a.c", "b.c", "b.c"]


@pytest.fixture()
def buggy_tree(tmp_path):
    root = tmp_path / "tree"
    root.mkdir()
    (root / "lib.ml").write_text('external f : int -> int = "ml_f"\n')
    (root / "stubs.c").write_text(
        "value ml_f(value x) { return Val_int(x); }\n"
    )
    return root


class TestCLISarif:
    def test_check_format_sarif(self, buggy_tree, capsys):
        code = main(
            [
                "check",
                "--format",
                "sarif",
                str(buggy_tree / "lib.ml"),
                str(buggy_tree / "stubs.c"),
            ]
        )
        assert code == 1  # exit contract unchanged by the format
        log = json.loads(capsys.readouterr().out)
        assert log["version"] == SARIF_VERSION
        (result,) = log["runs"][0]["results"]
        assert result["ruleId"] == "BAD_VAL_INT"
        assert result["level"] == "error"

    def test_batch_format_sarif(self, buggy_tree, capsys):
        code = main(
            ["batch", str(buggy_tree), "--no-cache", "--format", "sarif"]
        )
        assert code == 1
        log = json.loads(capsys.readouterr().out)
        results = log["runs"][0]["results"]
        assert len(results) == 1
        uri = results[0]["locations"][0]["physicalLocation"][
            "artifactLocation"
        ]["uri"]
        assert uri.endswith("stubs.c")

    def test_batch_two_units_same_kind_share_one_rule(self, buggy_tree, capsys):
        (buggy_tree / "stubs2.c").write_text(
            "value ml_g(value x) { return Val_int(x); }\n"
        )
        (buggy_tree / "lib.ml").write_text(
            'external f : int -> int = "ml_f"\n'
            'external g : int -> int = "ml_g"\n'
        )
        code = main(
            ["batch", str(buggy_tree), "--no-cache", "--format", "sarif"]
        )
        assert code == 2
        log = json.loads(capsys.readouterr().out)
        assert len(log["runs"]) == 1  # merged, not split per unit
        rules = log["runs"][0]["tool"]["driver"]["rules"]
        assert [r["id"] for r in rules] == ["BAD_VAL_INT"]
        assert len(log["runs"][0]["results"]) == 2
        assert log["runs"][0]["invocations"][0]["executionSuccessful"]

    def test_clean_project_sarif_is_empty_run(self, tmp_path, capsys):
        (tmp_path / "ok.c").write_text("int f(void) { return 0; }\n")
        code = main(
            ["batch", str(tmp_path), "--no-cache", "--format", "sarif"]
        )
        assert code == 0
        log = json.loads(capsys.readouterr().out)
        assert log["runs"][0]["results"] == []
