"""Tests for the benchmark specs, templates and synthesizer."""

import pytest

from repro import analyze_project
from repro.bench.defects import DEFECT_TEMPLATES, FILLER_TEMPLATES
from repro.bench.specs import (
    PAPER_TOTALS,
    SUITE,
    spec_by_name,
    suite_totals,
)
from repro.bench.synth import synthesize, synthesize_scaled
from repro.diagnostics import Category


class TestSpecs:
    def test_eleven_programs(self):
        assert len(SUITE) == 11

    def test_seed_totals_equal_paper_totals(self):
        # the defect seeds across the suite must add up to Figure 9's row
        assert suite_totals() == PAPER_TOTALS

    def test_row_expectations_match_seed_sums(self):
        from repro.bench.defects import DEFECT_TEMPLATES

        for spec in SUITE:
            seeded = {
                "errors": 0,
                "warnings": 0,
                "false_positives": 0,
                "imprecision": 0,
            }
            for seed in spec.seeds:
                unit = DEFECT_TEMPLATES[seed.kind](0)
                seeded["errors"] += seed.count * unit.expected[Category.ERROR]
                seeded["warnings"] += seed.count * unit.expected[Category.WARNING]
                seeded["false_positives"] += (
                    seed.count * unit.expected[Category.FALSE_POSITIVE_PRONE]
                )
                seeded["imprecision"] += (
                    seed.count * unit.expected[Category.IMPRECISION]
                )
            assert seeded == spec.expected, spec.name

    def test_spec_by_name(self):
        assert spec_by_name("gz-0.5.5").warnings == 1
        with pytest.raises(KeyError):
            spec_by_name("nonexistent-1.0")


class TestDefectTemplates:
    @pytest.mark.parametrize("name", sorted(DEFECT_TEMPLATES))
    def test_template_ground_truth(self, name):
        """Each defect template in isolation produces exactly its counts."""
        unit = DEFECT_TEMPLATES[name](7)
        report = analyze_project([unit.ml] if unit.ml else [], [unit.c])
        got = {cat: report.diagnostics.count(cat) for cat in Category}
        assert got == unit.expected, [d.render() for d in report.diagnostics]

    @pytest.mark.parametrize("name", sorted(DEFECT_TEMPLATES))
    def test_template_unique_per_index(self, name):
        """Two instances must not collide (names are index-qualified)."""
        first = DEFECT_TEMPLATES[name](1)
        second = DEFECT_TEMPLATES[name](2)
        report = analyze_project(
            [first.ml + second.ml], [first.c + second.c]
        )
        expected = {
            cat: first.expected[cat] + second.expected[cat] for cat in Category
        }
        got = {cat: report.diagnostics.count(cat) for cat in Category}
        assert got == expected


class TestFillerTemplates:
    @pytest.mark.parametrize(
        "template", FILLER_TEMPLATES, ids=[t.__name__ for t in FILLER_TEMPLATES]
    )
    def test_filler_analyzes_clean(self, template):
        unit = template(3)
        report = analyze_project([unit.ml] if unit.ml else [], [unit.c])
        assert not report.diagnostics, [
            d.render() for d in report.diagnostics
        ]


class TestSynthesizer:
    def test_loc_budgets_met(self):
        spec = spec_by_name("gz-0.5.5")
        program = synthesize(spec, unique_prefix=40)
        assert program.c_loc >= spec.c_loc
        assert program.ocaml_loc >= spec.ocaml_loc

    def test_expected_tally_is_row(self):
        spec = spec_by_name("ocaml-ssl-0.1.0")
        program = synthesize(spec, unique_prefix=41)
        assert program.expected_tally() == spec.expected

    def test_small_row_end_to_end(self):
        spec = spec_by_name("ocaml-mad-0.1.0")
        program = synthesize(spec, unique_prefix=42)
        report = analyze_project([program.ocaml_source], [program.c_source])
        assert report.tally() == spec.expected

    def test_medium_row_end_to_end(self):
        spec = spec_by_name("ocaml-glpk-0.1.1")
        program = synthesize(spec, unique_prefix=43)
        report = analyze_project([program.ocaml_source], [program.c_source])
        assert report.tally() == spec.expected

    def test_scaled_variant_clean(self):
        program = synthesize_scaled(
            spec_by_name("apm-1.00"), 300, unique_prefix=44
        )
        assert program.c_loc >= 300
        report = analyze_project([program.ocaml_source], [program.c_source])
        assert not report.diagnostics

    def test_unique_prefixes_do_not_collide(self):
        spec = spec_by_name("apm-1.00")
        first = synthesize(spec, unique_prefix=45)
        second = synthesize(spec, unique_prefix=46)
        report = analyze_project(
            [first.ocaml_source, second.ocaml_source],
            [first.c_source, second.c_source],
        )
        assert not report.diagnostics
