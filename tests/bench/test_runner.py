"""Tests for the benchmark runner and the report tables."""

import pytest

from repro.bench.report import comparison_table, error_taxonomy, figure9_table
from repro.bench.runner import SuiteResult, run_benchmark
from repro.bench.specs import spec_by_name
from repro.core.exprs import Options


@pytest.fixture(scope="module")
def mad_result():
    return run_benchmark(spec_by_name("ocaml-mad-0.1.0"), unique_prefix=80)


class TestRunner:
    def test_row_fields(self, mad_result):
        row = mad_result.row()
        assert row["program"] == "ocaml-mad-0.1.0"
        assert row["errors"] == 1
        assert row["time_s"] >= 0

    def test_matches_both_baselines(self, mad_result):
        assert mad_result.matches_ground_truth
        assert mad_result.matches_paper

    def test_deterministic_across_runs(self):
        first = run_benchmark(spec_by_name("ocaml-ssl-0.1.0"), unique_prefix=81)
        second = run_benchmark(spec_by_name("ocaml-ssl-0.1.0"), unique_prefix=81)
        assert first.tally == second.tally

    def test_options_change_results(self):
        strict = run_benchmark(spec_by_name("ftplib-0.12"), unique_prefix=82)
        relaxed = run_benchmark(
            spec_by_name("ftplib-0.12"),
            Options(gc_effects=False),
            unique_prefix=82,
        )
        assert strict.tally["errors"] > relaxed.tally["errors"]


class TestReportTables:
    def test_figure9_table_contains_rows_and_total(self, mad_result):
        suite = SuiteResult(results=[mad_result])
        table = figure9_table(suite)
        assert "ocaml-mad-0.1.0" in table
        assert "Total" in table
        assert "Errors" in table

    def test_comparison_table_marks_matches(self, mad_result):
        suite = SuiteResult(results=[mad_result])
        table = comparison_table(suite)
        assert "1/1" in table
        assert "yes" in table

    def test_error_taxonomy(self, mad_result):
        suite = SuiteResult(results=[mad_result])
        taxonomy = error_taxonomy(suite)
        assert taxonomy == {"MISSING_CAMLRETURN": 1}

    def test_suite_totals_accumulate(self, mad_result):
        other = run_benchmark(spec_by_name("ocaml-ssl-0.1.0"), unique_prefix=83)
        suite = SuiteResult(results=[mad_result, other])
        totals = suite.totals()
        assert totals["errors"] == 1 + 4
        assert totals["warnings"] == 0 + 2
