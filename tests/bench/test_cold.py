"""The cold-path benchmark harness: corpus generator and frozen artifacts."""

import importlib.util
import json
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent.parent


def _load():
    spec = importlib.util.spec_from_file_location(
        "bench_cold", ROOT / "benchmarks" / "bench_cold.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def cold():
    return _load()


class TestCorpusGenerator:
    def test_scales_every_dialect(self, cold):
        for dialect in ("ocaml", "pyext", "jni"):
            requests = cold.build_corpus(dialect, 7)
            assert len(requests) == 7
            assert all(r.dialect == dialect for r in requests)

    def test_units_are_textually_distinct(self, cold):
        # symbol renaming must defeat any content-addressed collapse
        for dialect in ("ocaml", "pyext", "jni"):
            requests = cold.build_corpus(dialect, 6)
            texts = {r.c_sources[0].text for r in requests}
            assert len(texts) == 6, dialect

    def test_generator_is_deterministic(self, cold):
        first = cold.build_corpus("pyext", 4)
        second = cold.build_corpus("pyext", 4)
        for left, right in zip(first, second):
            assert left.c_sources[0].text == right.c_sources[0].text

    def test_ocaml_units_keep_host_and_c_sides_consistent(self, cold):
        request = cold.build_corpus("ocaml", 1)[0]
        (host,) = request.ocaml_sources
        (unit,) = request.c_sources
        # the external's C symbol (renamed) must appear in both files
        assert "ml_counter000_make" in host.text
        assert "ml_counter000_make" in unit.text

    def test_renamed_units_analyze_cleanly(self, cold):
        from repro.engine import run_batch

        requests = cold.build_corpus("pyext", 2)
        report = run_batch(requests, jobs=1, cache=None)
        assert not report.failures
        assert report.tally()["errors"] == 0


class TestFrozenArtifacts:
    def test_baseline_is_committed_and_well_formed(self, cold):
        assert cold.BASELINE_PATH.is_file()
        baseline = json.loads(cold.BASELINE_PATH.read_text())
        assert baseline["schema"] == cold.BASELINE_SCHEMA
        for dialect in ("ocaml", "pyext", "jni"):
            assert baseline["per_unit_seconds"][dialect] > 0
        # the host-speed calibration pairs with the frozen wall times;
        # without it the 2x gate breaks on any throttled/different host
        assert baseline["calibration_seconds"] > 0

    def test_calibration_workload_is_measurable(self, cold):
        assert 0 < cold.measure_calibration() < 5.0

    def test_goldens_are_committed_for_every_corpus(self, cold):
        for dialect in ("ocaml", "pyext", "jni"):
            assert cold.golden_path(dialect).is_file(), dialect

    def test_example_diagnostics_match_the_goldens(self, cold):
        # the benchmark's equivalence gate, run as a plain test so plain
        # `pytest` catches diagnostic drift without running the gates
        for dialect in ("ocaml", "pyext", "jni"):
            dump = cold.corpus_diagnostics(dialect)
            assert dump == cold.golden_path(dialect).read_text(), dialect
