"""Scaling benchmark: analysis time as a function of glue-code size.

The paper's Time column shows analysis time tracking C LoC (with lablgtk,
the largest library, dominating).  We sweep defect-free synthesized glue
from ~250 to ~4000 lines of C and check the growth is roughly linear —
each function is analyzed independently, so doubling the function count
should about double the time, not square it.
"""

import pytest

from repro.api import analyze_project
from repro.bench.specs import spec_by_name
from repro.bench.synth import synthesize_scaled

SIZES = (250, 500, 1000, 2000, 4000)


@pytest.mark.parametrize("c_loc", SIZES)
def test_scaling_point(benchmark, c_loc):
    base = spec_by_name("apm-1.00")
    program = synthesize_scaled(base, c_loc, unique_prefix=c_loc)
    assert program.c_loc >= c_loc

    def analyze():
        return analyze_project(
            [program.ocaml_source], [program.c_source]
        )

    report = benchmark(analyze)
    assert report.tally() == {
        "errors": 0,
        "warnings": 0,
        "false_positives": 0,
        "imprecision": 0,
    }


def test_growth_is_subquadratic():
    """Time(4000 LoC) should be far below (4000/250)^2 × Time(250 LoC)."""
    import time

    base = spec_by_name("apm-1.00")
    timings = {}
    for c_loc in (250, 4000):
        program = synthesize_scaled(base, c_loc, unique_prefix=50_000 + c_loc)
        started = time.perf_counter()
        analyze_project([program.ocaml_source], [program.c_source])
        timings[c_loc] = time.perf_counter() - started
    ratio = timings[4000] / max(timings[250], 1e-9)
    assert ratio < (4000 / 250) ** 2 / 2, timings
