"""Theorem 1 harness as a benchmark: pipeline + machine throughput.

Measures the full soundness loop — generate a random variant dispatch
program, run the two-phase analysis, and execute accepted programs on the
small-step machine — and asserts the theorem's statement on every sample:
acceptance implies the machine never gets stuck.
"""

import random


from repro.semantics.generator import SABOTAGES, generate_program
from repro.semantics.machine import run_generated
from repro.semantics.reduce import Outcome


def soundness_round(seed: int, samples: int = 20):
    rng = random.Random(seed)
    accepted = stuck = rejected = 0
    for index in range(samples):
        sabotage = None if index % 2 == 0 else rng.choice(SABOTAGES)
        program = generate_program(rng, sabotage)
        sample = run_generated(program, rng, runs=3)
        if not sample.accepted:
            rejected += 1
            continue
        accepted += 1
        if sample.run is not None and sample.run.outcome is Outcome.STUCK:
            stuck += 1
    return accepted, rejected, stuck


def test_soundness_throughput(benchmark):
    accepted, rejected, stuck = benchmark.pedantic(
        soundness_round, args=(2005,), rounds=1, iterations=1
    )
    assert stuck == 0, "Theorem 1 violated"
    assert accepted > 0 and rejected > 0  # both verdicts exercised


def test_machine_step_rate(benchmark):
    """Raw interpreter speed on a long-running counting loop."""
    from repro.cfront.ir import (
        AOp,
        IntLit,
        SAssign,
        SGoto,
        SIf,
        SReturn,
        VarExp,
    )
    from repro.semantics.reduce import Machine
    from repro.semantics.stores import MachineState
    from repro.semantics.values import CIntVal

    body = [
        SAssign(VarExp("i"), IntLit(0)),
        SIf(AOp(">=", VarExp("i"), IntLit(2000)), "end"),
        SAssign(VarExp("i"), AOp("+", VarExp("i"), IntLit(1))),
        SGoto("head"),
        SReturn(VarExp("i")),
    ]
    labels = {"head": 1, "end": 4}

    def run_loop():
        machine = Machine(body, labels, MachineState())
        return machine.run(max_steps=10_000)

    result = benchmark(run_loop)
    assert result.returned == CIntVal(2000)
