"""Telemetry benchmark: what tracing + metrics cost when switched ON.

``bench_cold.py`` gates the *disabled* hooks (must be free within 2%);
this harness gates the *enabled* path and validates what it produces:

1. **overhead** — a cold sweep with a tracer installed, per-request
   span recording, and the metrics registry enabled must stay within
   ``--max-overhead`` (default 1.25x) of the identical untraced sweep.
   Telemetry that doubles analysis time never gets left on.
2. **trace shape** — the recorded events must be well-formed Chrome
   ``trace_event`` complete events, there must be exactly one ``unit``
   span per translation unit, and every per-unit phase span (lex,
   parse, lower, seed, dataflow, unify-constraints) must nest inside a
   unit span by time containment — that is what makes the Perfetto
   view readable.
3. **metrics shape** — the registry exposition must parse as the
   Prometheus text format and carry a ``mlffi_unit_seconds`` histogram
   whose ``_count`` equals the number of analyzed units.

Run::

    python benchmarks/bench_telemetry.py --units 60
    python benchmarks/bench_telemetry.py --quick --json report.json
"""

from __future__ import annotations

import argparse
import json
import re
import sys
import time
from dataclasses import replace
from pathlib import Path

from bench_cold import build_corpus
from repro.engine import run_batch
from repro.telemetry import (
    REGISTRY,
    Tracer,
    aggregate_phases,
    install,
    set_metrics_enabled,
    uninstall,
)

#: per-unit phase spans every traced unit must contribute
EXPECTED_PHASES = (
    "lex",
    "parse",
    "lower",
    "seed",
    "dataflow",
    "unify-constraints",
)

#: a Prometheus text-format sample line (after the # comment lines)
_SAMPLE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?[0-9.eE+-]+$"
)


def time_sweep(requests, repeats: int) -> float:
    best = float("inf")
    for _ in range(max(1, repeats)):
        started = time.perf_counter()
        report = run_batch(requests, jobs=1, cache=None)
        best = min(best, time.perf_counter() - started)
        failures = [r.name for r in report.results if r.failure is not None]
        if failures:
            raise RuntimeError(f"sweep had engine failures: {failures}")
    return best


def validate_trace(events: list, units: int) -> list[str]:
    """Structural problems with the recorded trace; empty = valid."""
    problems: list[str] = []
    if not events:
        return ["no trace events recorded"]
    for event in events:
        missing = {"name", "cat", "ph", "ts", "dur", "pid", "tid"} - set(
            event
        )
        if missing or event.get("ph") != "X":
            problems.append(f"malformed event: {event}")
            break
    unit_spans = [e for e in events if e.get("cat") == "unit"]
    if len(unit_spans) != units:
        problems.append(
            f"expected {units} unit spans, got {len(unit_spans)}"
        )
    phases = aggregate_phases(events)
    for phase in EXPECTED_PHASES:
        if phases.get(phase, {}).get("count", 0) < units:
            problems.append(
                f"phase `{phase}` recorded "
                f"{phases.get(phase, {}).get('count', 0)} spans, "
                f"want >= {units}"
            )
    # nesting: each phase span must fall inside some unit span on the
    # same pid (time containment is how Perfetto builds the hierarchy)
    windows = [
        (e["pid"], e["ts"], e["ts"] + e["dur"]) for e in unit_spans
    ]
    orphans = 0
    for event in events:
        if event.get("cat") != "phase":
            continue
        if event["name"] not in EXPECTED_PHASES:
            continue
        end = event["ts"] + event["dur"]
        if not any(
            pid == event["pid"] and lo <= event["ts"] and end <= hi + 1
            for pid, lo, hi in windows
        ):
            orphans += 1
    if orphans:
        problems.append(
            f"{orphans} per-unit phase spans not contained in any "
            "unit span"
        )
    return problems


def validate_metrics(text: str, units: int) -> list[str]:
    """Prometheus-shape problems with the exposition; empty = valid."""
    problems: list[str] = []
    if not text.strip():
        return ["empty metrics exposition"]
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        if not _SAMPLE_RE.match(line):
            problems.append(f"bad exposition line: {line!r}")
    counts = re.findall(
        r"^mlffi_unit_seconds_count\{[^}]*outcome=\"fresh\"[^}]*\} (\d+)",
        text,
        re.MULTILINE,
    )
    total = sum(int(c) for c in counts)
    if total != units:
        problems.append(
            f"mlffi_unit_seconds fresh count {total} != units {units}"
        )
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--units", type=int, default=60, help="corpus size (default: 60)"
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="sweeps per mode; the best run is compared (default: 3)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke sizing (24 units); same gates",
    )
    parser.add_argument(
        "--max-overhead",
        type=float,
        default=1.25,
        help="allowed traced/untraced cold-time ratio (default: 1.25)",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also write the JSON payload to PATH (for bench-trend)",
    )
    args = parser.parse_args(argv)
    units = 24 if args.quick else args.units
    repeats = 2 if args.quick else args.repeats

    requests = build_corpus("ocaml", units)
    run_batch(requests[:3], jobs=1, cache=None)  # warm the interpreter

    plain_s = time_sweep(requests, repeats)

    traced_requests = [replace(r, trace=True) for r in requests]
    tracer = Tracer()
    REGISTRY.reset()
    install(tracer)
    set_metrics_enabled(True)
    try:
        traced_s = time_sweep(traced_requests, repeats)
        metrics_text = REGISTRY.render()
    finally:
        set_metrics_enabled(False)
        uninstall()
    events = tracer.export()

    overhead_ratio = traced_s / max(plain_s, 1e-9)
    # the best-of-N sweeps each re-record spans; shape checks only need
    # one sweep's worth, so validate against multiples of `units`
    sweeps = max(1, repeats)
    trace_problems = validate_trace(events, units * sweeps)
    metrics_problems = validate_metrics(metrics_text, units * sweeps)

    failures: list[str] = []
    if overhead_ratio > args.max_overhead:
        failures.append(
            f"telemetry-on overhead {overhead_ratio:.3f}x > allowed "
            f"{args.max_overhead:.2f}x"
        )
    failures.extend(f"trace: {p}" for p in trace_problems)
    failures.extend(f"metrics: {p}" for p in metrics_problems)

    payload = {
        "schema": "mlffi-bench-telemetry",
        "units": units,
        "repeats": repeats,
        "plain_seconds": round(plain_s, 4),
        "traced_seconds": round(traced_s, 4),
        "overhead_ratio": round(overhead_ratio, 4),
        "max_overhead": args.max_overhead,
        "trace_events": len(events),
        "phases": aggregate_phases(events),
        "gates": {
            "overhead_within_bounds": overhead_ratio <= args.max_overhead,
            "trace_well_formed": not trace_problems,
            "metrics_well_formed": not metrics_problems,
            "failures": failures,
        },
    }
    text = json.dumps(payload, indent=2, sort_keys=True)
    print(text)
    if args.json is not None:
        Path(args.json).write_text(text + "\n")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
