"""jni-dialect benchmark: throughput and detection over synthesized natives.

Synthesizes N JNI translation units — half clean, half seeded with one
defect each, cycling through the dialect's defect classes (descriptor
syntax, descriptor mismatch, call arity, local-ref loop leak,
use-after-delete, global-ref leak) — and runs them through the batch
engine under ``dialect="jni"``.

Gates (exit non-zero on failure):

* every seeded unit reports its planted defect class, and only the
  planted one among the jni kinds;
* every clean unit reports zero diagnostics;
* a warm rerun against the same cache is all hits.

Results print as one JSON object (unit wall-times included), matching
the shape CI's bench-smoke artifacts expect; ``--json PATH`` also writes
the same object to a file for the bench-trend harness.

Run::

    python benchmarks/bench_jni.py --units 16
    python benchmarks/bench_jni.py --units 6 --quick
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

from repro.engine import CheckRequest, ResultCache, run_batch
from repro.source import SourceFile

CLEAN_TEMPLATE = """\
#include <jni.h>

JNIEXPORT jint JNICALL
Java_com_bench_Mod_1{i}_work(JNIEnv *env, jobject self, jobjectArray items)
{{
    jint total = {i};
    jsize count = (*env)->GetArrayLength(env, items);
    jsize index;
    for (index = 0; index < count; index = index + 1) {{
        jobject item = (*env)->GetObjectArrayElement(env, items, index);
        total = total + (*env)->GetStringLength(env, item);
        (*env)->DeleteLocalRef(env, item);
    }}
    return total;
}}

JNIEXPORT jint JNICALL
Java_com_bench_Mod_1{i}_callSize(JNIEnv *env, jobject self, jobject list)
{{
    jclass cls = (*env)->GetObjectClass(env, list);
    jmethodID size = (*env)->GetMethodID(env, cls, "size", "()I");
    if (size == NULL)
        return -1;
    return (*env)->CallIntMethod(env, list, size);
}}
"""

#: defect class -> (expected Kind name, body of the seeded function)
DEFECTS: dict[str, tuple[str, str]] = {
    "descriptor-syntax": (
        "JNI_BAD_DESCRIPTOR",
        "    jclass cls = (*env)->GetObjectClass(env, box);\n"
        '    jfieldID fid = (*env)->GetFieldID(env, cls, "n", "Q");\n'
        "    return (*env)->GetIntField(env, box, fid);\n",
    ),
    "descriptor-mismatch": (
        "JNI_DESCRIPTOR_MISMATCH",
        "    jclass cls = (*env)->GetObjectClass(env, box);\n"
        '    jmethodID size = (*env)->GetMethodID(env, cls, "size", "()I");\n'
        "    (*env)->CallObjectMethod(env, box, size);\n"
        "    return 0;\n",
    ),
    "call-arity": (
        "JNI_DESCRIPTOR_MISMATCH",
        "    jclass cls = (*env)->GetObjectClass(env, box);\n"
        '    jmethodID m = (*env)->GetMethodID(env, cls, "get", "(I)I");\n'
        "    return (*env)->CallIntMethod(env, box, m, 1, 2);\n",
    ),
    "loop-leak": (
        "JNI_LOCAL_REF_LEAK",
        "    jint total = 0;\n"
        "    jsize index;\n"
        "    for (index = 0; index < 8; index = index + 1) {\n"
        "        jobject item = (*env)->GetObjectArrayElement(env, box, index);\n"
        "        total = total + (*env)->GetStringLength(env, item);\n"
        "    }\n"
        "    return total;\n",
    ),
    "use-after-delete": (
        "JNI_USE_AFTER_DELETE",
        "    jclass cls = (*env)->GetObjectClass(env, box);\n"
        "    (*env)->DeleteLocalRef(env, cls);\n"
        "    return (*env)->IsInstanceOf(env, box, cls);\n",
    ),
    "global-leak": (
        "JNI_GLOBAL_REF_LEAK",
        "    jobject pinned = (*env)->NewGlobalRef(env, box);\n"
        "    (*env)->GetStringLength(env, pinned);\n"
        "    return 0;\n",
    ),
}

SEEDED_TEMPLATE = """\
#include <jni.h>

JNIEXPORT jint JNICALL
Java_com_bench_Bad_1{i}_seeded(JNIEnv *env, jobject self, jobject box)
{{
{body}}}
"""

JNI_KINDS = {
    "JNI_BAD_DESCRIPTOR",
    "JNI_DESCRIPTOR_MISMATCH",
    "JNI_LOCAL_REF_LEAK",
    "JNI_USE_AFTER_DELETE",
    "JNI_GLOBAL_REF_LEAK",
    "JNI_LOCAL_ESCAPE",
}


def build_corpus(units: int) -> list[tuple[CheckRequest, str | None]]:
    """(request, expected-kind-or-None) pairs, clean/seeded interleaved."""
    corpus: list[tuple[CheckRequest, str | None]] = []
    defect_cycle = list(DEFECTS.items())
    for index in range(units):
        if index % 2 == 0:
            text = CLEAN_TEMPLATE.format(i=index)
            expected = None
        else:
            label, (kind, body) = defect_cycle[
                (index // 2) % len(defect_cycle)
            ]
            text = SEEDED_TEMPLATE.format(i=index, body=body)
            expected = kind
        name = f"native{index:03}.c"
        corpus.append(
            (
                CheckRequest(
                    name=name,
                    c_sources=(SourceFile(name, text),),
                    dialect="jni",
                ),
                expected,
            )
        )
    return corpus


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--units", type=int, default=16)
    parser.add_argument("--jobs", type=int, default=1)
    parser.add_argument("--quick", action="store_true", help="6-unit smoke")
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also write the JSON payload to PATH (for bench-trend)",
    )
    args = parser.parse_args(argv)
    units = 6 if args.quick else args.units

    corpus = build_corpus(units)
    requests = [request for request, _ in corpus]

    failures: list[str] = []
    with tempfile.TemporaryDirectory() as tmp:
        cache = ResultCache(tmp)
        started = time.perf_counter()
        cold = run_batch(requests, jobs=args.jobs, cache=cache)
        cold_seconds = time.perf_counter() - started

        started = time.perf_counter()
        warm = run_batch(requests, jobs=args.jobs, cache=cache)
        warm_seconds = time.perf_counter() - started

    for (request, expected), result in zip(corpus, cold.results):
        kinds = {diag.kind.name for diag in result.diagnostics}
        planted = kinds & JNI_KINDS
        if result.failure is not None:
            failures.append(f"{request.name}: engine failure {result.failure}")
        elif expected is None and kinds:
            failures.append(f"{request.name}: clean unit reported {kinds}")
        elif expected is not None and planted != {expected}:
            failures.append(
                f"{request.name}: expected {{{expected}}}, got {planted}"
            )
    if warm.cache_hits != len(requests):
        failures.append(
            f"warm rerun: {warm.cache_hits}/{len(requests)} cache hits"
        )

    payload = {
        "units": units,
        "jobs": args.jobs,
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "warm_fraction_of_cold": round(
            warm_seconds / max(cold_seconds, 1e-9), 4
        ),
        "unit_wall_seconds": {r.name: r.wall_seconds for r in cold.results},
        "tally": cold.tally(),
        "gates": {"failures": failures},
    }
    text = json.dumps(payload, indent=2, sort_keys=True)
    print(text)
    if args.json is not None:
        Path(args.json).write_text(text + "\n")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
