"""Figure 9 reproduction benchmark.

One benchmark per row of the paper's results table: synthesize the glue
library, analyze it, assert the report counts land exactly on the row, and
time the analysis (the paper's Time column; absolute values differ from the
2 GHz Pentium IV, the *shape* — lablgtk ≫ everything else — must hold).
"""

import pytest

from repro.bench.report import error_taxonomy, figure9_table
from repro.bench.runner import run_benchmark, run_suite
from repro.bench.specs import PAPER_TOTALS, SUITE, spec_by_name
from repro.bench.synth import synthesize
from repro.api import analyze_project


@pytest.mark.parametrize("spec", SUITE, ids=[s.name for s in SUITE])
def test_fig9_row(benchmark, spec):
    """Each Figure 9 row: measured counts equal the paper's counts."""
    prefix = list(SUITE).index(spec)
    bench_program = synthesize(spec, unique_prefix=prefix)

    def analyze():
        return analyze_project(
            [bench_program.ocaml_source], [bench_program.c_source]
        )

    report = benchmark.pedantic(analyze, rounds=1, iterations=1)
    assert report.tally() == spec.expected
    assert report.tally() == bench_program.expected_tally()


def test_fig9_totals(benchmark):
    """The bottom row: 24 errors, 22 warnings, 214 false pos, 75 imprecision."""
    suite = benchmark.pedantic(run_suite, rounds=1, iterations=1)
    assert suite.totals() == PAPER_TOTALS
    assert suite.all_match_ground_truth
    print()
    print(figure9_table(suite))


def test_defect_taxonomy(benchmark):
    """§5.2 prose: 3 unregistered-pointer + 2 register-leak + 19 type errors."""
    suite = benchmark.pedantic(run_suite, rounds=1, iterations=1)
    taxonomy = error_taxonomy(suite)
    assert taxonomy.get("UNPROTECTED_VALUE", 0) == 3
    assert taxonomy.get("MISSING_CAMLRETURN", 0) == 2
    type_errors = (
        taxonomy.get("BAD_VAL_INT", 0)
        + taxonomy.get("BAD_INT_VAL", 0)
        + taxonomy.get("TYPE_MISMATCH", 0)
        + taxonomy.get("OPTION_MISUSE", 0)
        + taxonomy.get("TAG_OUT_OF_RANGE", 0)
        + taxonomy.get("ARITY_MISMATCH", 0)
    )
    assert type_errors == 19


def test_lablgtk_dominates_timing(benchmark):
    """The Time column's shape: the largest benchmark is the slowest."""

    def run_two():
        small = run_benchmark(spec_by_name("apm-1.00"), unique_prefix=0)
        large = run_benchmark(spec_by_name("lablgtk-2.2.0"), unique_prefix=10)
        return small, large

    small, large = benchmark.pedantic(run_two, rounds=1, iterations=1)
    assert large.elapsed_seconds > small.elapsed_seconds
