"""Persistent-service benchmark: warm incremental re-check vs. cold batch.

Builds a working tree from the shipped examples corpora (``examples/glue``
for the ocaml dialect, ``examples/pyext`` for pyext), padded with copies
of the example stubs so the corpus has enough units for the incremental
win to be visible, then measures per dialect:

1. **cold batch** — ``run_batch`` over the whole tree, ``jobs=1``, no
   cache: what ``mlffi-check batch`` pays on every invocation;
2. **warm incremental** — a resident :class:`repro.api.Session` that
   already checked the tree once; one example file is edited and the
   re-check (which re-runs only the touched unit) is timed.

Acceptance gates (the CI smoke and ISSUE 3 contract):

* per dialect, the warm re-check is at least **5x** faster than the
  cold batch over the same corpus;
* the daemon's wire-format diagnostics for every original example unit
  are **byte-identical** to a one-shot ``Project.analyze`` of the same
  sources, for both dialects.

Run::

    python benchmarks/bench_serve.py
    python benchmarks/bench_serve.py --pad 3 --quick
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
import tempfile
import time
from pathlib import Path

from repro.api import Project, Session
from repro.engine import NullCache, run_batch
from repro.server import encode

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

#: dialect -> (corpus dir, host suffixes, file edited for the warm run)
CORPORA = {
    "ocaml": ("glue", (".ml", ".mli"), "counter_stubs.c"),
    "pyext": ("pyext", (), "clean_module.c"),
    "jni": ("jni", (), "clean_native.c"),
}


def build_tree(workdir: Path, corpus: str, pad: int) -> Path:
    """Copy one examples corpus and pad it with renamed unit copies."""
    root = workdir / corpus
    shutil.copytree(EXAMPLES / corpus, root)
    for unit in sorted(root.glob("*.c")):
        for copy in range(pad):
            target = root / f"{unit.stem}_copy{copy:02}.c"
            target.write_text(unit.read_text())
    return root


def one_shot_diagnostics(root: Path, unit: Path, dialect: str) -> list[dict]:
    """``Project.analyze`` of a single unit, exactly as ``check`` runs it."""
    project = Project(dialect=dialect)
    for host in sorted(root.glob("*.ml")) + sorted(root.glob("*.mli")):
        project.add_ocaml(host.read_text(), name=str(host))
    project.add_c(unit.read_text(), name=str(unit))
    report = project.analyze()
    return [diag.to_dict() for diag in report.diagnostics]


def bench_dialect(workdir: Path, dialect: str, pad: int) -> dict:
    corpus, _hosts, edit_name = CORPORA[dialect]
    root = build_tree(workdir, corpus, pad)

    # 1. cold batch: every unit analyzed from scratch (best-of-2 — the
    # gate is about steady-state cost, not one noisy sample)
    project = Project.from_directory(root, dialect=dialect)
    cold_s = float("inf")
    for _ in range(2):
        started = time.perf_counter()
        cold_report = run_batch(
            project.to_requests(), jobs=1, cache=NullCache()
        )
        cold_s = min(cold_s, time.perf_counter() - started)

    # 2. resident session: warm up, then repeat edit -> invalidate ->
    # re-check and keep the best cycle (each cycle genuinely re-dirties
    # and re-analyzes the edited unit)
    session = Session(root, dialect=dialect)
    session.check()
    edited = root / edit_name
    warm_s = float("inf")
    for cycle in range(3):
        edited.write_text(
            edited.read_text() + f"\n/* bench edit {cycle} */\n"
        )
        session.invalidate([edited])
        started = time.perf_counter()
        warm_report = session.check()
        warm_s = min(warm_s, time.perf_counter() - started)

    # 3. wire stability: daemon diagnostics byte-identical to one-shot
    service = session.service()
    response = service.handle(encode({"id": 1, "method": "check"}).strip())
    by_name = {u["name"]: u for u in response["result"]["units"]}
    identical = True
    for unit in sorted((EXAMPLES / corpus).glob("*.c")):
        local = root / unit.name
        daemon_bytes = encode(
            {"diagnostics": by_name[str(local)]["diagnostics"]}
        ).encode()
        direct_bytes = encode(
            {"diagnostics": one_shot_diagnostics(root, local, dialect)}
        ).encode()
        if daemon_bytes != direct_bytes:
            identical = False

    speedup = cold_s / max(warm_s, 1e-9)
    return {
        "units": len(cold_report.results),
        "cold_batch_s": round(cold_s, 4),
        "warm_recheck_s": round(warm_s, 4),
        "speedup": round(speedup, 2),
        "reran": [Path(name).name for name in warm_report.ran],
        "reused": warm_report.reused,
        "gates": {
            "warm_5x_faster_than_cold": speedup >= 5.0,
            "only_edited_unit_reran": [
                Path(name).name for name in warm_report.ran
            ] == [edit_name],
            "diagnostics_byte_identical": identical,
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--pad",
        type=int,
        default=6,
        help="renamed copies of each example unit (default: 6)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller padding for CI smoke runs",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also write the JSON payload to PATH (for bench-trend)",
    )
    args = parser.parse_args(argv)
    pad = 3 if args.quick else args.pad

    workdir = Path(tempfile.mkdtemp(prefix="mlffi-bench-serve-"))
    try:
        payload = {
            "pad_copies_per_unit": pad,
            "dialects": {
                dialect: bench_dialect(workdir, dialect, pad)
                for dialect in sorted(CORPORA)
            },
        }
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    passed = all(
        all(result["gates"].values())
        for result in payload["dialects"].values()
    )
    payload["gates_passed"] = passed
    text = json.dumps(payload, indent=2)
    print(text)
    if args.json is not None:
        Path(args.json).write_text(text + "\n")
    return 0 if passed else 1


if __name__ == "__main__":
    sys.exit(main())
