"""Link benchmark: cross-unit recall and streamed mega-corpus residency.

The whole-program link pass (:mod:`repro.linker`) only earns its keep if
(a) it actually finds the cross-unit bugs it claims to model and (b) the
streaming sweep that feeds it stays bounded in memory on corpora far
larger than any resident session.  This harness gates both:

* **recall** — every seeded cross-unit bug in the committed
  ``examples/link/<dialect>`` corpora must be detected (each corpus is
  per-unit clean by construction, so anything the link step misses is
  silently lost), and every *planted* conflict in a generated scaled
  corpus must surface: the scaler reuses :func:`bench_cold.build_corpus`
  to produce N distinct clean units, then plants conflict/duplicate
  trios among them.  ``link_recall`` (detected / expected) must be 1.0.
* **bounded RSS** — ``mlffi-check link`` over the generated on-disk
  corpus runs as a *child process* and its ``ru_maxrss`` must stay under
  ``--max-rss-mb``.  The streaming scheduler discards per-unit payloads
  as soon as they are drained, so peak residency tracks the window, not
  the corpus; a cap that a resident-corpus implementation would blow at
  10k units is the regression tripwire.
* **equivalence** — per-unit output of the streaming path must be
  byte-identical to the non-streaming batch path on a shared subset
  (same renderer, same order, no cache), so ``--stream`` can never
  change what a sweep reports.

Run::

    python benchmarks/bench_link.py --quick
    python benchmarks/bench_link.py --units 10000 --jobs 4
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from bench_cold import _SCALE_SPECS, CORPORA, _rename, build_corpus

from repro.engine import render_unit, run_batch, stream_batch
from repro.linker import Linker

ROOT = Path(__file__).resolve().parent.parent
LINK_EXAMPLES = ROOT / "examples" / "link"

#: dialect -> the LINK_* kinds seeded in examples/link/<dialect>
EXPECTED_EXAMPLE_KINDS: dict[str, tuple[str, ...]] = {
    "ocaml": (
        "LINK_CONFLICTING_DECL",
        "LINK_DUPLICATE_DEFINITION",
        "LINK_UNRESOLVED_EXTERN",
    ),
    "pyext": (
        "LINK_CONFLICTING_DECL",
        "LINK_DUPLICATE_REGISTRATION",
        "LINK_UNRESOLVED_EXTERN",
    ),
    "jni": (
        "LINK_CONFLICTING_DECL",
        "LINK_DUPLICATE_REGISTRATION",
        "LINK_UNRESOLVED_EXTERN",
    ),
}

#: one planted trio: a two-argument definition, an identical duplicate
#: of a second function, and a user unit whose one-argument prototype
#: conflicts with the first and whose extern makes the second referenced.
#: Each trio yields exactly one LINK_CONFLICTING_DECL and one
#: LINK_DUPLICATE_DEFINITION, and every unit is clean in isolation.
_PLANT_A = """\
long plant_confl_{j}(long a, long b)
{{
    return a + b;
}}

long plant_dup_{j}(long x)
{{
    return x + 1;
}}
"""
_PLANT_B = """\
long plant_dup_{j}(long x)
{{
    return x + 1;
}}
"""
_PLANT_C = """\
long plant_confl_{j}(long a);
extern long plant_dup_{j}(long x);

long plant_user_{j}(long x)
{{
    return plant_confl_{j}(x) + plant_dup_{j}(x);
}}
"""


def example_recall() -> tuple[dict[str, dict], list[str]]:
    """Link the seeded example corpora; every expected kind must fire."""
    from repro.api import Project

    failures: list[str] = []
    per_dialect: dict[str, dict] = {}
    for dialect, expected in EXPECTED_EXAMPLE_KINDS.items():
        corpus = LINK_EXAMPLES / dialect
        project = Project.from_directory(corpus, dialect=dialect)
        report = run_batch(project.to_requests(), jobs=1, cache=None)
        unit_diags = [
            (r.name, d.kind.name)
            for r in report.results
            for d in r.diagnostics
        ]
        if unit_diags:
            failures.append(
                f"{dialect}: seeded corpus is not per-unit clean: {unit_diags}"
            )
        linker = Linker()
        for result in report.results:
            if result.failure is None:
                linker.add_dict(result.summary)
        detected = sorted(
            d.kind.name for d in linker.report().diagnostics
        )
        per_dialect[dialect] = {
            "expected": sorted(expected),
            "detected": detected,
        }
        if detected != sorted(expected):
            failures.append(
                f"{dialect}: link detected {detected}, "
                f"expected {sorted(expected)}"
            )
    return per_dialect, failures


def materialize_corpus(root: Path, units: int, plants: int) -> None:
    """Write a scaled on-disk ocaml corpus with planted link bugs.

    Clean units come from :mod:`bench_cold`'s renaming scaler (every
    boundary symbol in the glue examples carries a rename root, so the
    scaled corpus links clean on its own); planted trios are appended as
    standalone C units.  Only the counter pair is scaled — the shapes
    pair ships a deliberately seeded per-unit defect, and this corpus
    must be per-unit clean so every diagnostic the sweep reports is a
    planted cross-unit bug.
    """
    specs = _SCALE_SPECS["ocaml"][:1]
    loaded = [
        [(name, (CORPORA["ocaml"] / name).read_text()) for name in names]
        for names, _roots in specs
    ]
    for index in range(units):
        spec_index = index % len(specs)
        _names, roots = specs[spec_index]
        for name, text in loaded[spec_index]:
            out = root / f"u{index:05d}_{name}"
            out.write_text(_rename(text, roots, index))
    for j in range(plants):
        (root / f"plant{j:04d}_a.c").write_text(_PLANT_A.format(j=j))
        (root / f"plant{j:04d}_b.c").write_text(_PLANT_B.format(j=j))
        (root / f"plant{j:04d}_c.c").write_text(_PLANT_C.format(j=j))


#: child wrapper: run the CLI link sweep, then append this process's own
#: peak RSS to the JSON the CLI printed (kilobytes on Linux, bytes on
#: macOS — normalized here to bytes)
_CHILD = """\
import json, resource, sys
from repro.cli import main

rc = main(sys.argv[2:])
peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
if sys.platform != "darwin":
    peak *= 1024
with open(sys.argv[1], "w") as fh:
    json.dump({"rc": rc, "maxrss_bytes": peak}, fh)
sys.exit(rc)
"""


def streamed_link(
    corpus: Path, jobs: int, rss_path: Path
) -> tuple[dict, dict]:
    """Run ``mlffi-check link`` in a child; returns (link doc, rss info)."""
    argv = [
        sys.executable,
        "-c",
        _CHILD,
        str(rss_path),
        "link",
        str(corpus),
        "--dialect",
        "ocaml",
        "--jobs",
        str(jobs),
        "--no-cache",
        "--quiet",
        "--format",
        "json",
    ]
    proc = subprocess.run(argv, capture_output=True, text=True)
    if not rss_path.is_file():
        raise RuntimeError(
            f"link child produced no RSS record (exit {proc.returncode}): "
            f"{proc.stderr.strip()[-300:]}"
        )
    rss = json.loads(rss_path.read_text())
    document = json.loads(proc.stdout)
    return document, rss


def planted_recall(document: dict, plants: int) -> tuple[dict, list[str]]:
    """Every planted conflict/duplicate must surface, and nothing else."""
    failures: list[str] = []
    counts: dict[str, int] = {}
    for diag in document["link"]["diagnostics"]:
        counts[diag["kind"]] = counts.get(diag["kind"], 0) + 1
    expected = {
        "LINK_CONFLICTING_DECL": plants,
        "LINK_DUPLICATE_DEFINITION": plants,
    }
    for kind, want in expected.items():
        if counts.get(kind, 0) != want:
            failures.append(
                f"planted: {kind} fired {counts.get(kind, 0)}x, want {want}"
            )
    unexpected = {k: v for k, v in counts.items() if k not in expected}
    if unexpected:
        failures.append(f"planted: unexpected link diagnostics {unexpected}")
    if document["stream"]["failures"]:
        failures.append(
            f"planted: {document['stream']['failures']} engine failure(s)"
        )
    tally = document["stream"]["tally"]
    if tally["errors"] or tally["warnings"]:
        failures.append(
            "planted: generated corpus must be per-unit clean, got "
            f"{tally['errors']} error(s), {tally['warnings']} warning(s)"
        )
    return {"expected": expected, "detected": counts}, failures


def identity_gate(units: int, jobs: int) -> tuple[dict, list[str]]:
    """Streamed and batch sweeps must render byte-identical unit output."""
    requests = build_corpus("ocaml", units)
    batch = run_batch(requests, jobs=1, cache=None)
    batch_text = "\n".join(
        line for result in batch.results for line in render_unit(result)
    )
    streamed: list[str] = []
    stream_batch(
        requests,
        jobs=jobs,
        cache=None,
        on_result=lambda r: streamed.extend(render_unit(r)),
    )
    stream_text = "\n".join(streamed)
    identical = batch_text == stream_text
    failures = (
        []
        if identical
        else [f"identity: streamed output diverges on {units} units"]
    )
    return {"units": units, "identical": identical}, failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--units",
        type=int,
        default=10000,
        help="generated corpus size for the streamed sweep",
    )
    parser.add_argument(
        "--plants",
        type=int,
        default=None,
        help="planted conflict trios (default: 1 per 100 units, min 3)",
    )
    parser.add_argument(
        "--jobs", type=int, default=2, help="streaming worker processes"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke sizing (800 units); same gates",
    )
    parser.add_argument(
        "--max-rss-mb",
        type=float,
        default=400.0,
        help="peak-RSS cap for the streamed child process",
    )
    parser.add_argument(
        "--identity-units",
        type=int,
        default=120,
        help="subset size for the streamed-vs-batch equivalence gate",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also write the JSON payload to PATH (for bench-trend)",
    )
    args = parser.parse_args(argv)

    units = 800 if args.quick else args.units
    plants = (
        args.plants if args.plants is not None else max(3, units // 100)
    )

    failures: list[str] = []

    examples, example_failures = example_recall()
    failures.extend(example_failures)

    identity, identity_failures = identity_gate(
        min(args.identity_units, units), args.jobs
    )
    failures.extend(identity_failures)

    with tempfile.TemporaryDirectory(prefix="mlffi-bench-link-") as tmp:
        corpus = Path(tmp) / "corpus"
        corpus.mkdir()
        materialize_corpus(corpus, units, plants)
        started = time.perf_counter()
        document, rss = streamed_link(
            corpus, args.jobs, Path(tmp) / "rss.json"
        )
        wall_s = time.perf_counter() - started
    planted, planted_failures = planted_recall(document, plants)
    failures.extend(planted_failures)

    max_rss_mb = rss["maxrss_bytes"] / (1024 * 1024)
    if max_rss_mb > args.max_rss_mb:
        failures.append(
            f"rss: streamed link peaked at {max_rss_mb:.1f} MiB "
            f"> cap {args.max_rss_mb:.1f} MiB on {units} units"
        )

    # recall over everything this run seeded: the three example corpora
    # (3 expected kinds each) plus two planted kinds per trio
    expected_total = sum(
        len(kinds) for kinds in EXPECTED_EXAMPLE_KINDS.values()
    ) + 2 * plants
    detected_total = sum(
        min(len(entry["detected"]), len(entry["expected"]))
        for entry in examples.values()
    ) + sum(
        min(planted["detected"].get(kind, 0), want)
        for kind, want in planted["expected"].items()
    )
    link_recall = detected_total / expected_total

    payload = {
        "schema": "mlffi-bench-link",
        "units": units,
        "plants": plants,
        "jobs": args.jobs,
        "link_seconds": round(document["link"]["elapsed_seconds"], 4),
        "sweep_seconds": round(wall_s, 3),
        "units_per_second": round(units / max(wall_s, 1e-9), 2),
        "max_rss_mb": round(max_rss_mb, 1),
        "rss_cap_mb": args.max_rss_mb,
        "link_recall": round(link_recall, 4),
        "examples": examples,
        "planted": planted,
        "identity": identity,
        "stream": document["stream"],
        "gates": {"failures": failures},
    }
    text = json.dumps(payload, indent=2, sort_keys=True)
    print(text)
    if args.json is not None:
        Path(args.json).write_text(text + "\n")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
