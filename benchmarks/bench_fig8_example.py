"""Figure 8 reproduction: the worked example of paper §3.4.

The paper walks the Figure 2 tag-dispatch code and shows the types the
inference assigns: ``x : α value`` unifies with ``(ψ, σ)``, the tag tests
grow the rows, and at the end ``α = (ψ, π0 + π1 + σ'')`` with ``2 ≤ ψ``
"correctly unifies with our original type t".  We rerun that example and
assert the final, fully-resolved representational type of ``x``:

    (2, (⊤,∅) + (⊤,∅) × (⊤,∅))   —   ρ(t) for
    type t = A of int | B | C of int * int | D
"""


from repro.api import Project
from repro.core.checker import Checker
from repro.core.types import CValue, MTRepr, PSI_TOP, PsiConst

FIG2_ML = """
type t = A of int | B | C of int * int | D
external examine : t -> int = "ml_examine"
"""

FIG2_C = """
value ml_examine(value x)
{
    int result = 0;
    if (Is_long(x)) {
        switch (Int_val(x)) {
        case 0: /* B */ result = 1; break;
        case 1: /* D */ result = 2; break;
        }
    } else {
        switch (Tag_val(x)) {
        case 0: /* A */ result = Int_val(Field(x, 0)); break;
        case 1: /* C */ result = Int_val(Field(x, 1)); break;
        }
    }
    return Val_int(result);
}
"""


def run_example():
    project = Project().add_ocaml(FIG2_ML).add_c(FIG2_C)
    checker = Checker(project.lower(), project.build_initial_env())
    report = checker.run()
    return checker, report


def test_fig8_example(benchmark):
    checker, report = benchmark.pedantic(run_example, rounds=1, iterations=1)
    assert not report.diagnostics, [d.render() for d in report.diagnostics]

    unifier = checker.ctx.unifier
    fn_ct = checker.ctx.functions["ml_examine"].ct
    param = fn_ct.params[0]
    assert isinstance(param, CValue)
    resolved = unifier.deep_resolve_mt(param.mt)
    assert isinstance(resolved, MTRepr)

    # 2 nullary constructors (B, D) ...
    assert unifier.resolve_psi(resolved.psi) == PsiConst(2)
    # ... and two products: A's (int) and C's (int × int)
    sigma = resolved.sigma
    assert sigma.is_closed
    assert len(sigma.prods) == 2
    assert len(sigma.prods[0].elems) == 1
    assert len(sigma.prods[1].elems) == 2
    # field payloads are ints: (⊤, ∅)
    payload = sigma.prods[1].elems[0]
    assert isinstance(payload, MTRepr)
    assert payload.psi is PSI_TOP


def test_fig8_sigma_grows_during_inference(benchmark):
    """Without the final unification, the rows stay open (σ'', π tails)."""

    def run_partial():
        # same C code but the external's type is polymorphic-free unknown:
        # no OCaml declaration at all, so only the C side constrains x
        project = Project().add_c(FIG2_C)
        checker = Checker(project.lower(), project.build_initial_env())
        checker.run()
        return checker

    checker = benchmark.pedantic(run_partial, rounds=1, iterations=1)
    unifier = checker.ctx.unifier
    fn_ct = checker.ctx.functions["ml_examine"].ct
    resolved = unifier.deep_resolve_mt(fn_ct.params[0].mt)
    assert isinstance(resolved, MTRepr)
    sigma = resolved.sigma
    # the two Tag_val cases grew the row to (at least) two products, but
    # nothing closed it: the tail variable is still there
    assert len(sigma.prods) >= 2
    assert not sigma.is_closed
