"""rust-dialect benchmark: throughput and detection over synthesized bindings.

Synthesizes N Rust/C binding pairs — half clean, half seeded with one
defect each, cycling through the rule pack (arity, platform width,
pointer/integer confusion, enum repr, string passing, rendered-type
mismatch) — and runs them through the batch engine under
``dialect="rust"``.

Gates (exit non-zero on failure):

* every seeded unit reports its planted rule, and only the planted one
  among the rust kinds;
* every clean unit reports zero diagnostics;
* a warm rerun against the same cache is all hits.

Results print as one JSON object (unit wall-times included), matching
the shape CI's bench-smoke artifacts expect; ``--json PATH`` also writes
the same object to a file for the bench-trend harness.

Run::

    python benchmarks/bench_rust.py --units 16
    python benchmarks/bench_rust.py --units 6 --quick
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

from repro.engine import CheckRequest, ResultCache, run_batch
from repro.source import SourceFile

CLEAN_RUST = """\
use std::os::raw::c_char;

extern "C" {{
    fn c_hash_{i}(data: *const u8, len: usize) -> u64;
    fn c_name_{i}() -> *const c_char;
}}

#[no_mangle]
pub extern "C" fn rs_tick_{i}(n: u32) -> u32 {{
    let name = unsafe {{ c_name_{i}() }};
    let _ = name;
    n + {i}
}}
"""

CLEAN_C = """\
#include <stddef.h>
#include <stdint.h>

uint64_t c_hash_{i}(const uint8_t *data, size_t len)
{{
    uint64_t hash = {i};
    for (size_t at = 0; at < len; at++)
        hash = hash * 31 + data[at];
    return hash;
}}

const char *c_name_{i}(void)
{{
    return "bench";
}}

extern uint32_t rs_tick_{i}(uint32_t n);

uint32_t drive_{i}(void)
{{
    return rs_tick_{i}({i});
}}
"""

#: defect class -> (expected Kind name, rust declaration, C declaration)
DEFECTS: dict[str, tuple[str, str, str]] = {
    "arity": (
        "RUST_DECL_MISMATCH",
        "fn c_bad_{i}(a: i32) -> i32;",
        "int c_bad_{i}(int a, int b) {{ return a + b; }}",
    ),
    "platform-width": (
        "RUST_PLATFORM_WIDTH",
        "fn c_bad_{i}(n: usize) -> i32;",
        "int c_bad_{i}(int n) {{ return n; }}",
    ),
    "ptr-int": (
        "RUST_PTR_INT_CONFUSION",
        "fn c_bad_{i}(p: *const u8) -> i32;",
        "int c_bad_{i}(long p) {{ return (int)p; }}",
    ),
    "enum-repr": (
        "RUST_ENUM_REPR",
        "fn c_bad_{i}(mode: Mode) -> i32;",
        "int c_bad_{i}(int mode) {{ return mode; }}",
    ),
    "str-passing": (
        "RUST_STR_PASSING",
        "fn c_bad_{i}(msg: &str) -> i32;",
        "int c_bad_{i}(const char *msg) {{ return msg != 0; }}",
    ),
    "rendered-type": (
        "RUST_DECL_MISMATCH",
        "fn c_bad_{i}(x: u32) -> i32;",
        "int c_bad_{i}(unsigned long long x) {{ return (int)x; }}",
    ),
}

SEEDED_RUST = """\
pub enum Mode {{ A, B }}

extern "C" {{
    {decl}
}}
"""

RUST_KINDS = {
    "RUST_DECL_MISMATCH",
    "RUST_PLATFORM_WIDTH",
    "RUST_PTR_INT_CONFUSION",
    "RUST_ENUM_REPR",
    "RUST_STR_PASSING",
}


def build_corpus(units: int) -> list[tuple[CheckRequest, str | None]]:
    """(request, expected-kind-or-None) pairs, clean/seeded interleaved."""
    corpus: list[tuple[CheckRequest, str | None]] = []
    defect_cycle = list(DEFECTS.items())
    for index in range(units):
        if index % 2 == 0:
            rust_text = CLEAN_RUST.format(i=index)
            c_text = CLEAN_C.format(i=index)
            expected = None
        else:
            _label, (kind, rust_decl, c_decl) = defect_cycle[
                (index // 2) % len(defect_cycle)
            ]
            rust_text = SEEDED_RUST.format(decl=rust_decl.format(i=index))
            c_text = c_decl.format(i=index) + "\n"
            expected = kind
        name = f"binding{index:03}.c"
        corpus.append(
            (
                CheckRequest(
                    name=name,
                    c_sources=(SourceFile(name, c_text),),
                    ocaml_sources=(
                        SourceFile(f"binding{index:03}.rs", rust_text),
                    ),
                    dialect="rust",
                ),
                expected,
            )
        )
    return corpus


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--units", type=int, default=16)
    parser.add_argument("--jobs", type=int, default=1)
    parser.add_argument("--quick", action="store_true", help="6-unit smoke")
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also write the JSON payload to PATH (for bench-trend)",
    )
    args = parser.parse_args(argv)
    units = 6 if args.quick else args.units

    corpus = build_corpus(units)
    requests = [request for request, _ in corpus]

    failures: list[str] = []
    with tempfile.TemporaryDirectory() as tmp:
        cache = ResultCache(tmp)
        started = time.perf_counter()
        cold = run_batch(requests, jobs=args.jobs, cache=cache)
        cold_seconds = time.perf_counter() - started

        started = time.perf_counter()
        warm = run_batch(requests, jobs=args.jobs, cache=cache)
        warm_seconds = time.perf_counter() - started

    for (request, expected), result in zip(corpus, cold.results):
        kinds = {diag.kind.name for diag in result.diagnostics}
        planted = kinds & RUST_KINDS
        if result.failure is not None:
            failures.append(f"{request.name}: engine failure {result.failure}")
        elif expected is None and kinds:
            failures.append(f"{request.name}: clean unit reported {kinds}")
        elif expected is not None and planted != {expected}:
            failures.append(
                f"{request.name}: expected {{{expected}}}, got {planted}"
            )
    if warm.cache_hits != len(requests):
        failures.append(
            f"warm rerun: {warm.cache_hits}/{len(requests)} cache hits"
        )

    payload = {
        "units": units,
        "jobs": args.jobs,
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "warm_fraction_of_cold": round(
            warm_seconds / max(cold_seconds, 1e-9), 4
        ),
        "unit_wall_seconds": {r.name: r.wall_seconds for r in cold.results},
        "tally": cold.tally(),
        "gates": {"failures": failures},
    }
    text = json.dumps(payload, indent=2, sort_keys=True)
    print(text)
    if args.json is not None:
        Path(args.json).write_text(text + "\n")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
