"""High-concurrency daemon benchmark: fleet traffic against one server.

Drives the asyncio daemon (:mod:`repro.server.async_daemon`) the way a
build fleet does — many concurrent TCP clients asking for the same
``check`` — and gates the behaviours the service tier promises:

1. **warm throughput** — with the corpus checked once, hundreds of
   concurrent clients re-requesting ``check`` are served from the
   coalescer's revision memo (an id splice, no engine work); the
   aggregate rate must exceed **10k checks/sec**;
2. **bounded latency** — sequential warm round-trips must keep p99
   under 50 ms (the event loop never blocks on analysis);
3. **coalescing** — the dedup ratio over the storm must be >= 0.9, and
   a concurrent burst of identical *cold* checks (engine revision just
   bumped) must share computation (at most two real runs: the dirty
   check plus one steady-state straggler);
4. **backpressure** — a saturated daemon (1 worker, tiny queue, burst
   of distinct cold checks) sheds with the ``OVERLOADED`` (-32005)
   error carrying ``data.queue_depth``, instead of queueing unboundedly;
5. **stability** — coalesced responses are byte-identical to computed
   ones, and daemon diagnostics byte-identical to one-shot analysis.

Run::

    python benchmarks/bench_concurrency.py
    python benchmarks/bench_concurrency.py --quick --json report.json
"""

from __future__ import annotations

import argparse
import json
import shutil
import socket
import sys
import tempfile
import threading
import time
from pathlib import Path

from repro.api import Project, Session
from repro.server import encode, serve_async_tcp
from repro.telemetry import span

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

THROUGHPUT_GATE_CHECKS_PER_SEC = 10_000.0
P99_GATE_MS = 50.0
DEDUP_GATE = 0.9


def build_tree(workdir: Path, pad: int) -> Path:
    """Copy the glue examples corpus, padded with renamed unit copies."""
    root = workdir / "glue"
    shutil.copytree(EXAMPLES / "glue", root)
    for unit in sorted(root.glob("*.c")):
        for copy in range(pad):
            target = root / f"{unit.stem}_copy{copy:02}.c"
            target.write_text(unit.read_text())
    return root


class DaemonHandle:
    """One in-process async daemon on an ephemeral port."""

    def __init__(self, root: Path, *, workers: int, max_queue: int):
        self.session = Session(root, dialect="ocaml")
        self.service = self.session.service()
        ready = threading.Event()
        bound: list = []
        self.thread = threading.Thread(
            target=serve_async_tcp,
            args=(self.service,),
            kwargs={
                "port": 0,
                "workers": workers,
                "max_queue": max_queue,
                "ready": ready,
                "bound": bound,
            },
            daemon=True,
        )
        self.thread.start()
        if not ready.wait(timeout=30):
            raise RuntimeError("daemon did not come up")
        self.address = bound[0]

    def connect(self) -> "Client":
        return Client(self.address)

    def stop(self) -> None:
        with self.connect() as client:
            client.call({"id": "stop", "method": "shutdown"})
        self.thread.join(timeout=10)


class Client:
    """One newline-delimited JSON-RPC connection."""

    def __init__(self, address: tuple):
        self.sock = socket.create_connection(address, timeout=60)
        self.rfile = self.sock.makefile("r", encoding="utf-8")
        self.wfile = self.sock.makefile("w", encoding="utf-8")

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        for stream in (self.rfile, self.wfile):
            try:
                stream.close()
            except OSError:
                pass
        try:
            self.sock.close()
        except OSError:
            pass

    def send(self, payload: dict) -> None:
        self.wfile.write(encode(payload))
        self.wfile.flush()

    def recv_line(self) -> str:
        line = self.rfile.readline()
        if not line:
            raise ConnectionError("daemon hung up")
        return line

    def call(self, payload: dict) -> dict:
        self.send(payload)
        return json.loads(self.recv_line())

    def pipeline(self, payloads: list) -> list:
        """Write every frame, then read every response (in order)."""
        for payload in payloads:
            self.wfile.write(encode(payload))
        self.wfile.flush()
        return [self.recv_line() for _ in payloads]


def coalescing_stats(daemon: DaemonHandle) -> dict:
    with daemon.connect() as client:
        response = client.call({"id": "stats", "method": "status"})
    return response["result"]["coalescing"]


def run_throughput_phase(
    daemon: DaemonHandle, clients: int, requests_per_client: int
) -> dict:
    """Concurrent pipelined warm checks; returns rate and dedup delta."""
    before = coalescing_stats(daemon)
    barrier = threading.Barrier(clients + 1)
    errors: list = []

    def storm(client_index: int) -> None:
        try:
            with daemon.connect() as client:
                frames = [
                    {"id": f"c{client_index}-{i}", "method": "check"}
                    for i in range(requests_per_client)
                ]
                barrier.wait(timeout=60)
                for line in client.pipeline(frames):
                    if '"result"' not in line:
                        errors.append(line)
        except Exception as exc:  # noqa: BLE001 - surfaced in the report
            errors.append(repr(exc))

    threads = [
        threading.Thread(target=storm, args=(i,), daemon=True)
        for i in range(clients)
    ]
    for thread in threads:
        thread.start()
    barrier.wait(timeout=60)
    started = time.perf_counter()
    for thread in threads:
        thread.join(timeout=120)
    elapsed = time.perf_counter() - started
    after = coalescing_stats(daemon)

    total = clients * requests_per_client
    served = after["requests"] - before["requests"]
    computed = after["computed"] - before["computed"]
    return {
        "clients": clients,
        "requests": total,
        "elapsed_s": round(elapsed, 4),
        "warm_checks_per_sec": round(total / max(elapsed, 1e-9), 1),
        "dedup_ratio": round(
            1.0 - (computed / served) if served else 0.0, 4
        ),
        "errors": len(errors),
    }


def run_latency_phase(daemon: DaemonHandle, samples: int) -> dict:
    """Sequential warm round-trips; p50/p99 in milliseconds."""
    latencies = []
    with daemon.connect() as client:
        client.call({"id": "warm", "method": "check"})
        for index in range(samples):
            started = time.perf_counter()
            client.call({"id": index, "method": "check"})
            latencies.append((time.perf_counter() - started) * 1000.0)
    latencies.sort()
    return {
        "samples": samples,
        "p50_ms": round(latencies[len(latencies) // 2], 3),
        "p99_ms": round(latencies[min(len(latencies) - 1, int(len(latencies) * 0.99))], 3),
    }


def run_inflight_phase(daemon: DaemonHandle, root: Path, burst: int) -> dict:
    """Identical *cold* checks in flight together must share computation.

    At most two computations are legitimate: the leader's dirty check
    (which re-analyzes the edited unit and therefore bumps the engine
    revision) plus one steady-state check for any straggler keyed at
    the new revision.  A burst of N computing more than twice means
    coalescing is broken."""
    edited = root / "counter_stubs.c"
    edited.write_text(edited.read_text() + "\n/* inflight edit */\n")
    with daemon.connect() as client:
        client.call(
            {
                "id": "inv",
                "method": "invalidate",
                "params": {"paths": [str(edited)]},
            }
        )
    before = coalescing_stats(daemon)
    barrier = threading.Barrier(burst)
    responses: list = []
    lock = threading.Lock()

    def fire(index: int) -> None:
        with daemon.connect() as client:
            barrier.wait(timeout=60)
            response = client.call({"id": index, "method": "check"})
            with lock:
                responses.append(response)

    threads = [
        threading.Thread(target=fire, args=(i,), daemon=True)
        for i in range(burst)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
    after = coalescing_stats(daemon)
    return {
        "burst": burst,
        "responses": len(responses),
        "all_ok": all("result" in r for r in responses),
        "computed": after["computed"] - before["computed"],
    }


def run_shed_phase(root: Path, burst: int) -> dict:
    """Saturate a 1-worker daemon with distinct cold checks; count sheds.

    Distinct ``tag`` params force distinct coalescing keys, so every
    request wants its own computation slot; with ``workers=1`` and a
    two-deep queue, most of the burst must shed with ``OVERLOADED``.
    """
    daemon = DaemonHandle(root, workers=1, max_queue=2)
    try:
        with daemon.connect() as client:
            client.call({"id": "warm", "method": "check"})
            # dirty the whole tree so the next checks are slow leaders
            client.call(
                {
                    "id": "inv",
                    "method": "invalidate",
                    "params": {
                        "paths": [str(p) for p in sorted(root.glob("*.c"))]
                    },
                }
            )
        barrier = threading.Barrier(burst)
        responses: list = []
        lock = threading.Lock()

        def fire(index: int) -> None:
            with daemon.connect() as client:
                barrier.wait(timeout=60)
                response = client.call(
                    {
                        "id": index,
                        "method": "check",
                        "params": {"tag": index},
                    }
                )
                with lock:
                    responses.append(response)

        threads = [
            threading.Thread(target=fire, args=(i,), daemon=True)
            for i in range(burst)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=300)
        with daemon.connect() as client:
            server = client.call({"id": "s", "method": "status"})
            server = server["result"]["server"]
    finally:
        daemon.stop()
        daemon.session.close()

    sheds = [r for r in responses if "error" in r]
    codes_ok = all(r["error"]["code"] == -32005 for r in sheds)
    depth_ok = all(
        "queue_depth" in r["error"].get("data", {}) for r in sheds
    )
    return {
        "burst": burst,
        "shed": len(sheds),
        "shed_rate": round(len(sheds) / burst, 4),
        "server": server,
        "gates": {
            "some_requests_shed": len(sheds) >= 1,
            "shed_code_is_overloaded": codes_ok and len(sheds) >= 1,
            "shed_carries_queue_depth": depth_ok and len(sheds) >= 1,
        },
    }


def run_stability_phase(daemon: DaemonHandle, root: Path) -> dict:
    """Coalesced bytes == computed bytes; daemon == one-shot analysis."""
    # identical frames on two connections: the first may compute, the
    # second replays the memo — the wire bytes must match exactly
    with daemon.connect() as a, daemon.connect() as b:
        a.send({"id": "same", "method": "check"})
        first = a.recv_line()
        b.send({"id": "same", "method": "check"})
        second = b.recv_line()
    replay_identical = first == second

    by_name = {
        u["name"]: u for u in json.loads(first)["result"]["units"]
    }
    one_shot_identical = True
    for unit in sorted((EXAMPLES / "glue").glob("*.c")):
        local = root / unit.name
        project = Project(dialect="ocaml")
        for host in sorted(root.glob("*.ml")) + sorted(root.glob("*.mli")):
            project.add_ocaml(host.read_text(), name=str(host))
        project.add_c(local.read_text(), name=str(local))
        direct = [d.to_dict() for d in project.analyze().diagnostics]
        daemon_bytes = encode(
            {"diagnostics": by_name[str(local)]["diagnostics"]}
        )
        if daemon_bytes != encode({"diagnostics": direct}):
            one_shot_identical = False
    return {
        "memo_replay_byte_identical": replay_identical,
        "diagnostics_byte_identical": one_shot_identical,
    }


def measure_telemetry_residue(p50_ms: float, iterations: int = 200_000) -> dict:
    """The disabled telemetry hook's cost per request, vs warm latency.

    The async daemon opens one request span per served frame.  With no
    tracer installed that span is a flag check and a ContextVar read; a
    tight timing loop measures it deterministically (storm throughput is
    far too noisy to resolve a sub-microsecond residue).  The gate
    bounds it below 2% of the measured warm p50 round-trip.
    """
    started = time.perf_counter()
    for _ in range(iterations):
        with span("bench", cat="request"):
            pass
    per_call_s = (time.perf_counter() - started) / iterations
    fraction = per_call_s / max(p50_ms / 1000.0, 1e-9)
    return {
        "hook_ns_per_request": round(per_call_s * 1e9, 1),
        "fraction_of_warm_p50": round(fraction, 6),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--clients",
        type=int,
        default=100,
        help="concurrent connections in the throughput storm "
        "(default: 100)",
    )
    parser.add_argument(
        "--requests",
        type=int,
        default=100,
        help="pipelined checks per client (default: 100)",
    )
    parser.add_argument(
        "--pad",
        type=int,
        default=4,
        help="renamed copies of each example unit (default: 4)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller storm for CI smoke runs (same gates)",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also write the JSON payload to PATH (for bench-trend)",
    )
    args = parser.parse_args(argv)
    clients = 32 if args.quick else args.clients
    requests = 50 if args.quick else args.requests
    pad = 2 if args.quick else args.pad
    latency_samples = 300 if args.quick else 1000

    workdir = Path(tempfile.mkdtemp(prefix="mlffi-bench-conc-"))
    try:
        root = build_tree(workdir, pad)
        daemon = DaemonHandle(root, workers=4, max_queue=64)
        try:
            with daemon.connect() as client:
                client.call({"id": "warmup", "method": "check"})
            throughput = run_throughput_phase(daemon, clients, requests)
            latency = run_latency_phase(daemon, latency_samples)
            inflight = run_inflight_phase(daemon, root, burst=16)
            stability = run_stability_phase(daemon, root)
        finally:
            daemon.stop()
            daemon.session.close()
        # burst >> slot count so the shed *rate* is dominated by the
        # fixed number of slots, not by arrival-timing jitter — keeps
        # the bench-trend ratio stable across runners
        shed = run_shed_phase(root, burst=48)
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    telemetry = measure_telemetry_residue(latency["p50_ms"])

    gates = {
        "telemetry_off_under_2pct_of_p50": (
            telemetry["fraction_of_warm_p50"] < 0.02
        ),
        "throughput_over_10k_per_sec": (
            throughput["warm_checks_per_sec"]
            >= THROUGHPUT_GATE_CHECKS_PER_SEC
        ),
        "no_client_errors": throughput["errors"] == 0,
        "p99_bounded": latency["p99_ms"] <= P99_GATE_MS,
        "dedup_ratio_over_90pct": throughput["dedup_ratio"] >= DEDUP_GATE,
        "identical_inflight_share_computation": (
            1 <= inflight["computed"] <= 2 and inflight["all_ok"]
        ),
        **shed.pop("gates"),
        **stability,
    }
    payload = {
        "quick": args.quick,
        "pad_copies_per_unit": pad,
        "throughput": throughput,
        "warm_checks_per_sec": throughput["warm_checks_per_sec"],
        "dedup_ratio": throughput["dedup_ratio"],
        "latency": latency,
        "p99_ms": latency["p99_ms"],
        "inflight": inflight,
        "shed": shed,
        "shed_rate": shed["shed_rate"],
        "telemetry": telemetry,
        "gates": gates,
        "gates_passed": all(gates.values()),
    }
    text = json.dumps(payload, indent=2)
    print(text)
    if args.json is not None:
        Path(args.json).write_text(text + "\n")
    return 0 if payload["gates_passed"] else 1


if __name__ == "__main__":
    sys.exit(main())
