"""Benchmark-trend harness: one comparable number per PR.

Runs the nine engine benchmarks (``bench_batch``, ``bench_pyext``,
``bench_serve``, ``bench_jni``, ``bench_rust``, ``bench_cold``,
``bench_concurrency``, ``bench_link``, ``bench_telemetry``) through
their common ``--json`` flag,
merges the payloads into one schema-versioned trend document, and
compares the speedup/warm-cache *ratios* against the newest committed
``BENCH_*.json`` at the repository root.  Ratios — not wall times — are
what survive hardware changes between CI runs, so they are what the
regression gate watches: the run fails when any tracked ratio regresses
by more than ``--max-regression`` (default 20%) versus the baseline.

CI commits the merged document as ``BENCH_PR<n>.json``, so the repo root
accumulates a per-PR performance trajectory that the next PR's gate
reads.

Run::

    python benchmarks/bench_trend.py --quick --output BENCH_PR8.json
    python benchmarks/bench_trend.py --compare-only BENCH_PR8.json
"""

from __future__ import annotations

import argparse
import json
import re
import subprocess
import sys
import tempfile
import time
from pathlib import Path

SCHEMA = "mlffi-bench-trend"
SCHEMA_VERSION = 1
ROOT = Path(__file__).resolve().parent.parent
BENCH_DIR = Path(__file__).resolve().parent

#: benchmark name -> script + extra argv (quick and full variants)
BENCHMARKS: dict[str, dict[str, list[str]]] = {
    "batch": {
        "script": "bench_batch.py",
        "quick": ["--units", "8", "--quick", "--jobs", "2"],
        "full": ["--units", "16", "--jobs", "4"],
    },
    "pyext": {
        "script": "bench_pyext.py",
        "quick": ["--quick"],
        "full": ["--units", "16"],
    },
    "jni": {
        "script": "bench_jni.py",
        "quick": ["--quick"],
        "full": ["--units", "16"],
    },
    "rust": {
        "script": "bench_rust.py",
        "quick": ["--quick"],
        "full": ["--units", "16"],
    },
    "serve": {
        "script": "bench_serve.py",
        "quick": ["--quick"],
        "full": [],
    },
    "cold": {
        "script": "bench_cold.py",
        # quick runs get the same speedup headroom the CI smoke gate
        # uses: the trend sweeps seven other benchmarks back to back, so
        # the frozen-baseline speedup wobbles with runner load in a way
        # the full run (and the standalone gate) does not
        "quick": ["--quick", "--min-speedup", "1.5", "--compare-kernels"],
        "full": ["--compare-kernels"],
    },
    "concurrency": {
        "script": "bench_concurrency.py",
        "quick": ["--quick"],
        "full": [],
    },
    "link": {
        "script": "bench_link.py",
        "quick": ["--quick"],
        "full": ["--units", "10000", "--jobs", "4"],
    },
    "telemetry": {
        "script": "bench_telemetry.py",
        "quick": ["--quick"],
        "full": [],
    },
}

#: ratio key -> direction ("higher" = bigger is better).  The two batch
#: parallelism ratios are hardware-conditional: multi-core hosts record a
#: speedup, single-core hosts record the pool-overhead ratio, never both
#: (PR 5: `parallel_speedup: 1.08` on one core was noise, not a speedup).
RATIO_DIRECTIONS: dict[str, str] = {
    "batch_parallel_speedup": "higher",
    "batch_parallel_overhead": "lower",
    "batch_warm_fraction_of_cold": "lower",
    "pyext_warm_fraction_of_cold": "lower",
    "jni_warm_fraction_of_cold": "lower",
    "rust_warm_fraction_of_cold": "lower",
    "serve_speedup_ocaml": "higher",
    "serve_speedup_pyext": "higher",
    "serve_speedup_jni": "higher",
    "concurrency_warm_checks_per_sec": "higher",
    "concurrency_p99_ms": "lower",
    "concurrency_shed_rate": "higher",
    # cross-unit link recall over the seeded + planted bug corpora; the
    # RSS cap is gated inside bench_link itself (absolute, not a ratio)
    "link_recall": "higher",
    "telemetry_overhead_ratio": "lower",
    # host-interface artifact load vs rebuild (bench_cold's in-process
    # measurement; also gated absolutely there at 2x)
    "cold_seed_artifact_speedup": "higher",
    # compiled-vs-interpreted kernel cold ratio: present only when a
    # mypyc wheel is installed (CI's compiled-smoke job; never locally)
    "cold_compiled_speedup": "higher",
}

#: hardware-conditional ratios: present-or-absent is legitimate, so
#: validation does not require them and the regression gate compares them
#: only when both trajectories carry them
CONDITIONAL_RATIOS: frozenset[str] = frozenset(
    {
        "batch_parallel_speedup",
        "batch_parallel_overhead",
        "cold_compiled_speedup",
    }
)

#: "lower"-direction ratios that measure a warm path against the cold
#: path: when the *cold* path speeds up (the PR 5 overhaul halved it) the
#: fraction worsens even though nothing regressed, so tiny absolute
#: values are exempt — the gate still fires when a busted cache drags the
#: fraction toward 1.
RATIO_FLOORS: dict[str, float] = {
    "batch_warm_fraction_of_cold": 0.05,
    "pyext_warm_fraction_of_cold": 0.05,
    "jni_warm_fraction_of_cold": 0.05,
    "rust_warm_fraction_of_cold": 0.05,
    # sub-5ms p99 is far below the 50ms gate; scheduler jitter at that
    # scale is noise, not a regression
    "concurrency_p99_ms": 5.0,
    # on single-core hosts the pool-overhead ratio wanders 0.9-1.4 from
    # scheduling jitter alone; only a blow-up (pickling whole trees,
    # pool thrash) should fire the gate
    "batch_parallel_overhead": 1.5,
    # telemetry-on overhead on a sub-50ms sweep jitters a few percent
    # run to run; bench_telemetry's own 1.25x absolute gate catches a
    # real blow-up, the trend gate only needs to see drift above noise
    "telemetry_overhead_ratio": 1.15,
}


def run_benchmarks(quick: bool) -> tuple[dict[str, dict], list[str]]:
    """Run every benchmark; returns (payloads, gate failures)."""
    payloads: dict[str, dict] = {}
    failures: list[str] = []
    with tempfile.TemporaryDirectory() as tmp:
        for name, spec in BENCHMARKS.items():
            out = Path(tmp) / f"{name}.json"
            argv = [
                sys.executable,
                str(BENCH_DIR / spec["script"]),
                "--json",
                str(out),
            ] + spec["quick" if quick else "full"]
            proc = subprocess.run(argv, capture_output=True, text=True)
            if not out.is_file():
                failures.append(
                    f"{name}: no JSON produced (exit {proc.returncode}): "
                    f"{proc.stderr.strip()[-200:]}"
                )
                continue
            payloads[name] = json.loads(out.read_text())
            if proc.returncode != 0:
                failures.append(
                    f"{name}: benchmark gates failed (exit {proc.returncode})"
                )
    return payloads, failures


def extract_ratios(payloads: dict[str, dict]) -> dict[str, float]:
    """The comparable numbers, pulled out of each benchmark's payload."""
    ratios: dict[str, float] = {}
    batch = payloads.get("batch")
    if batch is not None:
        if batch.get("parallel_speedup") is not None:
            ratios["batch_parallel_speedup"] = batch["parallel_speedup"]
        if batch.get("parallel_overhead_ratio") is not None:
            ratios["batch_parallel_overhead"] = batch["parallel_overhead_ratio"]
        ratios["batch_warm_fraction_of_cold"] = batch["warm_fraction_of_cold"]
    for name in ("pyext", "jni", "rust"):
        payload = payloads.get(name)
        if payload is not None:
            ratios[f"{name}_warm_fraction_of_cold"] = payload[
                "warm_fraction_of_cold"
            ]
    serve = payloads.get("serve")
    if serve is not None:
        for dialect, result in serve["dialects"].items():
            ratios[f"serve_speedup_{dialect}"] = result["speedup"]
    concurrency = payloads.get("concurrency")
    if concurrency is not None:
        ratios["concurrency_warm_checks_per_sec"] = concurrency[
            "warm_checks_per_sec"
        ]
        ratios["concurrency_p99_ms"] = concurrency["p99_ms"]
        ratios["concurrency_shed_rate"] = concurrency["shed_rate"]
    link = payloads.get("link")
    if link is not None:
        ratios["link_recall"] = link["link_recall"]
    telemetry = payloads.get("telemetry")
    if telemetry is not None:
        ratios["telemetry_overhead_ratio"] = telemetry["overhead_ratio"]
    cold = payloads.get("cold")
    if cold is not None:
        # recorded for the trajectory but not regression-gated: the cold
        # baseline is frozen on one machine, so cross-host comparisons of
        # this ratio say more about the runner than the code
        for dialect, result in cold["dialects"].items():
            speedup = result.get("speedup_vs_baseline")
            if speedup is not None:
                ratios[f"cold_speedup_vs_baseline_{dialect}"] = speedup
        if cold.get("seed_artifact_speedup") is not None:
            ratios["cold_seed_artifact_speedup"] = cold[
                "seed_artifact_speedup"
            ]
        # nullable by design: null means "no compiled kernel installed",
        # and the key is omitted so the regression gate skips it
        if cold.get("compiled_speedup") is not None:
            ratios["cold_compiled_speedup"] = cold["compiled_speedup"]
    return ratios


def merge(
    payloads: dict[str, dict],
    failures: list[str],
    *,
    pr: str,
    quick: bool,
    baseline: str | None,
    regressions: list[str],
) -> dict:
    return {
        "schema": SCHEMA,
        "schema_version": SCHEMA_VERSION,
        "pr": pr,
        "quick": quick,
        "generated_unix": int(time.time()),
        "benchmarks": payloads,
        "ratios": extract_ratios(payloads),
        "gates": {
            "bench_failures": failures,
            "baseline": baseline,
            "regressions": regressions,
        },
    }


def validate(document: dict) -> list[str]:
    """Schema check for a trend document; empty list = valid."""
    problems: list[str] = []
    if document.get("schema") != SCHEMA:
        problems.append(f"schema is {document.get('schema')!r}, want {SCHEMA!r}")
    if not isinstance(document.get("schema_version"), int):
        problems.append("schema_version must be an int")
    if not isinstance(document.get("pr"), str):
        problems.append("pr must be a string")
    benchmarks = document.get("benchmarks")
    if not isinstance(benchmarks, dict) or not (
        set(BENCHMARKS) <= set(benchmarks)
    ):
        problems.append(f"benchmarks must cover {sorted(BENCHMARKS)}")
    ratios = document.get("ratios")
    if not isinstance(ratios, dict):
        problems.append("ratios must be a mapping")
    else:
        for key in RATIO_DIRECTIONS:
            value = ratios.get(key)
            if value is None and key in CONDITIONAL_RATIOS:
                continue  # hardware-conditional: absent is legitimate
            if not isinstance(value, (int, float)) or value <= 0:
                problems.append(f"ratio {key} missing or non-positive")
    gates = document.get("gates")
    if not isinstance(gates, dict) or "bench_failures" not in gates:
        problems.append("gates.bench_failures missing")
    return problems


# -- the trajectory ------------------------------------------------------------

_PR_RE = re.compile(r"BENCH_PR(\d+)\.json$")


def find_baseline(directory: Path, exclude: Path | None) -> Path | None:
    """Newest committed ``BENCH_*.json``: highest PR number, then mtime."""
    candidates = []
    for path in directory.glob("BENCH_*.json"):
        if exclude is not None and path.resolve() == exclude.resolve():
            continue
        match = _PR_RE.search(path.name)
        number = int(match.group(1)) if match else -1
        candidates.append((number, path.stat().st_mtime, path))
    if not candidates:
        return None
    return max(candidates)[2]


def compare_ratios(
    current: dict[str, float],
    baseline: dict[str, float],
    max_regression: float,
) -> list[str]:
    """Ratios that regressed beyond tolerance versus the baseline."""
    regressions: list[str] = []
    for key, direction in RATIO_DIRECTIONS.items():
        new = current.get(key)
        old = baseline.get(key)
        if not isinstance(new, (int, float)) or not isinstance(
            old, (int, float)
        ):
            continue  # a ratio the older trajectory did not track yet
        if old <= 0:
            continue
        floor = RATIO_FLOORS.get(key)
        if floor is not None and direction == "lower" and new <= floor:
            # still far below the meaningful threshold; a faster cold
            # path inflates this fraction without any real regression
            continue
        if direction == "higher" and new < old * (1.0 - max_regression):
            regressions.append(
                f"{key}: {new:.3g} vs baseline {old:.3g} "
                f"(> {max_regression:.0%} slower)"
            )
        elif direction == "lower" and new > old * (1.0 + max_regression):
            regressions.append(
                f"{key}: {new:.3g} vs baseline {old:.3g} "
                f"(> {max_regression:.0%} worse)"
            )
    return regressions


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output",
        default=str(ROOT / "BENCH_PR8.json"),
        metavar="PATH",
        help="merged trend document to write (default: BENCH_PR8.json)",
    )
    parser.add_argument(
        "--pr",
        default=None,
        help="PR label recorded in the document (default: from the "
        "output filename)",
    )
    parser.add_argument(
        "--quick", action="store_true", help="CI-sized benchmark runs"
    )
    parser.add_argument(
        "--baseline-dir",
        default=str(ROOT),
        metavar="DIR",
        help="where committed BENCH_*.json trajectory files live",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.20,
        help="tolerated relative ratio regression (default: 0.20)",
    )
    parser.add_argument(
        "--compare-only",
        metavar="PATH",
        default=None,
        help="skip running benchmarks; validate PATH and gate it against "
        "the baseline",
    )
    args = parser.parse_args(argv)

    output = Path(args.output)
    pr = args.pr
    if pr is None:
        match = _PR_RE.search(output.name)
        pr = f"PR{match.group(1)}" if match else output.stem

    if args.compare_only is not None:
        document = json.loads(Path(args.compare_only).read_text())
        problems = validate(document)
        baseline_path = find_baseline(
            Path(args.baseline_dir), Path(args.compare_only)
        )
        regressions: list[str] = []
        if baseline_path is not None:
            baseline = json.loads(baseline_path.read_text())
            regressions = compare_ratios(
                document.get("ratios", {}),
                baseline.get("ratios", {}),
                args.max_regression,
            )
        for problem in problems:
            print(f"schema: {problem}", file=sys.stderr)
        for regression in regressions:
            print(f"regression: {regression}", file=sys.stderr)
        print(
            json.dumps(
                {
                    "baseline": str(baseline_path) if baseline_path else None,
                    "schema_problems": problems,
                    "regressions": regressions,
                },
                indent=2,
            )
        )
        return 1 if problems or regressions else 0

    payloads, failures = run_benchmarks(args.quick)

    baseline_path = find_baseline(Path(args.baseline_dir), output)
    baseline_name = baseline_path.name if baseline_path else None
    regressions = []
    if baseline_path is not None:
        baseline = json.loads(baseline_path.read_text())
        regressions = compare_ratios(
            extract_ratios(payloads),
            baseline.get("ratios", {}),
            args.max_regression,
        )

    document = merge(
        payloads,
        failures,
        pr=pr,
        quick=args.quick,
        baseline=baseline_name,
        regressions=regressions,
    )
    problems = validate(document)
    output.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    print(f"wrote {output}")
    print(json.dumps(document["ratios"], indent=2, sort_keys=True))
    for failure in failures:
        print(f"bench failure: {failure}", file=sys.stderr)
    for problem in problems:
        print(f"schema: {problem}", file=sys.stderr)
    for regression in regressions:
        print(f"regression: {regression}", file=sys.stderr)
    return 1 if failures or problems or regressions else 0


if __name__ == "__main__":
    sys.exit(main())
