"""Ablation benchmarks for the design choices the paper calls out.

Two ingredients beyond plain unification make the analysis work (paper §1,
§3.3): flow-sensitive B/I/T tracking — without it the Figure 2 tag-dispatch
idiom cannot be validated — and GC effects — without them the unregistered-
pointer errors (3 of the 24) are invisible.  Each ablation reruns part of
the Figure 9 suite with one ingredient disabled and measures both the
report deltas and the timing.
"""


from repro.bench.runner import run_benchmark
from repro.bench.specs import spec_by_name
from repro.core.exprs import Options

GC_HEAVY = ("ftplib-0.12", "ocaml-mad-0.1.0", "ocaml-vorbis-0.1.1")


def test_ablate_flow_sensitivity(benchmark):
    """Disabling B/I/T tracking breaks the tag-dispatch idiom: the clean
    lablgl row suddenly reports spurious problems."""
    spec = spec_by_name("lablgl-1.00")

    def run_degraded():
        return run_benchmark(
            spec, Options(flow_sensitive=False), unique_prefix=900
        )

    degraded = benchmark.pedantic(run_degraded, rounds=1, iterations=1)
    baseline = run_benchmark(spec, unique_prefix=900)
    assert baseline.matches_paper
    # flow-insensitivity can only lose precision: strictly more reports
    assert len(degraded.report.diagnostics) > len(baseline.report.diagnostics)


def test_ablate_gc_effects(benchmark):
    """Disabling effects silently accepts the unregistered-pointer bugs."""

    def run_all_degraded():
        results = []
        for index, name in enumerate(GC_HEAVY):
            results.append(
                run_benchmark(
                    spec_by_name(name),
                    Options(gc_effects=False),
                    unique_prefix=910 + index,
                )
            )
        return results

    degraded = benchmark.pedantic(run_all_degraded, rounds=1, iterations=1)
    missed = 0
    for index, result in enumerate(degraded):
        baseline = run_benchmark(
            spec_by_name(GC_HEAVY[index]), unique_prefix=910 + index
        )
        missed += (
            baseline.tally["errors"] - result.tally["errors"]
        )
    # ftplib's unregistered pointer becomes invisible; the register-leak
    # errors of mad/vorbis are return-shape checks and survive
    assert missed >= 1


def test_ablation_speed_comparison(benchmark):
    """Flow-insensitive mode must not be slower (it does strictly less)."""
    spec = spec_by_name("gz-0.5.5")

    import time

    def timed(options):
        started = time.perf_counter()
        run_benchmark(spec, options, unique_prefix=920)
        return time.perf_counter() - started

    def run_both():
        return timed(None), timed(Options(flow_sensitive=False))

    full, degraded = benchmark.pedantic(run_both, rounds=1, iterations=1)
    # allow generous noise; the point is it is not catastrophically slower
    assert degraded < full * 3
