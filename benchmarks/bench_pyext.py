"""pyext-dialect benchmark: throughput and detection over synthesized modules.

Synthesizes N CPython extension modules — half clean, half seeded with one
defect each, cycling through the dialect's defect classes (format arity,
format type, reference leak, use-after-decref, borrowed escape) — and runs
them through the batch engine under ``dialect="pyext"``.

Gates (exit non-zero on failure):

* every seeded module reports its planted defect class, and only the
  planted one among the pyext kinds;
* every clean module reports zero diagnostics;
* a warm rerun against the same cache is all hits.

Results print as one JSON object (unit wall-times included), matching the
shape CI's bench-smoke artifacts expect.

Run::

    python benchmarks/bench_pyext.py --units 16
    python benchmarks/bench_pyext.py --units 6 --quick
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

from repro.engine import CheckRequest, ResultCache, run_batch
from repro.source import SourceFile

CLEAN_TEMPLATE = """\
#include <Python.h>

static PyObject *
work_{i}(PyObject *self, PyObject *args)
{{
    long a, b;
    if (!PyArg_ParseTuple(args, "ll", &a, &b))
        return NULL;
    return PyLong_FromLong(a * {i} + b);
}}

static PyMethodDef Methods_{i}[] = {{
    {{"work_{i}", work_{i}, METH_VARARGS, "synthesized worker"}},
    {{NULL, NULL, 0, NULL}}
}};

static struct PyModuleDef module_{i} = {{
    PyModuleDef_HEAD_INIT, "mod{i}", NULL, -1, Methods_{i}
}};

PyMODINIT_FUNC
PyInit_mod{i}(void)
{{
    return PyModule_Create(&module_{i});
}}
"""

#: defect class -> (expected Kind name, body of the seeded function)
DEFECTS: dict[str, tuple[str, str]] = {
    "format-arity": (
        "PY_FORMAT_MISMATCH",
        '    long a;\n'
        '    if (!PyArg_ParseTuple(args, "ll", &a))\n'
        "        return NULL;\n"
        "    return PyLong_FromLong(a);\n",
    ),
    "format-type": (
        "PY_FORMAT_MISMATCH",
        '    long n;\n'
        '    if (!PyArg_ParseTuple(args, "s", &n))\n'
        "        return NULL;\n"
        "    return PyLong_FromLong(n);\n",
    ),
    "ref-leak": (
        "PY_REF_LEAK",
        "    PyObject *tmp = PyList_New(0);\n"
        "    return PyLong_FromLong(1);\n",
    ),
    "use-after-decref": (
        "PY_USE_AFTER_DECREF",
        "    PyObject *tmp = PyLong_FromLong(7);\n"
        "    Py_DECREF(tmp);\n"
        "    return tmp;\n",
    ),
    "borrowed-escape": (
        "PY_BORROWED_ESCAPE",
        "    PyObject *item = PyTuple_GetItem(args, 0);\n"
        "    return item;\n",
    ),
}

SEEDED_TEMPLATE = """\
#include <Python.h>

static PyObject *
seeded_{i}(PyObject *self, PyObject *args)
{{
{body}}}

static PyMethodDef Methods_{i}[] = {{
    {{"seeded_{i}", seeded_{i}, METH_VARARGS, "synthesized defect"}},
    {{NULL, NULL, 0, NULL}}
}};
"""


def build_corpus(units: int) -> list[tuple[CheckRequest, str | None]]:
    """(request, expected-kind-or-None) pairs, clean/seeded interleaved."""
    corpus: list[tuple[CheckRequest, str | None]] = []
    defect_cycle = list(DEFECTS.items())
    for index in range(units):
        if index % 2 == 0:
            text = CLEAN_TEMPLATE.format(i=index)
            expected = None
        else:
            label, (kind, body) = defect_cycle[
                (index // 2) % len(defect_cycle)
            ]
            text = SEEDED_TEMPLATE.format(i=index, body=body)
            expected = kind
        name = f"mod{index:03}.c"
        corpus.append(
            (
                CheckRequest(
                    name=name,
                    c_sources=(SourceFile(name, text),),
                    dialect="pyext",
                ),
                expected,
            )
        )
    return corpus


PYEXT_KINDS = {
    "PY_FORMAT_MISMATCH",
    "PY_REF_LEAK",
    "PY_USE_AFTER_DECREF",
    "PY_BORROWED_ESCAPE",
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--units", type=int, default=16)
    parser.add_argument("--jobs", type=int, default=1)
    parser.add_argument("--quick", action="store_true", help="6-unit smoke")
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also write the JSON payload to PATH (for bench-trend)",
    )
    args = parser.parse_args(argv)
    units = 6 if args.quick else args.units

    corpus = build_corpus(units)
    requests = [request for request, _ in corpus]

    failures: list[str] = []
    with tempfile.TemporaryDirectory() as tmp:
        cache = ResultCache(tmp)
        started = time.perf_counter()
        cold = run_batch(requests, jobs=args.jobs, cache=cache)
        cold_seconds = time.perf_counter() - started

        started = time.perf_counter()
        warm = run_batch(requests, jobs=args.jobs, cache=cache)
        warm_seconds = time.perf_counter() - started

    for (request, expected), result in zip(corpus, cold.results):
        kinds = {diag.kind.name for diag in result.diagnostics}
        planted = kinds & PYEXT_KINDS
        if result.failure is not None:
            failures.append(f"{request.name}: engine failure {result.failure}")
        elif expected is None and kinds:
            failures.append(f"{request.name}: clean module reported {kinds}")
        elif expected is not None and planted != {expected}:
            failures.append(
                f"{request.name}: expected {{{expected}}}, got {planted}"
            )
    if warm.cache_hits != len(requests):
        failures.append(
            f"warm rerun: {warm.cache_hits}/{len(requests)} cache hits"
        )

    payload = {
        "units": units,
        "jobs": args.jobs,
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "warm_fraction_of_cold": round(
            warm_seconds / max(cold_seconds, 1e-9), 4
        ),
        "unit_wall_seconds": {r.name: r.wall_seconds for r in cold.results},
        "tally": cold.tally(),
        "gates": {"failures": failures},
    }
    text = json.dumps(payload, indent=2, sort_keys=True)
    print(text)
    if args.json is not None:
        Path(args.json).write_text(text + "\n")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
