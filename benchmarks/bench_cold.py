"""Cold-path benchmark: per-unit throughput on scaled example corpora.

Every benchmark so far showed the *cold* analysis path (lex -> parse ->
lower -> infer, no cache, no resident state) dominating batch onboarding;
this harness is the instrument that can actually see it.  For each
boundary dialect it scales the repository's own example corpus to N
translation units (textual symbol renaming keeps every unit distinct, so
no content-addressed layer can collapse the work) and times one
sequential cold sweep with caching disabled.

Two gates, both against *frozen* artifacts committed in this repo:

* **throughput** — cold per-unit time must beat the pre-optimization
  baseline (``benchmarks/baselines/bench_cold_baseline.json``, recorded
  at the commit before the PR 5 overhaul) by ``--min-speedup`` (default
  2.0) on every dialect;
* **equivalence** — diagnostics over the three real example corpora
  (``examples/glue``, ``examples/pyext``, ``examples/jni``) must be
  byte-identical to the golden dumps under ``benchmarks/goldens/``.
  The equivalence gate is what makes aggressive cold-path refactors safe.

Run::

    python benchmarks/bench_cold.py --units 100
    python benchmarks/bench_cold.py --quick
    python benchmarks/bench_cold.py --record-baseline --update-goldens
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from repro import kernel, seeds
from repro.api import Project
from repro.boundary import get_dialect
from repro.engine import CheckRequest, run_batch
from repro.source import SourceFile
from repro.telemetry import set_hooks_enabled

ROOT = Path(__file__).resolve().parent.parent
EXAMPLES = ROOT / "examples"
BASELINE_PATH = Path(__file__).resolve().parent / "baselines" / "bench_cold_baseline.json"
GOLDEN_DIR = Path(__file__).resolve().parent / "goldens"

BASELINE_SCHEMA = "mlffi-bench-cold-baseline"

#: dialect -> example corpus directory
CORPORA: dict[str, Path] = {
    "ocaml": EXAMPLES / "glue",
    "pyext": EXAMPLES / "pyext",
    "jni": EXAMPLES / "jni",
}

#: dialect -> (source file names, identifier roots to uniquify per unit).
#: Renaming the root in every file of a pair keeps host and C sides
#: consistent (the OCaml ``external ... = "ml_counter_make"`` string and
#: the C definition rename together).
_SCALE_SPECS: dict[str, list[tuple[tuple[str, ...], tuple[str, ...]]]] = {
    "ocaml": [
        (("counter.ml", "counter_stubs.c"), ("counter",)),
        (("shapes.ml", "shapes_stubs.c"), ("shape",)),
    ],
    "pyext": [
        (("clean_module.c",), ("spam", "Spam")),
    ],
    "jni": [
        (("clean_native.c",), ("_Native_",)),
    ],
}


def _rename(text: str, roots: tuple[str, ...], index: int) -> str:
    for root in roots:
        if root.startswith("_") and root.endswith("_"):
            text = text.replace(root, f"_Native{index:03d}_")
        else:
            text = text.replace(root, f"{root}{index:03d}")
    return text


def build_corpus(dialect: str, units: int) -> list[CheckRequest]:
    """Scale the dialect's example corpus to ``units`` distinct units."""
    specs = _SCALE_SPECS[dialect]
    loaded = [
        [
            (name, (CORPORA[dialect] / name).read_text())
            for name in names
        ]
        for names, _roots in specs
    ]
    requests: list[CheckRequest] = []
    for index in range(units):
        spec_index = index % len(specs)
        _names, roots = specs[spec_index]
        c_sources: list[SourceFile] = []
        host_sources: list[SourceFile] = []
        for name, text in loaded[spec_index]:
            renamed = _rename(text, roots, index)
            out_name = f"u{index:03d}_{name}"
            if name.endswith(".c"):
                c_sources.append(SourceFile(out_name, renamed))
            else:
                host_sources.append(SourceFile(out_name, renamed))
        requests.append(
            CheckRequest(
                name=f"u{index:03d}.c",
                c_sources=tuple(c_sources),
                ocaml_sources=tuple(host_sources),
                dialect=dialect,
            )
        )
    return requests


def _calibration_run() -> None:
    """A fixed, interpreter-bound reference workload (dict/str/int churn,
    like the analysis itself).  Its wall time tracks how fast this host
    is executing Python *right now*."""
    total = 0
    table: dict[int, int] = {}
    s = "abcdefgh" * 8
    for i in range(200_000):
        table[i & 1023] = i
        total += table[i & 1023] ^ (i * 7)
    parts = []
    for i in range(20_000):
        parts.append(s[i & 63 : (i & 63) + 8])
    if total < 0 or not parts:  # keep the work observable
        raise AssertionError


def measure_calibration() -> float:
    """Best-of-3 seconds for the reference workload."""
    best = float("inf")
    for _ in range(3):
        started = time.perf_counter()
        _calibration_run()
        best = min(best, time.perf_counter() - started)
    return best


def time_cold(requests: list[CheckRequest], repeats: int) -> float:
    """Best-of-``repeats`` sequential cold wall time, caching disabled.

    A tiny untimed sweep first absorbs one-time process costs (module
    imports, memoized seed tables) so small corpora measure steady-state
    per-unit throughput rather than interpreter warmup.
    """
    run_batch(requests[:3], jobs=1, cache=None)
    best = float("inf")
    for _ in range(max(1, repeats)):
        started = time.perf_counter()
        report = run_batch(requests, jobs=1, cache=None)
        elapsed = time.perf_counter() - started
        failures = [r.name for r in report.results if r.failure is not None]
        if failures:
            raise RuntimeError(f"cold sweep had engine failures: {failures}")
        best = min(best, elapsed)
    return best


def measure_telemetry_off_overhead(units: int, repeats: int) -> float:
    """What the *disabled* telemetry hooks cost, as a cold-time ratio.

    The instrumentation sites in the analysis call
    :func:`repro.telemetry.span` and the gated metrics helpers
    unconditionally; with no tracer installed and metrics off they must
    be free.  This times the same cold sweep in the normal disabled
    state and with :func:`set_hooks_enabled` bypassing the hooks
    entirely, and returns ``normal / bypassed - 1`` — the residue the
    ``--max-telemetry-overhead`` gate bounds below 2%.

    The gate is one-sided — only a *positive* residue fails it — and a
    real hook cost would show up in every measurement, while runner load
    spikes inflate only some of them.  So the estimate is the minimum
    over a few independent blocks, each an interleaved best-of sweep
    with the mode order alternating per pair to cancel drift.
    """
    requests = build_corpus("ocaml", units)
    run_batch(requests[:3], jobs=1, cache=None)  # absorb warmup once

    def sweep() -> float:
        started = time.perf_counter()
        run_batch(requests, jobs=1, cache=None)
        return time.perf_counter() - started

    def block(pairs: int) -> float:
        normal = bypassed = float("inf")
        for index in range(pairs):
            order = (True, False) if index % 2 == 0 else (False, True)
            for hooks in order:
                set_hooks_enabled(hooks)
                if hooks:
                    normal = min(normal, sweep())
                else:
                    bypassed = min(bypassed, sweep())
        return normal / max(bypassed, 1e-9) - 1.0

    try:
        return min(block(max(4, repeats)) for _ in range(3))
    finally:
        set_hooks_enabled(True)


def measure_seed_artifact_speedup(units: int, repeats: int) -> dict:
    """Host-interface artifact load vs rebuild, same process, same inputs.

    The artifact tier exists for the worker-spawn path: a fresh process
    meets host fingerprints its siblings already parsed.  This reproduces
    that situation in-process — build every host repository once
    (write-through populates the artifacts), then alternate two measured
    legs with the in-process memos cleared before each: one loading the
    pickled repositories, one with the artifact tier disabled so every
    fingerprint re-parses.  Best-of-``repeats`` per leg; the ratio is the
    ``seed_artifact_speedup`` trend field and the ``--min-seed-artifact-
    speedup`` gate (a regression here means pickling the repository
    stopped being cheaper than re-deriving it, i.e. the tier is dead
    weight).

    The hosts are sized like the workload the memo actually serves: a
    batch's units share one *project-wide* OCaml side (every ``.ml`` in
    the tree feeds the repository — see ``OCamlDialect.repository_for``),
    so each measured fingerprint carries a multi-module host, not one
    4-external toy file.
    """
    dialect = get_dialect("ocaml")
    modules_per_host = 12
    scaled = build_corpus("ocaml", min(units, 24) * modules_per_host)
    requests = []
    for start in range(0, len(scaled), modules_per_host):
        chunk = scaled[start : start + modules_per_host]
        host_sources = tuple(
            source for request in chunk for source in request.ocaml_sources
        )
        requests.append(
            CheckRequest(
                name=f"host{start // modules_per_host:03d}",
                c_sources=(),
                ocaml_sources=host_sources,
                dialect="ocaml",
            )
        )
    with tempfile.TemporaryDirectory() as tmp:
        previous = os.environ.get(seeds.SEED_DIR_ENV)
        os.environ[seeds.SEED_DIR_ENV] = tmp
        try:
            # populate the artifacts via write-through
            seeds.clear_seed_memos()
            for request in requests:
                dialect.host_interface_for(request)
            load_s = rebuild_s = float("inf")
            for _ in range(max(3, repeats)):
                seeds.clear_seed_memos()
                started = time.perf_counter()
                for request in requests:
                    dialect.host_interface_for(request)
                load_s = min(load_s, time.perf_counter() - started)

                os.environ[seeds.SEED_ARTIFACTS_ENV] = "0"
                try:
                    seeds.clear_seed_memos()
                    started = time.perf_counter()
                    for request in requests:
                        dialect.host_interface_for(request)
                    rebuild_s = min(
                        rebuild_s, time.perf_counter() - started
                    )
                finally:
                    del os.environ[seeds.SEED_ARTIFACTS_ENV]
            stats = seeds.seed_stats()
        finally:
            seeds.clear_seed_memos()
            if previous is None:
                os.environ.pop(seeds.SEED_DIR_ENV, None)
            else:
                os.environ[seeds.SEED_DIR_ENV] = previous
    return {
        "hosts": len(requests),
        "rebuild_seconds": round(rebuild_s, 4),
        "load_seconds": round(load_s, 4),
        "speedup": round(rebuild_s / max(load_s, 1e-9), 2),
        "artifact_rejects": stats.get("artifact_rejects", 0),
    }


def _probe_cold(dialect: str, units: int, repeats: int) -> None:
    """Hidden subprocess mode for ``--compare-kernels``: print one
    dialect's best cold seconds (and this process's kernel flavor) as
    JSON on stdout, nothing else."""
    requests = build_corpus(dialect, units)
    cold_s = time_cold(requests, repeats)
    print(
        json.dumps(
            {"cold_seconds": cold_s, "kernel": kernel.kernel_flavor()}
        )
    )


def measure_compiled_speedup(units: int, repeats: int) -> dict | None:
    """Compiled-vs-interpreted cold ratio, or None without a wheel.

    Each kernel flavor needs its own process (the import hook decides at
    startup), so both legs run this script's ``--probe`` mode in a
    subprocess: one inheriting the environment, one with
    ``MLFFI_PURE_PYTHON=1`` forcing the interpreted kernel.  Null when no
    compiled kernel is installed — the field stays in the payload so the
    trend document's shape is identical either way.
    """
    if not kernel.compiled_available():
        return None

    def probe(pure_python: bool) -> dict:
        env = dict(os.environ)
        if pure_python:
            env[kernel.PURE_PYTHON_ENV] = "1"
        else:
            env.pop(kernel.PURE_PYTHON_ENV, None)
        proc = subprocess.run(
            [
                sys.executable,
                str(Path(__file__).resolve()),
                "--probe",
                "ocaml",
                "--units",
                str(units),
                "--repeats",
                str(repeats),
            ],
            env=env,
            capture_output=True,
            text=True,
            check=True,
        )
        return json.loads(proc.stdout)

    compiled = probe(pure_python=False)
    interpreted = probe(pure_python=True)
    if compiled["kernel"] != "compiled":
        raise RuntimeError(
            "compiled kernel detected on disk but the probe process "
            f"ran {compiled['kernel']!r}"
        )
    return {
        "compiled_seconds": round(compiled["cold_seconds"], 4),
        "interpreted_seconds": round(interpreted["cold_seconds"], 4),
        "speedup": round(
            interpreted["cold_seconds"]
            / max(compiled["cold_seconds"], 1e-9),
            2,
        ),
    }


# -- diagnostics equivalence ----------------------------------------------------


def corpus_diagnostics(dialect: str) -> str:
    """Canonical diagnostics dump for the dialect's example corpus.

    One block per translation unit in scan order; no timing, no cache
    state — only what the analysis concluded, so the dump is stable
    across machines and byte-comparable across refactors.
    """
    project = Project.from_directory(CORPORA[dialect], dialect=dialect)
    report = run_batch(project.to_requests(), jobs=1, cache=None)
    lines: list[str] = []
    for result in report.results:
        lines.append(f"== {Path(result.name).name}")
        if result.failure is not None:
            lines.append(f"   engine failure: {result.failure}")
            continue
        for diag in result.diagnostics:
            lines.append("   " + diag.render())
    return "\n".join(lines) + "\n"


def golden_path(dialect: str) -> Path:
    return GOLDEN_DIR / f"cold_{dialect}.txt"


# -- main ----------------------------------------------------------------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--units", type=int, default=100, help="corpus size per dialect"
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=2,
        help="cold sweeps per dialect; the best run is reported",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke sizing (30 units); same gates",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=2.0,
        help="required cold per-unit speedup vs the frozen baseline",
    )
    parser.add_argument(
        "--max-telemetry-overhead",
        type=float,
        default=0.02,
        help="allowed cold-time ratio overhead of the disabled telemetry "
        "hooks vs fully bypassed hooks (default: 0.02 = 2%%)",
    )
    parser.add_argument(
        "--min-seed-artifact-speedup",
        type=float,
        default=2.0,
        help="required host-interface artifact-load speedup vs rebuild",
    )
    parser.add_argument(
        "--compare-kernels",
        action="store_true",
        help="also measure the compiled-vs-interpreted cold ratio "
        "(recorded as null when no compiled kernel is installed)",
    )
    parser.add_argument(
        "--probe",
        metavar="DIALECT",
        default=None,
        help=argparse.SUPPRESS,  # subprocess mode for --compare-kernels
    )
    parser.add_argument(
        "--record-baseline",
        action="store_true",
        help="freeze this run's per-unit times as the baseline and skip gates",
    )
    parser.add_argument(
        "--update-goldens",
        action="store_true",
        help="rewrite the golden diagnostics dumps from this run",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also write the JSON payload to PATH (for bench-trend)",
    )
    args = parser.parse_args(argv)

    units = 30 if args.quick else args.units
    repeats = 2 if args.quick else args.repeats

    if args.probe is not None:
        _probe_cold(args.probe, units, repeats)
        return 0

    baseline: dict | None = None
    if BASELINE_PATH.is_file():
        baseline = json.loads(BASELINE_PATH.read_text())

    # Host-speed calibration: the baseline froze wall times on one
    # machine at one moment; CPU throttling or different hardware shifts
    # every measurement uniformly.  The baseline also froze the reference
    # workload's time, so the ratio between then and now rescales the
    # frozen numbers to this host's current speed (clamped — a wildly
    # different host should fail loudly rather than be silently excused).
    calibration_s = measure_calibration()
    scale = 1.0
    if baseline is not None and baseline.get("calibration_seconds"):
        scale = calibration_s / baseline["calibration_seconds"]
        scale = min(4.0, max(0.25, scale))

    failures: list[str] = []
    dialects: dict[str, dict] = {}
    for dialect in CORPORA:
        requests = build_corpus(dialect, units)
        cold_s = time_cold(requests, repeats)
        per_unit = cold_s / units
        entry: dict = {
            "units": units,
            "cold_seconds": round(cold_s, 4),
            "per_unit_seconds": round(per_unit, 6),
            "units_per_second": round(units / max(cold_s, 1e-9), 2),
        }
        if baseline is not None and not args.record_baseline:
            base_per_unit = baseline["per_unit_seconds"].get(dialect)
            if base_per_unit is None:
                failures.append(f"{dialect}: baseline has no per-unit time")
            else:
                scaled_base = base_per_unit * scale
                speedup = scaled_base / max(per_unit, 1e-9)
                entry["baseline_per_unit_seconds"] = base_per_unit
                entry["host_speed_scale"] = round(scale, 3)
                entry["speedup_vs_baseline"] = round(speedup, 2)
                if speedup < args.min_speedup:
                    failures.append(
                        f"{dialect}: cold per-unit speedup {speedup:.2f}x "
                        f"< required {args.min_speedup:.2f}x "
                        f"({per_unit * 1e3:.2f} ms/unit vs baseline "
                        f"{base_per_unit * 1e3:.2f} ms/unit scaled by "
                        f"{scale:.3f})"
                    )
        dialects[dialect] = entry

    # telemetry-off gate: disabled hooks must be indistinguishable from
    # no hooks (best-of-3 both ways absorbs scheduler noise)
    telemetry_overhead = measure_telemetry_off_overhead(
        min(units, 30), max(5, repeats)
    )
    if (
        not args.record_baseline
        and telemetry_overhead > args.max_telemetry_overhead
    ):
        failures.append(
            f"telemetry: disabled-hook overhead "
            f"{telemetry_overhead * 100:.2f}% > allowed "
            f"{args.max_telemetry_overhead * 100:.2f}%"
        )

    # seed-artifact gate: loading a pickled host interface must beat
    # re-deriving it, or the artifact tier is pure overhead
    seed_artifact = measure_seed_artifact_speedup(units, repeats)
    if (
        not args.record_baseline
        and seed_artifact["speedup"] < args.min_seed_artifact_speedup
    ):
        failures.append(
            f"seeds: artifact-load speedup {seed_artifact['speedup']:.2f}x "
            f"< required {args.min_seed_artifact_speedup:.2f}x "
            f"(load {seed_artifact['load_seconds'] * 1e3:.1f} ms vs "
            f"rebuild {seed_artifact['rebuild_seconds'] * 1e3:.1f} ms)"
        )

    # kernel-comparison: null without a compiled wheel (the local
    # toolchain never builds one; CI's compiled-smoke job does)
    compiled = (
        measure_compiled_speedup(min(units, 30), repeats)
        if args.compare_kernels
        else None
    )

    # equivalence gate: byte-identical diagnostics on the real examples
    equivalence: dict[str, bool] = {}
    for dialect in CORPORA:
        dump = corpus_diagnostics(dialect)
        path = golden_path(dialect)
        if args.update_goldens:
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(dump)
            equivalence[dialect] = True
            continue
        if not path.is_file():
            equivalence[dialect] = False
            failures.append(f"{dialect}: missing golden dump {path.name}")
            continue
        identical = path.read_text() == dump
        equivalence[dialect] = identical
        if not identical:
            failures.append(
                f"{dialect}: diagnostics differ from golden {path.name}"
            )

    if args.record_baseline:
        BASELINE_PATH.parent.mkdir(parents=True, exist_ok=True)
        BASELINE_PATH.write_text(
            json.dumps(
                {
                    "schema": BASELINE_SCHEMA,
                    "recorded_unix": int(time.time()),
                    "machine": platform.machine() or "unknown",
                    "units": units,
                    "calibration_seconds": calibration_s,
                    "per_unit_seconds": {
                        d: dialects[d]["per_unit_seconds"] for d in dialects
                    },
                },
                indent=2,
                sort_keys=True,
            )
            + "\n"
        )
        print(f"recorded baseline -> {BASELINE_PATH}", file=sys.stderr)
        failures = []  # recording runs never gate

    payload = {
        "schema": "mlffi-bench-cold",
        "units": units,
        "repeats": repeats,
        "calibration_seconds": round(calibration_s, 5),
        "host_speed_scale": round(scale, 3),
        "min_speedup": args.min_speedup,
        "baseline": BASELINE_PATH.name if baseline is not None else None,
        "telemetry_off_overhead": round(telemetry_overhead, 4),
        "max_telemetry_overhead": args.max_telemetry_overhead,
        "seed_artifact": seed_artifact,
        "seed_artifact_speedup": seed_artifact["speedup"],
        "min_seed_artifact_speedup": args.min_seed_artifact_speedup,
        "kernel": kernel.kernel_flavor(),
        "compiled": compiled,
        "compiled_speedup": (
            compiled["speedup"] if compiled is not None else None
        ),
        "dialects": dialects,
        "gates": {
            "diagnostics_byte_identical": equivalence,
            "failures": failures,
        },
    }
    text = json.dumps(payload, indent=2, sort_keys=True)
    print(text)
    if args.json is not None:
        Path(args.json).write_text(text + "\n")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
