"""Batch-engine benchmark: sequential vs. parallel vs. warm-cache.

Synthesizes an N-unit corpus (defect-free glue via ``repro.bench.synth``,
one OCaml module + one C translation unit each) and times three sweeps:

1. **sequential cold** — ``jobs=1`` against an empty result cache (this
   run also fills the cache);
2. **parallel cold**   — ``--jobs`` workers, caching disabled;
3. **warm cache**      — ``jobs=1`` again, every unit a cache hit.

Results print as one JSON object.  The acceptance gates from the CI
benchmark smoke job: parallel beats sequential wall time, and the warm
rerun finishes in under 25% of the cold sequential run.

Run::

    python benchmarks/bench_batch.py --units 32 --jobs 4
    python benchmarks/bench_batch.py --units 8 --quick
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path

from repro.bench.specs import spec_by_name
from repro.bench.synth import synthesize_scaled
from repro.core.exprs import Options
from repro.engine import CheckRequest, NullCache, ResultCache, run_batch
from repro.source import SourceFile


def build_corpus(units: int, c_loc: int) -> list[CheckRequest]:
    base = spec_by_name("apm-1.00")
    requests = []
    for index in range(units):
        program = synthesize_scaled(base, c_loc, unique_prefix=index + 1)
        requests.append(
            CheckRequest(
                name=f"unit{index:03}.c",
                c_sources=(
                    SourceFile(f"unit{index:03}.c", program.c_source),
                ),
                ocaml_sources=(
                    SourceFile(f"unit{index:03}.ml", program.ocaml_source),
                ),
                options=Options(),
            )
        )
    return requests


def timed_batch(requests, *, jobs, cache):
    started = time.perf_counter()
    report = run_batch(requests, jobs=jobs, cache=cache)
    return time.perf_counter() - started, report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--units", type=int, default=32)
    parser.add_argument("--jobs", type=int, default=4)
    parser.add_argument(
        "--c-loc", type=int, default=220, help="C LoC budget per unit"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller units for CI smoke runs",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="cache location (default: a fresh temp dir)",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also write the JSON payload to PATH (for bench-trend)",
    )
    args = parser.parse_args(argv)

    c_loc = 120 if args.quick else args.c_loc
    requests = build_corpus(args.units, c_loc)
    corpus_loc = sum(
        len(req.c_sources[0].text.splitlines()) for req in requests
    )

    cache_dir = args.cache_dir or tempfile.mkdtemp(prefix="mlffi-bench-cache-")
    cache = ResultCache(cache_dir)
    cache.clear()

    sequential_s, sequential_report = timed_batch(
        requests, jobs=1, cache=cache
    )
    parallel_s, parallel_report = timed_batch(
        requests, jobs=args.jobs, cache=NullCache()
    )
    warm_s, warm_report = timed_batch(requests, jobs=1, cache=cache)

    # The parallel gate needs hardware that can actually run jobs side by
    # side.  On a multi-core host the meaningful number is the *speedup*
    # (parallel must beat sequential); on a single core a CPU-bound pool
    # cannot win, so the only meaningful number is the *overhead ratio*
    # (pool cost over sequential), and reporting a "speedup" there would
    # be noise.  The two metrics are separate schema fields — never one
    # overloaded number — and each is null when it is not meaningful.
    cores = os.cpu_count() or 1
    overhead_ratio = round(parallel_s / max(sequential_s, 1e-9), 2)
    speedup = round(sequential_s / max(parallel_s, 1e-9), 2)
    if cores >= 2:
        parallel_gate = parallel_s < sequential_s
        parallel_gate_kind = "parallel_beats_sequential"
    else:
        parallel_gate = parallel_s < 2.0 * sequential_s
        parallel_gate_kind = "parallel_overhead_bounded"

    payload = {
        "corpus": {
            "units": args.units,
            "c_loc_per_unit": c_loc,
            "c_lines_total": corpus_loc,
        },
        "times_s": {
            "sequential_cold": round(sequential_s, 4),
            "parallel_cold": round(parallel_s, 4),
            "warm_cache": round(warm_s, 4),
        },
        "jobs": args.jobs,
        "cores": cores,
        "parallel_speedup": speedup if cores >= 2 else None,
        "parallel_overhead_ratio": overhead_ratio if cores < 2 else None,
        "warm_fraction_of_cold": round(warm_s / max(sequential_s, 1e-9), 4),
        "cache": {
            "entries": len(cache),
            "warm_hits": warm_report.cache_hits,
        },
        "tally": sequential_report.tally(),
        "consistent": (
            sequential_report.tally()
            == parallel_report.tally()
            == warm_report.tally()
        ),
        "gates": {
            "parallel": parallel_gate,
            "parallel_gate_kind": parallel_gate_kind,
            "warm_under_quarter_of_cold": warm_s < 0.25 * sequential_s,
        },
    }
    text = json.dumps(payload, indent=2)
    print(text)
    if args.json is not None:
        Path(args.json).write_text(text + "\n")
    passed = (
        payload["gates"]["parallel"]
        and payload["gates"]["warm_under_quarter_of_cold"]
        and payload["consistent"]
    )
    return 0 if passed else 1


if __name__ == "__main__":
    sys.exit(main())
