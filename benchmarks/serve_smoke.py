"""CI smoke for the analysis daemon: drive `mlffi-check serve` over the wire.

For each dialect's examples corpus (``examples/glue``, ``examples/pyext``):

1. copy the corpus to a scratch tree and start the daemon on stdio;
2. ``check`` — every unit must analyze (cold daemon);
3. edit one file on disk, ``invalidate`` it, ``check`` again — exactly the
   touched unit must re-run, everything else must be served from the
   resident memory tier;
4. ``shutdown`` — the daemon must exit 0.

Exits non-zero on the first violated expectation.

Run::

    python benchmarks/serve_smoke.py
"""

from __future__ import annotations

import json
import os
import shutil
import subprocess
import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

#: dialect -> (examples corpus, file to edit mid-session)
CORPORA = {
    "ocaml": ("glue", "counter_stubs.c"),
    "pyext": ("pyext", "clean_module.c"),
}


class Daemon:
    """One `mlffi-check serve --stdio` child with line-framed requests."""

    def __init__(self, root: Path, dialect: str):
        env = dict(os.environ)
        env["PYTHONPATH"] = (
            str(REPO / "src") + os.pathsep + env.get("PYTHONPATH", "")
        )
        self.proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "serve",
                str(root),
                "--dialect",
                dialect,
                "--no-cache",
            ],
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            text=True,
            env=env,
        )
        self.next_id = 0

    def call(self, method: str, params: dict | None = None) -> dict:
        self.next_id += 1
        frame = {"id": self.next_id, "method": method}
        if params is not None:
            frame["params"] = params
        self.proc.stdin.write(json.dumps(frame) + "\n")
        self.proc.stdin.flush()
        line = self.proc.stdout.readline()
        response = json.loads(line)
        if "error" in response:
            raise AssertionError(f"{method} failed: {response['error']}")
        return response["result"]

    def close(self) -> int:
        self.proc.stdin.close()
        return self.proc.wait(timeout=60)


def expect(condition: bool, message: str) -> None:
    if not condition:
        print(f"FAIL: {message}", file=sys.stderr)
        sys.exit(1)
    print(f"ok: {message}")


def smoke_dialect(workdir: Path, dialect: str) -> None:
    corpus, edit_name = CORPORA[dialect]
    root = workdir / corpus
    shutil.copytree(REPO / "examples" / corpus, root)
    unit_count = len(list(root.glob("*.c")))

    daemon = Daemon(root, dialect)
    try:
        pong = daemon.call("ping")
        expect(
            pong["pong"] and pong["units"] == unit_count,
            f"[{dialect}] daemon is up with {unit_count} units",
        )

        first = daemon.call("check")
        expect(
            len(first["incremental"]["ran"]) == unit_count,
            f"[{dialect}] cold check analyzed every unit",
        )

        edited = root / edit_name
        edited.write_text(edited.read_text() + "\n/* smoke edit */\n")
        invalidated = daemon.call("invalidate", {"paths": [edit_name]})
        expect(
            [Path(p).name for p in invalidated["invalidated"]] == [edit_name],
            f"[{dialect}] invalidate touched exactly {edit_name}",
        )

        second = daemon.call("check")
        reran = [Path(p).name for p in second["incremental"]["ran"]]
        expect(
            reran == [edit_name],
            f"[{dialect}] only the edited unit re-ran (got {reran})",
        )
        expect(
            second["incremental"]["reused"] == unit_count - 1,
            f"[{dialect}] remaining units served from resident state",
        )
        expect(
            second["tally"] == first["tally"],
            f"[{dialect}] comment edit left the tally unchanged",
        )

        daemon.call("shutdown")
    finally:
        code = daemon.close()
    expect(code == 0, f"[{dialect}] daemon exited 0 after shutdown")


def main() -> int:
    workdir = Path(tempfile.mkdtemp(prefix="mlffi-serve-smoke-"))
    try:
        for dialect in sorted(CORPORA):
            smoke_dialect(workdir, dialect)
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    print("serve smoke: all expectations held")
    return 0


if __name__ == "__main__":
    sys.exit(main())
