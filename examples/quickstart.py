"""Quickstart: analyze a small OCaml+C project from Python.

This is the paper's core scenario: an OCaml program declares ``external``
functions, C "glue" code implements them against the OCaml runtime, and
the multi-lingual checker verifies the C side uses OCaml data at the right
representations — catching a ``Val_int``/``Int_val`` swap here.

Run with::

    python examples/quickstart.py
"""

from repro import analyze_project

OCAML_SOURCE = """
(* counter.ml — the OCaml view of the library *)
type counter = { count : int; step : int }

external make  : int -> counter        = "ml_counter_make"
external next  : counter -> int        = "ml_counter_next"
external reset : counter -> unit       = "ml_counter_reset"
"""

C_SOURCE = """
#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <caml/memory.h>

/* correct: allocate a record with protection */
value ml_counter_make(value step)
{
    CAMLparam1(step);
    CAMLlocal1(rec);
    rec = caml_alloc(2, 0);
    Store_field(rec, 0, Val_int(0));
    Store_field(rec, 1, step);
    CAMLreturn(rec);
}

/* correct: read both record fields */
value ml_counter_next(value c)
{
    int count = Int_val(Field(c, 0));
    int step = Int_val(Field(c, 1));
    return Val_int(count + step);
}

/* BUG: Val_int applied to an OCaml value (meant Int_val / Val_unit mixup) */
value ml_counter_reset(value c)
{
    return Val_int(c);
}
"""


def main() -> int:
    report = analyze_project([OCAML_SOURCE], [C_SOURCE])

    print("Diagnostics:")
    for diag in report.diagnostics:
        print("  " + diag.render())
    print()
    tally = report.tally()
    print(
        f"{tally['errors']} error(s), {tally['warnings']} warning(s), "
        f"{tally['imprecision']} imprecision warning(s) "
        f"in {report.elapsed_seconds:.3f}s"
    )

    expected = 1
    if tally["errors"] != expected:
        print(f"unexpected result: wanted exactly {expected} error")
        return 1
    print("quickstart OK: the seeded bug was found and nothing else flagged")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
