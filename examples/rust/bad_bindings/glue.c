/* C side of the broken Rust bindings.  Every function here is the
 * mirror of a declaration in `lib.rs` that disagrees with it — see the
 * comments there for which rule each pair trips. */

#include <stddef.h>
#include <stdint.h>

static int init_count;

int c_init(int flags, int mode)
{
    init_count += flags + mode;
    return 0;
}

int c_buf_len(const uint8_t *buf)
{
    return buf == NULL ? 0 : 1;
}

unsigned int c_crc(unsigned long long seed)
{
    return (unsigned int)(seed * 2654435761ULL);
}

void c_report_status(int status)
{
    init_count += status;
}

/* Mirrors of the Rust exports — both disagree with `lib.rs`. */
extern void rs_handle(long ptr);
extern void rs_log(const char *msg);

void drive_rust(void)
{
    rs_handle(0L);
    rs_log("boot");
}
