//! Deliberately broken bindings: each declaration disagrees with its
//! C-side mirror in `glue.c` in a different way, one finding per rule
//! in the `rust` pack plus one arity defect — six errors total, so the
//! CI smoke job gates `mlffi-check batch --dialect rust` on exit 6.

use std::os::raw::{c_int, c_void};

/// Missing `#[repr(C)]`: the discriminant width is unspecified, so
/// passing this across `extern "C"` is undefined (RUST_ENUM_REPR).
pub enum Status {
    Ok = 0,
    Error = 1,
}

extern "C" {
    /// C defines `int c_init(int flags, int mode)` — two parameters
    /// (RUST_DECL_MISMATCH, arity).
    fn c_init(flags: c_int) -> c_int;
    /// C returns `int`, a fixed 32-bit class, but `usize` is
    /// pointer-width (RUST_PLATFORM_WIDTH).
    fn c_buf_len(buf: *const u8) -> usize;
    /// C takes `unsigned long long`, not the 32-bit `u32`
    /// (RUST_DECL_MISMATCH, rendered type).
    fn c_crc(seed: u32) -> u32;
    /// `Status` has no explicit repr (RUST_ENUM_REPR).
    fn c_report_status(status: Status);
}

/// C declares this export as `void rs_handle(long ptr)` — an integer
/// where Rust passes a pointer (RUST_PTR_INT_CONFUSION).
#[no_mangle]
pub extern "C" fn rs_handle(ptr: *mut c_void) {
    let _ = ptr;
}

/// `&str` is not FFI-safe: a fat pointer where C expects a
/// NUL-terminated `const char *` (RUST_STR_PASSING).
#[no_mangle]
pub extern "C" fn rs_log(msg: &str) {
    let _ = msg.len();
}

#[no_mangle]
pub extern "C" fn rs_run() -> c_int {
    unsafe {
        if c_init(1) != 0 {
            return -1;
        }
        c_report_status(Status::Ok);
        let digest = c_crc(42);
        c_buf_len(core::ptr::null()) as c_int + digest as c_int
    }
}
