/* C side of the clean Rust bindings: every declaration here renders to
 * the same canonical C type as its Rust counterpart in `lib.rs`. */

#include <stddef.h>
#include <stdint.h>

uint64_t c_checksum(const uint8_t *data, size_t len)
{
    uint64_t hash = 1469598103934665603ULL;
    for (size_t i = 0; i < len; i++) {
        hash = (hash ^ data[i]) * 1099511628211ULL;
    }
    return hash;
}

static char stored_name[64];

int c_store_name(const char *name)
{
    size_t i = 0;
    if (name == NULL) {
        return -1;
    }
    while (name[i] != '\0' && i + 1 < sizeof(stored_name)) {
        stored_name[i] = name[i];
        i++;
    }
    stored_name[i] = '\0';
    return (int)i;
}

static int current_mode;

void c_set_mode(int mode)
{
    current_mode = mode;
}

/* Mirrors of the `#[no_mangle]` Rust exports this unit links against. */
extern int64_t rs_accumulate(const int64_t *values, size_t count);
extern uint32_t rs_version(void);

int call_into_rust(void)
{
    int64_t vals[3] = { 1, 2, 3 };
    if (rs_version() == 0U) {
        return 0;
    }
    return (int)rs_accumulate(vals, 3);
}
