//! Clean bindgen-style bindings: every declaration agrees with its
//! C-side mirror in `glue.c`, so `mlffi-check batch --dialect rust`
//! reports zero findings here.

use std::os::raw::{c_char, c_int};

#[repr(C)]
pub enum Mode {
    Idle = 0,
    Busy = 1,
}

extern "C" {
    /// Mirrors `uint64_t c_checksum(const uint8_t *data, size_t len)`.
    fn c_checksum(data: *const u8, len: usize) -> u64;
    /// Mirrors `int c_store_name(const char *name)`.
    fn c_store_name(name: *const c_char) -> c_int;
    /// Mirrors `void c_set_mode(int mode)` — `Mode` is `repr(C)`.
    fn c_set_mode(mode: Mode);
}

#[no_mangle]
pub extern "C" fn rs_accumulate(values: *const i64, count: usize) -> i64 {
    let mut total: i64 = 0;
    let mut index: usize = 0;
    while index < count {
        total += unsafe { *values.add(index) };
        index += 1;
    }
    total
}

#[no_mangle]
pub extern "C" fn rs_version() -> u32 {
    let name = b"demo\0";
    unsafe {
        c_store_name(name.as_ptr() as *const c_char);
        c_set_mode(Mode::Idle);
        c_checksum(name.as_ptr(), name.len()) as u32
    }
}
