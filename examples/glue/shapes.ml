(* shapes.ml — a sum type whose C dispatch has a seeded defect *)
type shape = Point | Circle of int | Rect of int * int

external area : shape -> int = "ml_shape_area"
