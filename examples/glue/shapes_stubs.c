#include <caml/mlvalues.h>

/* dispatch over `shape`; the `case 2` arm is a seeded defect — the type
 * has only two boxed constructors (Circle = tag 0, Rect = tag 1), so the
 * checker reports a tag test beyond the declared constructors. */

value ml_shape_area(value shape)
{
    int area = 0;
    if (Is_long(shape)) {
        area = 0;
    } else {
        switch (Tag_val(shape)) {
        case 0:
            area = Int_val(Field(shape, 0));
            break;
        case 1:
            area = Int_val(Field(shape, 0)) * Int_val(Field(shape, 1));
            break;
        case 2:
            area = -1;
            break;
        }
    }
    return Val_int(area);
}
