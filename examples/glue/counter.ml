(* counter.ml — a record-backed counter exposed to C *)
type counter = { count : int; step : int }

external make  : int -> counter = "ml_counter_make"
external next  : counter -> int = "ml_counter_next"
