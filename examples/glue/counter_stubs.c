#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <caml/memory.h>

/* correct glue: record allocation with protection, field reads */

value ml_counter_make(value step)
{
    CAMLparam1(step);
    CAMLlocal1(result);
    result = caml_alloc(2, 0);
    Store_field(result, 0, Val_int(0));
    Store_field(result, 1, step);
    CAMLreturn(result);
}

value ml_counter_next(value counter)
{
    int count = Int_val(Field(counter, 0));
    int step = Int_val(Field(counter, 1));
    return Val_int(count + step);
}
