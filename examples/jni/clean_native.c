#include <jni.h>

/* correct JNI glue: descriptors agree with their uses, loop-created
 * local references are deleted per iteration, cached references are
 * promoted with NewGlobalRef first */

static jclass cached_list_class;

JNIEXPORT jint JNICALL
Java_com_example_Native_add(JNIEnv *env, jobject self, jint a, jint b)
{
    return a + b;
}

JNIEXPORT jstring JNICALL
Java_com_example_Native_greet(JNIEnv *env, jobject self, jstring name)
{
    const char *utf = (*env)->GetStringUTFChars(env, name, NULL);
    jstring result;
    if (utf == NULL)
        return NULL;
    result = (*env)->NewStringUTF(env, utf);
    (*env)->ReleaseStringUTFChars(env, name, utf);
    return result;
}

JNIEXPORT jint JNICALL
Java_com_example_Native_sumLengths(JNIEnv *env, jobject self, jobjectArray items)
{
    jint total = 0;
    jsize count = (*env)->GetArrayLength(env, items);
    jsize i;
    for (i = 0; i < count; i = i + 1) {
        jobject item = (*env)->GetObjectArrayElement(env, items, i);
        total = total + (*env)->GetStringLength(env, item);
        (*env)->DeleteLocalRef(env, item);
    }
    return total;
}

JNIEXPORT jint JNICALL
Java_com_example_Native_callSize(JNIEnv *env, jobject self, jobject list)
{
    jclass cls = (*env)->GetObjectClass(env, list);
    jmethodID size = (*env)->GetMethodID(env, cls, "size", "()I");
    if (size == NULL)
        return -1;
    return (*env)->CallIntMethod(env, list, size);
}

JNIEXPORT void JNICALL
Java_com_example_Native_cacheClass(JNIEnv *env, jobject self)
{
    jclass cls = (*env)->FindClass(env, "java/util/ArrayList");
    if (cls == NULL)
        return;
    cached_list_class = (*env)->NewGlobalRef(env, cls);
}

static JNINativeMethod gMethods[] = {
    {"add", "(II)I", (void *) Java_com_example_Native_add},
    {"callSize", "(Ljava/util/List;)I", (void *) Java_com_example_Native_callSize},
};
