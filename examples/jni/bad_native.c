#include <jni.h>

/* seeded defects, one per function:
 *   bad_descriptor      - "Q" is not a JVM field descriptor
 *   bad_dotted_class    - FindClass wants slash-separated internal names
 *   bad_return_variant  - CallObjectMethod on a method looked up as "()I"
 *   bad_call_arity      - descriptor declares 1 argument, 2 supplied
 *   bad_loop_leak       - local ref created per iteration, never deleted
 *   bad_use_after_delete - cls used after DeleteLocalRef released it
 *   bad_global_leak     - NewGlobalRef result never released
 *   bad_cache           - raw local ref cached in a global (no NewGlobalRef)
 * plus one malformed "(II" signature in the registration table
 */

static jclass cached_string_class;

JNIEXPORT jint JNICALL
bad_descriptor(JNIEnv *env, jobject self, jobject box)
{
    jclass cls = (*env)->GetObjectClass(env, box);
    jfieldID count = (*env)->GetFieldID(env, cls, "count", "Q");
    return (*env)->GetIntField(env, box, count);
}

JNIEXPORT jclass JNICALL
bad_dotted_class(JNIEnv *env, jobject self)
{
    return (*env)->FindClass(env, "java.lang.String");
}

JNIEXPORT jobject JNICALL
bad_return_variant(JNIEnv *env, jobject self, jobject list)
{
    jclass cls = (*env)->GetObjectClass(env, list);
    jmethodID size = (*env)->GetMethodID(env, cls, "size", "()I");
    return (*env)->CallObjectMethod(env, list, size);
}

JNIEXPORT jint JNICALL
bad_call_arity(JNIEnv *env, jobject self, jobject list, jint n)
{
    jclass cls = (*env)->GetObjectClass(env, list);
    jmethodID get = (*env)->GetMethodID(env, cls, "get", "(I)Ljava/lang/Object;");
    jobject item = (*env)->CallObjectMethod(env, list, get, n, n);
    if (item == NULL)
        return 0;
    (*env)->DeleteLocalRef(env, item);
    return 1;
}

JNIEXPORT jint JNICALL
bad_loop_leak(JNIEnv *env, jobject self, jobjectArray items)
{
    jint total = 0;
    jsize count = (*env)->GetArrayLength(env, items);
    jsize i;
    for (i = 0; i < count; i = i + 1) {
        jobject item = (*env)->GetObjectArrayElement(env, items, i);
        total = total + (*env)->GetStringLength(env, item);
    }
    return total;
}

JNIEXPORT jint JNICALL
bad_use_after_delete(JNIEnv *env, jobject self, jobject box)
{
    jclass cls = (*env)->GetObjectClass(env, box);
    (*env)->DeleteLocalRef(env, cls);
    return (*env)->IsInstanceOf(env, box, cls);
}

JNIEXPORT void JNICALL
bad_global_leak(JNIEnv *env, jobject self, jobject listener, jmethodID notify)
{
    jobject pinned = (*env)->NewGlobalRef(env, listener);
    if (pinned == NULL)
        return;
    (*env)->CallVoidMethod(env, pinned, notify);
}

JNIEXPORT void JNICALL
bad_cache(JNIEnv *env, jobject self)
{
    jclass cls = (*env)->FindClass(env, "java/lang/String");
    cached_string_class = cls;
}

static JNINativeMethod gBadMethods[] = {
    {"broken", "(II", (void *) bad_call_arity},
};
