"""Regenerate the paper's Figure 9 results table.

Synthesizes all eleven benchmark glue libraries (see
``repro.bench.specs`` for how each row's defects follow the §5.2 prose),
analyzes them, and prints the measured table next to the paper's counts.

Run with::

    python examples/figure9_table.py
"""

from repro.bench.report import comparison_table, error_taxonomy, figure9_table
from repro.bench.runner import run_suite


def main() -> int:
    print("running the synthesized Figure 9 suite (eleven programs)...")
    print()
    suite = run_suite()

    print(figure9_table(suite))
    print()
    print("paper vs measured:")
    print(comparison_table(suite))
    print()
    print("error taxonomy (paper §5.2: 3 unregistered + 2 leaks + 19 type):")
    for kind, count in sorted(error_taxonomy(suite).items()):
        print(f"  {kind:<22} {count}")

    ok = suite.all_match_ground_truth and suite.matches_paper_totals
    print()
    print("reproduction OK" if ok else "MISMATCH against the paper")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
