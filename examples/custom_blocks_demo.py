"""Custom types: C data smuggled through OCaml (paper §2, end).

Glue code for system libraries hands C pointers to OCaml as opaque values
(a window handle, an SSL context, ...).  OCaml cannot inspect them, but it
*can* pass them back to the wrong C function — a cross-language type cast.
The checker gives each abstract OCaml type a hidden C representation
(`ct custom`); the first cast pins it down and later uses must agree.

Run with::

    python examples/custom_blocks_demo.py
"""

from repro import analyze_project

OCAML = """
type window
type cursor

external create_window : int -> window        = "ml_create_window"
external move_window   : window -> int -> unit = "ml_move_window"
external create_cursor : unit -> cursor        = "ml_create_cursor"
external warp_cursor   : cursor -> int -> unit = "ml_warp_cursor"
"""

CORRECT_C = """
struct win;
struct cur;
struct win *x_create_window(int w);
void x_move_window(struct win *w, int dx);
struct cur *x_create_cursor(void);
void x_warp_cursor(struct cur *c, int dx);

value ml_create_window(value w)
{
    struct win *h = x_create_window(Int_val(w));
    return (value)h;
}
value ml_move_window(value v, value dx)
{
    x_move_window((struct win *)v, Int_val(dx));
    return Val_unit;
}
value ml_create_cursor(value u)
{
    struct cur *c = x_create_cursor();
    return (value)c;
}
value ml_warp_cursor(value v, value dx)
{
    x_warp_cursor((struct cur *)v, Int_val(dx));
    return Val_unit;
}
"""

# The cursor functions treat the cursor value as a *window* struct: the
# OCaml type `cursor` would hide two different C representations.
BUGGY_C = CORRECT_C.replace(
    "x_warp_cursor((struct cur *)v, Int_val(dx));",
    "x_move_window((struct win *)v, Int_val(dx));",
)


def main() -> int:
    print("correct glue:")
    clean = analyze_project([OCAML], [CORRECT_C])
    print(f"  {len(clean.diagnostics)} diagnostic(s)")
    for diag in clean.diagnostics:
        print("  " + diag.render())

    print()
    print("glue that warps the cursor as if it were a window:")
    buggy = analyze_project([OCAML], [BUGGY_C])
    for diag in buggy.diagnostics:
        print("  " + diag.render())

    ok = not clean.diagnostics and len(buggy.diagnostics) >= 1
    print()
    print("demo OK" if ok else "unexpected results")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
