"""GC safety across the FFI: effects and the protection set (paper §1, §3).

Before C code calls anything that may trigger the OCaml garbage collector
— allocation, callbacks, raising — every live pointer into the OCaml heap
must be registered with ``CAMLparam``/``CAMLlocal``, and a function that
registered values must exit through ``CAMLreturn``.  The checker tracks a
``gc``/``nogc`` effect per function, closes it over the call graph, and
enforces the invariant even when the allocation is buried in a helper —
the "indirectly call the OCaml runtime" case the paper highlights.

Run with::

    python examples/gc_safety_demo.py
"""

from repro import analyze_project

OCAML = """
external mk_pair  : string -> string -> string * string = "ml_mk_pair"
external mk_flat  : int -> int -> int                   = "ml_mk_flat"
external wrap     : string -> string ref                = "ml_wrap"
external length2  : string -> int                       = "ml_length2"
"""

C_SOURCE = """
#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <caml/memory.h>

/* correct: everything registered, released by CAMLreturn */
value ml_mk_pair(value a, value b)
{
    CAMLparam2(a, b);
    CAMLlocal1(r);
    r = caml_alloc(2, 0);
    Store_field(r, 0, a);
    Store_field(r, 1, b);
    CAMLreturn(r);
}

/* correct: ints are unboxed, no registration needed */
value ml_mk_flat(value a, value b)
{
    return Val_int(Int_val(a) + Int_val(b));
}

/* helper that allocates: its effect is gc, and it taints callers */
static value alloc_cell(value v)
{
    CAMLparam1(v);
    CAMLlocal1(r);
    r = caml_alloc(1, 0);
    Store_field(r, 0, v);
    CAMLreturn(r);
}

/* BUG 1: s is live across alloc_cell (which may collect) but was never
   registered — the GC may move the string behind our back */
value ml_wrap(value s)
{
    value cell = alloc_cell(s);
    some_logging(String_val(s));
    return cell;
}

/* BUG 2: registered with CAMLparam but exits with plain return */
value ml_length2(value s)
{
    CAMLparam1(s);
    int n = caml_string_length(s);
    return Val_int(2 * n);
}
"""


def main() -> int:
    report = analyze_project([OCAML], [C_SOURCE])
    print("Diagnostics:")
    for diag in report.diagnostics:
        print("  " + diag.render())
    print()
    print(f"GC obligations checked : {report.gc_summary.checked_calls}")
    print(f"calls that may collect : {report.gc_summary.gc_calls}")
    print(f"violations             : {report.gc_summary.violations}")

    errors = {d.kind.name for d in report.errors}
    ok = errors == {"UNPROTECTED_VALUE", "MISSING_CAMLRETURN"}
    print()
    print("demo OK" if ok else f"unexpected error set: {errors}")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
