#include <Python.h>

/* seeded defects, one per function:
 *   bad_arity    - "ll" converts two arguments, only one pointer given
 *   bad_types    - "s" writes a char* but &count is a long*
 *   bad_leak     - the tuple built first is never released
 *   bad_use      - scratch is used after Py_DECREF released it
 *   bad_borrow   - a borrowed item is returned without Py_INCREF
 */

static PyObject *
bad_arity(PyObject *self, PyObject *args)
{
    long a;
    if (!PyArg_ParseTuple(args, "ll", &a))
        return NULL;
    return PyLong_FromLong(a);
}

static PyObject *
bad_types(PyObject *self, PyObject *args)
{
    long count;
    if (!PyArg_ParseTuple(args, "s", &count))
        return NULL;
    return PyLong_FromLong(count);
}

static PyObject *
bad_leak(PyObject *self, PyObject *args)
{
    PyObject *scratch = PyList_New(0);
    long x;
    if (!PyArg_ParseTuple(args, "l", &x))
        return NULL;
    return PyLong_FromLong(x + 1);
}

static PyObject *
bad_use(PyObject *self, PyObject *args)
{
    PyObject *scratch = PyLong_FromLong(7);
    Py_DECREF(scratch);
    return scratch;
}

static PyObject *
bad_borrow(PyObject *self, PyObject *args)
{
    PyObject *seq;
    PyObject *item;
    if (!PyArg_ParseTuple(args, "O", &seq))
        return NULL;
    item = PyTuple_GetItem(seq, 0);
    return item;
}

static PyMethodDef BadMethods[] = {
    {"bad_arity", bad_arity, METH_VARARGS, "format converts more than supplied"},
    {"bad_types", bad_types, METH_VARARGS, "format unit disagrees with pointer"},
    {"bad_leak", bad_leak, METH_VARARGS, "owned reference never released"},
    {"bad_use", bad_use, METH_VARARGS, "use after Py_DECREF"},
    {"bad_borrow", bad_borrow, METH_VARARGS, "borrowed reference escapes"},
    {NULL, NULL, 0, NULL}
};

static struct PyModuleDef badmodule = {
    PyModuleDef_HEAD_INIT, "bad", NULL, -1, BadMethods
};

PyMODINIT_FUNC
PyInit_bad(void)
{
    return PyModule_Create(&badmodule);
}
