#include <Python.h>

/* correct CPython extension glue: formats match their output pointers,
 * every new reference is returned or released, borrowed references are
 * INCREF-ed before they escape */

static PyObject *
spam_add(PyObject *self, PyObject *args)
{
    long a, b;
    if (!PyArg_ParseTuple(args, "ll", &a, &b))
        return NULL;
    return PyLong_FromLong(a + b);
}

static PyObject *
spam_greet(PyObject *self, PyObject *args)
{
    const char *name;
    if (!PyArg_ParseTuple(args, "s", &name))
        return NULL;
    return PyUnicode_FromString(name);
}

static PyObject *
spam_first(PyObject *self, PyObject *args)
{
    PyObject *seq;
    PyObject *item;
    if (!PyArg_ParseTuple(args, "O", &seq))
        return NULL;
    item = PyTuple_GetItem(seq, 0);
    if (item == NULL)
        return NULL;
    Py_INCREF(item);
    return item;
}

static PyObject *
spam_pair(PyObject *self, PyObject *args)
{
    long x;
    if (!PyArg_ParseTuple(args, "l", &x))
        return NULL;
    return Py_BuildValue("ll", x, x);
}

static PyMethodDef SpamMethods[] = {
    {"add", spam_add, METH_VARARGS, "Add two integers."},
    {"greet", spam_greet, METH_VARARGS, "Greet by name."},
    {"first", spam_first, METH_VARARGS, "First element of a tuple."},
    {"pair", spam_pair, METH_VARARGS, "Duplicate an integer into a pair."},
    {NULL, NULL, 0, NULL}
};

static struct PyModuleDef spammodule = {
    PyModuleDef_HEAD_INIT, "spam", NULL, -1, SpamMethods
};

PyMODINIT_FUNC
PyInit_spam(void)
{
    return PyModule_Create(&spammodule);
}
