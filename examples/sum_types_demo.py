"""The paper's running example (Figures 2 and 8): representational types.

``type t = A of int | B | C of int * int | D`` has four constructors with
two distinct physical representations: ``B``/``D`` are unboxed integers 0
and 1, ``A``/``C`` are pointers to tagged blocks.  Glue code must test
``Is_long`` before ``Int_val`` or ``Tag_val`` — the checker validates this
idiom flow-sensitively and infers the representational type

    (2,  (⊤, ∅)  +  (⊤, ∅) × (⊤, ∅))

for ``x``: two nullary constructors, products of one and two int fields.
This demo runs the correct dispatch, prints the inferred type, then shows
three broken variants and what the checker says about each.

Run with::

    python examples/sum_types_demo.py
"""

from repro.api import Project
from repro.core.checker import Checker

OCAML = """
type t = A of int | B | C of int * int | D
external examine : t -> int = "ml_examine"
"""

CORRECT = """
value ml_examine(value x)
{
    int result = 0;
    if (Is_long(x)) {
        switch (Int_val(x)) {
        case 0: /* B */ result = 1; break;
        case 1: /* D */ result = 2; break;
        }
    } else {
        switch (Tag_val(x)) {
        case 0: /* A */ result = Int_val(Field(x, 0)); break;
        case 1: /* C */ result = Int_val(Field(x, 1)); break;
        }
    }
    return Val_int(result);
}
"""

BROKEN = {
    "Field without any test (x may be B or D, an unboxed int)": """
value ml_examine(value x)
{
    return Field(x, 0);
}
""",
    "Tag test beyond the type (t has no constructor with tag 2)": """
value ml_examine(value x)
{
    if (Is_long(x)) return Val_int(0);
    if (Tag_val(x) == 2) return Field(x, 0);
    return Val_int(1);
}
""",
    "Nullary-constructor test beyond the type (only B=0 and D=1 exist)": """
value ml_examine(value x)
{
    if (Is_long(x)) {
        if (Int_val(x) == 5) return Val_int(9);
    }
    return Val_int(0);
}
""",
}


def show(title: str, c_source: str) -> None:
    print(f"--- {title}")
    project = Project().add_ocaml(OCAML).add_c(c_source)
    checker = Checker(project.lower(), project.build_initial_env())
    report = checker.run()
    if not report.diagnostics:
        unifier = checker.ctx.unifier
        fn_ct = checker.ctx.functions["ml_examine"].ct
        inferred = unifier.deep_resolve_mt(fn_ct.params[0].mt)
        print("  accepted; inferred representational type of x:")
        print(f"    {inferred}")
    else:
        for diag in report.diagnostics:
            print("  " + diag.render())
    print()


def main() -> int:
    show("correct Figure 2 dispatch", CORRECT)
    for title, source in BROKEN.items():
        show(title, source)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
