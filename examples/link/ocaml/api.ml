(* api.ml -- the host interface both stub units implement.

   Each external below is per-unit clean: the stub that defines it
   matches the declared type exactly.  The bugs in this corpus are
   cross-unit only, visible to `mlffi-check link`:

   - ml_make is defined (identically) in BOTH stubs_a.c and
     stubs_b.c -> LINK_DUPLICATE_REGISTRATION at link time.
   - shared_helper is defined with two arguments in stubs_a.c but
     declared with one in stubs_b.c -> LINK_CONFLICTING_DECL.
   - ml_missing is bound here but defined in no stub file
     -> LINK_UNRESOLVED_EXTERN. *)

external make : int -> int = "ml_make"
external release : int -> unit = "ml_release"
external missing : int -> int = "ml_missing"
