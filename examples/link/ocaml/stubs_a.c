#include <caml/mlvalues.h>

/* Unit A: owns the real two-argument shared_helper and one copy of
 * ml_make.  This unit is clean in isolation; the conflicts only
 * appear once it is linked against stubs_b.c. */

value shared_helper(value a, value b)
{
    return Val_int(Int_val(a) + Int_val(b));
}

value ml_make(value n)
{
    return Val_int(Int_val(n) + 1);
}
