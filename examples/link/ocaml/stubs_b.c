#include <caml/mlvalues.h>

/* Unit B: copy-paste drift.  It carries its own (identical) copy of
 * ml_make, and declares shared_helper with ONE argument where unit A
 * defines it with two.  Both units check clean on their own; the link
 * step reports the duplicate definition and the conflicting
 * declaration. */

value shared_helper(value a);

value ml_make(value n)
{
    return Val_int(Int_val(n) + 1);
}

value ml_release(value n)
{
    shared_helper(n);
    return Val_unit;
}
