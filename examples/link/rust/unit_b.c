/* Unit B: re-declares `c_token_count` with a `uintptr_t` return —
 * also pointer-width, so this unit checks clean in isolation, but the
 * spelling conflicts with unit A at link time — and defines its own
 * copy of `shared_helper`. */

#include <stdint.h>

extern uintptr_t c_token_count(const char *text);

int shared_helper(int seed)
{
    return (int)c_token_count("one two") + seed;
}
