/* Unit A: declares `c_token_count` with a `size_t` return and defines
 * `shared_helper` — both consistent with `lib.rs` on their own. */

#include <stddef.h>

size_t c_token_count(const char *text)
{
    size_t tokens = 0;
    int in_word = 0;
    for (; text != NULL && *text != '\0'; text++) {
        if (*text == ' ') {
            in_word = 0;
        } else if (!in_word) {
            in_word = 1;
            tokens++;
        }
    }
    return tokens;
}

int shared_helper(int seed)
{
    return seed * 2 + 1;
}
