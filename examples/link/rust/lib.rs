//! Shared Rust host for the cross-unit link demo.  Every declaration
//! here agrees with *some* unit, so each translation unit checks clean
//! in isolation — the defects only appear when the linker unions the
//! per-unit interface summaries:
//!
//! * `c_token_count` — both units declare a pointer-width return, so
//!   the per-unit width check passes, but one spells it `size_t` and
//!   the other `uintptr_t` (LINK_CONFLICTING_DECL);
//! * `shared_helper` — defined in both units
//!   (LINK_DUPLICATE_DEFINITION);
//! * `c_missing_hook` — bound here but defined nowhere
//!   (LINK_UNRESOLVED_EXTERN, warning).

use std::os::raw::{c_char, c_int};

extern "C" {
    fn c_token_count(text: *const c_char) -> usize;
    fn shared_helper(seed: c_int) -> c_int;
    fn c_missing_hook();
}

#[no_mangle]
pub extern "C" fn rs_entry(text: *const c_char) -> c_int {
    unsafe {
        if c_token_count(text) == 0 {
            c_missing_hook();
        }
        shared_helper(7)
    }
}
