#include <jni.h>

/* Unit alpha: one copy of Java_com_example_Link_add and the real
 * two-argument shared_sum.  Clean in isolation; the cross-unit bugs
 * are shared with native_beta.c:
 *
 * - both units define Java_com_example_Link_add with the same type
 *   -> LINK_DUPLICATE_REGISTRATION
 * - native_beta.c declares shared_sum with one argument
 *   -> LINK_CONFLICTING_DECL
 * - native_beta.c registers "mul" -> native_mul, defined nowhere
 *   -> LINK_UNRESOLVED_EXTERN */

jint shared_sum(jint a, jint b)
{
    return a + b;
}

JNIEXPORT jint JNICALL
Java_com_example_Link_add(JNIEnv *env, jobject self, jint a, jint b)
{
    return shared_sum(a, b);
}
