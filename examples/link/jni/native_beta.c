#include <jni.h>

/* Unit beta: the drifted twin of native_alpha.c.  It carries its own
 * identical copy of Java_com_example_Link_add, declares shared_sum
 * with ONE argument where alpha defines it with two, and its
 * registration table binds "mul" to a native_mul that no linked unit
 * defines.  Each file checks clean alone; `mlffi-check link` reports
 * all three. */

jint shared_sum(jint a);

JNIEXPORT jint JNICALL
Java_com_example_Link_add(JNIEnv *env, jobject self, jint a, jint b)
{
    return a + b;
}

JNIEXPORT jint JNICALL
Java_com_example_Link_twice(JNIEnv *env, jobject self, jint a)
{
    return shared_sum(a);
}

static JNINativeMethod link_methods[] = {
    {"mul", "(II)I", (void *) native_mul},
};
