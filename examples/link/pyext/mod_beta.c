#include <Python.h>

/* Module beta: the drifted twin of mod_alpha.c.  It re-registers the
 * Python name "compute" (alpha already claims it), declares shared_log
 * with ONE argument where alpha defines it with two, and registers
 * "vanish" against a C function nobody ever wrote.  All three bugs are
 * invisible per unit and caught by `mlffi-check link`. */

long shared_log(long level);

static PyObject *
beta_compute(PyObject *self, PyObject *args)
{
    long x;
    if (!PyArg_ParseTuple(args, "l", &x))
        return NULL;
    return PyLong_FromLong(shared_log(x));
}

static PyMethodDef beta_methods[] = {
    {"compute", beta_compute, METH_VARARGS, "Log one integer."},
    {"vanish", beta_vanish, METH_VARARGS, "Registered but never defined."},
    {NULL, NULL, 0, NULL}
};

static struct PyModuleDef betamodule = {
    PyModuleDef_HEAD_INIT, "beta", NULL, -1, beta_methods
};

PyMODINIT_FUNC
PyInit_beta(void)
{
    return PyModule_Create(&betamodule);
}
