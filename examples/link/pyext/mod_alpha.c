#include <Python.h>

/* Module alpha: owns the real two-argument shared_log and registers a
 * method under the Python name "compute".  Clean in isolation; the
 * link-time bugs are shared with mod_beta.c:
 *
 * - both modules register the Python name "compute"
 *   -> LINK_DUPLICATE_REGISTRATION
 * - mod_beta.c declares shared_log with one argument
 *   -> LINK_CONFLICTING_DECL
 * - mod_beta.c registers "vanish" -> beta_vanish, defined nowhere
 *   -> LINK_UNRESOLVED_EXTERN */

long shared_log(long level, long amount)
{
    return level + amount;
}

static PyObject *
alpha_compute(PyObject *self, PyObject *args)
{
    long a;
    long b;
    if (!PyArg_ParseTuple(args, "ll", &a, &b))
        return NULL;
    return PyLong_FromLong(shared_log(a, b));
}

static PyMethodDef alpha_methods[] = {
    {"compute", alpha_compute, METH_VARARGS, "Add two integers."},
    {NULL, NULL, 0, NULL}
};

static struct PyModuleDef alphamodule = {
    PyModuleDef_HEAD_INIT, "alpha", NULL, -1, alpha_methods
};

PyMODINIT_FUNC
PyInit_alpha(void)
{
    return PyModule_Create(&alphamodule);
}
