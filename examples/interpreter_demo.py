"""Soundness in action: run glue code on the operational semantics (§4).

Theorem 1 says a well-typed program never gets stuck.  This demo builds a
random variant type, lets the *inference system* judge a correct and a
buggy dispatch function over it, and then *executes* both on concrete
inhabitants with the paper's small-step machine — showing that the
rejected program is exactly the one whose execution gets stuck.

Run with::

    python examples/interpreter_demo.py
"""

import random

from repro.semantics.generator import generate_program
from repro.semantics.machine import run_generated
from repro.semantics.reduce import Outcome


def show(title: str, sabotage) -> bool:
    rng = random.Random(2005)
    program = generate_program(rng, sabotage)
    sample = run_generated(program, rng, runs=8)

    print(f"--- {title}")
    print("OCaml:")
    for line in program.ocaml_source.splitlines():
        print("   " + line)
    print("checker verdict: ", "ACCEPTED" if sample.accepted else "REJECTED")
    if not sample.accepted:
        for diag in sample.report.errors:
            print("   " + diag.render())
        print()
        return True
    assert sample.run is not None
    print(
        f"machine: ran on input {sample.input_value} -> "
        f"{sample.run.outcome.value} in {sample.run.steps} steps "
        f"(returned {sample.run.returned})"
    )
    print()
    return sample.run.outcome is not Outcome.STUCK


def main() -> int:
    ok = True
    ok &= show("correct dispatch (accepted, runs to completion)", None)
    ok &= show("sabotaged: Field without Is_long test", "field_without_test")
    ok &= show("sabotaged: tag test beyond the type", "tag_too_big")
    ok &= show("sabotaged: Val_int applied to the value", "val_int_on_value")
    print("demo OK" if ok else "soundness violated?!")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
