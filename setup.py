"""Build hook for the optional mypyc-compiled kernel.

The default build (``pip wheel .``, ``pip install .``) is pure Python and
needs nothing beyond setuptools — this file then degenerates to a plain
``setup()`` call.  Setting ``MLFFI_COMPILE=1`` compiles the kernel module
set (:data:`repro.kernel.KERNEL_MODULES`) with mypyc into extension
modules that shadow their ``.py`` sources inside the wheel; the sources
are still shipped so ``MLFFI_PURE_PYTHON=1`` can fall back to the
interpreted kernel at runtime.

The gate is deliberate: mypyc is a build-time-only dependency (the
``compiled`` extra), and a missing toolchain must never break a source
install.  ``scripts/build_kernel.py`` is the developer-facing wrapper.
"""

from __future__ import annotations

import os
import sys

from setuptools import setup


def _kernel_sources() -> list[str]:
    """The .py files behind repro.kernel.KERNEL_MODULES, without importing
    the package (build isolation may not have src/ on sys.path)."""
    sys.path.insert(0, os.path.join(os.path.dirname(__file__), "src"))
    try:
        from repro.kernel import KERNEL_MODULES
    finally:
        sys.path.pop(0)
    return [
        os.path.join("src", *name.split(".")) + ".py"
        for name in KERNEL_MODULES
    ]


ext_modules = []
if os.environ.get("MLFFI_COMPILE", "").strip() in ("1", "true", "on"):
    try:
        from mypyc.build import mypycify
    except ImportError as exc:  # pragma: no cover - toolchain guard
        raise SystemExit(
            "MLFFI_COMPILE=1 needs the mypyc toolchain: "
            "pip install '.[compiled]' (error: %s)" % exc
        )
    ext_modules = mypycify(
        _kernel_sources(),
        # one extension per module, dropped next to its source inside
        # the package so import wins by suffix priority
        separate=True,
        strip_asserts=False,
    )

setup(ext_modules=ext_modules)
