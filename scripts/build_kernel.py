#!/usr/bin/env python3
"""Compile the kernel in place with mypyc (developer convenience).

Builds the extension modules for :data:`repro.kernel.KERNEL_MODULES`
directly inside ``src/repro`` so a ``PYTHONPATH=src`` checkout runs the
compiled kernel without installing a wheel.  Requires the ``compiled``
extra (``pip install -e '.[compiled]'``).

Usage::

    python scripts/build_kernel.py            # compile in place
    python scripts/build_kernel.py --clean    # remove compiled artifacts
    python scripts/build_kernel.py --status   # report kernel flavor

Verification after a build::

    PYTHONPATH=src python -c "from repro import kernel; print(kernel.describe())"
    PYTHONPATH=src python -m pytest -q            # compiled run
    MLFFI_PURE_PYTHON=1 PYTHONPATH=src python -m pytest -q   # fallback run
"""

from __future__ import annotations

import argparse
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"

sys.path.insert(0, str(SRC))
from repro.kernel import KERNEL_MODULES  # noqa: E402


def _artifact_paths() -> list[Path]:
    found: list[Path] = []
    for name in KERNEL_MODULES:
        stem = SRC.joinpath(*name.split("."))
        for candidate in stem.parent.glob(stem.name + ".*"):
            if candidate.suffix in (".so", ".pyd", ".c"):
                found.append(candidate)
    return found


def clean() -> int:
    removed = 0
    for path in _artifact_paths():
        path.unlink()
        removed += 1
        print(f"removed {path.relative_to(REPO)}")
    build_dir = REPO / "build"
    if build_dir.is_dir():
        import shutil

        shutil.rmtree(build_dir)
        print("removed build/")
    print(f"{removed} artifact(s) removed")
    return 0


def status() -> int:
    from repro import kernel

    for key, value in kernel.describe().items():
        print(f"{key}: {value}")
    return 0


def build() -> int:
    try:
        import mypyc  # noqa: F401
    except ImportError:
        print(
            "mypyc not available — install the toolchain first:\n"
            "  pip install -e '.[compiled]'",
            file=sys.stderr,
        )
        return 1
    sources = [
        str(SRC.joinpath(*name.split(".")).with_suffix(".py"))
        for name in KERNEL_MODULES
    ]
    cmd = [
        sys.executable,
        "-c",
        (
            "import sys; from mypyc.build import mypycify; "
            "from setuptools import setup; "
            "setup(script_args=['build_ext', '--inplace'], "
            "ext_modules=mypycify(sys.argv[1:], separate=True))"
        ),
        *sources,
    ]
    result = subprocess.run(cmd, cwd=REPO)
    if result.returncode != 0:
        return result.returncode
    compiled = [p for p in _artifact_paths() if p.suffix in (".so", ".pyd")]
    print(f"compiled {len(compiled)}/{len(KERNEL_MODULES)} kernel modules")
    return 0 if compiled else 1


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--clean", action="store_true", help="remove compiled artifacts")
    parser.add_argument("--status", action="store_true", help="report kernel flavor")
    args = parser.parse_args()
    if args.clean:
        return clean()
    if args.status:
        return status()
    return build()


if __name__ == "__main__":
    raise SystemExit(main())
