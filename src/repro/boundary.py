"""The multi-dialect boundary layer.

The paper's inference is not OCaml-specific: it needs (a) an initial
environment ``Γ_I`` giving the C types of the functions the host language
calls, (b) a table of runtime entry points with their GC effects, and
(c) a notion of which C type is "a host value".  Everything else — the
Figure 6/7 rules, the representational lattice, the effect solver — is
shared.  A :class:`BoundaryDialect` packages exactly that per-FFI
knowledge, so the engine, the CLI, and the library API can check any
foreign boundary the same way:

* ``ocaml`` — the paper's OCaml-to-C FFI (:mod:`repro.ocamlfront.dialect`);
* ``pyext`` — CPython extension modules (:mod:`repro.pyext.dialect`),
  where ``PyObject *`` plays the role of ``value``, ``PyMethodDef``
  tables play the role of ``external`` declarations, and the
  ``Py_INCREF``/``Py_DECREF`` reference discipline plays the role of
  ``CAMLprotect``;
* ``jni`` — Java Native Interface glue (:mod:`repro.jni.dialect`), where
  ``jobject`` is the boxed value, ``JNINativeMethod`` tables and the
  ``Java_*`` export convention are the boundary contract, JVM type
  descriptors are the conversion signatures, and the local/global
  reference lifecycle is the protection discipline;
* ``rust`` — Rust ``extern "C"`` FFI (:mod:`repro.rustffi.dialect`),
  where ``extern`` blocks and ``#[no_mangle]`` export mirrors are the
  boundary contract, ``Γ_I`` comes from the ``.rs`` side the way
  ``ocamlfront`` reads it from the repository, and declaration agreement
  (arity, rendered type, platform width class) is the checked property.

Adding a fifth dialect (Lua, Erlang NIFs, ...) means implementing the
protocol below and registering it with a :class:`DialectSpec`; nothing
in the core or the engine changes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Protocol, runtime_checkable

if TYPE_CHECKING:  # avoid import cycles: core/engine never import us back
    from .core.checker import AnalysisReport, InitialEnv
    from .core.environment import Entry
    from .engine.jobs import CheckRequest


@dataclass(frozen=True)
class DialectSpec:
    """The declarative capability surface of one registered dialect.

    Historically this knowledge was scattered: the corpus scanner probed
    ``corpus_unit_suffixes`` with ``getattr``, the benchmarks hardcoded
    per-dialect example directories, and the rule pack was implied by
    kind-name prefixes.  A spec states all of it in one value, handed to
    :func:`register_dialect` alongside the dialect object; consumers
    (:mod:`repro.corpus`, the CLI's ``rules``/``conformance`` commands,
    the benchmark harnesses) read the spec instead of probing the
    dialect.  Dialects registered without a spec (third-party) get one
    derived from their attributes, so the old structural contract keeps
    working.
    """

    name: str
    #: suffixes of host-language sources feeding ``Γ_I``
    host_suffixes: tuple[str, ...] = ()
    #: suffixes accepted as C-side inputs (units and headers)
    unit_suffixes: tuple[str, ...] = (".c", ".h")
    #: the subset of ``unit_suffixes`` a tree scan treats as standalone
    #: translation units (headers are reached as dependencies)
    corpus_unit_suffixes: tuple[str, ...] = (".c",)
    #: repo-relative seeded example corpus (clean + bad), "" if none
    example_dir: str = ""
    #: repo-relative multi-unit link-example slice, "" if none
    link_example_dir: str = ""
    #: repo-relative benchmark module gating this dialect, "" if none
    bench_module: str = ""
    #: name of this dialect's pack in :mod:`repro.rules` (usually the
    #: dialect name; the paper's own taxonomy is the ``ocaml`` pack)
    rule_pack: str = ""

    def __post_init__(self) -> None:
        if not self.rule_pack:
            object.__setattr__(self, "rule_pack", self.name)


def derive_spec(dialect) -> DialectSpec:
    """A spec for a dialect registered without one.

    This is the single home of the capability probes that used to be
    scattered: the ``corpus_unit_suffixes`` pin wins when present,
    otherwise unit suffixes are derived by dropping header-ish and host
    suffixes, falling back to the historic ``.c``-only scan.
    """
    hosts = tuple(getattr(dialect, "host_suffixes", ()))
    units = tuple(getattr(dialect, "unit_suffixes", ()))
    pinned = tuple(getattr(dialect, "corpus_unit_suffixes", ()) or ())
    if not pinned:
        pinned = tuple(
            suffix
            for suffix in units
            if suffix not in hosts and suffix not in (".h", ".hpp", ".hh")
        ) or (".c",)
    return DialectSpec(
        name=getattr(dialect, "name", "<anonymous>"),
        host_suffixes=hosts,
        unit_suffixes=units,
        corpus_unit_suffixes=pinned,
    )


@runtime_checkable
class BoundaryDialect(Protocol):
    """Everything dialect-specific the shared analysis consumes.

    The seeding methods build *fresh* inference variables on every call —
    entries must never be shared between analysis runs, or one program's
    unifier bindings would leak into the next.
    """

    #: registry key, also the CLI's ``--dialect`` value
    name: str
    #: suffixes of host-language sources feeding ``Γ_I`` (may be empty:
    #: pyext reads its boundary contract out of the C sources themselves)
    host_suffixes: tuple[str, ...]
    #: suffixes of C translation units
    unit_suffixes: tuple[str, ...]

    # Dialects may additionally pin ``corpus_unit_suffixes`` — the subset
    # of ``unit_suffixes`` a tree scan treats as standalone translation
    # units (headers are reached as dependencies, never scanned alone).
    # When absent, :func:`repro.corpus.unit_suffixes` derives it.  It is
    # deliberately not a protocol member: existing third-party dialects
    # remain structurally valid without it.

    def builtin_entries(self) -> dict[str, "Entry"]:
        """The runtime entry-point table (the dialect's `macros.py`)."""
        ...

    def polymorphic_builtins(self) -> frozenset[str]:
        """Builtins instantiated afresh at every call site."""
        ...

    def global_entries(self) -> dict[str, "Entry"]:
        """Well-known runtime globals visible in every function."""
        ...

    def alloc_result_tags(self) -> dict[str, int | str]:
        """Allocators whose result is a fresh block with a known tag."""
        ...

    def initial_env(self, request: "CheckRequest") -> "InitialEnv":
        """Phase one: build ``Γ_I`` for one translation unit."""
        ...

    def analyze(self, request: "CheckRequest") -> "AnalysisReport":
        """Run both phases for one unit and return the full report."""
        ...

    def unit_dependencies(self, request: "CheckRequest") -> tuple[str, ...]:
        """Files an edit to which must invalidate this unit's result.

        Returned names are as written in the sources: host-language
        interface files by their recorded filename, quoted ``#include``
        targets verbatim.  The incremental engine resolves them against
        the unit's directory and the project root to build its
        dependency graph.
        """
        ...


_REGISTRY: dict[str, BoundaryDialect] = {}
_SPECS: dict[str, DialectSpec] = {}
_BOOTSTRAPPED = False


def register_dialect(
    dialect: BoundaryDialect, spec: Optional[DialectSpec] = None
) -> BoundaryDialect:
    """Make a dialect addressable by name (last registration wins).

    ``spec`` declares the dialect's capability surface; when omitted one
    is derived from the dialect's attributes (the legacy structural
    contract), so third-party registrations keep working unchanged.
    """
    if spec is not None and spec.name != dialect.name:
        raise ValueError(
            f"spec name `{spec.name}` does not match dialect "
            f"`{dialect.name}`"
        )
    _REGISTRY[dialect.name] = dialect
    _SPECS[dialect.name] = spec if spec is not None else derive_spec(dialect)
    return dialect


def _bootstrap() -> None:
    """Import the built-in dialect modules (they self-register)."""
    global _BOOTSTRAPPED
    if _BOOTSTRAPPED:
        return
    _BOOTSTRAPPED = True
    from .jni import dialect as _jni  # noqa: F401
    from .ocamlfront import dialect as _ocaml  # noqa: F401
    from .pyext import dialect as _pyext  # noqa: F401
    from .rustffi import dialect as _rust  # noqa: F401


def get_dialect(name: str) -> BoundaryDialect:
    """Resolve a dialect by name, loading the built-ins on first use."""
    _bootstrap()
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ValueError(
            f"unknown boundary dialect `{name}` (known: {known})"
        ) from None


def get_spec(name: str) -> DialectSpec:
    """The declared (or derived) capability spec of a registered dialect."""
    get_dialect(name)  # bootstrap + unknown-name error path
    return _SPECS[name]


def spec_of(dialect_or_spec) -> DialectSpec:
    """Normalize ``DialectSpec`` | dialect name | registered dialect |
    dialect-like.

    The corpus scanner and benchmarks accept any of these; an
    unregistered dialect-like object gets a derived spec so structural
    third-party dialects can still drive a tree scan directly.
    """
    if isinstance(dialect_or_spec, DialectSpec):
        return dialect_or_spec
    if isinstance(dialect_or_spec, str):
        return get_spec(dialect_or_spec)
    name = getattr(dialect_or_spec, "name", None)
    if name is not None and _REGISTRY.get(name) is dialect_or_spec:
        return _SPECS[name]
    return derive_spec(dialect_or_spec)


def available_dialects() -> tuple[str, ...]:
    """Names of every registered dialect, sorted."""
    _bootstrap()
    return tuple(sorted(_REGISTRY))
