"""The multi-dialect boundary layer.

The paper's inference is not OCaml-specific: it needs (a) an initial
environment ``Γ_I`` giving the C types of the functions the host language
calls, (b) a table of runtime entry points with their GC effects, and
(c) a notion of which C type is "a host value".  Everything else — the
Figure 6/7 rules, the representational lattice, the effect solver — is
shared.  A :class:`BoundaryDialect` packages exactly that per-FFI
knowledge, so the engine, the CLI, and the library API can check any
foreign boundary the same way:

* ``ocaml`` — the paper's OCaml-to-C FFI (:mod:`repro.ocamlfront.dialect`);
* ``pyext`` — CPython extension modules (:mod:`repro.pyext.dialect`),
  where ``PyObject *`` plays the role of ``value``, ``PyMethodDef``
  tables play the role of ``external`` declarations, and the
  ``Py_INCREF``/``Py_DECREF`` reference discipline plays the role of
  ``CAMLprotect``;
* ``jni`` — Java Native Interface glue (:mod:`repro.jni.dialect`), where
  ``jobject`` is the boxed value, ``JNINativeMethod`` tables and the
  ``Java_*`` export convention are the boundary contract, JVM type
  descriptors are the conversion signatures, and the local/global
  reference lifecycle is the protection discipline.

Adding a fourth dialect (Rust ``extern "C"``, Lua, ...) means
implementing the protocol below and registering it; nothing in the core
or the engine changes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol, runtime_checkable

if TYPE_CHECKING:  # avoid import cycles: core/engine never import us back
    from .core.checker import AnalysisReport, InitialEnv
    from .core.environment import Entry
    from .engine.jobs import CheckRequest


@runtime_checkable
class BoundaryDialect(Protocol):
    """Everything dialect-specific the shared analysis consumes.

    The seeding methods build *fresh* inference variables on every call —
    entries must never be shared between analysis runs, or one program's
    unifier bindings would leak into the next.
    """

    #: registry key, also the CLI's ``--dialect`` value
    name: str
    #: suffixes of host-language sources feeding ``Γ_I`` (may be empty:
    #: pyext reads its boundary contract out of the C sources themselves)
    host_suffixes: tuple[str, ...]
    #: suffixes of C translation units
    unit_suffixes: tuple[str, ...]

    # Dialects may additionally pin ``corpus_unit_suffixes`` — the subset
    # of ``unit_suffixes`` a tree scan treats as standalone translation
    # units (headers are reached as dependencies, never scanned alone).
    # When absent, :func:`repro.corpus.unit_suffixes` derives it.  It is
    # deliberately not a protocol member: existing third-party dialects
    # remain structurally valid without it.

    def builtin_entries(self) -> dict[str, "Entry"]:
        """The runtime entry-point table (the dialect's `macros.py`)."""
        ...

    def polymorphic_builtins(self) -> frozenset[str]:
        """Builtins instantiated afresh at every call site."""
        ...

    def global_entries(self) -> dict[str, "Entry"]:
        """Well-known runtime globals visible in every function."""
        ...

    def alloc_result_tags(self) -> dict[str, int | str]:
        """Allocators whose result is a fresh block with a known tag."""
        ...

    def initial_env(self, request: "CheckRequest") -> "InitialEnv":
        """Phase one: build ``Γ_I`` for one translation unit."""
        ...

    def analyze(self, request: "CheckRequest") -> "AnalysisReport":
        """Run both phases for one unit and return the full report."""
        ...

    def unit_dependencies(self, request: "CheckRequest") -> tuple[str, ...]:
        """Files an edit to which must invalidate this unit's result.

        Returned names are as written in the sources: host-language
        interface files by their recorded filename, quoted ``#include``
        targets verbatim.  The incremental engine resolves them against
        the unit's directory and the project root to build its
        dependency graph.
        """
        ...


_REGISTRY: dict[str, BoundaryDialect] = {}
_BOOTSTRAPPED = False


def register_dialect(dialect: BoundaryDialect) -> BoundaryDialect:
    """Make a dialect addressable by name (last registration wins)."""
    _REGISTRY[dialect.name] = dialect
    return dialect


def _bootstrap() -> None:
    """Import the built-in dialect modules (they self-register)."""
    global _BOOTSTRAPPED
    if _BOOTSTRAPPED:
        return
    _BOOTSTRAPPED = True
    from .jni import dialect as _jni  # noqa: F401
    from .ocamlfront import dialect as _ocaml  # noqa: F401
    from .pyext import dialect as _pyext  # noqa: F401


def get_dialect(name: str) -> BoundaryDialect:
    """Resolve a dialect by name, loading the built-ins on first use."""
    _bootstrap()
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ValueError(
            f"unknown boundary dialect `{name}` (known: {known})"
        ) from None


def available_dialects() -> tuple[str, ...]:
    """Names of every registered dialect, sorted."""
    _bootstrap()
    return tuple(sorted(_REGISTRY))
