"""repro — multi-lingual type inference for the OCaml-to-C FFI.

A from-scratch reproduction of Furr & Foster, *Checking Type Safety of
Foreign Function Calls* (PLDI 2005): representational types for OCaml data
as seen from C, flow-sensitive tracking of boxedness/offset/tag
information, and GC effects that ensure heap pointers are registered before
the collector can run.

Quickstart::

    from repro import analyze_project

    report = analyze_project([ocaml_source], [c_source])
    for diag in report.diagnostics:
        print(diag.render())

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured results.
"""

from . import kernel as _kernel

# Must run before the first kernel-module import below: under
# MLFFI_PURE_PYTHON=1 the interpreted sources win even when a compiled
# kernel wheel is installed.
_kernel.install_pure_python_hook()

from .api import Project, analyze_project, check_c_source  # noqa: E402
from .core.checker import AnalysisReport, Checker, InitialEnv  # noqa: E402
from .core.exprs import Options  # noqa: E402
from .diagnostics import Category, Diagnostic, DiagnosticBag, Kind  # noqa: E402
from .engine import (  # noqa: E402
    BatchReport,
    CheckRequest,
    CheckResult,
    NullCache,
    ResultCache,
    run_batch,
)
from .source import SourceFile  # noqa: E402

__version__ = "1.2.0"

__all__ = [
    "AnalysisReport",
    "BatchReport",
    "Category",
    "Checker",
    "CheckRequest",
    "CheckResult",
    "Diagnostic",
    "DiagnosticBag",
    "InitialEnv",
    "Kind",
    "NullCache",
    "Options",
    "Project",
    "ResultCache",
    "SourceFile",
    "analyze_project",
    "check_c_source",
    "run_batch",
    "__version__",
]
