"""SARIF 2.1.0 output for GitHub code scanning.

Maps the checker's diagnostics onto the Static Analysis Results
Interchange Format: each :class:`~repro.diagnostics.Kind` becomes a
reporting rule (``ruleId`` = the kind's name), each
:class:`~repro.diagnostics.Category` maps to a SARIF ``level`` via
:attr:`Category.sarif_level`, and spans become physical locations with
1-based line/column regions.  ``mlffi-check check --format sarif`` and
``mlffi-check batch --format sarif`` emit one log with a single run, so
the output can be uploaded with ``github/codeql-action/upload-sarif``
unmodified.

A batch sweep goes through :func:`batch_sarif_log` — the single place
that flattens per-unit results, so the log can never split into one run
per translation unit and rule metadata is deduplicated across units
(two units firing the same kind share one ``rules`` entry).  Units the
engine itself failed on (parse crashes) have no diagnostics to report;
they surface as tool-execution notifications on the run's invocation,
with ``executionSuccessful`` cleared, instead of being dropped.
"""

from __future__ import annotations

from itertools import chain
from typing import TYPE_CHECKING, Iterable, Sequence

from .diagnostics import Diagnostic, Kind
from .rules import rule_for_kind
from .source import DUMMY_SPAN, Span

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .engine.jobs import BatchReport

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
TOOL_NAME = "mlffi-check"
TOOL_URI = "https://github.com/paper-repo-growth/mlffi-check"


def rule_for(kind: Kind) -> dict:
    """The ``reportingDescriptor`` for one diagnostic kind.

    Metadata comes from the stable rule registry (:mod:`repro.rules`):
    the ID is the registered rule ID, the help URI and guideline
    provenance ride along, and the dialect pack is named so downstream
    dashboards can group findings without re-deriving prefixes.
    """
    rule = rule_for_kind(kind)
    return {
        "id": rule.id,
        "shortDescription": {"text": rule.summary},
        "helpUri": rule.help_uri,
        "defaultConfiguration": {"level": rule.category.sarif_level},
        "properties": {
            "category": rule.category.value,
            "dialect": rule.dialect,
            "guideline": rule.guideline,
        },
    }


def _region(span: Span) -> dict:
    return {
        "startLine": span.start.line,
        "startColumn": span.start.column,
        "endLine": span.end.line,
        "endColumn": span.end.column,
    }


def result_for(diag: Diagnostic, rule_index: int) -> dict:
    """The SARIF ``result`` object for one diagnostic."""
    result = {
        "ruleId": diag.rule_id,
        "ruleIndex": rule_index,
        "level": diag.category.sarif_level,
        "message": {"text": diag.message},
    }
    # value comparison, not identity: diagnostics round-tripped through
    # the result cache or the daemon wire rebuild an equal-but-distinct
    # Span, and SARIF forbids the synthetic 0:0 region either way
    if diag.span != DUMMY_SPAN:
        result["locations"] = [
            {
                "physicalLocation": {
                    "artifactLocation": {"uri": diag.span.filename},
                    "region": _region(diag.span),
                }
            }
        ]
    if diag.function is not None:
        result["properties"] = {"function": diag.function}
    return result


def sarif_log(
    diagnostics: Iterable[Diagnostic], *, tool_version: str = "1.1.0"
) -> dict:
    """One SARIF log with a single run over ``diagnostics``.

    Rules cover only the kinds that actually fired, in first-appearance
    order, so the log stays small and deterministic for a given report.
    """
    diags: Sequence[Diagnostic] = list(diagnostics)
    rule_index: dict[str, int] = {}
    rules: list[dict] = []
    for diag in diags:
        if diag.kind.name not in rule_index:
            rule_index[diag.kind.name] = len(rules)
            rules.append(rule_for(diag.kind))
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": TOOL_NAME,
                        "informationUri": TOOL_URI,
                        "version": tool_version,
                        "rules": rules,
                    }
                },
                "results": [
                    result_for(diag, rule_index[diag.kind.name])
                    for diag in diags
                ],
            }
        ],
    }


def batch_sarif_log(
    report: "BatchReport",
    *,
    tool_version: str = "1.1.0",
    link_diagnostics: Iterable[Diagnostic] = (),
) -> dict:
    """One merged SARIF log for a whole batch sweep.

    All unit diagnostics flatten, in submission order, into a *single*
    run with rule metadata deduplicated across units; per-unit engine
    failures become tool-execution notifications and clear the
    invocation's ``executionSuccessful`` flag.  ``link_diagnostics``
    (the whole-program link pass's cross-unit reports, ``LINK_*`` kinds)
    append after every unit's rows — they belong to the corpus, not to
    any one unit, so they close the run.
    """
    log = sarif_log(
        chain(
            (diag for result in report.results for diag in result.diagnostics),
            link_diagnostics,
        ),
        tool_version=tool_version,
    )
    notifications = [
        {
            "level": "error",
            "message": {"text": f"{result.name}: {result.failure}"},
            "properties": {"unit": result.name},
        }
        for result in report.results
        if result.failure is not None
    ]
    invocation: dict = {"executionSuccessful": not notifications}
    if notifications:
        invocation["toolExecutionNotifications"] = notifications
    log["runs"][0]["invocations"] = [invocation]
    return log
