"""SARIF 2.1.0 output for GitHub code scanning.

Maps the checker's diagnostics onto the Static Analysis Results
Interchange Format: each :class:`~repro.diagnostics.Kind` becomes a
reporting rule (``ruleId`` = the kind's name), each
:class:`~repro.diagnostics.Category` maps to a SARIF ``level`` via
:attr:`Category.sarif_level`, and spans become physical locations with
1-based line/column regions.  ``mlffi-check check --format sarif`` and
``mlffi-check batch --format sarif`` emit one log with a single run, so
the output can be uploaded with ``github/codeql-action/upload-sarif``
unmodified.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from .diagnostics import Diagnostic, Kind
from .source import DUMMY_SPAN, Span

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
TOOL_NAME = "mlffi-check"
TOOL_URI = "https://github.com/paper-repo-growth/mlffi-check"


def rule_for(kind: Kind) -> dict:
    """The ``reportingDescriptor`` for one diagnostic kind."""
    return {
        "id": kind.name,
        "shortDescription": {"text": kind.summary},
        "defaultConfiguration": {"level": kind.category.sarif_level},
        "properties": {"category": kind.category.value},
    }


def _region(span: Span) -> dict:
    return {
        "startLine": span.start.line,
        "startColumn": span.start.column,
        "endLine": span.end.line,
        "endColumn": span.end.column,
    }


def result_for(diag: Diagnostic, rule_index: int) -> dict:
    """The SARIF ``result`` object for one diagnostic."""
    result = {
        "ruleId": diag.kind.name,
        "ruleIndex": rule_index,
        "level": diag.category.sarif_level,
        "message": {"text": diag.message},
    }
    # value comparison, not identity: diagnostics round-tripped through
    # the result cache or the daemon wire rebuild an equal-but-distinct
    # Span, and SARIF forbids the synthetic 0:0 region either way
    if diag.span != DUMMY_SPAN:
        result["locations"] = [
            {
                "physicalLocation": {
                    "artifactLocation": {"uri": diag.span.filename},
                    "region": _region(diag.span),
                }
            }
        ]
    if diag.function is not None:
        result["properties"] = {"function": diag.function}
    return result


def sarif_log(
    diagnostics: Iterable[Diagnostic], *, tool_version: str = "1.1.0"
) -> dict:
    """One SARIF log with a single run over ``diagnostics``.

    Rules cover only the kinds that actually fired, in first-appearance
    order, so the log stays small and deterministic for a given report.
    """
    diags: Sequence[Diagnostic] = list(diagnostics)
    rule_index: dict[str, int] = {}
    rules: list[dict] = []
    for diag in diags:
        if diag.kind.name not in rule_index:
            rule_index[diag.kind.name] = len(rules)
            rules.append(rule_for(diag.kind))
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": TOOL_NAME,
                        "informationUri": TOOL_URI,
                        "version": tool_version,
                        "rules": rules,
                    }
                },
                "results": [
                    result_for(diag, rule_index[diag.kind.name])
                    for diag in diags
                ],
            }
        ],
    }
