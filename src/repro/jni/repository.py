"""Phase one for the JNI dialect: the class/method repository and ``Γ_I``.

An OCaml ``external`` tells the checker which C function the host will
call and at what type; JNI spells the same contract two ways, and this
module reads both (mirroring :mod:`repro.ocamlfront.repository`):

* ``JNINativeMethod`` registration tables carry the exact JVM signature::

      static JNINativeMethod gMethods[] = {
          {"add", "(II)I", (void *) native_add},
      };

  The descriptor fixes the C signature — ``(II)I`` means ``jint
  native_add(JNIEnv *, jobject, jint, jint)`` — so every readable row
  becomes a :class:`~repro.core.types.CFun` in ``Γ_I`` and the shared
  (Fun Defn) rule unifies the definition against it, exactly as a
  ``PyMethodDef`` row or an ``external`` declaration would be checked.

* Exported ``Java_<Class>_<method>`` functions follow the static-linking
  naming convention; their contract pins the two leading parameters
  (``JNIEnv *`` and the ``jobject``/``jclass`` receiver) while the
  remainder stays free for the body to commit.

The repository also gathers the string constants the unit looks up —
``FindClass`` internal names, ``GetMethodID``/``GetFieldID`` name and
descriptor pairs — into a queryable :class:`ClassRepository`, the JNI
analogue of the OCaml type repository: the descriptor checker consults
per-function bindings, while this index serves whole-unit introspection
and tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cfront import ast
from ..core.checker import InitialEnv
from ..core.types import (
    C_INT,
    C_VOID,
    CFun,
    CPtr,
    CStruct,
    CType,
    CValue,
    NOGC,
    fresh_ctvar,
    fresh_mt,
)
from ..source import DUMMY_SPAN, Span
from ..core.srctypes import CSrcPtr, CSrcStruct
from .calls import VarTypes, env_call
from .descriptors import (
    _FIELD_LOOKUPS,
    _METHOD_LOOKUPS,
    _SCALAR_LETTERS,
    _collect_calls,
    method_descriptor,
)

# -- the native-method tables --------------------------------------------------


@dataclass(frozen=True)
class NativeMethodEntry:
    """One parsed ``JNINativeMethod`` row."""

    java_name: str
    signature: str
    c_name: str
    span: Span = DUMMY_SPAN

    def param_types(self) -> tuple[CType, ...] | None:
        """The C parameter list the descriptor dictates, over fresh
        variables; None when the signature does not parse (the table
        checker reports it, and no contract is seeded)."""
        parsed = method_descriptor(self.signature)
        if parsed is None:
            return None
        letters, _ = parsed
        params: list[CType] = [CPtr(CStruct("JNIEnv")), CValue(fresh_mt())]
        for letter in letters:
            params.append(
                C_INT if letter in _SCALAR_LETTERS else CValue(fresh_mt())
            )
        return tuple(params)

    def result_type(self) -> CType | None:
        parsed = method_descriptor(self.signature)
        if parsed is None:
            return None
        _, ret = parsed
        if ret == "V":
            return C_VOID
        return C_INT if ret in _SCALAR_LETTERS else CValue(fresh_mt())


def _is_table_type(ctype) -> bool:
    node = ctype
    while isinstance(node, CSrcPtr):
        node = node.target
    return isinstance(node, CSrcStruct) and node.name == "JNINativeMethod"


def _fn_pointer_name(expr: ast.CExpr) -> str | None:
    """The function a ``(void *) name`` / ``&name`` row cell points at."""
    while isinstance(expr, ast.Cast):
        expr = expr.operand
    if isinstance(expr, ast.Unary) and expr.op == "&":
        expr = expr.operand
    if isinstance(expr, ast.Name):
        return expr.ident
    return None


def _row_entry(row: ast.InitList) -> NativeMethodEntry | None:
    by_field: dict[str, ast.CExpr] = {}
    positional: list[ast.CExpr] = []
    for item in row.items:
        if item.field_name is not None:
            by_field[item.field_name] = item.value
        else:
            positional.append(item.value)

    def member(name: str, index: int) -> ast.CExpr | None:
        if name in by_field:
            return by_field[name]
        if index < len(positional):
            return positional[index]
        return None

    name_expr = member("name", 0)
    sig_expr = member("signature", 1)
    fn_expr = member("fnPtr", 2)
    if not isinstance(name_expr, ast.Str) or not isinstance(sig_expr, ast.Str):
        return None  # a sentinel row, or unreadable
    c_name = _fn_pointer_name(fn_expr) if fn_expr is not None else None
    if c_name is None:
        return None
    return NativeMethodEntry(
        java_name=name_expr.value,
        signature=sig_expr.value,
        c_name=c_name,
        span=name_expr.span,
    )


def native_method_entries(unit: ast.TranslationUnit) -> list[NativeMethodEntry]:
    """Every readable row of every ``JNINativeMethod`` table in the unit."""
    entries: list[NativeMethodEntry] = []
    for decl in unit.globals:
        if not _is_table_type(decl.ctype):
            continue
        if not isinstance(decl.init, ast.InitList):
            continue
        for item in decl.init.items:
            if isinstance(item.value, ast.InitList):
                entry = _row_entry(item.value)
                if entry is not None:
                    entries.append(entry)
    return entries


# -- the class/method constant index -------------------------------------------


@dataclass
class ClassRepository:
    """String constants the unit resolves against the JVM at runtime.

    ``classes`` are ``FindClass`` internal names; ``methods`` and
    ``fields`` map ``(name, descriptor)`` pairs to the lookup spans, for
    every ``GetMethodID``/``GetFieldID`` family call with literal
    arguments.
    """

    classes: dict[str, Span] = field(default_factory=dict)
    methods: dict[tuple[str, str], Span] = field(default_factory=dict)
    fields: dict[tuple[str, str], Span] = field(default_factory=dict)

    def add_unit(self, unit: ast.TranslationUnit) -> "ClassRepository":
        for fn in unit.functions:
            if fn.body is None:
                continue
            vars = VarTypes(fn)
            calls: list[ast.Call] = []
            _collect_calls(fn.body, calls)
            for call in calls:
                found = env_call(call, vars)
                if found is None:
                    continue
                callee, args = found
                if callee == "FindClass":
                    if args and isinstance(args[0], ast.Str):
                        self.classes.setdefault(args[0].value, call.span)
                    continue
                table = None
                if callee in _METHOD_LOOKUPS:
                    table = self.methods
                elif callee in _FIELD_LOOKUPS:
                    table = self.fields
                if table is None or len(args) < 3:
                    continue
                name, desc = args[1], args[2]
                if isinstance(name, ast.Str) and isinstance(desc, ast.Str):
                    table.setdefault((name.value, desc.value), call.span)
        return self


def build_repository(units: list[ast.TranslationUnit]) -> ClassRepository:
    repo = ClassRepository()
    for unit in units:
        repo.add_unit(unit)
    return repo


# -- Γ_I -----------------------------------------------------------------------

_EXPORT_PREFIXES = ("Java_", "JNICALL_Java_")


def is_native_export(name: str) -> bool:
    return name.startswith(_EXPORT_PREFIXES)


def build_initial_env(units: list[ast.TranslationUnit]) -> InitialEnv:
    """``Γ_I`` for a JNI unit.

    ``JNINativeMethod`` rows contribute full signatures (their descriptor
    fixes every parameter); ``Java_*`` exports not covered by a table get
    the naming-convention contract — ``JNIEnv *`` then a receiver value,
    the rest free — at their *declared* arity, so a definition missing
    the env parameter clashes in unification exactly like an
    ``external``/stub mismatch.  Effects are ``nogc`` (see
    :mod:`repro.jni.runtime`).
    """
    env = InitialEnv()
    for unit in units:
        for entry in native_method_entries(unit):
            params = entry.param_types()
            result = entry.result_type()
            if params is None or result is None:
                continue  # malformed signature: reported by check_tables
            env.functions[entry.c_name] = CFun(
                params=params, result=result, effect=NOGC
            )
            env.spans[entry.c_name] = entry.span
        for fn in unit.functions:
            if fn.name in env.functions or not is_native_export(fn.name):
                continue
            if len(fn.params) < 2:
                # too few parameters to even carry the convention; the
                # shared arity check against this two-param contract fires
                params = (CPtr(CStruct("JNIEnv")), CValue(fresh_mt()))
            else:
                params = (
                    CPtr(CStruct("JNIEnv")),
                    CValue(fresh_mt()),
                ) + tuple(fresh_ctvar() for _ in fn.params[2:])
            env.functions[fn.name] = CFun(
                params=params, result=fresh_ctvar(), effect=NOGC
            )
            env.spans[fn.name] = fn.span
    return env
