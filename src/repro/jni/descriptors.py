"""Static checking of JVM type/method descriptor strings.

A descriptor is a little type signature in disguise: ``(ILjava/lang/
String;)V`` promises the runtime an ``int`` and an object argument and no
result.  The C compiler cannot see through ``jmethodID``/``jfieldID``
handles or the varargs of ``Call<T>Method``, so glue that looks a method
up with one descriptor and calls it as another scribbles over the JVM's
calling convention — the JNI twin of the ``PyArg_ParseTuple`` format
confusions the pyext dialect checks.

The checker is syntactic and flow-insensitive: within each function we
record which descriptor literal every ``jmethodID``/``jfieldID`` variable
was looked up with (``mid = (*env)->GetMethodID(env, cls, "size",
"()I")``), then compare each use — the ``Call<T>Method`` family's return
variant, its argument count and classes, the ``Get<T>Field``/
``Set<T>Field`` field variants — against that descriptor.  Handles bound
on more than one path with different descriptors are never guessed at.
Malformed descriptors (and dotted class names handed to ``FindClass``,
which want ``/`` separators) are reported wherever they appear, including
``JNINativeMethod`` registration tables.
"""

from __future__ import annotations

from typing import Optional

from ..cfront import ast
from ..core.srctypes import CSrcPtr, CSrcScalar, CSrcStruct, CSrcValue
from ..diagnostics import Diagnostic, Kind
from .calls import VarTypes, env_call
from .runtime import RUNTIME_FUNCTIONS, TYPE_VARIANTS

#: argument classes (same vocabulary as pyext formats)
SCALAR = "scalar"
VALUE = "value"

_SCALAR_LETTERS = set("ZBCSIJFD")

#: lookup entry points -> index (after env-drop) of the descriptor literal
_METHOD_LOOKUPS = {"GetMethodID": 2, "GetStaticMethodID": 2}
_FIELD_LOOKUPS = {"GetFieldID": 2, "GetStaticFieldID": 2}

#: call families: callee -> (expected return letter, fixed-arg count)
_CALL_FAMILIES: dict[str, tuple[str, int]] = {}
#: field families: callee -> (expected letter, value-arg index for Set or None)
_FIELD_FAMILIES: dict[str, tuple[str, Optional[int]]] = {}

for _suffix, (_letter, _) in TYPE_VARIANTS.items():
    _CALL_FAMILIES[f"Call{_suffix}Method"] = (_letter, 2)
    _CALL_FAMILIES[f"CallStatic{_suffix}Method"] = (_letter, 2)
    _CALL_FAMILIES[f"CallNonvirtual{_suffix}Method"] = (_letter, 3)
    _FIELD_FAMILIES[f"Get{_suffix}Field"] = (_letter, None)
    _FIELD_FAMILIES[f"GetStatic{_suffix}Field"] = (_letter, None)
    _FIELD_FAMILIES[f"Set{_suffix}Field"] = (_letter, 2)
    _FIELD_FAMILIES[f"SetStatic{_suffix}Field"] = (_letter, 2)
_CALL_FAMILIES["CallVoidMethod"] = ("V", 2)
_CALL_FAMILIES["CallStaticVoidMethod"] = ("V", 2)
_CALL_FAMILIES["CallNonvirtualVoidMethod"] = ("V", 3)


# -- descriptor grammar --------------------------------------------------------


def _parse_field(desc: str, i: int) -> Optional[tuple[str, int]]:
    """``(letter, end)`` of one field descriptor at ``i``; None = malformed.

    The letter is the descriptor's head: a primitive letter, ``L`` for a
    class reference, ``[`` for an array.
    """
    if i >= len(desc):
        return None
    ch = desc[i]
    if ch in _SCALAR_LETTERS:
        return ch, i + 1
    if ch == "L":
        end = desc.find(";", i + 1)
        name = desc[i + 1 : end] if end > 0 else ""
        if not name or "." in name or " " in name:
            return None
        return "L", end + 1
    if ch == "[":
        inner = _parse_field(desc, i + 1)
        if inner is None:
            return None
        return "[", inner[1]
    return None


def field_descriptor(desc: str) -> Optional[str]:
    """Head letter of a complete field descriptor; None = malformed."""
    parsed = _parse_field(desc, 0)
    if parsed is None or parsed[1] != len(desc):
        return None
    return parsed[0]


def method_descriptor(desc: str) -> Optional[tuple[tuple[str, ...], str]]:
    """``(param letters, return letter)``; None = malformed."""
    if not desc.startswith("("):
        return None
    i = 1
    params: list[str] = []
    while i < len(desc) and desc[i] != ")":
        parsed = _parse_field(desc, i)
        if parsed is None:
            return None
        params.append(parsed[0])
        i = parsed[1]
    if i >= len(desc) or i + 1 == len(desc):
        return None
    i += 1  # the ')'
    if desc[i] == "V":
        ret, end = "V", i + 1
    else:
        parsed = _parse_field(desc, i)
        if parsed is None:
            return None
        ret, end = parsed
    if end != len(desc):
        return None
    return tuple(params), ret


def class_name_ok(name: str) -> bool:
    """Internal (slash-separated) class names; array forms allowed.

    ``;`` never appears in an internal name, which also rejects the
    frequent ``FindClass("Ljava/lang/String;")`` descriptor-spelling
    confusion the JVM turns into ``NoClassDefFoundError`` at runtime.
    """
    if name.startswith("["):
        return field_descriptor(name) is not None
    return (
        bool(name)
        and "." not in name
        and ";" not in name
        and " " not in name
    )


def _letter_class(letter: str) -> str:
    return SCALAR if letter in _SCALAR_LETTERS else VALUE


def _letters_match(expected: str, actual: str) -> bool:
    """Does a descriptor head satisfy a ``Call<T>``/``<T>Field`` variant?"""
    if expected == "L":
        return actual in ("L", "[")
    return expected == actual


_LETTER_NOUN = {
    "L": "an object reference",
    "[": "an array reference",
    "V": "void",
    "Z": "a Z (jboolean)",
    "B": "a B (jbyte)",
    "C": "a C (jchar)",
    "S": "an S (jshort)",
    "I": "an I (jint)",
    "J": "a J (jlong)",
    "F": "an F (jfloat)",
    "D": "a D (jdouble)",
}


# -- AST plumbing --------------------------------------------------------------


def _collect_calls(node, out: list[ast.Call]) -> None:
    """Every Call anywhere under a statement or expression."""
    if isinstance(node, ast.Call):
        out.append(node)
        _collect_calls(node.func, out)
        for arg in node.args:
            _collect_calls(arg, out)
    elif isinstance(node, ast.Unary):
        _collect_calls(node.operand, out)
    elif isinstance(node, ast.Binary):
        _collect_calls(node.left, out)
        _collect_calls(node.right, out)
    elif isinstance(node, ast.Conditional):
        _collect_calls(node.cond, out)
        _collect_calls(node.then, out)
        _collect_calls(node.other, out)
    elif isinstance(node, ast.Cast):
        _collect_calls(node.operand, out)
    elif isinstance(node, ast.Index):
        _collect_calls(node.base, out)
        _collect_calls(node.index, out)
    elif isinstance(node, ast.Member):
        _collect_calls(node.base, out)
    elif isinstance(node, ast.Assign):
        _collect_calls(node.target, out)
        _collect_calls(node.value, out)
    elif isinstance(node, ast.IncDec):
        _collect_calls(node.target, out)
    elif isinstance(node, ast.Declaration):
        if node.init is not None and not isinstance(node.init, ast.InitList):
            _collect_calls(node.init, out)
    elif isinstance(node, ast.Block):
        for item in node.items:
            _collect_calls(item, out)
    elif isinstance(node, ast.ExprStmt):
        _collect_calls(node.expr, out)
    elif isinstance(node, ast.IfStmt):
        _collect_calls(node.cond, out)
        _collect_calls(node.then, out)
        if node.other is not None:
            _collect_calls(node.other, out)
    elif isinstance(node, (ast.WhileStmt, ast.DoWhileStmt)):
        _collect_calls(node.cond, out)
        _collect_calls(node.body, out)
    elif isinstance(node, ast.ForStmt):
        for part in (node.init, node.cond, node.step, node.body):
            if part is not None:
                _collect_calls(part, out)
    elif isinstance(node, ast.SwitchStmt):
        _collect_calls(node.scrutinee, out)
        for case in node.cases:
            for item in case.body:
                _collect_calls(item, out)
    elif isinstance(node, ast.ReturnStmt):
        if node.value is not None:
            _collect_calls(node.value, out)
    elif isinstance(node, ast.LabeledStmt):
        _collect_calls(node.stmt, out)


class _Bindings:
    """Which descriptor literal each handle variable was looked up with.

    Flow-insensitive: a handle re-bound with a *different* descriptor is
    poisoned (mapped to None) so its uses are never checked against the
    wrong lookup.
    """

    def __init__(self, fn: ast.FunctionDef, vars: VarTypes):
        self.methods: dict[str, Optional[str]] = {}
        self.fields: dict[str, Optional[str]] = {}
        if fn.body is not None:
            self._scan(fn.body, vars)

    def _record(
        self, table: dict[str, Optional[str]], name: str, desc: str
    ) -> None:
        if name in table and table[name] != desc:
            table[name] = None
        else:
            table[name] = desc

    def _bind(self, name: str, value: ast.CExpr, vars: VarTypes) -> None:
        while isinstance(value, ast.Cast):
            value = value.operand
        if not isinstance(value, ast.Call):
            return
        found = env_call(value, vars)
        if found is None:
            return
        callee, args = found
        lookup = _METHOD_LOOKUPS.get(callee)
        table = self.methods
        if lookup is None:
            lookup = _FIELD_LOOKUPS.get(callee)
            table = self.fields
        if lookup is None or len(args) <= lookup:
            return
        desc = args[lookup]
        if isinstance(desc, ast.Str):
            self._record(table, name, desc.value)

    def _scan(self, node, vars: VarTypes) -> None:
        if isinstance(node, ast.Declaration):
            if node.init is not None and not isinstance(node.init, ast.InitList):
                self._bind(node.name, node.init, vars)
        elif isinstance(node, ast.ExprStmt):
            expr = node.expr
            if isinstance(expr, ast.Assign) and isinstance(
                expr.target, ast.Name
            ):
                self._bind(expr.target.ident, expr.value, vars)
        elif isinstance(node, ast.Block):
            for item in node.items:
                self._scan(item, vars)
        elif isinstance(node, ast.IfStmt):
            self._scan(node.then, vars)
            if node.other is not None:
                self._scan(node.other, vars)
        elif isinstance(node, (ast.WhileStmt, ast.DoWhileStmt)):
            self._scan(node.body, vars)
        elif isinstance(node, ast.ForStmt):
            if node.init is not None:
                self._scan(node.init, vars)
            self._scan(node.body, vars)
        elif isinstance(node, ast.SwitchStmt):
            for case in node.cases:
                for item in case.body:
                    self._scan(item, vars)
        elif isinstance(node, ast.LabeledStmt):
            self._scan(node.stmt, vars)


def _arg_class(arg: ast.CExpr, vars: VarTypes) -> Optional[str]:
    """SCALAR/VALUE class of a supplied call argument; None = don't check."""
    while isinstance(arg, ast.Cast):
        arg = arg.operand
    if isinstance(arg, ast.Name):
        ctype = vars.get(arg.ident)
        if isinstance(ctype, CSrcValue):
            return VALUE
        if isinstance(ctype, CSrcScalar):
            return SCALAR
        return None
    if isinstance(arg, (ast.Num, ast.Binary)):
        return SCALAR
    if isinstance(arg, ast.Call):
        found = env_call(arg, vars)
        if found is not None:
            spec = RUNTIME_FUNCTIONS.get(found[0])
            if spec is not None and spec.result == "value":
                return VALUE
            if spec is not None and spec.result == "int":
                return SCALAR
    return None


def _describe(arg: ast.CExpr) -> str:
    while isinstance(arg, ast.Cast):
        arg = arg.operand
    if isinstance(arg, ast.Name):
        return arg.ident
    return "<expression>"


# -- the pass ------------------------------------------------------------------


class _DescriptorChecker:
    def __init__(self, fn: ast.FunctionDef):
        self.fn = fn
        self.vars = VarTypes(fn)
        self.bindings = _Bindings(fn, self.vars)
        self.diags: list[Diagnostic] = []

    def _report(self, kind: Kind, span, message: str) -> None:
        self.diags.append(
            Diagnostic(
                kind=kind, span=span, message=message, function=self.fn.name
            )
        )

    def _handle_name(self, arg: ast.CExpr) -> Optional[str]:
        while isinstance(arg, ast.Cast):
            arg = arg.operand
        if isinstance(arg, ast.Name):
            return arg.ident
        return None

    # -- lookup sites ------------------------------------------------------

    def _check_lookup(
        self, call: ast.Call, callee: str, args: tuple[ast.CExpr, ...]
    ) -> None:
        index = _METHOD_LOOKUPS.get(callee)
        parse = method_descriptor
        noun = "method"
        if index is None:
            index = _FIELD_LOOKUPS.get(callee)
            parse = field_descriptor
            noun = "field"
        if index is None or len(args) <= index:
            return
        desc = args[index]
        if isinstance(desc, ast.Str) and parse(desc.value) is None:
            self._report(
                Kind.JNI_BAD_DESCRIPTOR,
                call.span,
                f"`{callee}` {noun} descriptor \"{desc.value}\" is "
                f"malformed; the lookup will always fail",
            )

    def _check_find_class(
        self, call: ast.Call, args: tuple[ast.CExpr, ...]
    ) -> None:
        if not args or not isinstance(args[0], ast.Str):
            return
        name = args[0].value
        if not class_name_ok(name):
            if "." in name:
                hint = " (use '/'-separated internal names, not '.')"
            elif name.startswith("L") and name.endswith(";"):
                hint = (
                    " (that is the field-descriptor spelling; FindClass "
                    "wants the bare internal name)"
                )
            else:
                hint = ""
            self._report(
                Kind.JNI_BAD_DESCRIPTOR,
                call.span,
                f"`FindClass` class name \"{name}\" is not a valid "
                f"internal name{hint}",
            )

    # -- use sites ---------------------------------------------------------

    def _check_method_call(
        self, call: ast.Call, callee: str, args: tuple[ast.CExpr, ...]
    ) -> None:
        expected, fixed = _CALL_FAMILIES[callee]
        if len(args) < fixed:
            return
        handle = self._handle_name(args[fixed - 1])
        if handle is None:
            return
        desc = self.bindings.methods.get(handle)
        if desc is None:
            return
        parsed = method_descriptor(desc)
        if parsed is None:
            return  # already reported at the lookup site
        params, ret = parsed
        if not _letters_match(expected, ret):
            self._report(
                Kind.JNI_DESCRIPTOR_MISMATCH,
                call.span,
                f"`{callee}` expects the method to return "
                f"{_LETTER_NOUN[expected]} but `{handle}` was looked up "
                f"with \"{desc}\", which returns {_LETTER_NOUN[ret]}",
            )
        supplied = args[fixed:]
        if len(supplied) != len(params):
            self._report(
                Kind.JNI_DESCRIPTOR_MISMATCH,
                call.span,
                f"`{callee}` passes {len(supplied)} argument(s) but "
                f"`{handle}`'s descriptor \"{desc}\" declares "
                f"{len(params)}; the JVM will read stack garbage",
            )
            return
        for index, (letter, arg) in enumerate(zip(params, supplied)):
            want = _letter_class(letter)
            got = _arg_class(arg, self.vars)
            if got is None or got == want:
                continue
            self._report(
                Kind.JNI_DESCRIPTOR_MISMATCH,
                call.span,
                f"`{callee}` argument {index + 1} should be "
                f"{_LETTER_NOUN[letter]} per \"{desc}\" but "
                f"`{_describe(arg)}` is a "
                + ("JVM reference" if got is VALUE else "C scalar"),
            )

    def _check_field_access(
        self, call: ast.Call, callee: str, args: tuple[ast.CExpr, ...]
    ) -> None:
        expected, value_index = _FIELD_FAMILIES[callee]
        if len(args) < 2:
            return
        handle = self._handle_name(args[1])
        if handle is None:
            return
        desc = self.bindings.fields.get(handle)
        if desc is None:
            return
        letter = field_descriptor(desc)
        if letter is None:
            return  # already reported at the lookup site
        if not _letters_match(expected, letter):
            self._report(
                Kind.JNI_DESCRIPTOR_MISMATCH,
                call.span,
                f"`{callee}` accesses the field as {_LETTER_NOUN[expected]} "
                f"but `{handle}` was looked up with \"{desc}\" "
                f"({_LETTER_NOUN[letter]})",
            )
            return
        if value_index is not None and len(args) > value_index:
            want = _letter_class(letter)
            got = _arg_class(args[value_index], self.vars)
            if got is not None and got != want:
                self._report(
                    Kind.JNI_DESCRIPTOR_MISMATCH,
                    call.span,
                    f"`{callee}` stores `{_describe(args[value_index])}` "
                    f"(a " + ("JVM reference" if got is VALUE else "C scalar")
                    + f") into a \"{desc}\" field",
                )

    # -- entry point -------------------------------------------------------

    def run(self) -> list[Diagnostic]:
        if self.fn.body is None:
            return []
        calls: list[ast.Call] = []
        _collect_calls(self.fn.body, calls)
        for call in calls:
            found = env_call(call, self.vars)
            if found is None:
                continue
            callee, args = found
            if callee in _METHOD_LOOKUPS or callee in _FIELD_LOOKUPS:
                self._check_lookup(call, callee, args)
            elif callee == "FindClass":
                self._check_find_class(call, args)
            elif callee in _CALL_FAMILIES:
                self._check_method_call(call, callee, args)
            elif callee in _FIELD_FAMILIES:
                self._check_field_access(call, callee, args)
        return self.diags


def _is_native_method_table(ctype) -> bool:
    node = ctype
    while isinstance(node, CSrcPtr):
        node = node.target
    return isinstance(node, CSrcStruct) and node.name == "JNINativeMethod"


def _row_signature(row: ast.InitList) -> ast.CExpr | None:
    """The ``signature`` cell of one table row: designated initializers
    resolve by field name (in any order), all-positional rows by index."""
    positional: list[ast.CExpr] = []
    designated = False
    for item in row.items:
        if item.field_name == "signature":
            return item.value
        if item.field_name is None:
            positional.append(item.value)
        else:
            designated = True
    if not designated and len(positional) > 1:
        return positional[1]
    return None


def check_tables(unit: ast.TranslationUnit) -> list[Diagnostic]:
    """Malformed signature strings in ``JNINativeMethod`` tables."""
    diags: list[Diagnostic] = []
    for decl in unit.globals:
        if not _is_native_method_table(decl.ctype):
            continue
        if not isinstance(decl.init, ast.InitList):
            continue
        for item in decl.init.items:
            row = item.value
            if not isinstance(row, ast.InitList):
                continue
            sig = _row_signature(row)
            if isinstance(sig, ast.Str) and method_descriptor(sig.value) is None:
                diags.append(
                    Diagnostic(
                        kind=Kind.JNI_BAD_DESCRIPTOR,
                        span=sig.span,
                        message=(
                            f"JNINativeMethod signature \"{sig.value}\" is "
                            "not a valid method descriptor; RegisterNatives "
                            "will reject the table"
                        ),
                    )
                )
    return diags


def check_unit(unit: ast.TranslationUnit) -> list[Diagnostic]:
    """All descriptor diagnostics for one translation unit."""
    diags = check_tables(unit)
    for fn in unit.functions:
        diags.extend(_DescriptorChecker(fn).run())
    return diags
