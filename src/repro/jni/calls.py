"""Reading ``JNIEnv`` calls out of the surface AST.

JNI glue spells every runtime call through the environment's function
table: ``(*env)->GetIntField(env, obj, fid)`` in C, ``env->GetIntField(
obj, fid)`` in C++.  The descriptor checker and the reference-discipline
pass both read the *original* AST (the rewrite erases the idiom before
lowering), so the recognizer lives here, shared by all three.
"""

from __future__ import annotations

from typing import Optional

from ..cfront import ast
from ..core.srctypes import CSrcPtr, CSrcStruct, CSrcType


def is_env_type(ctype: Optional[CSrcType]) -> bool:
    """``JNIEnv *`` (or deeper: ``JNIEnv **`` in ``JNI_OnLoad`` glue)."""
    node = ctype
    while isinstance(node, CSrcPtr):
        node = node.target
    return isinstance(node, CSrcStruct) and node.name == "JNIEnv"


class VarTypes:
    """Declared types of a function's parameters and locals."""

    def __init__(self, fn: ast.FunctionDef):
        self.types: dict[str, CSrcType] = dict(fn.params)
        if fn.body is not None:
            self._collect(fn.body)

    def _collect(self, stmt: ast.CStmtOrDecl) -> None:
        if isinstance(stmt, ast.Declaration):
            self.types[stmt.name] = stmt.ctype
        elif isinstance(stmt, ast.Block):
            for item in stmt.items:
                self._collect(item)
        elif isinstance(stmt, ast.IfStmt):
            self._collect(stmt.then)
            if stmt.other is not None:
                self._collect(stmt.other)
        elif isinstance(stmt, (ast.WhileStmt, ast.DoWhileStmt)):
            self._collect(stmt.body)
        elif isinstance(stmt, ast.ForStmt):
            if stmt.init is not None:
                self._collect(stmt.init)
            self._collect(stmt.body)
        elif isinstance(stmt, ast.SwitchStmt):
            for case in stmt.cases:
                for item in case.body:
                    self._collect(item)
        elif isinstance(stmt, ast.LabeledStmt):
            self._collect(stmt.stmt)

    def get(self, name: str) -> Optional[CSrcType]:
        return self.types.get(name)

    def is_env(self, expr: ast.CExpr) -> bool:
        return isinstance(expr, ast.Name) and is_env_type(
            self.types.get(expr.ident)
        )


def _table_member(func: ast.CExpr, vars: VarTypes) -> Optional[str]:
    """The function-table member name of ``(*env)->F`` / ``env->F``."""
    if not isinstance(func, ast.Member):
        return None
    base = func.base
    if isinstance(base, ast.Unary) and base.op == "*":
        base = base.operand
    if vars.is_env(base):
        return func.field_name
    return None


def env_call(
    call: ast.Call, vars: VarTypes
) -> Optional[tuple[str, tuple[ast.CExpr, ...]]]:
    """``(name, args-without-env)`` when ``call`` goes through ``JNIEnv``.

    Accepts the C spelling (``(*env)->F(env, a, b)`` — the leading env
    argument is dropped) and the C++ one (``env->F(a, b)``).  Returns
    ``None`` for everything else; direct calls to helper functions are
    not JNI entry points.
    """
    name = _table_member(call.func, vars)
    if name is None:
        return None
    args = call.args
    if args and vars.is_env(args[0]):
        args = args[1:]
    return name, args
