"""Knowledge base for the JNI ``JNIEnv`` API, mirroring :mod:`repro.pyext.runtime`.

Three tables live here:

* parse hints, so the shared C parser reads JNI glue (``jobject`` and its
  typedef family *are* the boxed-value type, ``jmethodID``/``jfieldID``
  are opaque handles, ``JNIEXPORT``/``JNICALL`` are calling-convention
  markers, ``NULL`` stays an identifier for the rewrite);
* the typing table for the ``JNIEnv*`` entry points, seeding the
  checker's function environment.  Entries are named by the function-table
  member (``GetIntField``, ``CallObjectMethod``, ...) — the rewrite
  flattens ``(*env)->GetIntField(env, obj, fid)`` into a direct
  ``GetIntField(obj, fid)`` call before lowering.  Every entry is
  ``nogc``: the JVM collector pins objects behind references, so the
  OCaml protection obligations never fire — the local/global reference
  discipline is this dialect's analogue (:mod:`repro.jni.refs`);
* the reference-semantics classification (local-ref producers, global-ref
  producers, the delete functions) that the refs pass interprets, and the
  descriptor letter each ``Call<T>Method``/``Get<T>Field`` variant
  commits to, which the descriptor checker compares against the string
  the ``jmethodID``/``jfieldID`` was looked up with.
"""

from __future__ import annotations


from dataclasses import dataclass

from ..cfront.parser import ParseHints
from ..seeds import seed_table
from ..core.environment import Entry
from ..core.srctypes import (
    CSrcPtr,
    CSrcScalar,
    CSrcStruct,
    CSrcType,
    CSrcValue,
    CSrcVoid,
)
from ..core.types import (
    C_INT,
    C_VOID,
    CFun,
    CPtr,
    CStruct,
    CType,
    CValue,
    NOGC,
    fresh_ctvar,
    fresh_mt,
)

# -- parse hints ---------------------------------------------------------------

#: typedef names whose values are opaque JVM references (the dialect's
#: boxed-value type — ``jobject`` is ``void *`` in ``jni.h`` and used
#: by value, so unlike ``PyObject`` no pointer hop is involved)
REFERENCE_TYPEDEFS: tuple[str, ...] = (
    "jobject",
    "jclass",
    "jstring",
    "jthrowable",
    "jweak",
    "jarray",
    "jobjectArray",
    "jbooleanArray",
    "jbyteArray",
    "jcharArray",
    "jshortArray",
    "jintArray",
    "jlongArray",
    "jfloatArray",
    "jdoubleArray",
)

#: JVM scalar typedefs (all modelled as C ints, like ``Py_ssize_t``)
SCALAR_TYPEDEFS: tuple[str, ...] = (
    "jboolean",
    "jbyte",
    "jchar",
    "jshort",
    "jint",
    "jlong",
    "jfloat",
    "jdouble",
    "jsize",
)

#: Typedefs the ``jni.h`` header would have provided.
_TYPEDEFS: dict[str, CSrcType] = {
    "JNIEnv": CSrcStruct("JNIEnv"),
    "JavaVM": CSrcStruct("JavaVM"),
    "JNINativeMethod": CSrcStruct("JNINativeMethod"),
    "jvalue": CSrcStruct("jvalue"),
    "jmethodID": CSrcPtr(CSrcStruct("jmethodID")),
    "jfieldID": CSrcPtr(CSrcStruct("jfieldID")),
}
_TYPEDEFS.update({name: CSrcValue() for name in REFERENCE_TYPEDEFS})
_TYPEDEFS.update({name: CSrcScalar("int") for name in SCALAR_TYPEDEFS})


@seed_table("jni.parse_hints")
def parse_hints() -> ParseHints:
    """How to read JNI glue source with the shared parser.

    Memoized per process; :class:`ParseHints` is frozen and the parser
    copies the typedef table, so one instance serves every request.
    """
    return ParseHints(
        typedefs=dict(_TYPEDEFS),
        null_is_identifier=True,
        qualifiers=frozenset({"JNIEXPORT", "JNIIMPORT", "JNICALL"}),
    )


# -- runtime entry-point signatures --------------------------------------------


@dataclass(frozen=True)
class JniSpec:
    """Shape of one ``JNIEnv`` entry point, in the macros.py spec language.

    Parameter/result kinds: ``value`` (fresh ``α value`` per call site),
    ``int`` (any C scalar), ``charptr``, ``voidptr``, ``methodid``,
    ``fieldid``, ``any`` (a fresh C type variable: unifies with anything,
    for out-parameters like ``jboolean *isCopy`` that glue passes NULL
    to), ``void``.
    """

    params: tuple[str, ...]
    result: str


def _kind_to_ct(kind: str) -> CType:
    if kind == "value":
        return CValue(fresh_mt())
    if kind == "int":
        return C_INT
    if kind in ("charptr", "voidptr"):
        return CPtr(C_INT)
    if kind == "methodid":
        return CPtr(CStruct("jmethodID"))
    if kind == "fieldid":
        return CPtr(CStruct("jfieldID"))
    if kind == "any":
        return fresh_ctvar()
    if kind == "void":
        return C_VOID
    raise ValueError(f"unknown jni builtin kind `{kind}`")


def _kind_to_src(kind: str) -> CSrcType:
    if kind == "value":
        return CSrcValue()
    if kind == "int":
        return CSrcScalar("int")
    if kind in ("charptr", "voidptr", "any"):
        return CSrcPtr(CSrcScalar("char"))
    if kind == "methodid":
        return CSrcPtr(CSrcStruct("jmethodID"))
    if kind == "fieldid":
        return CSrcPtr(CSrcStruct("jfieldID"))
    if kind == "void":
        return CSrcVoid()
    raise ValueError(kind)


def spec_to_cfun(spec: JniSpec) -> CFun:
    """Materialize a spec with fresh type variables."""
    return CFun(
        params=tuple(_kind_to_ct(k) for k in spec.params),
        result=_kind_to_ct(spec.result),
        effect=NOGC,
    )


#: The primitive letters of ``Call<T>Method``/``Get<T>Field`` families:
#: suffix -> (descriptor letter, spec kind).
TYPE_VARIANTS: dict[str, tuple[str, str]] = {
    "Object": ("L", "value"),
    "Boolean": ("Z", "int"),
    "Byte": ("B", "int"),
    "Char": ("C", "int"),
    "Short": ("S", "int"),
    "Int": ("I", "int"),
    "Long": ("J", "int"),
    "Float": ("F", "int"),
    "Double": ("D", "int"),
}

#: jobject-valued JVM scalar arrays, for ``New<T>Array`` and friends.
_ARRAY_VARIANTS = (
    "Boolean",
    "Byte",
    "Char",
    "Short",
    "Int",
    "Long",
    "Float",
    "Double",
)


def _build_runtime_table() -> dict[str, JniSpec]:
    table: dict[str, JniSpec] = {
        # rewrite targets (see repro.jni.rewrite)
        "__jni_null": JniSpec((), "value"),
        "__jni_is_null": JniSpec(("value",), "int"),
        # classes and reflection
        "FindClass": JniSpec(("charptr",), "value"),
        "GetObjectClass": JniSpec(("value",), "value"),
        "GetSuperclass": JniSpec(("value",), "value"),
        "IsAssignableFrom": JniSpec(("value", "value"), "int"),
        "IsInstanceOf": JniSpec(("value", "value"), "int"),
        "IsSameObject": JniSpec(("value", "value"), "int"),
        # method / field lookup
        "GetMethodID": JniSpec(("value", "charptr", "charptr"), "methodid"),
        "GetStaticMethodID": JniSpec(
            ("value", "charptr", "charptr"), "methodid"
        ),
        "GetFieldID": JniSpec(("value", "charptr", "charptr"), "fieldid"),
        "GetStaticFieldID": JniSpec(
            ("value", "charptr", "charptr"), "fieldid"
        ),
        # object construction (varargs tail truncated by the rewrite)
        "NewObject": JniSpec(("value", "methodid"), "value"),
        "AllocObject": JniSpec(("value",), "value"),
        # strings
        "NewStringUTF": JniSpec(("charptr",), "value"),
        "NewString": JniSpec(("voidptr", "int"), "value"),
        "GetStringLength": JniSpec(("value",), "int"),
        "GetStringUTFLength": JniSpec(("value",), "int"),
        "GetStringUTFChars": JniSpec(("value", "any"), "charptr"),
        "ReleaseStringUTFChars": JniSpec(("value", "charptr"), "void"),
        "GetStringChars": JniSpec(("value", "any"), "voidptr"),
        "ReleaseStringChars": JniSpec(("value", "voidptr"), "void"),
        # reference lifecycle
        "NewLocalRef": JniSpec(("value",), "value"),
        "DeleteLocalRef": JniSpec(("value",), "void"),
        "NewGlobalRef": JniSpec(("value",), "value"),
        "DeleteGlobalRef": JniSpec(("value",), "void"),
        "NewWeakGlobalRef": JniSpec(("value",), "value"),
        "DeleteWeakGlobalRef": JniSpec(("value",), "void"),
        "EnsureLocalCapacity": JniSpec(("int",), "int"),
        "PushLocalFrame": JniSpec(("int",), "int"),
        "PopLocalFrame": JniSpec(("value",), "value"),
        # exceptions
        "Throw": JniSpec(("value",), "int"),
        "ThrowNew": JniSpec(("value", "charptr"), "int"),
        "ExceptionOccurred": JniSpec((), "value"),
        "ExceptionCheck": JniSpec((), "int"),
        "ExceptionClear": JniSpec((), "void"),
        "ExceptionDescribe": JniSpec((), "void"),
        "FatalError": JniSpec(("charptr",), "void"),
        # object arrays
        "GetArrayLength": JniSpec(("value",), "int"),
        "NewObjectArray": JniSpec(("int", "value", "value"), "value"),
        "GetObjectArrayElement": JniSpec(("value", "int"), "value"),
        "SetObjectArrayElement": JniSpec(("value", "int", "value"), "void"),
        # monitors and the VM
        "MonitorEnter": JniSpec(("value",), "int"),
        "MonitorExit": JniSpec(("value",), "int"),
        "GetJavaVM": JniSpec(("voidptr",), "int"),
        "GetVersion": JniSpec((), "int"),
        "RegisterNatives": JniSpec(("value", "voidptr", "int"), "int"),
        "UnregisterNatives": JniSpec(("value",), "int"),
    }
    for suffix, (_, kind) in TYPE_VARIANTS.items():
        # instance and static calls (varargs tails truncated by the rewrite)
        table[f"Call{suffix}Method"] = JniSpec(("value", "methodid"), kind)
        table[f"CallStatic{suffix}Method"] = JniSpec(
            ("value", "methodid"), kind
        )
        table[f"CallNonvirtual{suffix}Method"] = JniSpec(
            ("value", "value", "methodid"), kind
        )
        # field access
        table[f"Get{suffix}Field"] = JniSpec(("value", "fieldid"), kind)
        table[f"Set{suffix}Field"] = JniSpec(("value", "fieldid", kind), "void")
        table[f"GetStatic{suffix}Field"] = JniSpec(("value", "fieldid"), kind)
        table[f"SetStatic{suffix}Field"] = JniSpec(
            ("value", "fieldid", kind), "void"
        )
    table["CallVoidMethod"] = JniSpec(("value", "methodid"), "void")
    table["CallStaticVoidMethod"] = JniSpec(("value", "methodid"), "void")
    table["CallNonvirtualVoidMethod"] = JniSpec(
        ("value", "value", "methodid"), "void"
    )
    for variant in _ARRAY_VARIANTS:
        table[f"New{variant}Array"] = JniSpec(("int",), "value")
        table[f"Get{variant}ArrayElements"] = JniSpec(
            ("value", "any"), "voidptr"
        )
        table[f"Release{variant}ArrayElements"] = JniSpec(
            ("value", "voidptr", "int"), "void"
        )
        table[f"Get{variant}ArrayRegion"] = JniSpec(
            ("value", "int", "int", "voidptr"), "void"
        )
        table[f"Set{variant}ArrayRegion"] = JniSpec(
            ("value", "int", "int", "voidptr"), "void"
        )
    return table


#: The ``JNIEnv`` function-table surface glue actually uses, plus the
#: ``__jni_*`` internals the rewrite introduces.
RUNTIME_FUNCTIONS: dict[str, JniSpec] = _build_runtime_table()

#: Well-known runtime constants visible in every function (``jni.h``
#: macros the tokenizer would otherwise leave as bare identifiers).
GLOBAL_SCALARS: tuple[str, ...] = (
    "JNI_TRUE",
    "JNI_FALSE",
    "JNI_OK",
    "JNI_ERR",
    "JNI_COMMIT",
    "JNI_ABORT",
    "JNI_VERSION_1_2",
    "JNI_VERSION_1_4",
    "JNI_VERSION_1_6",
    "JNI_VERSION_1_8",
)


# Per-process seed memos (PR 5): tables are built once, not per request.
# Sharing is safe because builtins are polymorphic (instantiated afresh at
# every call site) and variable bindings live in each run's own Unifier;
# callers must treat the returned mappings as read-only.


@seed_table("jni.builtin_entries")
def builtin_entries() -> dict[str, Entry]:
    """The function-environment entries for every JNIEnv entry point (memoized)."""
    return {
        name: Entry(spec_to_cfun(spec))
        for name, spec in RUNTIME_FUNCTIONS.items()
    }


@seed_table("jni.global_entries")
def global_entries() -> dict[str, Entry]:
    """Bindings for the well-known scalar constants (memoized)."""
    return {name: Entry(C_INT) for name in GLOBAL_SCALARS}


#: Builtins whose types are instantiated afresh at every call site.
POLYMORPHIC_BUILTINS: frozenset[str] = frozenset(RUNTIME_FUNCTIONS)


@seed_table("jni.lowering_return_types")
def lowering_return_types() -> dict[str, CSrcType]:
    """Static return types for the lowering's symbol table (memoized)."""
    return {
        name: _kind_to_src(spec.result)
        for name, spec in RUNTIME_FUNCTIONS.items()
    }


# -- reference semantics -------------------------------------------------------

#: Entry points whose result is a *local* reference the VM frees when the
#: native frame returns — but which overflows the local-reference table
#: when created per loop iteration without DeleteLocalRef.
LOCAL_REF_FUNCTIONS: frozenset[str] = frozenset(
    {
        "FindClass",
        "GetObjectClass",
        "GetSuperclass",
        "NewObject",
        "AllocObject",
        "NewStringUTF",
        "NewString",
        "NewLocalRef",
        "NewObjectArray",
        "GetObjectArrayElement",
        "CallObjectMethod",
        "CallStaticObjectMethod",
        "CallNonvirtualObjectMethod",
        "GetObjectField",
        "GetStaticObjectField",
        "ExceptionOccurred",
        "PopLocalFrame",
    }
    | {f"New{variant}Array" for variant in _ARRAY_VARIANTS}
)

#: Entry points whose result outlives the frame and must be released.
GLOBAL_REF_FUNCTIONS: frozenset[str] = frozenset(
    {"NewGlobalRef", "NewWeakGlobalRef"}
)

#: Delete spellings the refs pass interprets.
DELETE_LOCAL_FUNCTIONS: frozenset[str] = frozenset({"DeleteLocalRef"})
DELETE_GLOBAL_FUNCTIONS: frozenset[str] = frozenset(
    {"DeleteGlobalRef", "DeleteWeakGlobalRef"}
)
