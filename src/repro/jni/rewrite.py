"""Normalize JNI idioms into the C subset the shared lowering models.

The Figure 5 IR has no varargs, no preprocessor, and no calls through
struct members, so the JNI spellings are rewritten before lowering (the
original AST is what the descriptor and reference passes read — this
pass runs last and feeds the type inference only):

* ``(*env)->GetIntField(env, obj, fid)`` — the C spelling of a call
  through the ``JNIEnv`` function table — flattens to a direct
  ``GetIntField(obj, fid)`` call against the runtime table (the C++
  spelling ``env->GetIntField(obj, fid)`` flattens identically);
* the varargs tails of ``Call<T>Method``/``NewObject`` are truncated to
  the table's fixed arity — the argument list is the descriptor
  checker's business, not unification's;
* ``NULL`` (kept as an identifier by the jni parse hints) becomes a call
  to the polymorphic builtin ``__jni_null``, whose fresh ``α value``
  result lets ``return NULL;`` type without committing other ``NULL``
  uses to the value type;
* null tests — ``x == NULL``, ``!x``, bare ``x`` in a condition — on
  expressions known to produce a value become ``__jni_is_null`` calls;
  on everything else they become plain boolean tests;
* stores into file-scope reference globals (``cached_cls = ...`` — the
  class/method caching idiom) keep only their right-hand side: the
  checker does not track value globals (they surface as ``GLOBAL_VALUE``
  imprecision), and the reference pass owns the escape semantics.
"""

from __future__ import annotations

from typing import Optional

from ..cfront import ast
from ..core.srctypes import CSrcValue
from .calls import VarTypes, env_call
from .runtime import RUNTIME_FUNCTIONS

#: entry points whose result is a value (→ null tests need the builtin)
_VALUE_RESULT_FUNCTIONS = frozenset(
    name for name, spec in RUNTIME_FUNCTIONS.items() if spec.result == "value"
)


def _call(name: str, args: tuple[ast.CExpr, ...], span) -> ast.Call:
    return ast.Call(func=ast.Name(name, span), args=args, span=span)


def _is_null(expr: ast.CExpr) -> bool:
    return isinstance(expr, ast.Name) and expr.ident == "NULL"


class _FunctionRewriter:
    """Rewrites one function body, tracking declared variable types so
    env-table calls and value null tests can be recognized."""

    def __init__(self, fn: ast.FunctionDef, value_globals: frozenset[str]):
        self.vars = VarTypes(fn)
        self.value_globals = value_globals

    # -- type probes -------------------------------------------------------

    def _is_value_expr(self, expr: ast.CExpr) -> bool:
        if isinstance(expr, ast.Name):
            return isinstance(self.vars.get(expr.ident), CSrcValue)
        if isinstance(expr, ast.Call):
            found = env_call(expr, self.vars)
            return found is not None and found[0] in _VALUE_RESULT_FUNCTIONS
        return False

    # -- expressions -------------------------------------------------------

    def expr(self, node: ast.CExpr) -> ast.CExpr:
        if isinstance(node, ast.Name):
            if node.ident == "NULL":
                return _call("__jni_null", (), node.span)
            return node
        if isinstance(node, (ast.Num, ast.Str, ast.SizeOf, ast.InitList)):
            return node
        if isinstance(node, ast.Unary):
            return ast.Unary(node.op, self.expr(node.operand), node.span)
        if isinstance(node, ast.Binary):
            if node.op in ("==", "!=") and (
                _is_null(node.left) or _is_null(node.right)
            ):
                return self._null_test(node)
            return ast.Binary(
                node.op, self.expr(node.left), self.expr(node.right), node.span
            )
        if isinstance(node, ast.Conditional):
            return ast.Conditional(
                self.cond(node.cond),
                self.expr(node.then),
                self.expr(node.other),
                node.span,
            )
        if isinstance(node, ast.Cast):
            return ast.Cast(node.ctype, self.expr(node.operand), node.span)
        if isinstance(node, ast.Call):
            return self._rewrite_call(node)
        if isinstance(node, ast.Index):
            return ast.Index(self.expr(node.base), self.expr(node.index), node.span)
        if isinstance(node, ast.Member):
            return ast.Member(
                self.expr(node.base), node.field_name, node.arrow, node.span
            )
        if isinstance(node, ast.Assign):
            return ast.Assign(
                node.op, self.expr(node.target), self.expr(node.value), node.span
            )
        if isinstance(node, ast.IncDec):
            return ast.IncDec(node.op, self.expr(node.target), node.span)
        return node

    def _null_test(self, node: ast.Binary) -> ast.CExpr:
        """``e == NULL`` / ``e != NULL`` as a checkable boolean."""
        operand = node.right if _is_null(node.left) else node.left
        if self._is_value_expr(operand):
            test: ast.CExpr = _call(
                "__jni_is_null", (self.expr(operand),), node.span
            )
            if node.op == "!=":
                test = ast.Unary("!", test, node.span)
            return test
        rewritten = self.expr(operand)
        if node.op == "==":
            return ast.Unary("!", rewritten, node.span)
        return rewritten

    def _rewrite_call(self, call: ast.Call) -> ast.CExpr:
        found = env_call(call, self.vars)
        if found is not None and found[0] in RUNTIME_FUNCTIONS:
            name, args = found
            fixed = len(RUNTIME_FUNCTIONS[name].params)
            kept = tuple(self.expr(a) for a in args[:fixed])
            return _call(name, kept, call.span)
        return ast.Call(
            func=self.expr(call.func),
            args=tuple(self.expr(a) for a in call.args),
            span=call.span,
        )

    # -- conditions --------------------------------------------------------

    def cond(self, node: ast.CExpr) -> ast.CExpr:
        """A condition position: truthiness of a value means 'not NULL'."""
        if isinstance(node, ast.Unary) and node.op == "!":
            inner = node.operand
            if self._is_value_expr(inner):
                return _call("__jni_is_null", (self.expr(inner),), node.span)
            return ast.Unary("!", self.cond(inner), node.span)
        if isinstance(node, ast.Binary) and node.op in ("&&", "||"):
            return ast.Binary(
                node.op, self.cond(node.left), self.cond(node.right), node.span
            )
        if self._is_value_expr(node):
            return ast.Unary(
                "!", _call("__jni_is_null", (self.expr(node),), node.span), node.span
            )
        return self.expr(node)

    # -- statements --------------------------------------------------------

    def stmt(self, node: ast.CStmtOrDecl) -> ast.CStmtOrDecl:
        if isinstance(node, ast.Declaration):
            init = node.init
            if init is not None and not isinstance(init, ast.InitList):
                init = self.expr(init)
            return ast.Declaration(node.name, node.ctype, init, node.span)
        if isinstance(node, ast.Block):
            return ast.Block([self.stmt(s) for s in node.items], node.span)
        if isinstance(node, ast.ExprStmt):
            expr = node.expr
            if (
                isinstance(expr, ast.Assign)
                and isinstance(expr.target, ast.Name)
                and expr.target.ident in self.value_globals
                and expr.target.ident not in self.vars.types
            ):
                return ast.ExprStmt(self.expr(expr.value), node.span)
            return ast.ExprStmt(self.expr(expr), node.span)
        if isinstance(node, ast.IfStmt):
            return ast.IfStmt(
                self.cond(node.cond),
                self.stmt(node.then),
                self.stmt(node.other) if node.other is not None else None,
                node.span,
            )
        if isinstance(node, ast.WhileStmt):
            return ast.WhileStmt(self.cond(node.cond), self.stmt(node.body), node.span)
        if isinstance(node, ast.DoWhileStmt):
            return ast.DoWhileStmt(
                self.stmt(node.body), self.cond(node.cond), node.span
            )
        if isinstance(node, ast.ForStmt):
            return ast.ForStmt(
                self.stmt(node.init) if node.init is not None else None,
                self.cond(node.cond) if node.cond is not None else None,
                self.expr(node.step) if node.step is not None else None,
                self.stmt(node.body),
                node.span,
            )
        if isinstance(node, ast.SwitchStmt):
            return ast.SwitchStmt(
                self.expr(node.scrutinee),
                [
                    ast.SwitchCase(
                        case.value,
                        [self.stmt(item) for item in case.body],
                        case.span,
                    )
                    for case in node.cases
                ],
                node.span,
            )
        if isinstance(node, ast.ReturnStmt):
            value = self.expr(node.value) if node.value is not None else None
            return ast.ReturnStmt(value, node.span)
        if isinstance(node, ast.LabeledStmt):
            rewritten = self.stmt(node.stmt)
            assert not isinstance(rewritten, ast.Declaration)
            return ast.LabeledStmt(node.label, rewritten, node.span)
        return node


def rewrite_function(
    fn: ast.FunctionDef, value_globals: frozenset[str] = frozenset()
) -> ast.FunctionDef:
    body: Optional[ast.Block] = None
    if fn.body is not None:
        rewriter = _FunctionRewriter(fn, value_globals)
        rewritten = rewriter.stmt(fn.body)
        assert isinstance(rewritten, ast.Block)
        body = rewritten
    return ast.FunctionDef(
        name=fn.name,
        return_type=fn.return_type,
        params=list(fn.params),
        body=body,
        span=fn.span,
        polymorphic=fn.polymorphic,
    )


def rewrite_unit(unit: ast.TranslationUnit) -> ast.TranslationUnit:
    """A rewritten copy of the unit; the input is left untouched."""
    value_globals = frozenset(
        decl.name
        for decl in unit.globals
        if isinstance(decl.ctype, CSrcValue)
    )
    return ast.TranslationUnit(
        functions=[
            rewrite_function(fn, value_globals) for fn in unit.functions
        ],
        globals=list(unit.globals),
        filename=unit.filename,
    )
