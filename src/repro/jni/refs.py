"""The local/global reference discipline: JNI's analogue of ``CAMLprotect``.

In OCaml glue the danger is a heap pointer live across a collection
without being registered; in JNI glue the danger is a reference whose
lifetime disagrees with the frame it lives in.  The shapes line up:

==========================  ========================================
OCaml dialect               jni dialect
==========================  ========================================
unprotected live value      local ref created per iteration, never
                            ``DeleteLocalRef``-ed (table overflow)
``CAMLprotect``             ``NewGlobalRef`` (outliving the frame)
use after ``CAMLreturn``    use after ``DeleteLocalRef``
==========================  ========================================

The pass is a conservative abstract interpretation over the surface AST
(the same discipline as :mod:`repro.pyext.refcount`).  Every reference
variable carries one of six states — ``arg`` (value parameters: VM-owned
locals), ``local`` (results of local-ref producers), ``global`` (results
of ``NewGlobalRef``), ``deleted``, ``transferred``, ``unknown`` — and
branches join pointwise, collapsing disagreement to ``unknown`` so
reports only fire on facts that hold on *every* path:

* use of a ``deleted`` reference → ``JNI_USE_AFTER_DELETE`` (error)
* a reference still ``local`` when a loop body ends an iteration it was
  acquired in → ``JNI_LOCAL_REF_LEAK`` (error: the fixed-size local
  reference table overflows under iteration)
* a ``global`` reference live at exit and not returned →
  ``JNI_GLOBAL_REF_LEAK`` (error)
* a ``local``/``arg`` reference stored into a file-scope global without
  ``NewGlobalRef`` → ``JNI_LOCAL_ESCAPE`` (warning — the frame dies, the
  cached pointer dangles)

``if (x == NULL)``-style tests refine the state, which keeps the
ubiquitous lookup-failure early-return idiom report-free.  References
are *not* required to be deleted on straight-line paths: the VM frees
the frame's locals itself, so only iteration and caching are dangerous.
"""

from __future__ import annotations

from typing import Optional

from ..cfront import ast
from ..core.srctypes import CSrcValue
from ..diagnostics import Diagnostic, Kind
from ..source import Span
from .calls import VarTypes, env_call
from .runtime import (
    DELETE_GLOBAL_FUNCTIONS,
    DELETE_LOCAL_FUNCTIONS,
    GLOBAL_REF_FUNCTIONS,
    LOCAL_REF_FUNCTIONS,
)

ARG = "arg"
LOCAL = "local"
GLOBAL = "global"
DELETED = "deleted"
TRANSFERRED = "transferred"
UNKNOWN = "unknown"

State = dict[str, str]

_DELETE_FUNCTIONS = DELETE_LOCAL_FUNCTIONS | DELETE_GLOBAL_FUNCTIONS


def _is_null(expr: ast.CExpr) -> bool:
    return (isinstance(expr, ast.Name) and expr.ident == "NULL") or (
        isinstance(expr, ast.Num) and expr.value == 0
    )


class RefChecker:
    """Check one function body; collect diagnostics."""

    def __init__(self, fn: ast.FunctionDef, global_values: frozenset[str]):
        self.fn = fn
        self.vars = VarTypes(fn)
        self.global_values = global_values
        self.diags: list[Diagnostic] = []
        self.acquired_at: dict[str, Span] = {}
        #: append-only log of (name, span) local-ref acquisitions, so loop
        #: bodies can see what this iteration created
        self._acq_log: list[tuple[str, Span]] = []
        self._reported_use: set[str] = set()
        self._reported_local_leak: set[str] = set()
        self._reported_global_leak: set[str] = set()

    # -- reporting ---------------------------------------------------------

    def _report(self, kind: Kind, span: Span, message: str) -> None:
        self.diags.append(
            Diagnostic(kind=kind, span=span, message=message, function=self.fn.name)
        )

    def _use_after(self, name: str, span: Span, how: str) -> None:
        if name in self._reported_use:
            return
        self._reported_use.add(name)
        self._report(
            Kind.JNI_USE_AFTER_DELETE,
            span,
            f"`{name}` is {how} after DeleteLocalRef/DeleteGlobalRef "
            "already released it",
        )

    # -- expression classification ----------------------------------------

    def _log_local(self, name: str, span: Span) -> None:
        self.acquired_at[name] = span
        self._acq_log.append((name, span))

    def _classify_rhs(self, expr: ast.CExpr, state: State) -> str:
        """State of a right-hand side; a global ref MOVES out of an
        aliased source (one reference, one releaser)."""
        while isinstance(expr, ast.Cast):
            expr = expr.operand
        if isinstance(expr, ast.Call):
            found = env_call(expr, self.vars)
            if found is not None:
                callee = found[0]
                if callee in LOCAL_REF_FUNCTIONS:
                    return LOCAL
                if callee in GLOBAL_REF_FUNCTIONS:
                    return GLOBAL
            return UNKNOWN
        if isinstance(expr, ast.Name):
            source = state.get(expr.ident)
            if source == GLOBAL:
                state[expr.ident] = TRANSFERRED
                return GLOBAL
            if source in (LOCAL, ARG, DELETED):
                return source
        return UNKNOWN

    def _check_uses(self, expr: Optional[ast.CExpr], state: State, span: Span) -> None:
        """Flag reads of deleted references anywhere inside ``expr``."""
        if expr is None:
            return
        if isinstance(expr, ast.Name):
            if state.get(expr.ident) == DELETED:
                self._use_after(expr.ident, span, "used")
            return
        if isinstance(expr, ast.Call):
            for arg in expr.args:
                self._check_uses(arg, state, span)
            return
        if isinstance(expr, ast.Unary):
            self._check_uses(expr.operand, state, span)
        elif isinstance(expr, ast.Binary):
            self._check_uses(expr.left, state, span)
            self._check_uses(expr.right, state, span)
        elif isinstance(expr, ast.Conditional):
            self._check_uses(expr.cond, state, span)
            self._check_uses(expr.then, state, span)
            self._check_uses(expr.other, state, span)
        elif isinstance(expr, ast.Cast):
            self._check_uses(expr.operand, state, span)
        elif isinstance(expr, ast.Index):
            self._check_uses(expr.base, state, span)
            self._check_uses(expr.index, state, span)
        elif isinstance(expr, ast.Member):
            self._check_uses(expr.base, state, span)
        elif isinstance(expr, ast.Assign):
            self._check_uses(expr.value, state, span)
        elif isinstance(expr, ast.IncDec):
            self._check_uses(expr.target, state, span)

    # -- effects of calls ---------------------------------------------------

    def _apply_call(self, call: ast.Call, state: State, span: Span) -> bool:
        """Interpret a call's reference effects; True if fully handled."""
        found = env_call(call, self.vars)
        if found is None:
            return False
        callee, args = found
        if callee in _DELETE_FUNCTIONS and len(args) == 1:
            target = args[0]
            while isinstance(target, ast.Cast):
                target = target.operand
            if isinstance(target, ast.Name):
                name = target.ident
                if state.get(name) == DELETED:
                    self._use_after(name, span, f"{callee}-ed again")
                elif name in state:
                    state[name] = DELETED
            return True
        self._check_uses(call, state, span)
        return True

    def _eval_expr(self, expr: Optional[ast.CExpr], state: State, span: Span) -> None:
        """Evaluate an expression for its reference effects and uses."""
        if expr is None:
            return
        if isinstance(expr, ast.Call):
            if not self._apply_call(expr, state, span):
                self._check_uses(expr, state, span)
            return
        if isinstance(expr, ast.Unary):
            self._eval_expr(expr.operand, state, span)
        elif isinstance(expr, ast.Binary):
            self._eval_expr(expr.left, state, span)
            self._eval_expr(expr.right, state, span)
        elif isinstance(expr, ast.Conditional):
            self._eval_expr(expr.cond, state, span)
            self._eval_expr(expr.then, state, span)
            self._eval_expr(expr.other, state, span)
        elif isinstance(expr, ast.Cast):
            self._eval_expr(expr.operand, state, span)
        elif isinstance(expr, ast.Index):
            self._eval_expr(expr.base, state, span)
            self._eval_expr(expr.index, state, span)
        elif isinstance(expr, ast.Member):
            self._eval_expr(expr.base, state, span)
        elif isinstance(expr, ast.IncDec):
            self._eval_expr(expr.target, state, span)
        elif isinstance(expr, ast.Assign):
            self._apply_assign(expr, state, span)
        else:
            self._check_uses(expr, state, span)

    # -- assignments --------------------------------------------------------

    def _escape_check(self, value: ast.CExpr, state: State, span: Span) -> None:
        """A reference stored into a file-scope global must be a global ref."""
        probe = value
        while isinstance(probe, ast.Cast):
            probe = probe.operand
        if isinstance(probe, ast.Name):
            source = state.get(probe.ident)
            if source in (LOCAL, ARG):
                self._report(
                    Kind.JNI_LOCAL_ESCAPE,
                    span,
                    f"local reference `{probe.ident}` is cached in a "
                    "global; it dies with this native frame — promote it "
                    "with NewGlobalRef first",
                )
                state[probe.ident] = UNKNOWN
            elif source == GLOBAL:
                state[probe.ident] = TRANSFERRED
            return
        if self._classify_rhs(probe, dict(state)) == LOCAL:
            self._report(
                Kind.JNI_LOCAL_ESCAPE,
                span,
                "a fresh local reference is cached in a global; it dies "
                "with this native frame — promote it with NewGlobalRef "
                "first",
            )

    def _apply_assign(self, node: ast.Assign, state: State, span: Span) -> None:
        self._eval_expr(node.value, state, span)
        target = node.target
        if isinstance(target, ast.Name) and target.ident in state:
            name = target.ident
            if state[name] == GLOBAL:
                self._report(
                    Kind.JNI_GLOBAL_REF_LEAK,
                    span,
                    f"global reference held by `{name}` is overwritten "
                    "while still live; DeleteGlobalRef is missing",
                )
            if _is_null(node.value):
                state[name] = UNKNOWN
            else:
                state[name] = self._classify_rhs(node.value, state)
            if state[name] == LOCAL:
                self._log_local(name, span)
            elif state[name] == GLOBAL:
                self.acquired_at[name] = span
            return
        if isinstance(target, ast.Name) and target.ident in self.global_values:
            self._escape_check(node.value, state, span)
            return
        # store into a container/field: the reference escapes there
        probe = node.value
        while isinstance(probe, ast.Cast):
            probe = probe.operand
        if isinstance(probe, ast.Name) and state.get(probe.ident) == GLOBAL:
            state[probe.ident] = TRANSFERRED
        self._check_uses(target, state, span)

    # -- exits --------------------------------------------------------------

    def _exit_check(self, state: State, span: Span, returned: Optional[str]) -> None:
        for name, var_state in sorted(state.items()):
            if name == returned:
                continue
            if var_state == GLOBAL:
                if name in self._reported_global_leak:
                    continue
                self._reported_global_leak.add(name)
                where = self.acquired_at.get(name)
                origin = f" (acquired at {where})" if where is not None else ""
                self._report(
                    Kind.JNI_GLOBAL_REF_LEAK,
                    span,
                    f"global reference held by `{name}`{origin} is still "
                    "live at this return; DeleteGlobalRef is missing",
                )

    def _apply_return(
        self, value: Optional[ast.CExpr], state: State, span: Span
    ) -> None:
        returned: Optional[str] = None
        if value is not None:
            self._check_uses(value, state, span)
            while isinstance(value, ast.Cast):
                value = value.operand
            if isinstance(value, ast.Name):
                returned = value.ident
        self._exit_check(state, span, returned)

    # -- condition refinement ----------------------------------------------

    @staticmethod
    def _null_test(cond: ast.CExpr) -> Optional[tuple[str, bool]]:
        """``(name, is_null_in_then)`` for recognizable null tests."""
        if isinstance(cond, ast.Unary) and cond.op == "!":
            inner = cond.operand
            if isinstance(inner, ast.Name):
                return (inner.ident, True)
            return None
        if isinstance(cond, ast.Binary) and cond.op in ("==", "!="):
            for probe, other in ((cond.left, cond.right), (cond.right, cond.left)):
                if isinstance(probe, ast.Name) and _is_null(other):
                    return (probe.ident, cond.op == "==")
        if isinstance(cond, ast.Name):
            return (cond.ident, False)
        return None

    # -- statement interpretation -------------------------------------------

    @staticmethod
    def _join(left: State, right: State) -> State:
        joined: State = {}
        for name in set(left) | set(right):
            a, b = left.get(name), right.get(name)
            if a == b and a is not None:
                joined[name] = a
            elif a is None:
                joined[name] = b  # declared in one branch only
            elif b is None:
                joined[name] = a
            else:
                joined[name] = UNKNOWN
        return joined

    def _loop_body(
        self, body: ast.CStmtOrDecl, state: State, span: Span
    ) -> State:
        """One abstract iteration; reports locals the iteration strands.

        Anything acquired during the body and still ``local`` when the
        body ends repeats its acquisition every iteration without a
        matching ``DeleteLocalRef`` — the local-reference-table overflow.
        """
        body_state = dict(state)
        mark = len(self._acq_log)
        terminated = self._exec_stmt(body, body_state)
        if not terminated:
            for name, where in self._acq_log[mark:]:
                if body_state.get(name) != LOCAL:
                    continue
                if name in self._reported_local_leak:
                    continue
                self._reported_local_leak.add(name)
                self._report(
                    Kind.JNI_LOCAL_REF_LEAK,
                    where,
                    f"`{name}` takes a fresh local reference on every "
                    "iteration of this loop and is never DeleteLocalRef-ed; "
                    "the local reference table will overflow",
                )
        return body_state

    def _exec_stmt(self, stmt: ast.CStmtOrDecl, state: State) -> bool:
        """Interpret one statement; True when the path terminated."""
        if isinstance(stmt, ast.Declaration):
            if not isinstance(stmt.ctype, CSrcValue):
                if stmt.init is not None and not isinstance(stmt.init, ast.InitList):
                    self._eval_expr(stmt.init, state, stmt.span)
                return False
            if stmt.init is None or _is_null(stmt.init):
                state[stmt.name] = UNKNOWN
            else:
                self._eval_expr(stmt.init, state, stmt.span)
                state[stmt.name] = self._classify_rhs(stmt.init, state)
                if state[stmt.name] == LOCAL:
                    self._log_local(stmt.name, stmt.span)
                elif state[stmt.name] == GLOBAL:
                    self.acquired_at[stmt.name] = stmt.span
            return False
        if isinstance(stmt, ast.Block):
            for item in stmt.items:
                if self._exec_stmt(item, state):
                    return True
            return False
        if isinstance(stmt, ast.ExprStmt):
            expr = stmt.expr
            if isinstance(expr, ast.Assign):
                self._apply_assign(expr, state, stmt.span)
                return False
            self._eval_expr(expr, state, stmt.span)
            return False
        if isinstance(stmt, ast.IfStmt):
            return self._exec_if(stmt, state)
        if isinstance(stmt, (ast.WhileStmt, ast.DoWhileStmt)):
            self._eval_expr(stmt.cond, state, stmt.span)
            body_state = self._loop_body(stmt.body, state, stmt.span)
            merged = self._join(state, body_state)  # zero or more iterations
            state.clear()
            state.update(merged)
            return False
        if isinstance(stmt, ast.ForStmt):
            if stmt.init is not None:
                self._exec_stmt(stmt.init, state)
            if stmt.cond is not None:
                self._eval_expr(stmt.cond, state, stmt.span)
            body_state = self._loop_body(stmt.body, state, stmt.span)
            if stmt.step is not None:
                self._eval_expr(stmt.step, body_state, stmt.span)
            merged = self._join(state, body_state)
            state.clear()
            state.update(merged)
            return False
        if isinstance(stmt, ast.SwitchStmt):
            self._eval_expr(stmt.scrutinee, state, stmt.span)
            outcomes: list[State] = []
            for case in stmt.cases:
                case_state = dict(state)
                terminated = False
                for item in case.body:
                    if self._exec_stmt(item, case_state):
                        terminated = True
                        break
                if not terminated:
                    outcomes.append(case_state)
            outcomes.append(state)  # no case may match
            merged = outcomes[0]
            for outcome in outcomes[1:]:
                merged = self._join(merged, outcome)
            state.clear()
            state.update(merged)
            return False
        if isinstance(stmt, ast.ReturnStmt):
            self._apply_return(stmt.value, state, stmt.span)
            return True
        if isinstance(stmt, ast.LabeledStmt):
            return self._exec_stmt(stmt.stmt, state)
        # goto/break/continue/empty: no reference effects modelled
        return False

    def _exec_if(self, stmt: ast.IfStmt, state: State) -> bool:
        self._eval_expr(stmt.cond, state, stmt.span)
        then_state = dict(state)
        else_state = dict(state)
        refined = self._null_test(stmt.cond)
        if refined is not None:
            name, null_in_then = refined
            if name in then_state:
                (then_state if null_in_then else else_state)[name] = UNKNOWN
        then_done = self._exec_stmt(stmt.then, then_state)
        else_done = (
            self._exec_stmt(stmt.other, else_state)
            if stmt.other is not None
            else False
        )
        if then_done and else_done:
            return True
        if then_done:
            merged = else_state
        elif else_done:
            merged = then_state
        else:
            merged = self._join(then_state, else_state)
        state.clear()
        state.update(merged)
        return False

    # -- entry point ---------------------------------------------------------

    def run(self) -> list[Diagnostic]:
        if self.fn.body is None:
            return []
        state: State = {
            name: ARG
            for name, ctype in self.fn.params
            if isinstance(ctype, CSrcValue)
        }
        terminated = self._exec_stmt(self.fn.body, state)
        if not terminated:
            # falling off the end is an exit too
            self._exit_check(state, self.fn.span, returned=None)
        return self.diags


def check_unit(unit: ast.TranslationUnit) -> list[Diagnostic]:
    """Reference-discipline diagnostics for every function in the unit."""
    global_values = frozenset(
        decl.name
        for decl in unit.globals
        if isinstance(decl.ctype, CSrcValue)
    )
    diags: list[Diagnostic] = []
    for fn in unit.functions:
        diags.extend(RefChecker(fn, global_values).run())
    return diags
