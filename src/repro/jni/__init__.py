"""The JNI (Java Native Interface) boundary dialect.

``jobject`` plays the role OCaml's ``value`` and CPython's ``PyObject *``
play: an opaque reference into the host VM's heap.  The boundary contract
comes from ``JNINativeMethod`` registration tables and the ``Java_*``
export naming convention; the conversion checks read JVM type descriptors
(``(ILjava/lang/String;)V``) the way the pyext dialect reads
``PyArg_ParseTuple`` formats; and the protection discipline is the
local/global reference lifecycle (``NewLocalRef``/``DeleteLocalRef``/
``NewGlobalRef``).
"""
