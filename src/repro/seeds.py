"""Precomputed seed artifacts and the one seed-memo invalidation point.

Every dialect carries per-process seed state that is identical across
analysis runs: the runtime entry-point tables (``builtin_entries``), the
lowering's return/parameter tables, the parse hints, the OCaml stdlib
declarations — and, far more expensively, the *parsed host interface*
(the OCaml :class:`~repro.ocamlfront.repository.TypeRepository`, the Rust
:class:`~repro.rustffi.parser.RustInterface`) memoized by content
fingerprint.  Before this module each of those memos was its own
``functools.cache`` or module-level dict: per-process, invisible to each
other, and rebuilt from scratch by every worker the multiprocessing
scheduler or the async daemon spawns.

This module centralizes all of it:

* :func:`seed_table` replaces the scattered ``functools.cache`` seed
  memos.  Every table lives in one process-wide store keyed by a stable
  name, so :func:`clear_seed_memos` is the *single* invalidation point —
  it drops every seed table, every host-interface memo, and the
  hash-consing caches in one call, which is what makes artifact-loaded
  and freshly built seeds interchangeable.
* :class:`HostSeedMemo` is the shared host-interface memo with an
  on-disk tier: a miss first tries the seed artifact for that content
  fingerprint (a pickle written atomically by a previous process or by
  ``mlffi-check warmup``), and only then rebuilds — writing the artifact
  through on first use so the *next* process loads instead of re-parsing.
  Loading a parsed host interface is 5–10x cheaper than re-deriving it,
  which is exactly the per-worker spawn cost the scheduler used to pay.
* Artifacts are versioned: every file records :data:`SEED_SCHEMA_VERSION`
  and the :func:`registry_fingerprint` of the producing process (cache
  schema, package version, Python version, kernel flavor, registered
  dialects).  A stale, corrupt, truncated, or foreign-revision artifact
  is never trusted — the loader falls back to rebuild and overwrites it.

Artifacts live under ``~/.cache/mlffi/seeds`` (override with
``MLFFI_SEED_DIR``; disable the tier entirely with
``MLFFI_SEED_ARTIFACTS=0``).  Concurrent warmup is safe: writers stage to
a unique temp file and ``os.replace`` it into place, so readers see
either the old artifact or the new one, never a torn write.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import sys
import tempfile
import threading
from pathlib import Path
from typing import Any, Callable, Optional, TypeVar

from . import kernel

T = TypeVar("T")

#: Bump when the artifact envelope or payload semantics change; stale
#: versions are rebuilt, never migrated.
SEED_SCHEMA_VERSION = 1

SEED_DIR_ENV = "MLFFI_SEED_DIR"
SEED_ARTIFACTS_ENV = "MLFFI_SEED_ARTIFACTS"

#: Per-directory artifact cap: warmup prunes the oldest files beyond it
#: (the artifact is a cache, not a registry — dropping one only costs the
#: next process a rebuild).
MAX_ARTIFACTS = 512

#: In-process host-interface memo bound, matching the per-dialect limit
#: the dialects used before centralization.
HOST_MEMO_LIMIT = 32


def artifacts_enabled() -> bool:
    """Whether the on-disk artifact tier is active (default: yes)."""
    return os.environ.get(SEED_ARTIFACTS_ENV, "").strip() not in (
        "0",
        "off",
        "false",
    )


def seed_dir() -> Path:
    """Where artifacts live; ``MLFFI_SEED_DIR`` overrides the default."""
    override = os.environ.get(SEED_DIR_ENV, "").strip()
    if override:
        return Path(override)
    return Path.home() / ".cache" / "mlffi" / "seeds"


def registry_fingerprint() -> str:
    """The revision key every artifact is bound to.

    Covers everything that can change what a seed *means*: the artifact
    schema, the engine's cache schema (analysis semantics), the package
    version, the interpreter, the kernel flavor (compiled and interpreted
    processes never share pickles), and the registered dialect set —
    a third-party dialect registration changes the fingerprint, so its
    artifacts can never leak into a stock deployment or vice versa.
    """
    from . import __version__
    from .boundary import available_dialects
    from .engine.jobs import CACHE_SCHEMA_VERSION

    payload = json.dumps(
        {
            "seed_schema": SEED_SCHEMA_VERSION,
            "cache_schema": CACHE_SCHEMA_VERSION,
            "version": __version__,
            "python": "%d.%d" % sys.version_info[:2],
            "kernel": kernel.kernel_flavor(),
            "dialects": list(available_dialects()),
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# the central seed-table store (one invalidation point)
# ---------------------------------------------------------------------------

_TABLES: dict[str, Any] = {}
_BUILDERS: dict[str, Callable[[], Any]] = {}
_HOST_MEMOS: dict[str, "HostSeedMemo"] = {}
_LOCK = threading.RLock()

#: Process-wide counters surfaced by the server's ``status`` RPC.
_STATS = {
    "table_builds": 0,
    "host_builds": 0,
    "artifact_loads": 0,
    "artifact_stores": 0,
    "artifact_rejects": 0,
}


def seed_table(key: str) -> Callable[[Callable[[], T]], Callable[[], T]]:
    """Register + memoize one seed-table builder under a stable name.

    Drop-in replacement for the ``functools.cache`` the seed modules used
    before: the wrapped function still takes no arguments and returns the
    shared table, but the value lives in the central store where
    :func:`clear_seed_memos` can drop it and :func:`prime_tables` can
    install an artifact-loaded copy.  A ``cache_clear`` attribute keeps
    the old per-function escape hatch working.
    """

    def decorate(build: Callable[[], T]) -> Callable[[], T]:
        if key in _BUILDERS:
            raise ValueError(f"duplicate seed table `{key}`")
        _BUILDERS[key] = build

        def wrapper() -> T:
            try:
                return _TABLES[key]
            except KeyError:
                pass
            # one stat per process: a warmup bundle may already hold
            # every table this process would otherwise derive
            prime_from_static_bundle()
            with _LOCK:
                if key not in _TABLES:
                    _TABLES[key] = build()
                    _STATS["table_builds"] += 1
                return _TABLES[key]

        wrapper.seed_key = key  # type: ignore[attr-defined]
        wrapper.cache_clear = (  # type: ignore[attr-defined]
            lambda: _TABLES.pop(key, None)
        )
        wrapper.__name__ = build.__name__
        wrapper.__doc__ = build.__doc__
        return wrapper

    return decorate


def registered_tables() -> tuple[str, ...]:
    """Stable names of every registered seed table (forces no builds)."""
    return tuple(sorted(_BUILDERS))


def build_all_tables() -> dict[str, Any]:
    """Force-build every registered table and return the live store.

    Bootstraps the dialect registry first: registration imports the seed
    modules, and importing a seed module is what registers its tables.
    """
    from .boundary import available_dialects, get_dialect

    for name in available_dialects():
        get_dialect(name)
    for key, build in list(_BUILDERS.items()):
        if key not in _TABLES:
            with _LOCK:
                if key not in _TABLES:
                    _TABLES[key] = build()
                    _STATS["table_builds"] += 1
    return dict(_TABLES)


def prime_tables(tables: dict[str, Any]) -> int:
    """Install artifact-loaded tables; unknown names are ignored.

    Only names with a registered builder are accepted, so a tampered or
    semantically-foreign artifact cannot inject tables nothing asked for.
    Returns how many tables were installed.
    """
    installed = 0
    with _LOCK:
        for key, value in tables.items():
            if key in _BUILDERS and key not in _TABLES:
                _TABLES[key] = value
                installed += 1
    return installed


def clear_seed_memos() -> None:
    """THE seed invalidation point.

    Drops every centrally-memoized seed table, every host-interface
    memo (all dialects), and the hash-consing caches.  After this call a
    process is seed-cold: the next analysis rebuilds (or artifact-loads)
    everything, exactly like a fresh worker.
    """
    from .core.intern import clear_intern_caches

    global _STATIC_LOADED
    with _LOCK:
        _TABLES.clear()
        for memo in _HOST_MEMOS.values():
            memo._entries.clear()
        _STATIC_LOADED = False
    clear_intern_caches()


def seed_stats() -> dict:
    """Counters + occupancy for the ``status`` RPC and tests."""
    return {
        **_STATS,
        "tables": len(_TABLES),
        "host_memos": {
            name: len(memo._entries) for name, memo in _HOST_MEMOS.items()
        },
        "artifacts_enabled": artifacts_enabled(),
    }


# ---------------------------------------------------------------------------
# artifact files
# ---------------------------------------------------------------------------


def _artifact_path(kind: str, fingerprint: str, registry: str) -> Path:
    return seed_dir() / f"{registry[:16]}-{kind}-{fingerprint[:24]}.seed"


def _write_artifact(path: Path, envelope: dict) -> bool:
    """Atomic best-effort write: stage to a unique temp file, then
    ``os.replace``.  Two processes warming concurrently both succeed;
    the loser's bytes simply win the rename race, and both wrote the
    same logical content.  Failures (read-only cache dir, full disk,
    unpicklable payload) are absorbed — the artifact is an optimization.
    """
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, staged = tempfile.mkstemp(
            dir=str(path.parent), prefix=".tmp-", suffix=".seed"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(envelope, handle, protocol=5)
            os.replace(staged, path)
        except BaseException:
            try:
                os.unlink(staged)
            except OSError:
                pass
            raise
    except Exception:
        return False
    _STATS["artifact_stores"] += 1
    return True


def _read_artifact(
    path: Path, kind: str, fingerprint: str, registry: str
) -> Optional[Any]:
    """Load + validate one artifact; ``None`` means rebuild.

    Every failure mode an on-disk cache can exhibit lands here —
    truncated pickle, garbage bytes, a stale schema or registry
    fingerprint, classes that no longer exist — and every one of them is
    an ordinary miss, never a crash.
    """
    try:
        with open(path, "rb") as handle:
            envelope = pickle.load(handle)
    except FileNotFoundError:
        return None
    except Exception:
        _STATS["artifact_rejects"] += 1
        return None
    if not isinstance(envelope, dict):
        _STATS["artifact_rejects"] += 1
        return None
    if (
        envelope.get("seed_schema") != SEED_SCHEMA_VERSION
        or envelope.get("registry") != registry
        or envelope.get("kind") != kind
        or envelope.get("fingerprint") != fingerprint
        or "payload" not in envelope
    ):
        _STATS["artifact_rejects"] += 1
        return None
    _STATS["artifact_loads"] += 1
    return envelope["payload"]


def store_artifact(kind: str, fingerprint: str, payload: Any) -> bool:
    """Write one artifact under the current registry fingerprint."""
    if not artifacts_enabled():
        return False
    registry = registry_fingerprint()
    envelope = {
        "seed_schema": SEED_SCHEMA_VERSION,
        "registry": registry,
        "kind": kind,
        "fingerprint": fingerprint,
        "payload": payload,
    }
    return _write_artifact(
        _artifact_path(kind, fingerprint, registry), envelope
    )


def load_artifact(kind: str, fingerprint: str) -> Optional[Any]:
    """Load one artifact if present and trustworthy."""
    if not artifacts_enabled():
        return None
    registry = registry_fingerprint()
    return _read_artifact(
        _artifact_path(kind, fingerprint, registry),
        kind,
        fingerprint,
        registry,
    )


def prune_artifacts(limit: int = MAX_ARTIFACTS) -> int:
    """Evict the oldest artifacts beyond ``limit``; returns evictions."""
    directory = seed_dir()
    try:
        files = [
            entry
            for entry in directory.iterdir()
            if entry.name.endswith(".seed")
            and not entry.name.startswith(".")
        ]
    except OSError:
        return 0
    if len(files) <= limit:
        return 0
    files.sort(key=lambda entry: entry.stat().st_mtime)
    evicted = 0
    for stale in files[: len(files) - limit]:
        try:
            stale.unlink()
            evicted += 1
        except OSError:
            pass
    return evicted


# ---------------------------------------------------------------------------
# the shared host-interface memo (memory over artifact over rebuild)
# ---------------------------------------------------------------------------


class HostSeedMemo:
    """Per-dialect memo for parsed host interfaces, artifact-backed.

    ``get`` resolves a content fingerprint through three tiers: the
    in-process memo, the on-disk artifact, and the dialect's builder —
    writing through to the artifact on a build so sibling and future
    processes load instead of re-deriving.  The memo is bounded the same
    way the per-dialect dicts it replaces were: a full table is cleared
    wholesale (it is an optimization, not a registry).
    """

    def __init__(self, dialect: str, limit: int = HOST_MEMO_LIMIT):
        self.dialect = dialect
        self.limit = limit
        self._entries: dict[str, Any] = {}
        self._lock = threading.Lock()
        _HOST_MEMOS[dialect] = self

    def get(self, fingerprint: str, build: Callable[[], T]) -> T:
        entry = self._entries.get(fingerprint)
        if entry is not None:
            return entry
        kind = f"host-{self.dialect}"
        loaded = load_artifact(kind, fingerprint)
        if loaded is None:
            with _LOCK:
                _STATS["host_builds"] += 1
            loaded = build()
            store_artifact(kind, fingerprint, loaded)
        with self._lock:
            if len(self._entries) >= self.limit:
                self._entries.clear()
            self._entries[fingerprint] = loaded
        return loaded

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()


# ---------------------------------------------------------------------------
# warmup (the CLI's `mlffi-check warmup` and build-on-first-use)
# ---------------------------------------------------------------------------


def warmup_static() -> dict:
    """Build every registered seed table and write the static bundle.

    The bundle exists so a warmed process can prime all of its seed
    tables with one read; it is keyed only by the registry fingerprint
    (the tables depend on no user input).
    """
    tables = build_all_tables()
    stored = store_artifact("static", "tables", tables)
    return {
        "tables": len(tables),
        "stored": stored,
        "artifact_dir": str(seed_dir()),
    }


_STATIC_LOADED = False


def prime_from_static_bundle() -> int:
    """Try once per process to prime the seed tables from the bundle.

    Called lazily by consumers that are about to build seeds; a missing
    or stale bundle costs one ``stat`` and changes nothing.
    """
    global _STATIC_LOADED
    if _STATIC_LOADED:
        return 0
    _STATIC_LOADED = True
    payload = load_artifact("static", "tables")
    if not isinstance(payload, dict):
        return 0
    return prime_tables(payload)


def warmup_hosts(
    dialect_name: str, host_sources: tuple
) -> dict:
    """Precompute the host-interface artifact for one host-source set.

    ``host_sources`` is the tuple of :class:`~repro.source.SourceFile`
    the dialect would receive on a request; dialects without a host side
    (pyext, jni) report zero artifacts.
    """
    from .boundary import get_dialect
    from .engine.jobs import CheckRequest, repository_fingerprint

    dialect = get_dialect(dialect_name)
    if not host_sources:
        return {"hosts": 0, "fingerprint": None}
    fingerprint = repository_fingerprint(host_sources)
    request = CheckRequest(
        name="<warmup>",
        c_sources=(),
        ocaml_sources=tuple(host_sources),
        dialect=dialect_name,
    )
    builder = getattr(dialect, "host_interface_for", None)
    if builder is None:
        return {"hosts": 0, "fingerprint": None}
    builder(request)  # populates the memo + writes the artifact
    return {"hosts": len(host_sources), "fingerprint": fingerprint}
