"""The Rust ``extern "C"`` boundary as a :class:`BoundaryDialect`.

``Γ_I`` comes from the ``.rs`` side the way :mod:`repro.ocamlfront`
reads it from the OCaml repository: the host sources carry the
boundary contract (``extern "C"`` imports and ``#[no_mangle]``
exports), memoized per process by content fingerprint because every
unit of a crate shares one Rust side.  Phase two parses the C units
with the bindgen vocabulary (:mod:`repro.rustffi.runtime`), runs the
shared checker — the Rust runtime has no entry-point table, so the
seeds are empty and the shared pass only contributes C-side
consistency — and then the declaration-agreement pass
(:mod:`repro.rustffi.declcheck`), which is where the ``RUST_*`` rule
pack fires.

The summary side is what makes the dialect whole-program: Rust imports
become typed *bindings* (claims the linker compares against C
declarations of the same symbol) and Rust exports become
*host_exports* (definitions supplied from the host side), both
rendered to canonical C so agreement is string equality.
"""

from __future__ import annotations

from ..boundary import DialectSpec, register_dialect
from ..cfront.ast import TranslationUnit
from ..cfront.ir import ProgramIR
from ..cfront.lexer import scan_includes
from ..cfront.lower import lower_unit
from ..cfront.parser import parse_c
from ..core.checker import AnalysisReport, Checker, InitialEnv
from ..core.environment import Entry
from ..engine.jobs import CheckRequest, repository_fingerprint
from ..linker.extract import summarize_units
from ..linker.summary import InterfaceSummary, SymbolRow
from ..seeds import HostSeedMemo
from ..source import SourceFile
from ..telemetry import span as _tspan
from . import declcheck, runtime
from .parser import RustFn, RustInterface, parse_sources
from .widths import render_fn

#: Shared memo for parsed Rust interfaces: in-process table over the
#: seed artifact tier over rebuild (see :mod:`repro.seeds`).  A fresh
#: worker unpickles the interface a sibling already parsed instead of
#: re-scanning the ``.rs`` sources.
_INTERFACE_SEEDS = HostSeedMemo("rust")


class RustFfiDialect:
    """Rust ``extern "C"`` declaration agreement, whole-program."""

    name = "rust"
    host_suffixes = (".rs",)
    unit_suffixes = (".c", ".h")
    #: only .c files are scanned as standalone units; headers reach
    #: the analysis as dependencies of their includers
    corpus_unit_suffixes = (".c",)

    # -- seeds ---------------------------------------------------------------

    def builtin_entries(self) -> dict[str, Entry]:
        # no runtime entry-point table: plain C calls plain Rust
        return {}

    def polymorphic_builtins(self) -> frozenset[str]:
        return frozenset()

    def global_entries(self) -> dict[str, Entry]:
        return {}

    def alloc_result_tags(self) -> dict[str, int | str]:
        return {}

    # -- phases --------------------------------------------------------------

    def interface_for(self, request: CheckRequest) -> RustInterface:
        fingerprint = repository_fingerprint(request.ocaml_sources)
        return _INTERFACE_SEEDS.get(
            fingerprint, lambda: parse_sources(request.ocaml_sources)
        )

    #: the seed-warmup entry point (same contract for every dialect
    #: with a parsed host side; see :func:`repro.seeds.warmup_hosts`)
    host_interface_for = interface_for

    def parse(self, source: SourceFile) -> TranslationUnit:
        return parse_c(source, runtime.parse_hints())

    def initial_env(self, request: CheckRequest) -> InitialEnv:
        # declaration agreement is checked by the dialect pass against
        # the Rust interface; the Figure 6/7 seeds stay empty because no
        # boxed-value type crosses this boundary
        return InitialEnv()

    def analyze(self, request: CheckRequest) -> AnalysisReport:
        with _tspan("initial-env", cat="phase"):
            interface = self.interface_for(request)
        units = [self.parse(source) for source in request.c_sources]
        with _tspan("lower", cat="phase"):
            program = ProgramIR()
            for unit in units:
                program = program.merge(lower_unit(unit))
        report = Checker(
            program, InitialEnv(), request.options, dialect=self
        ).run()
        with _tspan("dialect-passes", cat="phase"):
            report.diagnostics.extend(
                declcheck.check_interface(interface, units)
            )
        with _tspan("summarize", cat="phase"):
            report.summary = self.summarize(request, units).to_dict()
        return report

    def summarize(self, request: CheckRequest, units) -> InterfaceSummary:
        """Link-relevant slice: C exports/externs plus the Rust side's
        typed imports (bindings) and ``#[no_mangle]`` exports."""
        summary = InterfaceSummary(unit=request.name, dialect=self.name)
        summarize_units(summary, units)
        interface = self.interface_for(request)
        for fn in interface.imports:
            summary.bindings.append(self._row(fn, interface))
        for fn in interface.exports:
            summary.host_exports.append(self._row(fn, interface))
        return summary

    def _row(self, fn: RustFn, interface: RustInterface) -> SymbolRow:
        return SymbolRow(
            symbol=fn.symbol,
            type=render_fn(fn, interface),
            file=fn.span.filename,
            line=fn.span.start.line,
            detail=fn.signature(),
        )

    def unit_dependencies(self, request: CheckRequest) -> tuple[str, ...]:
        """Every ``.rs`` input plus the unit's quoted includes: an edit
        to the Rust side changes the boundary contract for every unit."""
        deps: dict[str, None] = {}
        for source in request.ocaml_sources:
            deps.setdefault(source.filename)
        for source in request.c_sources:
            for header in scan_includes(source.text):
                deps.setdefault(header)
        return tuple(deps)


RUST_DIALECT = register_dialect(
    RustFfiDialect(),
    DialectSpec(
        name="rust",
        host_suffixes=(".rs",),
        unit_suffixes=(".c", ".h"),
        corpus_unit_suffixes=(".c",),
        example_dir="examples/rust",
        link_example_dir="examples/link/rust",
        bench_module="benchmarks/bench_rust.py",
    ),
)
