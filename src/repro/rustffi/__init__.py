"""Rust ``extern "C"`` FFI support — the fourth boundary dialect.

The checked property is *declaration agreement*: every symbol that
crosses the boundary is declared twice — once in Rust (an ``extern
"C"`` block importing a C function, or a ``#[no_mangle] pub extern
"C"`` definition exported to C) and once in C (a prototype in a
bindgen-style header, or the defining translation unit).  The two
declarations must agree in arity, in rendered type, and in *platform
width class*: ``size_t``/``usize`` are pointer-width on both sides,
``int``/``i32`` are 32-bit by convention, but ``usize`` against ``int``
is exactly the non-compliant example of the safety guidelines' FFI
chapter.

Modules:

* :mod:`repro.rustffi.parser` — reads the Rust FFI surface out of
  ``.rs`` sources (no full Rust parser: only the items that can cross
  the boundary);
* :mod:`repro.rustffi.widths` — the width-class tables and the
  Rust-to-canonical-C rendering the linker compares;
* :mod:`repro.rustffi.declcheck` — the per-unit agreement pass emitting
  the ``RUST_*`` rule pack;
* :mod:`repro.rustffi.runtime` — parse hints so the shared C parser
  reads bindgen-style headers (the ``stdint.h`` vocabulary);
* :mod:`repro.rustffi.dialect` — the :class:`BoundaryDialect` glue.
"""
