"""Read the FFI surface out of Rust sources.

This is deliberately *not* a Rust parser.  The only items that can
cross the ``extern "C"`` boundary are:

* ``extern "C" { fn name(args) -> ret; }`` blocks — *imports*: Rust
  calls into C, so some C unit must supply a matching declaration;
* ``#[no_mangle] pub extern "C" fn name(args) -> ret { ... }`` (or
  ``#[export_name = "sym"]``) — *exports*: Rust supplies the symbol,
  and a bindgen-style C header usually mirrors it;
* ``enum``/``struct`` declarations whose ``#[repr(...)]`` decides
  whether they have an ABI at all.

A regex-and-brace-matching scan finds exactly those, the way
:mod:`repro.ocamlfront` reads ``external`` declarations without an
OCaml parser.  Everything else — bodies, generics, traits, macros — is
skipped.  Comments and strings are blanked (offsets preserved) before
scanning so a ``fn`` in a doc comment never registers.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from ..source import DUMMY_SPAN, SourceFile, Span


@dataclass(frozen=True)
class RustFn:
    """One function declaration on the Rust side of the boundary."""

    #: the link-time symbol (after ``link_name``/``export_name`` overrides)
    symbol: str
    #: the name as written in Rust (differs only under an override)
    rust_name: str
    #: parameter type spellings, normalized whitespace, as written
    params: tuple[str, ...]
    #: return type spelling; ``"()"`` for the unit type
    ret: str
    span: Span = DUMMY_SPAN
    variadic: bool = False

    def signature(self) -> str:
        return f"fn {self.rust_name}({', '.join(self.params)}) -> {self.ret}"


@dataclass(frozen=True)
class RustAdt:
    """An ``enum`` or ``struct`` visible to the boundary."""

    name: str
    #: ``"enum"`` or ``"struct"``
    kind: str
    #: the ``#[repr(...)]`` argument, ``""`` when there is none
    repr: str = ""
    span: Span = DUMMY_SPAN


@dataclass
class RustInterface:
    """The boundary-relevant slice of one or more ``.rs`` sources."""

    #: ``extern "C" { ... }`` declarations — C must supply these
    imports: list[RustFn] = field(default_factory=list)
    #: ``#[no_mangle]``/``#[export_name]`` definitions — Rust supplies these
    exports: list[RustFn] = field(default_factory=list)
    #: boundary-visible ADTs by name
    adts: dict[str, RustAdt] = field(default_factory=dict)
    #: filenames the interface was read from, in input order
    filenames: list[str] = field(default_factory=list)

    def merge(self, other: "RustInterface") -> "RustInterface":
        self.imports.extend(other.imports)
        self.exports.extend(other.exports)
        self.adts.update(other.adts)
        self.filenames.extend(other.filenames)
        return self


_COMMENT_OR_STRING = re.compile(
    r'//[^\n]*|/\*.*?\*/|"(?:[^"\\\n]|\\.)*"', re.DOTALL
)

_ATTR = re.compile(r"#\[[^\][]*(?:\[[^\]]*\][^\][]*)*\]")
_EXTERN_BLOCK = re.compile(r'(?:unsafe\s+)?extern\s*"C"\s*\{')
_EXTERN_FN = re.compile(
    r'(?:pub(?:\([^)]*\))?\s+)?(?:unsafe\s+)?extern\s*"C"\s*fn\s+(\w+)\s*\('
)
_BLOCK_FN = re.compile(r"(?:pub(?:\([^)]*\))?\s+)?(?:unsafe\s+)?fn\s+(\w+)\s*\(")
_ADT = re.compile(r"(?:pub(?:\([^)]*\))?\s+)?(enum|struct|union)\s+(\w+)")
_NAME_OVERRIDE = re.compile(
    r'(?:link_name|export_name)\s*=\s*"([^"]+)"'
)
_REPR = re.compile(r"repr\s*\(\s*([^)]*?)\s*\)")


def _blank(text: str) -> str:
    """Replace comments and string literals with spaces, keeping every
    remaining character at its original offset (except the quotes of
    attribute-argument strings, which stay for ``link_name``)."""

    def replace(match: re.Match) -> str:
        chunk = match.group(0)
        return "".join("\n" if ch == "\n" else " " for ch in chunk)

    # attributes are matched before blanking so their string arguments
    # survive; everything else loses strings and comments
    out: list[str] = []
    last = 0
    for match in _COMMENT_OR_STRING.finditer(text):
        out.append(text[last : match.start()])
        chunk = match.group(0)
        if chunk == '"C"' or (
            chunk.startswith('"') and _attr_context(text, match.start())
        ):
            # keep the ABI string of `extern "C"` and attribute
            # arguments (`link_name`/`export_name`); blank the rest
            out.append(chunk)
        else:
            out.append(replace(match))
        last = match.end()
    out.append(text[last:])
    return "".join(out)


def _attr_context(text: str, pos: int) -> bool:
    """Is the string literal at ``pos`` inside a ``#[...]`` attribute?"""
    open_bracket = text.rfind("#[", 0, pos)
    if open_bracket == -1:
        return False
    return text.find("]", open_bracket, pos) == -1


def _match_delim(text: str, start: int, open_ch: str, close_ch: str) -> int:
    """Offset of the delimiter closing ``text[start]`` (which must be
    ``open_ch``); ``len(text)`` if unbalanced — a truncated source must
    not crash the scan."""
    depth = 0
    for index in range(start, len(text)):
        ch = text[index]
        if ch == open_ch:
            depth += 1
        elif ch == close_ch:
            depth -= 1
            if depth == 0:
                return index
    return len(text)


def _attrs_before(attr_spans: list[tuple[int, int, str]], text: str, pos: int) -> list[str]:
    """The contiguous run of attributes immediately preceding ``pos``."""
    found: list[str] = []
    cursor = pos
    by_end = {end: (start, content) for start, end, content in attr_spans}
    while True:
        while cursor > 0 and text[cursor - 1].isspace():
            cursor -= 1
        hit = by_end.get(cursor)
        if hit is None:
            break
        found.append(hit[1])
        cursor = hit[0]
    return found


def _split_args(arglist: str) -> list[str]:
    """Split a parameter list on top-level commas (``<>``/``[]``/``()``
    nesting respected)."""
    parts: list[str] = []
    depth = 0
    current: list[str] = []
    for ch in arglist:
        if ch in "<[(":
            depth += 1
        elif ch in ">])":
            depth -= 1
        if ch == "," and depth == 0:
            parts.append("".join(current))
            current = []
        else:
            current.append(ch)
    tail = "".join(current)
    if tail.strip():
        parts.append(tail)
    return parts


def normalize_spelling(spelling: str) -> str:
    """Canonical whitespace for a Rust type spelling: ``* const   T`` →
    ``*const T``, ``& str`` → ``&str``."""
    text = re.sub(r"\s+", " ", spelling).strip()
    text = re.sub(r"\*\s*const\b", "*const", text)
    text = re.sub(r"\*\s*mut\b", "*mut", text)
    text = re.sub(r"&\s*mut\b", "&mut", text)
    text = re.sub(r"&\s+", "&", text)
    text = re.sub(r"\s*::\s*", "::", text)
    text = re.sub(r"\(\s*\)", "()", text)
    return text


def _parse_fn(
    text: str,
    source: SourceFile,
    name: str,
    name_start: int,
    paren_start: int,
    attrs: list[str],
) -> tuple[RustFn, int]:
    """Parse one ``fn`` item from its opening paren; returns the
    declaration and the offset just past its signature."""
    close = _match_delim(text, paren_start, "(", ")")
    params: list[str] = []
    variadic = False
    for arg in _split_args(text[paren_start + 1 : close]):
        arg = arg.strip()
        if not arg:
            continue
        if arg == "...":
            variadic = True
            continue
        # drop the pattern: `name: Type`, `mut name: Type`
        _pattern, _colon, type_text = arg.partition(":")
        params.append(normalize_spelling(type_text if _colon else arg))
    # optional `-> Ret`, up to the body/terminator/where-clause
    cursor = close + 1
    ret = "()"
    arrow = re.compile(r"\s*->\s*").match(text, cursor)
    if arrow is not None:
        end = len(text)
        for stop in (
            text.find("{", arrow.end()),
            text.find(";", arrow.end()),
            _find_word(text, "where", arrow.end()),
        ):
            if stop != -1:
                end = min(end, stop)
        ret = normalize_spelling(text[arrow.end() : end])
        cursor = end
    symbol = name
    for attr in attrs:
        override = _NAME_OVERRIDE.search(attr)
        if override is not None:
            symbol = override.group(1)
    fn = RustFn(
        symbol=symbol,
        rust_name=name,
        params=tuple(params),
        ret=ret,
        span=source.span(name_start, close + 1),
        variadic=variadic,
    )
    return fn, cursor


def _find_word(text: str, word: str, start: int) -> int:
    match = re.compile(rf"\b{word}\b").search(text, start)
    return -1 if match is None else match.start()


def parse_rust(source: SourceFile) -> RustInterface:
    """Extract the FFI surface of one ``.rs`` source."""
    text = _blank(source.text)
    interface = RustInterface(filenames=[source.filename])
    attr_spans = [
        (m.start(), m.end(), m.group(0)) for m in _ATTR.finditer(text)
    ]

    # 1. extern "C" blocks: every fn inside is an import
    consumed: list[tuple[int, int]] = []
    for match in _EXTERN_BLOCK.finditer(text):
        open_brace = match.end() - 1
        close_brace = _match_delim(text, open_brace, "{", "}")
        consumed.append((match.start(), close_brace))
        cursor = open_brace + 1
        while True:
            fn_match = _BLOCK_FN.search(text, cursor, close_brace)
            if fn_match is None:
                break
            attrs = _attrs_before(attr_spans, text, fn_match.start())
            fn, cursor = _parse_fn(
                text,
                source,
                fn_match.group(1),
                fn_match.start(),
                fn_match.end() - 1,
                attrs,
            )
            interface.imports.append(fn)

    def in_consumed(pos: int) -> bool:
        return any(start <= pos <= end for start, end in consumed)

    # 2. exported definitions: extern "C" fn with a no_mangle/export_name
    for match in _EXTERN_FN.finditer(text):
        if in_consumed(match.start()):
            continue
        attrs = _attrs_before(attr_spans, text, match.start())
        exported = any(
            "no_mangle" in attr or "export_name" in attr for attr in attrs
        )
        if not exported:
            continue
        fn, _cursor = _parse_fn(
            text,
            source,
            match.group(1),
            match.start(),
            match.end() - 1,
            attrs,
        )
        interface.exports.append(fn)

    # 3. boundary-visible ADTs and their repr
    for match in _ADT.finditer(text):
        if in_consumed(match.start()):
            continue
        attrs = _attrs_before(attr_spans, text, match.start())
        repr_arg = ""
        for attr in attrs:
            repr_match = _REPR.search(attr)
            if repr_match is not None:
                repr_arg = re.sub(r"\s+", "", repr_match.group(1))
        kind = "struct" if match.group(1) == "union" else match.group(1)
        interface.adts[match.group(2)] = RustAdt(
            name=match.group(2),
            kind=kind,
            repr=repr_arg,
            span=source.span(match.start(2), match.end(2)),
        )
    return interface


def parse_sources(sources) -> RustInterface:
    """Merge the FFI surface of several ``.rs`` sources, in order."""
    interface = RustInterface()
    for source in sources:
        interface.merge(parse_rust(source))
    return interface
