"""Knowledge base for bindgen-style C headers, mirroring
:mod:`repro.jni.runtime`.

Rust glue is checked against C sources as bindgen and cbindgen write
them: ``stdint.h``/``stddef.h`` scalar typedefs everywhere, ``bool``
from ``stdbool.h``, and no runtime entry-point table at all — the Rust
boundary has no ``caml_alloc`` or ``JNIEnv`` analogue, so the dialect's
builtin seeds are empty and all the checking weight sits on declaration
agreement (:mod:`repro.rustffi.declcheck`).

Every typedef maps to a :class:`CSrcScalar` carrying its *own* spelling
rather than collapsing to ``int``: the width classifier
(:mod:`repro.rustffi.widths`) and the linker's rendered-type comparison
both need ``uint64_t`` and ``int`` to stay distinguishable.
"""

from __future__ import annotations


from ..cfront.parser import ParseHints
from ..seeds import seed_table
from ..core.srctypes import CSrcScalar, CSrcType

#: ``stdint.h``/``stddef.h``/``sys/types.h`` scalar typedefs, each kept
#: under its own spelling so width classes survive parsing.
STDINT_TYPEDEFS: tuple[str, ...] = (
    "int8_t",
    "uint8_t",
    "int16_t",
    "uint16_t",
    "int32_t",
    "uint32_t",
    "int64_t",
    "uint64_t",
    "intptr_t",
    "uintptr_t",
    "ptrdiff_t",
    "ssize_t",
)

#: ``stdbool.h`` — ``bool`` is not a C type keyword in the shared
#: parser, so it enters as a typedef; ``_Bool`` rides along.
BOOL_TYPEDEFS: tuple[str, ...] = ("bool", "_Bool")

_TYPEDEFS: dict[str, CSrcType] = {
    name: CSrcScalar(name) for name in STDINT_TYPEDEFS + BOOL_TYPEDEFS
}


@seed_table("rust.parse_hints")
def parse_hints() -> ParseHints:
    """How to read bindgen-style C with the shared parser.

    Memoized per process; :class:`ParseHints` is frozen and the parser
    copies the typedef table, so one instance serves every request.
    """
    return ParseHints(typedefs=dict(_TYPEDEFS))
