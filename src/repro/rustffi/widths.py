"""Width classes and canonical C renderings for the Rust boundary.

The safety guidelines' FFI chapter frames declaration agreement in
terms of *width classes*: ``usize`` and ``size_t`` agree because both
are pointer-width everywhere; ``usize`` and ``int`` disagree because
one is platform-dependent and the other fixed — the guideline's own
non-compliant example.  This module owns three tables:

* the Rust-side classifier (``i32`` → 32-bit fixed, ``usize`` →
  pointer-width, ``*const T`` → pointer, ``&str`` → not FFI-safe at
  all);
* the C-side classifier over parsed :class:`CSrcType` values, keyed on
  the scalar spellings :mod:`repro.rustffi.runtime` keeps distinct;
* the canonical C *rendering* of a Rust type (``usize`` → ``size_t``,
  ``*const c_char`` → ``char *``) so an agreeing Rust declaration and
  its C mirror produce byte-identical strings for the linker's
  cross-unit comparison.

:func:`compare` folds the classes into the specific ``RUST_*`` kind a
disagreement fires, so :mod:`repro.rustffi.declcheck` stays a plain
walk.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass
from typing import Optional

from ..core.srctypes import (
    CSrcFun,
    CSrcPtr,
    CSrcScalar,
    CSrcStruct,
    CSrcType,
    CSrcValue,
    CSrcVoid,
)
from ..diagnostics import Kind
from .parser import RustInterface, normalize_spelling


class WidthClass(enum.Enum):
    """ABI width buckets; agreement is judged between buckets."""

    VOID = "void"
    BOOL = "bool"
    CHAR = "8-bit"
    SHORT = "16-bit"
    INT32 = "32-bit"
    LONG64 = "64-bit"
    #: ``long`` — platform-dependent but *not* pointer-width (LLP64)
    LONG = "platform-long"
    #: pointer-width integers: ``size_t``, ``usize``, ``intptr_t``, ...
    SIZE = "pointer-width"
    FLOAT32 = "float32"
    FLOAT64 = "float64"
    POINTER = "pointer"
    STRUCT = "struct"
    UNKNOWN = "unknown"


#: classes that are integers (pointer/integer confusion detection)
_INTEGERISH = frozenset(
    {
        WidthClass.BOOL,
        WidthClass.CHAR,
        WidthClass.SHORT,
        WidthClass.INT32,
        WidthClass.LONG64,
        WidthClass.LONG,
        WidthClass.SIZE,
    }
)
#: fixed-width integer classes (platform-width mixing detection)
_FIXED = frozenset(
    {WidthClass.CHAR, WidthClass.SHORT, WidthClass.INT32, WidthClass.LONG64}
)
_PLATFORM = frozenset({WidthClass.LONG, WidthClass.SIZE})


@dataclass(frozen=True)
class TypeInfo:
    """One side's classification: bucket, canonical C rendering, and
    the Rust-side-only hazard it carries (if any)."""

    clazz: WidthClass
    rendered: str
    #: ``None`` | ``"str"`` (non-FFI-safe string/slice) | ``"enum-norepr"``
    #: | ``"enum"`` (repr'd enum — disagreements report as enum kinds)
    note: Optional[str] = None


#: Rust scalar -> (canonical C spelling, width class).  Keys are the
#: last path segment, so ``libc::c_int`` and ``std::os::raw::c_int``
#: resolve identically.
RUST_SCALARS: dict[str, tuple[str, WidthClass]] = {
    "i8": ("int8_t", WidthClass.CHAR),
    "u8": ("uint8_t", WidthClass.CHAR),
    "i16": ("int16_t", WidthClass.SHORT),
    "u16": ("uint16_t", WidthClass.SHORT),
    "i32": ("int", WidthClass.INT32),
    "u32": ("unsigned int", WidthClass.INT32),
    "i64": ("int64_t", WidthClass.LONG64),
    "u64": ("uint64_t", WidthClass.LONG64),
    "isize": ("ssize_t", WidthClass.SIZE),
    "usize": ("size_t", WidthClass.SIZE),
    "f32": ("float", WidthClass.FLOAT32),
    "f64": ("double", WidthClass.FLOAT64),
    "bool": ("bool", WidthClass.BOOL),
    "()": ("void", WidthClass.VOID),
    "c_char": ("char", WidthClass.CHAR),
    "c_schar": ("signed char", WidthClass.CHAR),
    "c_uchar": ("unsigned char", WidthClass.CHAR),
    "c_short": ("short", WidthClass.SHORT),
    "c_ushort": ("unsigned short", WidthClass.SHORT),
    "c_int": ("int", WidthClass.INT32),
    "c_uint": ("unsigned int", WidthClass.INT32),
    "c_long": ("long", WidthClass.LONG),
    "c_ulong": ("unsigned long", WidthClass.LONG),
    "c_longlong": ("long long", WidthClass.LONG64),
    "c_ulonglong": ("unsigned long long", WidthClass.LONG64),
    "c_float": ("float", WidthClass.FLOAT32),
    "c_double": ("double", WidthClass.FLOAT64),
    "c_size_t": ("size_t", WidthClass.SIZE),
    "c_ssize_t": ("ssize_t", WidthClass.SIZE),
    "c_void": ("void", WidthClass.VOID),
}

#: C scalar spelling -> width class.  ``i32`` maps to ``int`` (not
#: ``int32_t``): the C convention for "the default 32-bit int" — and
#: vice versa both spellings land in the same class anyway.
C_SCALARS: dict[str, WidthClass] = {
    "char": WidthClass.CHAR,
    "signed char": WidthClass.CHAR,
    "unsigned char": WidthClass.CHAR,
    "int8_t": WidthClass.CHAR,
    "uint8_t": WidthClass.CHAR,
    "short": WidthClass.SHORT,
    "short int": WidthClass.SHORT,
    "signed short": WidthClass.SHORT,
    "unsigned short": WidthClass.SHORT,
    "unsigned short int": WidthClass.SHORT,
    "int16_t": WidthClass.SHORT,
    "uint16_t": WidthClass.SHORT,
    "int": WidthClass.INT32,
    "signed": WidthClass.INT32,
    "signed int": WidthClass.INT32,
    "unsigned": WidthClass.INT32,
    "unsigned int": WidthClass.INT32,
    "int32_t": WidthClass.INT32,
    "uint32_t": WidthClass.INT32,
    "long": WidthClass.LONG,
    "long int": WidthClass.LONG,
    "signed long": WidthClass.LONG,
    "unsigned long": WidthClass.LONG,
    "unsigned long int": WidthClass.LONG,
    "long long": WidthClass.LONG64,
    "signed long long": WidthClass.LONG64,
    "unsigned long long": WidthClass.LONG64,
    "long long int": WidthClass.LONG64,
    "unsigned long long int": WidthClass.LONG64,
    "int64_t": WidthClass.LONG64,
    "uint64_t": WidthClass.LONG64,
    "float": WidthClass.FLOAT32,
    "double": WidthClass.FLOAT64,
    "long double": WidthClass.FLOAT64,
    "size_t": WidthClass.SIZE,
    "mlsize_t": WidthClass.SIZE,
    "ssize_t": WidthClass.SIZE,
    "intptr_t": WidthClass.SIZE,
    "uintptr_t": WidthClass.SIZE,
    "ptrdiff_t": WidthClass.SIZE,
    "intnat": WidthClass.SIZE,
    "uintnat": WidthClass.SIZE,
    "bool": WidthClass.BOOL,
    "_Bool": WidthClass.BOOL,
}

#: ``#[repr(...)]`` argument -> the class an enum of that repr occupies.
#: ``repr(C)`` enums take the C ``int`` width by definition.
_ENUM_REPRS: dict[str, WidthClass] = {
    "C": WidthClass.INT32,
    "i8": WidthClass.CHAR,
    "u8": WidthClass.CHAR,
    "i16": WidthClass.SHORT,
    "u16": WidthClass.SHORT,
    "i32": WidthClass.INT32,
    "u32": WidthClass.INT32,
    "i64": WidthClass.LONG64,
    "u64": WidthClass.LONG64,
    "isize": WidthClass.SIZE,
    "usize": WidthClass.SIZE,
}

_STR_SHAPES = re.compile(r"^(&str|&mut str|String|&(mut\s*)?\[|Vec<|str)")


def _last_segment(path: str) -> str:
    return path.rsplit("::", 1)[-1]


def classify_rust(
    spelling: str, interface: Optional[RustInterface] = None
) -> TypeInfo:
    """Classify one Rust type spelling as it crosses the boundary."""
    text = normalize_spelling(spelling)
    if text in ("()", ""):
        return TypeInfo(WidthClass.VOID, "void")
    if _STR_SHAPES.match(text):
        return TypeInfo(WidthClass.POINTER, text, note="str")
    if text.startswith("Option<") and text.endswith(">"):
        # nullable pointer idiom: Option<&T> / Option<fn ...> / Option<*..>
        return classify_rust(text[len("Option<") : -1], interface)
    if text.startswith("*const ") or text.startswith("*mut "):
        inner = classify_rust(text.split(" ", 1)[1], interface)
        note = inner.note if inner.note == "str" else None
        return TypeInfo(WidthClass.POINTER, f"{inner.rendered} *", note=note)
    if text.startswith("&"):
        inner = text[1:]
        if inner.startswith("mut "):
            inner = inner[4:]
        inner_info = classify_rust(inner, interface)
        note = inner_info.note if inner_info.note == "str" else None
        return TypeInfo(
            WidthClass.POINTER, f"{inner_info.rendered} *", note=note
        )
    if "fn(" in text or "fn (" in text:
        return TypeInfo(WidthClass.POINTER, text)
    name = _last_segment(text)
    scalar = RUST_SCALARS.get(name)
    if scalar is not None:
        rendered, clazz = scalar
        return TypeInfo(clazz, rendered)
    adt = interface.adts.get(name) if interface is not None else None
    if adt is not None:
        if adt.kind == "enum":
            repr_head = adt.repr.split(",")[0] if adt.repr else ""
            clazz = _ENUM_REPRS.get(repr_head)
            if clazz is None:
                return TypeInfo(
                    WidthClass.UNKNOWN, name, note="enum-norepr"
                )
            # a repr'd enum renders as its width's C spelling, which is
            # what the typedef in a bindgen header resolves to
            rendered = {
                WidthClass.CHAR: "uint8_t",
                WidthClass.SHORT: "uint16_t",
                WidthClass.INT32: "int",
                WidthClass.LONG64: "int64_t",
                WidthClass.SIZE: "size_t",
            }[clazz]
            return TypeInfo(clazz, rendered, note="enum")
        return TypeInfo(WidthClass.STRUCT, f"struct {name}")
    return TypeInfo(WidthClass.UNKNOWN, name)


def classify_c(ctype: CSrcType) -> TypeInfo:
    """Classify one parsed C type."""
    rendered = str(ctype)
    if isinstance(ctype, CSrcVoid):
        return TypeInfo(WidthClass.VOID, rendered)
    if isinstance(ctype, (CSrcPtr, CSrcFun, CSrcValue)):
        return TypeInfo(WidthClass.POINTER, rendered)
    if isinstance(ctype, CSrcStruct):
        return TypeInfo(WidthClass.STRUCT, rendered)
    if isinstance(ctype, CSrcScalar):
        clazz = C_SCALARS.get(ctype.spelling, WidthClass.UNKNOWN)
        return TypeInfo(clazz, rendered)
    return TypeInfo(WidthClass.UNKNOWN, rendered)


def compare(rust: TypeInfo, c: TypeInfo) -> Optional[tuple[Kind, str]]:
    """Judge one Rust/C type pair; ``None`` means they agree.

    Returns the specific rule the disagreement fires and a short
    reason fragment for the message.
    """
    if rust.note == "str":
        return (
            Kind.RUST_STR_PASSING,
            f"`{rust.rendered}` has no stable C layout",
        )
    if rust.note == "enum-norepr":
        return (
            Kind.RUST_ENUM_REPR,
            f"enum `{rust.rendered}` has no explicit repr",
        )
    if rust.clazz is c.clazz:
        if (
            rust.clazz is WidthClass.UNKNOWN
            and rust.rendered != c.rendered
        ):
            return (
                Kind.RUST_DECL_MISMATCH,
                f"`{rust.rendered}` vs `{c.rendered}`",
            )
        return None
    if rust.note == "enum":
        return (
            Kind.RUST_ENUM_REPR,
            f"enum repr is {rust.clazz.value} but C declares "
            f"{c.clazz.value} `{c.rendered}`",
        )
    one_pointer = (rust.clazz is WidthClass.POINTER) != (
        c.clazz is WidthClass.POINTER
    )
    if one_pointer and (rust.clazz in _INTEGERISH or c.clazz in _INTEGERISH):
        return (
            Kind.RUST_PTR_INT_CONFUSION,
            f"`{rust.rendered}` vs `{c.rendered}`",
        )
    platform_mix = (rust.clazz in _PLATFORM or c.clazz in _PLATFORM) and (
        rust.clazz in _INTEGERISH and c.clazz in _INTEGERISH
    )
    if platform_mix:
        return (
            Kind.RUST_PLATFORM_WIDTH,
            f"{rust.clazz.value} `{rust.rendered}` vs "
            f"{c.clazz.value} `{c.rendered}`",
        )
    return (
        Kind.RUST_DECL_MISMATCH,
        f"`{rust.rendered}` vs `{c.rendered}`",
    )


def render_fn(fn, interface: Optional[RustInterface] = None) -> str:
    """Canonical C rendering of a Rust ``fn``, matching the linker's
    ``ret(param, ...)`` shape from :func:`repro.linker.extract.function_type`."""
    ret = classify_rust(fn.ret, interface).rendered
    params = ", ".join(
        classify_rust(param, interface).rendered for param in fn.params
    )
    return f"{ret}({params})"
