"""The declaration-agreement pass: Rust vs C, symbol by symbol.

For every boundary symbol declared on both sides of one translation
unit — a Rust import with a C definition/prototype, or a Rust export
with its bindgen-header mirror — the two declarations must agree in
arity and, pairwise, in width class (:mod:`repro.rustffi.widths`).
Two checks need only the Rust side — a non-FFI-safe string/slice type
in an ``extern "C"`` signature (``RUST_STR_PASSING``) and an enum
crossing the boundary without an explicit repr (``RUST_ENUM_REPR``) —
but they are still anchored to the unit that declares the C mirror:
the Rust interface is shared by every unit of a batch, so an unanchored
check would re-fire once per translation unit and inflate the tally.

Symbols declared on one side only are *not* reported here: a missing
C mirror is a whole-corpus question, answered by the linker's
``LINK_UNRESOLVED_EXTERN`` over the summaries the dialect emits.
"""

from __future__ import annotations

from typing import Iterable

from ..cfront.ast import FunctionDef, TranslationUnit
from ..diagnostics import Diagnostic, DiagnosticBag, Kind
from .parser import RustFn, RustInterface
from .widths import classify_c, classify_rust, compare


def _c_declarations(units: Iterable[TranslationUnit]) -> dict[str, FunctionDef]:
    """Every C-side declaration by name; definitions shadow prototypes
    (the definition is the declaration the ABI actually uses)."""
    decls: dict[str, FunctionDef] = {}
    for unit in units:
        for fn in unit.functions:
            previous = decls.get(fn.name)
            if previous is None or (
                previous.body is None and fn.body is not None
            ):
                decls[fn.name] = fn
    return decls


def _check_rust_only(
    bag: DiagnosticBag, fn: RustFn, interface: RustInterface
) -> None:
    """Hazards visible from the Rust signature alone."""
    for index, spelling in enumerate((*fn.params, fn.ret)):
        info = classify_rust(spelling, interface)
        what = (
            "return type" if index == len(fn.params) else f"parameter {index + 1}"
        )
        if info.note == "str":
            bag.emit(
                Kind.RUST_STR_PASSING,
                fn.span,
                f"{what} of `{fn.symbol}` is `{spelling}`, which has no "
                f"stable C layout; pass a NUL-terminated pointer or an "
                f"explicit pointer+length pair",
                function=fn.symbol,
            )
        elif info.note == "enum-norepr":
            bag.emit(
                Kind.RUST_ENUM_REPR,
                fn.span,
                f"{what} of `{fn.symbol}` is enum `{spelling}` without an "
                f"explicit repr; its layout is not ABI-stable",
                function=fn.symbol,
            )


def _check_pair(
    bag: DiagnosticBag,
    fn: RustFn,
    c_fn: FunctionDef,
    interface: RustInterface,
) -> None:
    """One symbol declared on both sides: arity, then pairwise classes."""
    c_params = [ctype for _name, ctype in c_fn.params]
    if len(fn.params) != len(c_params) and not fn.variadic:
        bag.emit(
            Kind.RUST_DECL_MISMATCH,
            fn.span,
            f"`{fn.symbol}` takes {len(fn.params)} parameter(s) in Rust "
            f"but {len(c_params)} in C ({c_fn.span})",
            function=fn.symbol,
        )
        return
    pairs = list(zip(fn.params, c_params))
    pairs.append((fn.ret, c_fn.return_type))
    for index, (rust_spelling, c_type) in enumerate(pairs):
        rust_info = classify_rust(rust_spelling, interface)
        if rust_info.note in ("str", "enum-norepr"):
            continue  # already reported by the Rust-only walk
        verdict = compare(rust_info, classify_c(c_type))
        if verdict is None:
            continue
        kind, reason = verdict
        what = (
            "return type"
            if index == len(fn.params)
            else f"parameter {index + 1}"
        )
        bag.emit(
            kind,
            fn.span,
            f"{what} of `{fn.symbol}` disagrees with the C declaration "
            f"at {c_fn.span}: {reason}",
            function=fn.symbol,
        )


def check_interface(
    interface: RustInterface, units: Iterable[TranslationUnit]
) -> list[Diagnostic]:
    """Run the agreement pass for one translation unit."""
    bag = DiagnosticBag()
    decls = _c_declarations(units)
    for fn in (*interface.imports, *interface.exports):
        c_fn = decls.get(fn.symbol)
        if c_fn is None:
            continue
        _check_rust_only(bag, fn, interface)
        _check_pair(bag, fn, c_fn, interface)
    return bag.diagnostics
