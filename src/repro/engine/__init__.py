"""Batch-analysis engine: jobs, scheduling, caching, and incrementality.

Turns the single-shot two-phase pipeline into a scalable driver: translation
units become :class:`CheckRequest` jobs, a scheduler fans them out across a
worker pool, a content-hash :class:`ResultCache` skips unchanged units, and
the per-unit outcomes merge into one Figure-9-style :class:`BatchReport`.
On top of that, :class:`IncrementalEngine` keeps a corpus resident with a
dependency graph and an in-memory result tier, so the analysis service
(:mod:`repro.server`) re-checks only what an edit affected.
"""

from .cache import (
    DEFAULT_CACHE_DIR,
    DEFAULT_MAX_ENTRIES,
    MemoryCache,
    NullCache,
    ResultCache,
    TieredCache,
)
from .incremental import (
    DependencyGraph,
    IncrementalEngine,
    IncrementalReport,
)
from .jobs import (
    CACHE_SCHEMA_VERSION,
    BatchReport,
    CheckRequest,
    CheckResult,
    options_fingerprint,
    render_unit,
    repository_fingerprint,
)
from .scheduler import default_jobs, run_batch
from .store import SharedResultStore
from .stream import StreamStats, stream_batch
from .worker import analyze_request, run_request

__all__ = [
    "BatchReport",
    "CACHE_SCHEMA_VERSION",
    "CheckRequest",
    "CheckResult",
    "DEFAULT_CACHE_DIR",
    "DEFAULT_MAX_ENTRIES",
    "DependencyGraph",
    "IncrementalEngine",
    "IncrementalReport",
    "MemoryCache",
    "NullCache",
    "ResultCache",
    "SharedResultStore",
    "StreamStats",
    "TieredCache",
    "analyze_request",
    "default_jobs",
    "options_fingerprint",
    "render_unit",
    "repository_fingerprint",
    "run_batch",
    "run_request",
    "stream_batch",
]
