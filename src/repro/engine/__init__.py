"""Batch-analysis engine: jobs, scheduling, and the result cache.

Turns the single-shot two-phase pipeline into a scalable driver: translation
units become :class:`CheckRequest` jobs, a scheduler fans them out across a
worker pool, a content-hash :class:`ResultCache` skips unchanged units, and
the per-unit outcomes merge into one Figure-9-style :class:`BatchReport`.
"""

from .cache import DEFAULT_CACHE_DIR, NullCache, ResultCache
from .jobs import (
    CACHE_SCHEMA_VERSION,
    BatchReport,
    CheckRequest,
    CheckResult,
    options_fingerprint,
    repository_fingerprint,
)
from .scheduler import default_jobs, run_batch
from .worker import analyze_request, run_request

__all__ = [
    "BatchReport",
    "CACHE_SCHEMA_VERSION",
    "CheckRequest",
    "CheckResult",
    "DEFAULT_CACHE_DIR",
    "NullCache",
    "ResultCache",
    "analyze_request",
    "default_jobs",
    "options_fingerprint",
    "repository_fingerprint",
    "run_batch",
    "run_request",
]
