"""Per-unit analysis entry points, safe to run inside worker processes.

Everything here is reachable from a module-level name (a requirement of
``multiprocessing`` pickling) and depends only on the contents of the
:class:`~repro.engine.jobs.CheckRequest` it is handed — no ambient state
crosses the process boundary.  The request's ``dialect`` names the
boundary dialect that interprets it; phase one (``Γ_I``) and phase two
(lower + infer) both live behind
:meth:`repro.boundary.BoundaryDialect.analyze`, so the engine schedules
OCaml glue and CPython extension modules identically.

Dialects memoize what is profitably shared per process (the OCaml dialect
memoizes its type repository by content fingerprint); ``Γ_I`` itself is
rebuilt per unit so fresh inference variables never leak between units
(the unifier must not see another unit's bindings).
"""

from __future__ import annotations

import time
from typing import Optional

from ..boundary import get_dialect
from ..core.checker import AnalysisReport
from ..telemetry import Tracer, use
from .jobs import CheckRequest, CheckResult


def analyze_request(request: CheckRequest) -> AnalysisReport:
    """Run both phases for one unit and return the full in-process report."""
    return get_dialect(request.dialect).analyze(request)


def _run_request(request: CheckRequest, key: str) -> CheckResult:
    started = time.perf_counter()
    try:
        report = analyze_request(request)
    except Exception as exc:  # noqa: BLE001 - one bad unit must not kill the batch
        return CheckResult(
            name=request.name,
            cache_key=key,
            wall_seconds=time.perf_counter() - started,
            failure=f"{type(exc).__name__}: {exc}",
        )
    result = CheckResult.from_report(request.name, report, cache_key=key)
    result.wall_seconds = time.perf_counter() - started
    return result


def run_request(
    request: CheckRequest, cache_key: Optional[str] = None
) -> CheckResult:
    """Worker entry point: analyze one unit, flattened for the wire.

    Analysis crashes (lexer/parser/lowering defects in user input) become a
    ``failure`` on the result rather than poisoning the whole pool.

    A traced request (``request.trace``) records its phase spans into a
    fresh per-request tracer — never the process-global one — so the
    events can ride back on ``result.trace_events`` through the pickle
    boundary and be absorbed into the parent's timeline.
    """
    key = cache_key if cache_key is not None else request.cache_key()
    if not request.trace:
        return _run_request(request, key)
    tracer = Tracer()
    with use(tracer):
        with tracer.span(
            request.name, cat="unit", args={"dialect": request.dialect}
        ):
            result = _run_request(request, key)
    result.trace_events = tracer.export()
    return result
