"""Per-unit analysis entry points, safe to run inside worker processes.

Everything here is reachable from a module-level name (a requirement of
``multiprocessing`` pickling) and depends only on the contents of the
:class:`~repro.engine.jobs.CheckRequest` it is handed — no ambient state
crosses the process boundary.  The two §5.1 phases run exactly as in the
single-shot path: phase one builds the type repository / ``Γ_I`` from the
request's OCaml sources, phase two lowers and analyzes its C sources.

Because every unit in a batch usually shares the same OCaml side, each
worker process memoizes the *repository* by content fingerprint; ``Γ_I``
itself is rebuilt per unit so fresh inference variables never leak between
units (the unifier must not see another unit's bindings).
"""

from __future__ import annotations

from typing import Optional

from ..cfront.ir import ProgramIR
from ..cfront.lower import lower_unit
from ..cfront.parser import parse_c
from ..core.checker import AnalysisReport, Checker
from ..ocamlfront.repository import TypeRepository, build_initial_env
from .jobs import CheckRequest, CheckResult, repository_fingerprint

#: Per-process memo: repository fingerprint -> parsed TypeRepository.
#: Bounded (batches reuse one or two OCaml sides); reset on process exit.
_REPOSITORY_MEMO: dict[str, TypeRepository] = {}
_REPOSITORY_MEMO_LIMIT = 32


def _repository_for(request: CheckRequest) -> TypeRepository:
    fingerprint = repository_fingerprint(request.ocaml_sources)
    repo = _REPOSITORY_MEMO.get(fingerprint)
    if repo is None:
        repo = TypeRepository.with_stdlib()
        for source in request.ocaml_sources:
            repo.add_source(source)
        if len(_REPOSITORY_MEMO) >= _REPOSITORY_MEMO_LIMIT:
            _REPOSITORY_MEMO.clear()
        _REPOSITORY_MEMO[fingerprint] = repo
    return repo


def analyze_request(request: CheckRequest) -> AnalysisReport:
    """Run both phases for one unit and return the full in-process report."""
    initial_env = build_initial_env(_repository_for(request))
    program = ProgramIR()
    for source in request.c_sources:
        program = program.merge(lower_unit(parse_c(source)))
    return Checker(program, initial_env, request.options).run()


def run_request(
    request: CheckRequest, cache_key: Optional[str] = None
) -> CheckResult:
    """Worker entry point: analyze one unit, flattened for the wire.

    Analysis crashes (lexer/parser/lowering defects in user input) become a
    ``failure`` on the result rather than poisoning the whole pool.
    """
    key = cache_key if cache_key is not None else request.cache_key()
    try:
        report = analyze_request(request)
    except Exception as exc:  # noqa: BLE001 - one bad unit must not kill the batch
        return CheckResult(
            name=request.name,
            cache_key=key,
            failure=f"{type(exc).__name__}: {exc}",
        )
    return CheckResult.from_report(request.name, report, cache_key=key)
