"""Cross-process content-addressed result store.

One warm cache for a whole fleet: N daemon replicas (``mlffi-check
serve --reuse-port`` behind one port), batch sweeps, and CI bots can all
point at the same store directory, and any result computed by one
process is a warm hit for every other.  This is the cold tier the
service layers under its :class:`~repro.engine.cache.TieredCache` when
``--shared-store`` is on.

Layout under the store directory::

    objects/<key[:2]>/<key>.json   one payload per cache key (sharded
                                   fan-out so no directory grows huge)
    index.log                      append-only journal of stored keys
    .lock                          advisory write lock

Concurrency contract:

* **readers never lock** — payloads are written to a temp file and
  ``os.replace``'d into place, so a reader sees either the old bytes,
  the new bytes, or a miss; never a torn file.
* **writers lock the journal** — the ``.lock`` file is held (``flock``
  where available, an ``O_EXCL`` spin lock otherwise) only while
  appending to ``index.log`` or evicting, so two processes can store
  concurrently without corrupting the entry count that drives the LRU
  cap.
* corrupt, stale (old ``CACHE_SCHEMA_VERSION``), or vanished entries
  are misses, never errors: like every other tier, the store can be
  deleted wholesale at any time.

Hit/miss/eviction counters are per-process (each process observes its
own traffic); the entry count in :meth:`stats` reflects the shared
on-disk state.
"""

from __future__ import annotations

import contextlib
import json
import os
import tempfile
import time
from pathlib import Path
from typing import Iterator, Optional

from .cache import DEFAULT_MAX_ENTRIES
from .jobs import CACHE_SCHEMA_VERSION, CheckResult

try:  # POSIX: a real advisory lock
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback below
    fcntl = None  # type: ignore[assignment]

#: how long a writer spins on the O_EXCL fallback lock before degrading
#: to lock-free operation (journal append stays atomic-ish via O_APPEND)
_FALLBACK_LOCK_TIMEOUT_S = 2.0


class SharedResultStore:
    """Content-addressed :class:`CheckResult` store shared by processes.

    Conforms to the scheduler's ``Cache`` protocol (``load``/``store``),
    so it can serve as the cold tier anywhere a
    :class:`~repro.engine.cache.ResultCache` can.
    """

    #: tier name surfaced in ``status``/``metrics`` breakdowns
    tier = "store"

    def __init__(
        self,
        directory: str | os.PathLike,
        max_entries: Optional[int] = DEFAULT_MAX_ENTRIES,
    ):
        self.directory = Path(directory)
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        #: journal lines observed at init plus appends since; eviction
        #: scans rebase it to the true object count
        self._approx_count: Optional[int] = None

    # -- paths ----------------------------------------------------------------

    @property
    def _objects(self) -> Path:
        return self.directory / "objects"

    @property
    def _journal(self) -> Path:
        return self.directory / "index.log"

    @property
    def _lockfile(self) -> Path:
        return self.directory / ".lock"

    def _object_path(self, key: str) -> Path:
        return self._objects / key[:2] / f"{key}.json"

    # -- locking --------------------------------------------------------------

    @contextlib.contextmanager
    def _locked(self) -> Iterator[bool]:
        """Hold the store's write lock; yields False when degraded to
        lock-free (lock unavailable on this platform or contended past
        the timeout) — callers proceed, accepting benign index races."""
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
        except OSError:
            yield False
            return
        if fcntl is not None:
            try:
                fd = os.open(self._lockfile, os.O_CREAT | os.O_RDWR, 0o644)
            except OSError:
                yield False
                return
            try:
                fcntl.flock(fd, fcntl.LOCK_EX)
                yield True
            finally:
                with contextlib.suppress(OSError):
                    fcntl.flock(fd, fcntl.LOCK_UN)
                os.close(fd)
            return
        # O_EXCL spin lock: portable, self-cleaning via the finally
        deadline = time.monotonic() + _FALLBACK_LOCK_TIMEOUT_S
        spin = self._lockfile.with_suffix(".spin")
        while True:
            try:
                fd = os.open(spin, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
                break
            except FileExistsError:
                if time.monotonic() >= deadline:
                    yield False
                    return
                time.sleep(0.005)
            except OSError:
                yield False
                return
        try:
            yield True
        finally:
            os.close(fd)
            with contextlib.suppress(OSError):
                os.unlink(spin)

    # -- protocol -------------------------------------------------------------

    def load(self, key: str) -> Optional[CheckResult]:
        """Return the stored result for ``key``; any failure is a miss."""
        path = self._object_path(key)
        try:
            data = json.loads(path.read_text())
        except (OSError, ValueError):
            self.misses += 1
            return None
        if data.get("schema_version") != CACHE_SCHEMA_VERSION:
            self.misses += 1
            return None
        try:
            result = CheckResult.from_dict(data["result"])
        except (KeyError, TypeError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        result.from_cache = True
        result.cache_tier = "store"
        with contextlib.suppress(OSError):
            os.utime(path)  # recency: eviction spares keys other processes hit
        return result

    def store(self, key: str, result: CheckResult) -> None:
        """Persist ``result`` under ``key``; failures degrade to no-op."""
        if result.failure is not None:
            return  # infrastructure failures must re-run next time
        payload = {
            "schema_version": CACHE_SCHEMA_VERSION,
            "result": result.to_dict(),
        }
        path = self._object_path(key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(
                dir=path.parent, prefix=".tmp-", suffix=".json"
            )
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle)
            os.replace(tmp_name, path)
        except OSError:
            return  # read-only store degrades to "no cache", not a crash
        with self._locked():
            try:
                with open(self._journal, "a") as journal:
                    journal.write(key + "\n")
            except OSError:
                return
            self._enforce_cap()

    # -- maintenance (caller holds the lock) -----------------------------------

    def _journal_count(self) -> int:
        try:
            with open(self._journal) as journal:
                return sum(1 for _ in journal)
        except OSError:
            return 0

    def _scan_objects(self) -> list[tuple[float, Path]]:
        try:
            return [
                (path.stat().st_mtime, path)
                # glob matches dotfiles, so skip in-flight ".tmp-*" spill
                # from concurrent writers: evicting one mid-write breaks
                # the writer's os.replace, and compaction must not write
                # temp-file stems into the journal as keys
                for path in self._objects.glob("*/*.json")
                if not path.name.startswith(".")
            ]
        except OSError:
            return []

    def _enforce_cap(self) -> None:
        """Evict least-recently-used objects once past the cap.

        The journal line count over-approximates the object count
        (overwrites append too), so crossing the cap triggers a real
        scan that rebases the estimate — same pattern as
        :class:`~repro.engine.cache.ResultCache`, but under the
        cross-process lock."""
        if self.max_entries is None:
            return
        if self._approx_count is None:
            self._approx_count = self._journal_count()
        else:
            self._approx_count += 1
        if self._approx_count <= self.max_entries:
            return
        entries = self._scan_objects()
        excess = len(entries) - self.max_entries
        if excess > 0:
            entries.sort()  # oldest mtime (least recently touched) first
            for _mtime, path in entries[:excess]:
                with contextlib.suppress(OSError):
                    path.unlink()
                    self.evictions += 1
            entries = entries[excess:]
        # compact the journal to the survivors so the estimate stays honest
        with contextlib.suppress(OSError):
            fd, tmp_name = tempfile.mkstemp(
                dir=self.directory, prefix=".tmp-index-"
            )
            with os.fdopen(fd, "w") as handle:
                handle.writelines(path.stem + "\n" for _m, path in entries)
            os.replace(tmp_name, self._journal)
        self._approx_count = len(entries)

    # -- introspection --------------------------------------------------------

    def clear(self) -> int:
        """Delete every object; returns how many were removed."""
        removed = 0
        with self._locked():
            for _mtime, path in self._scan_objects():
                with contextlib.suppress(OSError):
                    path.unlink()
                    removed += 1
            with contextlib.suppress(OSError):
                self._journal.unlink()
            self._approx_count = None
        return removed

    def __len__(self) -> int:
        return len(self._scan_objects())

    def stats(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }
