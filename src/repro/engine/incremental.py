"""Dependency-aware incremental scheduler.

This is the layer that turns the one-shot batch engine into a persistent
service.  An :class:`IncrementalEngine` keeps a whole corpus resident:

* the parsed host side and every translation unit's :class:`CheckRequest`,
  rebuilt only when the file behind it changes;
* a :class:`DependencyGraph` linking each unit to the files it reads — its
  own ``.c`` source, every host-language interface file feeding ``Γ_I``,
  and the quoted headers found during lowering (see
  :meth:`repro.boundary.BoundaryDialect.unit_dependencies`) — so an edit
  dirties exactly the affected units;
* a two-tier result cache: an in-memory LRU in front of the on-disk
  :class:`~repro.engine.cache.ResultCache`, which is thereby demoted to a
  cold-start tier.

Both entry points funnel into the same code path: :meth:`check` submits
only the dirty units to :func:`repro.engine.scheduler.run_batch` (the
batch scheduler), so parallel fan-out, cache probing, and deterministic
merging behave identically in ``mlffi-check batch``, ``mlffi-check
serve``, and ``mlffi-check watch``.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Iterable, Optional, Sequence

from ..boundary import get_dialect
from ..core.exprs import Options
from ..corpus import read_source, scan_tree, unit_suffixes
from ..linker import Linker, LinkReport
from ..source import SourceFile
from ..telemetry import span
from .cache import DEFAULT_MAX_ENTRIES, MemoryCache, NullCache, TieredCache
from .jobs import BatchReport, CheckRequest, CheckResult
from .scheduler import run_batch


def _normalize(path: str | os.PathLike, base: Path) -> str:
    """Absolute, ``..``-free form of ``path``, resolved against ``base``."""
    candidate = Path(path)
    if not candidate.is_absolute():
        candidate = base / candidate
    return os.path.normpath(str(candidate))


class DependencyGraph:
    """Bidirectional map between translation units and the files they read."""

    def __init__(self) -> None:
        self._deps: dict[str, frozenset[str]] = {}
        self._dependents: dict[str, set[str]] = {}

    def set_dependencies(self, unit: str, paths: Iterable[str]) -> None:
        self.remove_unit(unit)
        deps = frozenset(paths)
        self._deps[unit] = deps
        for path in deps:
            self._dependents.setdefault(path, set()).add(unit)

    def remove_unit(self, unit: str) -> None:
        for path in self._deps.pop(unit, frozenset()):
            dependents = self._dependents.get(path)
            if dependents is not None:
                dependents.discard(unit)
                if not dependents:
                    del self._dependents[path]

    def dependencies(self, unit: str) -> frozenset[str]:
        return self._deps.get(unit, frozenset())

    def dependents(self, path: str) -> set[str]:
        """Units that must re-check when ``path`` changes."""
        return set(self._dependents.get(path, ()))

    def __len__(self) -> int:
        return len(self._deps)

    def stats(self) -> dict[str, int]:
        """Size of the graph, for the ``status`` RPC: tracked units,
        distinct watched paths, and total dependency edges."""
        return {
            "units": len(self._deps),
            "paths": len(self._dependents),
            "edges": sum(len(deps) for deps in self._deps.values()),
        }


@dataclass
class UnitState:
    """One resident translation unit: its request, deps, and last result.

    The result is held as its JSON payload, not an object: report
    consumers get fresh :class:`CheckResult` copies they may mutate, and
    the payload is serialized once when stored instead of on every check.
    """

    name: str
    request: CheckRequest
    payload: Optional[dict] = None


@dataclass
class IncrementalReport(BatchReport):
    """A :class:`BatchReport` over the whole corpus, annotated with what
    this particular check actually did."""

    #: dirty units submitted to the batch scheduler this check
    checked: list[str] = field(default_factory=list)
    #: subset of ``checked`` that was really analyzed (no cache tier hit)
    ran: list[str] = field(default_factory=list)
    #: clean units served straight from resident engine state
    reused: int = 0
    #: dirty units a restricted check did NOT submit: their results in
    #: this report are the pre-edit ones and must not be trusted as fresh
    stale: list[str] = field(default_factory=list)

    def to_dict(self) -> dict:
        data = super().to_dict()
        data["incremental"] = {
            "checked": list(self.checked),
            "ran": list(self.ran),
            "reused": self.reused,
            "stale": list(self.stale),
        }
        return data


class IncrementalEngine:
    """A resident corpus with dependency-aware re-checking.

    Thread-safe: the server handles requests from multiple connections,
    so every public method takes the engine lock.
    """

    def __init__(
        self,
        root: str | os.PathLike,
        *,
        dialect: str = "ocaml",
        options: Optional[Options] = None,
        jobs: int = 1,
        cache=None,
        memory_max_entries: Optional[int] = DEFAULT_MAX_ENTRIES,
        trace: bool = False,
    ):
        self.root = Path(_normalize(root, Path.cwd()))
        self.dialect = dialect
        self.options = options or Options()
        self.jobs = jobs
        #: when set, every built request asks its worker for phase spans
        self.trace = trace
        self.started_monotonic = time.monotonic()
        self.memory = MemoryCache(memory_max_entries)
        self.cold = cache if cache is not None else NullCache()
        self.cache = TieredCache(self.memory, self.cold)
        self.graph = DependencyGraph()
        self.checks_run = 0
        #: monotonic state counter: bumped whenever resident results may
        #: have changed (invalidate, reload, a check that re-analyzed).
        #: The service's request coalescer keys its memo on this, so a
        #: memoized response can never outlive the state it encoded.
        #: Guarded by its own cheap lock — not ``_lock`` — so transports
        #: can key requests while a check holds the engine lock.
        self._revision = 0
        self._revision_lock = threading.Lock()
        self._spec = get_dialect(dialect)
        self._unit_suffixes = unit_suffixes(self._spec)
        #: tally of the most recent :meth:`link` pass, for ``status``
        self._last_link: Optional[dict] = None
        self._lock = threading.RLock()
        self._hosts: dict[str, SourceFile] = {}
        self._units: dict[str, UnitState] = {}
        self._dirty: set[str] = set()
        self.reload()

    # -- corpus maintenance ---------------------------------------------------

    def _read(self, path: str) -> Optional[SourceFile]:
        """Load one source for ``invalidate``: a vanished file is a plain
        removal (no warning), an unreadable or empty one is skipped with
        the same warning :func:`repro.corpus.read_source` gives a sweep."""
        if not Path(path).is_file():
            return None
        return read_source(path, name=path)

    def _host_tuple(self) -> tuple[SourceFile, ...]:
        return tuple(self._hosts[path] for path in sorted(self._hosts))

    def _build_request(self, source: SourceFile) -> CheckRequest:
        return CheckRequest(
            name=source.filename,
            c_sources=(source,),
            ocaml_sources=self._host_tuple(),
            options=self.options,
            dialect=self.dialect,
            trace=self.trace,
        )

    def _index_unit(self, state: UnitState) -> None:
        """Record the unit's dependency edges, resolving quoted include
        names against the unit's directory and then the project root."""
        unit_dir = Path(state.name).parent
        deps = {state.name}
        for dep in self._spec.unit_dependencies(state.request):
            if dep in self._hosts:
                deps.add(dep)
                continue
            local = _normalize(dep, unit_dir)
            shared = _normalize(dep, self.root)
            deps.add(local if Path(local).exists() or local == shared else shared)
        self.graph.set_dependencies(state.name, deps)

    def _adopt_unit(self, source: SourceFile) -> None:
        state = UnitState(name=source.filename, request=self._build_request(source))
        self._units[state.name] = state
        self._index_unit(state)
        self._dirty.add(state.name)

    def _drop_unit(self, name: str) -> None:
        self._units.pop(name, None)
        self._dirty.discard(name)
        self.graph.remove_unit(name)

    def _rebuild_all_requests(self) -> None:
        """The host side changed: every unit's ``Γ_I`` inputs did too."""
        hosts = self._host_tuple()
        for state in self._units.values():
            state.request = replace(state.request, ocaml_sources=hosts)
            self._index_unit(state)
            self._dirty.add(state.name)

    def reload(self) -> set[str]:
        """Rescan the project tree from scratch; returns the dirtied units."""
        with self._lock:
            self._hosts.clear()
            for state in list(self._units.values()):
                self._drop_unit(state.name)
            scan = scan_tree(
                self.root,
                self._spec,
                name_for=lambda path: _normalize(path, self.root),
            )
            self._hosts = {source.filename: source for source in scan.hosts}
            for source in scan.units:
                self._adopt_unit(source)
            self._bump_revision()
            return set(self._dirty)

    # -- invalidation ---------------------------------------------------------

    def invalidate(self, paths: Sequence[str | os.PathLike]) -> set[str]:
        """Re-read ``paths`` and return the units that now need re-checking.

        Handles edits, deletions, and brand-new files: host-language
        changes rebuild every unit's request, unit changes rebuild one,
        header changes dirty the dependents recorded by the graph.
        """
        with self._lock:
            affected: set[str] = set()
            host_changed = False
            for raw in paths:
                path = _normalize(raw, self.root)
                suffix = Path(path).suffix
                if suffix in self._spec.host_suffixes:
                    source = self._read(path)
                    previous = self._hosts.get(path)
                    if source is None:
                        if previous is not None:
                            del self._hosts[path]
                            host_changed = True
                    elif previous is None or previous.text != source.text:
                        self._hosts[path] = source
                        host_changed = True
                elif path in self._units:
                    source = self._read(path)
                    if source is None:
                        self._drop_unit(path)
                    else:
                        state = self._units[path]
                        state.request = replace(
                            state.request, c_sources=(source,)
                        )
                        self._index_unit(state)
                        self._dirty.add(path)
                        affected.add(path)
                elif suffix in self._unit_suffixes and Path(path).is_file():
                    source = self._read(path)
                    if source is not None:
                        self._adopt_unit(source)
                        affected.add(path)
                else:
                    dependents = self.graph.dependents(path)
                    self._dirty.update(dependents)
                    affected.update(dependents)
            if host_changed:
                self._rebuild_all_requests()
                affected.update(self._units)
            # conservative: any invalidate may have changed what a check
            # would report, so coalesced memos must stop being served
            self._bump_revision()
            return affected

    # -- checking -------------------------------------------------------------

    def _reused_result(self, state: UnitState) -> CheckResult:
        """A clean unit's resident result, copied so report consumers can
        never mutate engine state."""
        copy_started = time.perf_counter()
        result = CheckResult.from_dict(state.payload)
        result.from_cache = True
        result.cache_tier = "memory"
        result.wall_seconds = 0.0
        # serving from resident state is this check's only cost for the
        # unit; unlike wall_seconds it is measured, never a silent 0.0
        result.probe_seconds = time.perf_counter() - copy_started
        return result

    def check(
        self,
        names: Optional[Sequence[str | os.PathLike]] = None,
        *,
        jobs: Optional[int] = None,
    ) -> IncrementalReport:
        """Re-check the dirty subset and report over the whole corpus.

        ``names`` restricts the submission to particular units (clean ones
        among them are served from resident state like any other).
        """
        started = time.perf_counter()
        with self._lock:
            wanted = None
            if names is not None:
                wanted = {_normalize(name, self.root) for name in names}
            order = sorted(self._units)
            candidates = [
                name
                for name in order
                # never-checked units are always submitted (the report spans
                # the whole corpus, so each unit needs at least one result)
                if self._units[name].payload is None
                or (name in self._dirty and (wanted is None or name in wanted))
            ]
            requests = [self._units[name].request for name in candidates]
            with span("engine-check", cat="phase", dirty=len(candidates)):
                sub = run_batch(
                    requests, jobs=jobs or self.jobs, cache=self.cache
                )
            submitted: dict[str, CheckResult] = {}
            for name, result in zip(candidates, sub.results):
                # resident state keeps the payload: the report's objects
                # belong to the caller, who may filter/mutate them freely
                self._units[name].payload = result.to_dict()
                self._dirty.discard(name)
                submitted[name] = result
            ordered = []
            for name in order:
                if name in submitted:
                    ordered.append(submitted[name])
                else:
                    ordered.append(self._reused_result(self._units[name]))
            self.checks_run += 1
            if candidates:
                # resident payloads changed: a memo of the pre-check
                # report (ran/reused/results) must not be replayed
                self._bump_revision()
            return IncrementalReport(
                results=ordered,
                elapsed_seconds=time.perf_counter() - started,
                jobs=jobs or self.jobs,
                cache_evictions=sub.cache_evictions,
                checked=list(candidates),
                ran=[
                    name
                    for name, result in zip(candidates, sub.results)
                    if not result.from_cache
                ],
                reused=len(order) - len(candidates),
                # a restricted check leaves excluded dirty units stale:
                # their rows above are pre-edit results, not fresh ones
                stale=sorted(self._dirty),
            )

    # -- linking --------------------------------------------------------------

    def link(
        self, *, jobs: Optional[int] = None
    ) -> tuple[IncrementalReport, LinkReport]:
        """Bring the corpus up to date, then link its resident summaries.

        The check phase only re-analyzes dirty units (summaries ride the
        per-unit results through every cache tier), so a link after one
        edit costs one re-summarize plus a pass over summaries — never a
        second pass over sources.
        """
        report = self.check(jobs=jobs)
        started = time.perf_counter()
        with self._lock, span("link", cat="phase", units=len(self._units)):
            linker = Linker()
            for name in sorted(self._units):
                payload = self._units[name].payload
                if not payload or payload.get("failure") is not None:
                    continue
                summary = payload.get("summary")
                if summary:
                    linker.add_dict(summary)
            link_report = linker.report()
            link_report.elapsed_seconds = time.perf_counter() - started
            self._last_link = {
                **link_report.tally(),
                "units": link_report.units,
            }
            return report, link_report

    # -- introspection --------------------------------------------------------

    @property
    def unit_names(self) -> list[str]:
        with self._lock:
            return sorted(self._units)

    @property
    def dirty(self) -> set[str]:
        with self._lock:
            return set(self._dirty)

    def _bump_revision(self) -> None:
        with self._revision_lock:
            self._revision += 1

    @property
    def revision(self) -> int:
        """Current state revision (see ``_revision``); reading it before
        a coalescer lookup is what makes memoized responses safe.  Reads
        take only the revision lock, never the engine lock, so keying a
        request never waits behind an in-flight analysis (a bump that
        lands mid-check only makes the memoed state *newer* than its
        key, which is the safe direction)."""
        with self._revision_lock:
            return self._revision

    def dependencies(self, name: str | os.PathLike) -> frozenset[str]:
        with self._lock:
            return self.graph.dependencies(_normalize(name, self.root))

    def status(self) -> dict:
        with self._lock:
            return {
                "root": str(self.root),
                "dialect": self.dialect,
                "units": len(self._units),
                "hosts": len(self._hosts),
                "dirty": sorted(self._dirty),
                "checks_run": self.checks_run,
                "revision": self._revision,
                "jobs": self.jobs,
                # memory-relevant residency: every unit keeps its request,
                # checked ones also keep a result payload
                "resident_units": sum(
                    1
                    for state in self._units.values()
                    if state.payload is not None
                ),
                "graph": self.graph.stats(),
                "link": dict(self._last_link) if self._last_link else None,
                "uptime_seconds": round(
                    time.monotonic() - self.started_monotonic, 3
                ),
                "cache": self.cache_status(),
            }

    def cache_status(self) -> dict:
        """Per-tier hit/miss breakdown plus totals, for ``status`` and
        the ``metrics`` exposition."""
        memory = self.memory.stats()
        # the cold tier may be the per-process ResultCache or the
        # cross-process SharedResultStore; either way its stats ride
        # under the stable "disk" key, with the real tier named
        cold = (
            self.cold.stats()
            if hasattr(self.cold, "stats")
            else {
                "hits": getattr(self.cold, "hits", 0),
                "misses": getattr(self.cold, "misses", 0),
                "evictions": getattr(self.cold, "evictions", 0),
            }
        )
        return {
            "memory": memory,
            "disk": cold,
            "cold_tier": getattr(self.cold, "tier", "disk"),
            "hits": memory.get("hits", 0) + cold.get("hits", 0),
            "misses": cold.get("misses", 0),
        }
