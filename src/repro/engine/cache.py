"""Result caches for the batch engine and the analysis service.

Three tiers share one ``load``/``store`` protocol (see
:class:`repro.engine.scheduler.Cache`):

* :class:`ResultCache` — the cold tier: one JSON file per cache key under a
  cache directory (default ``.mlffi-cache``), so results survive process
  restarts.  Growth is bounded by an LRU entry cap (``max_entries``,
  default 10k): stores past the cap evict the least-recently-used files,
  and loads refresh recency.  Corrupt or stale entries are treated as
  misses, never errors: the cache can always be deleted wholesale.
* :class:`MemoryCache` — the warm tier the persistent analysis service
  keeps in front of the cold one: an in-process LRU of JSON payloads.
  Entries round-trip through ``to_dict``/``from_dict`` so callers can
  mutate a loaded result without corrupting the stored copy.
* :class:`TieredCache` — memory over disk: loads probe memory first and
  promote disk hits, stores write through to both.

Keys come from :meth:`repro.engine.jobs.CheckRequest.cache_key`, which
digests the dialect, the C sources, the host-side repository fingerprint,
and the analysis options — so a hit is only possible when re-analyzing
would provably reproduce the stored diagnostics.
"""

from __future__ import annotations

import json
import os
import tempfile
from collections import OrderedDict
from pathlib import Path
from typing import Optional

from .jobs import CACHE_SCHEMA_VERSION, CheckResult

DEFAULT_CACHE_DIR = ".mlffi-cache"

#: Default LRU entry cap for both the disk and memory tiers.
DEFAULT_MAX_ENTRIES = 10_000


class ResultCache:
    """Filesystem-backed store of :class:`CheckResult` keyed by content hash."""

    #: tier name surfaced in ``status``/``metrics`` breakdowns
    tier = "disk"

    def __init__(
        self,
        directory: str | os.PathLike,
        max_entries: Optional[int] = DEFAULT_MAX_ENTRIES,
    ):
        self.directory = Path(directory)
        #: ``None`` disables the cap (the pre-LRU behaviour)
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        #: lazily-initialized entry-count estimate so the store hot path
        #: does not rescan the directory; overwrites may overcount, and
        #: each eviction scan rebases it to the true count
        self._approx_count: Optional[int] = None

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    def load(self, key: str) -> Optional[CheckResult]:
        """Return the cached result for ``key``, or ``None`` on any miss."""
        path = self._path(key)
        try:
            data = json.loads(path.read_text())
        except (OSError, ValueError):
            self.misses += 1
            return None
        if data.get("schema_version") != CACHE_SCHEMA_VERSION:
            self.misses += 1
            return None
        try:
            result = CheckResult.from_dict(data["result"])
        except (KeyError, TypeError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        result.from_cache = True
        result.cache_tier = "disk"
        try:
            os.utime(path)  # refresh recency so LRU eviction spares hot keys
        except OSError:
            pass
        return result

    def store(self, key: str, result: CheckResult) -> None:
        """Persist ``result`` under ``key`` (atomically; failures ignored)."""
        if result.failure is not None:
            return  # infrastructure failures must re-run next time
        payload = {
            "schema_version": CACHE_SCHEMA_VERSION,
            "result": result.to_dict(),
        }
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(
                dir=self.directory, prefix=".tmp-", suffix=".json"
            )
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle)
            os.replace(tmp_name, self._path(key))
        except OSError:
            return  # a read-only cache dir degrades to "no cache", not a crash
        self._enforce_cap()

    def _enforce_cap(self) -> None:
        """Evict least-recently-used entries once the cap is exceeded.

        The full directory scan only happens when the (cheaply maintained)
        count estimate crosses the cap, so a store normally costs one
        write, not one scan.
        """
        if self.max_entries is None:
            return
        if self._approx_count is None:
            try:
                self._approx_count = sum(
                    1 for _ in self.directory.glob("*.json")
                )
            except OSError:
                return
        else:
            self._approx_count += 1
        if self._approx_count <= self.max_entries:
            return
        try:
            entries = [
                (path.stat().st_mtime, path)
                for path in self.directory.glob("*.json")
            ]
        except OSError:
            return
        excess = len(entries) - self.max_entries
        if excess > 0:
            entries.sort()  # oldest mtime (least recently touched) first
            for _mtime, path in entries[:excess]:
                try:
                    path.unlink()
                    self.evictions += 1
                except OSError:
                    pass  # raced with a concurrent evictor: entry gone
        self._approx_count = min(len(entries), self.max_entries)

    def clear(self) -> int:
        """Delete every entry; returns how many files were removed."""
        removed = 0
        if not self.directory.is_dir():
            return removed
        for path in self.directory.glob("*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        self._approx_count = None
        return removed

    def __len__(self) -> int:
        if not self.directory.is_dir():
            return 0
        return sum(1 for _ in self.directory.glob("*.json"))

    def stats(self) -> dict:
        """Uniform tier statistics (no directory scan: stays cheap)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }


class MemoryCache:
    """In-process LRU tier: cache key -> JSON payload of a result.

    Payloads (not objects) are stored so a caller mutating a loaded
    :class:`CheckResult` — the scheduler rewrites ``name`` and
    ``wall_seconds`` on hits — can never corrupt the cached copy.
    """

    tier = "memory"

    def __init__(self, max_entries: Optional[int] = DEFAULT_MAX_ENTRIES):
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._entries: "OrderedDict[str, dict]" = OrderedDict()

    def load(self, key: str) -> Optional[CheckResult]:
        payload = self._entries.get(key)
        if payload is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        result = CheckResult.from_dict(payload)
        result.from_cache = True
        result.cache_tier = "memory"
        return result

    def store(self, key: str, result: CheckResult) -> None:
        if result.failure is not None:
            return
        self._entries[key] = result.to_dict()
        self._entries.move_to_end(key)
        if self.max_entries is not None:
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1

    def clear(self) -> int:
        removed = len(self._entries)
        self._entries.clear()
        return removed

    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> dict:
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }


class TieredCache:
    """Memory over disk: the service's warm tier backed by the cold one.

    Loads probe memory first; disk hits are promoted into memory so the
    next probe stays in-process.  Stores write through to both tiers.
    """

    def __init__(self, memory: MemoryCache, cold) -> None:
        self.memory = memory
        self.cold = cold

    @property
    def hits(self) -> int:
        return self.memory.hits + getattr(self.cold, "hits", 0)

    @property
    def misses(self) -> int:
        # memory misses that fall through are counted by the cold tier
        return getattr(self.cold, "misses", 0)

    @property
    def evictions(self) -> int:
        return self.memory.evictions + getattr(self.cold, "evictions", 0)

    def load(self, key: str) -> Optional[CheckResult]:
        result = self.memory.load(key)
        if result is not None:
            return result
        result = self.cold.load(key)
        if result is not None:
            self.memory.store(key, result)
        return result

    def store(self, key: str, result: CheckResult) -> None:
        self.memory.store(key, result)
        self.cold.store(key, result)

    def stats(self) -> dict:
        cold_stats = (
            self.cold.stats()
            if hasattr(self.cold, "stats")
            else {
                "hits": getattr(self.cold, "hits", 0),
                "misses": getattr(self.cold, "misses", 0),
                "evictions": getattr(self.cold, "evictions", 0),
            }
        )
        return {"memory": self.memory.stats(), "cold": cold_stats}


class NullCache:
    """The ``--no-cache`` policy: every lookup misses, nothing is stored."""

    tier = "null"
    hits = 0
    evictions = 0

    def __init__(self) -> None:
        self.misses = 0

    def load(self, key: str) -> Optional[CheckResult]:
        self.misses += 1
        return None

    def store(self, key: str, result: CheckResult) -> None:
        pass

    def stats(self) -> dict:
        return {"hits": 0, "misses": self.misses, "evictions": 0}
