"""Content-hash result cache for the batch engine.

Results are stored one JSON file per cache key under a cache directory
(default ``.mlffi-cache``).  Keys come from
:meth:`repro.engine.jobs.CheckRequest.cache_key`, which digests the C
sources, the OCaml repository fingerprint, and the analysis options — so a
hit is only possible when re-analyzing would provably reproduce the stored
diagnostics.  Corrupt or stale entries are treated as misses, never errors:
the cache can always be deleted wholesale.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Optional

from .jobs import CACHE_SCHEMA_VERSION, CheckResult

DEFAULT_CACHE_DIR = ".mlffi-cache"


class ResultCache:
    """Filesystem-backed store of :class:`CheckResult` keyed by content hash."""

    def __init__(self, directory: str | os.PathLike):
        self.directory = Path(directory)
        self.hits = 0
        self.misses = 0

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    def load(self, key: str) -> Optional[CheckResult]:
        """Return the cached result for ``key``, or ``None`` on any miss."""
        path = self._path(key)
        try:
            data = json.loads(path.read_text())
        except (OSError, ValueError):
            self.misses += 1
            return None
        if data.get("schema_version") != CACHE_SCHEMA_VERSION:
            self.misses += 1
            return None
        try:
            result = CheckResult.from_dict(data["result"])
        except (KeyError, TypeError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        result.from_cache = True
        return result

    def store(self, key: str, result: CheckResult) -> None:
        """Persist ``result`` under ``key`` (atomically; failures ignored)."""
        if result.failure is not None:
            return  # infrastructure failures must re-run next time
        payload = {
            "schema_version": CACHE_SCHEMA_VERSION,
            "result": result.to_dict(),
        }
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(
                dir=self.directory, prefix=".tmp-", suffix=".json"
            )
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle)
            os.replace(tmp_name, self._path(key))
        except OSError:
            pass  # a read-only cache dir degrades to "no cache", not a crash

    def clear(self) -> int:
        """Delete every entry; returns how many files were removed."""
        removed = 0
        if not self.directory.is_dir():
            return removed
        for path in self.directory.glob("*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def __len__(self) -> int:
        if not self.directory.is_dir():
            return 0
        return sum(1 for _ in self.directory.glob("*.json"))


class NullCache:
    """The ``--no-cache`` policy: every lookup misses, nothing is stored."""

    hits = 0

    def __init__(self) -> None:
        self.misses = 0

    def load(self, key: str) -> Optional[CheckResult]:
        self.misses += 1
        return None

    def store(self, key: str, result: CheckResult) -> None:
        pass
