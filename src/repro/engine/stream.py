"""Bounded-memory streaming scheduler — the mega-corpus path.

:func:`repro.engine.scheduler.run_batch` materializes every request and
every result; fine for thousands of units, fatal for 100k.  This module
pipelines *load → check → summarize → discard*: requests are consumed
from a lazy iterator (see :func:`repro.corpus.iter_tree`), at most
``window`` of them are in flight at once, and each result is handed to
``on_result`` exactly once — in submission order — then dropped.  Peak
residency is the window, not the corpus, so RSS stays flat as the corpus
grows; the caller keeps only what it accumulates (the linker keeps
symbol tables, the CLI keeps a tally).

The per-unit pipeline is the same one the batch scheduler runs — cache
probe by content hash, :func:`~repro.engine.worker.run_request` on a
miss, store-back after — so a streamed sweep and a batch sweep over the
same corpus produce byte-identical per-unit diagnostics.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

from ..diagnostics import DiagnosticBag
from ..telemetry import current_tracer
from ..telemetry.metrics import (
    count_cache,
    observe_stream_window,
    observe_unit,
)
from .jobs import CheckRequest, CheckResult
from .scheduler import Cache, default_jobs
from .worker import run_request


@dataclass
class StreamStats:
    """What a streamed sweep kept: counts, never results."""

    units: int = 0
    cache_hits: int = 0
    analyzed: int = 0
    failures: int = 0
    tally: dict[str, int] = field(
        default_factory=lambda: DiagnosticBag().tally()
    )
    elapsed_seconds: float = 0.0
    jobs: int = 1

    def absorb(self, result: CheckResult) -> None:
        self.units += 1
        if result.from_cache:
            self.cache_hits += 1
        else:
            self.analyzed += 1
        if result.failure is not None:
            self.failures += 1
        for column, count in result.tally().items():
            self.tally[column] += count

    def render(self) -> str:
        """The batch footer's streaming twin."""
        return (
            f"-- {self.units} unit(s): {self.tally['errors']} error(s), "
            f"{self.tally['warnings']} warning(s), "
            f"{self.tally['false_positives']} false-positive-prone "
            f"report(s), "
            f"{self.tally['imprecision']} imprecision warning(s) "
            f"[{self.cache_hits} cached, {self.analyzed} analyzed, "
            f"jobs={self.jobs}] in {self.elapsed_seconds:.2f}s"
        )

    def to_dict(self) -> dict:
        return {
            "units": self.units,
            "tally": dict(self.tally),
            "cache": {"hits": self.cache_hits},
            "analyzed": self.analyzed,
            "failures": self.failures,
            "jobs": self.jobs,
            "elapsed_seconds": self.elapsed_seconds,
        }


def default_window(jobs: int) -> int:
    """In-flight bound: enough to keep ``jobs`` workers fed, small
    enough that resident results stay O(jobs), not O(corpus)."""
    return max(4, jobs * 4)


def stream_batch(
    requests: Iterable[CheckRequest],
    *,
    jobs: int = 1,
    cache: Optional[Cache] = None,
    on_result: Optional[Callable[[CheckResult], None]] = None,
    window: Optional[int] = None,
) -> StreamStats:
    """Sweep a lazy request stream under a bounded in-flight window.

    ``on_result`` observes each :class:`CheckResult` once, in submission
    order, before it is discarded — the linker's ``add`` hook, the CLI's
    renderer.  Exceptions from the worker layer never surface here:
    :func:`run_request` folds them into ``result.failure``.
    """
    started = time.perf_counter()
    if jobs <= 0:
        jobs = default_jobs()
    if window is None:
        window = default_window(jobs)
    stats = StreamStats(jobs=jobs)

    pool = None
    if jobs > 1:
        import multiprocessing

        try:
            pool = multiprocessing.get_context().Pool(processes=jobs)
        except (ImportError, OSError, PermissionError, ValueError):
            pool = None  # degrade to sequential, like run_batch

    #: (key, dialect, ready CheckResult | None, in-flight AsyncResult | None)
    pending: deque = deque()
    tracer = current_tracer()

    def drain_one() -> None:
        key, dialect, result, handle = pending.popleft()
        if handle is not None:
            result = handle.get()
            if cache is not None:
                cache.store(key, result)
        if not result.from_cache:
            observe_unit(dialect, result.wall_seconds, fresh=True)
        if tracer is not None and result.trace_events:
            tracer.absorb(result.trace_events)
            result.trace_events = None
        stats.absorb(result)
        if on_result is not None:
            on_result(result)

    try:
        for request in requests:
            key = ""
            cached = None
            if cache is not None:
                probe_started = time.perf_counter()
                key = request.cache_key()
                cached = cache.load(key)
                if cached is not None:
                    cached.name = request.name
                    # same contract as the batch scheduler: the probe is
                    # both the wall cost and the always-nonzero
                    # probe_seconds of a served hit
                    probe = time.perf_counter() - probe_started
                    cached.wall_seconds = probe
                    cached.probe_seconds = probe
                    count_cache(cached.cache_tier, hit=True)
                    observe_unit(request.dialect, probe, fresh=False)
                    pending.append((key, request.dialect, cached, None))
                else:
                    count_cache("", hit=False)
            if cached is None:
                if pool is not None:
                    pending.append(
                        (
                            key,
                            request.dialect,
                            None,
                            pool.apply_async(run_request, (request, key)),
                        )
                    )
                else:
                    result = run_request(request, key)
                    if cache is not None:
                        cache.store(key, result)
                    pending.append((key, request.dialect, result, None))
            observe_stream_window(len(pending))
            while len(pending) >= window:
                drain_one()
        while pending:
            drain_one()
    finally:
        if pool is not None:
            pool.terminate()
            pool.join()

    stats.elapsed_seconds = time.perf_counter() - started
    return stats
