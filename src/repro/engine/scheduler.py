"""Batch scheduler: cache lookup, worker fan-out, deterministic merge.

The scheduler is the seam the ROADMAP's scaling work builds on.  Given a
sequence of :class:`~repro.engine.jobs.CheckRequest` it

1. probes the result cache with each request's content hash — hits are
   never re-analyzed;
2. fans the misses out across a ``multiprocessing`` pool (``jobs > 1``) or
   runs them inline (``jobs == 1``, or whenever a pool cannot be created —
   sandboxes without semaphores, restricted platforms — in which case it
   degrades to sequential rather than failing);
3. stores fresh results back into the cache and merges everything into a
   :class:`~repro.engine.jobs.BatchReport` in submission order, so output
   is deterministic no matter which worker finished first.
"""

from __future__ import annotations

import os
import time
from typing import Optional, Protocol, Sequence

from ..telemetry import current_tracer, span
from ..telemetry.metrics import count_cache, observe_unit
from .jobs import BatchReport, CheckRequest, CheckResult
from .worker import run_request


class Cache(Protocol):
    def load(self, key: str) -> Optional[CheckResult]: ...

    def store(self, key: str, result: CheckResult) -> None: ...


def default_jobs() -> int:
    """A sensible worker count for ``--jobs 0`` (auto)."""
    return max(1, min(8, os.cpu_count() or 1))


def _run_pool(
    requests: Sequence[tuple[CheckRequest, str]], jobs: int
) -> Optional[list[CheckResult]]:
    """Fan out across processes; ``None`` means 'pool unavailable, go
    sequential'."""
    import multiprocessing

    try:
        context = multiprocessing.get_context()
        chunksize = max(1, len(requests) // (jobs * 4))
        with context.Pool(processes=jobs) as pool:
            return pool.starmap(run_request, requests, chunksize=chunksize)
    except (ImportError, OSError, PermissionError, ValueError):
        return None


def run_batch(
    requests: Sequence[CheckRequest],
    *,
    jobs: int = 1,
    cache: Optional[Cache] = None,
) -> BatchReport:
    """Analyze ``requests`` and merge their results into one report."""
    started = time.perf_counter()
    if jobs <= 0:
        jobs = default_jobs()

    results: dict[int, CheckResult] = {}
    pending: list[tuple[int, CheckRequest, str]] = []
    for index, request in enumerate(requests):
        if cache is None:
            # cacheless sweeps skip content hashing entirely; "" marks the
            # result as unkeyed
            pending.append((index, request, ""))
            continue
        probe_started = time.perf_counter()
        key = request.cache_key()
        cached = cache.load(key)
        if cached is not None:
            cached.name = request.name  # cache files are key-addressed
            # a hit's wall time is what the batch actually paid: the
            # probe — recorded on both fields, because a replayed entry
            # arrives with the *original* run's wall_seconds overwritten
            # while probe_seconds is the only always-fresh, always-
            # nonzero cost of serving it
            probe = time.perf_counter() - probe_started
            cached.wall_seconds = probe
            cached.probe_seconds = probe
            count_cache(cached.cache_tier, hit=True)
            observe_unit(request.dialect, probe, fresh=False)
            results[index] = cached
        else:
            count_cache("", hit=False)
            pending.append((index, request, key))

    # intra-batch coalescing: two requests with the same cache key are
    # provably the same analysis (content, dialect, options), so only the
    # first is submitted and the rest receive copies of its result —
    # the batch-level face of the service's request coalescing
    unique: list[tuple[int, CheckRequest, str]] = []
    duplicates: list[tuple[int, CheckRequest, str]] = []
    seen: set[str] = set()
    for index, request, key in pending:
        if key and key in seen:
            duplicates.append((index, request, key))
        else:
            if key:
                seen.add(key)
            unique.append((index, request, key))

    fresh: Optional[list[CheckResult]] = None
    worker_count = min(jobs, len(unique))
    with span("analyze", cat="phase", units=len(unique)):
        if worker_count > 1:
            fresh = _run_pool(
                [(req, key) for _, req, key in unique], worker_count
            )
        if fresh is None:
            fresh = [run_request(req, key) for _, req, key in unique]

    tracer = current_tracer()
    evictions_before = getattr(cache, "evictions", 0)
    by_key: dict[str, CheckResult] = {}
    for (index, req, key), result in zip(unique, fresh):
        if tracer is not None and result.trace_events:
            # worker-process spans join the parent timeline exactly once
            tracer.absorb(result.trace_events)
            result.trace_events = None
        observe_unit(req.dialect, result.wall_seconds, fresh=True)
        if cache is not None:
            cache.store(key, result)
        if key:
            by_key[key] = result
        results[index] = result
    for index, request, key in duplicates:
        shared = by_key[key]
        copy = CheckResult.from_dict(shared.to_dict())
        copy.name = request.name
        copy.wall_seconds = 0.0  # the duplicate cost the batch nothing
        copy.cache_tier = "coalesced"  # keep it out of the analyzed count
        results[index] = copy

    ordered = [results[index] for index in range(len(requests))]
    return BatchReport(
        results=ordered,
        elapsed_seconds=time.perf_counter() - started,
        jobs=jobs,
        cache_evictions=getattr(cache, "evictions", 0) - evictions_before,
        coalesced=len(duplicates),
    )
