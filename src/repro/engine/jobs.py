"""Job model for the batch-analysis engine.

A :class:`CheckRequest` is one self-contained translation unit: the C glue
sources to analyze plus the OCaml sources that build its type repository
(``Γ_I``) and the analysis :class:`~repro.core.exprs.Options`.  Requests
carry everything a worker process needs, so they pickle cleanly across a
``multiprocessing`` pool and hash deterministically for the result cache.

A :class:`CheckResult` is the flattened, JSON-able outcome of one request —
structured diagnostics, the Figure 9 tally, inferred signatures — decoupled
from the in-process :class:`~repro.core.checker.AnalysisReport` so results
can cross process boundaries and survive on disk between runs.

A :class:`BatchReport` merges per-unit results into one Figure-9-style
tally, in deterministic (submission) order regardless of which worker
finished first.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from typing import Iterable, Optional

from ..core.checker import AnalysisReport
from ..core.exprs import Options
from ..diagnostics import Diagnostic, DiagnosticBag
from ..source import SourceFile

#: Bump whenever the analysis output format or semantics change, so stale
#: cache entries from older engine revisions can never be replayed.
#: v2: requests carry a boundary dialect (and results a per-unit wall time).
#: v3: results carry the cache tier that served them; batch reports carry
#: cache eviction counts.
#: v4: third dialect (jni) with new JNI_* kinds; ParseHints grew dialect
#: qualifiers, changing how shared-suffix sources can parse.
#: v5: the cross-process SharedResultStore joined the tier stack (its
#: content-addressed layout must never replay pre-store entries) and
#: results grew the "store" cache tier.
#: v6: results carry the per-unit InterfaceSummary the whole-program
#: linker consumes; pre-link entries would replay without one and the
#: link pass would silently see an empty corpus.
#: v7: results carry ``probe_seconds`` (the measured cost of serving a
#: cache hit, distinct from the analysis wall time) so trend math over
#: replayed entries never divides by a silent 0.0.
#: v8: diagnostics carry their stable ``rule_id`` (see
#: :mod:`repro.rules`); fourth dialect (rust) with RUST_* kinds; interface
#: summaries grew the ``host_exports`` row group the linker folds in.
CACHE_SCHEMA_VERSION = 8


def _digest_sources(sources: Iterable[SourceFile]) -> str:
    """Content hash of a sequence of sources, in the given order.

    Order matters: repository building and ``ProgramIR.merge`` are
    last-wins, so permuted inputs can analyze differently and must not
    collide to one digest.
    """
    hasher = hashlib.sha256()
    for source in sources:
        hasher.update(source.filename.encode("utf-8", "replace"))
        hasher.update(b"\x00")
        hasher.update(source.text.encode("utf-8", "replace"))
        hasher.update(b"\x01")
    return hasher.hexdigest()


def repository_fingerprint(ocaml_sources: Iterable[SourceFile]) -> str:
    """Content hash of the OCaml side (the type repository inputs)."""
    return _digest_sources(ocaml_sources)


def options_fingerprint(options: Options) -> str:
    """Stable hash of the analysis switches."""
    payload = json.dumps(asdict(options), sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class CheckRequest:
    """One translation unit queued for analysis.

    ``dialect`` names the boundary dialect (see :mod:`repro.boundary`)
    that interprets the unit: which runtime table seeds the environment
    and where ``Γ_I`` comes from.  The same C text under a different
    dialect is a different analysis, so the dialect participates in
    :meth:`cache_key`.
    """

    name: str
    c_sources: tuple[SourceFile, ...]
    ocaml_sources: tuple[SourceFile, ...] = ()
    options: Options = field(default_factory=Options)
    dialect: str = "ocaml"
    #: record phase spans while analyzing this unit (see
    #: :mod:`repro.telemetry`).  Deliberately excluded from
    #: :meth:`cache_key`: tracing observes the analysis, it never
    #: changes the outcome.
    trace: bool = False

    def cache_key(self) -> str:
        """Content hash identifying this unit's analysis outcome.

        Keyed on the dialect, the C source digest, the host-side
        repository fingerprint, and the :class:`Options` — any change to
        any of the four must miss — plus the engine schema version.
        """
        hasher = hashlib.sha256()
        hasher.update(f"v{CACHE_SCHEMA_VERSION}".encode())
        hasher.update(self.dialect.encode("utf-8", "replace"))
        hasher.update(b"\x00")
        hasher.update(_digest_sources(self.c_sources).encode())
        hasher.update(repository_fingerprint(self.ocaml_sources).encode())
        hasher.update(options_fingerprint(self.options).encode())
        return hasher.hexdigest()


@dataclass
class CheckResult:
    """Flattened outcome of one :class:`CheckRequest`."""

    name: str
    diagnostics: list[Diagnostic] = field(default_factory=list)
    signatures: dict[str, str] = field(default_factory=dict)
    unification_steps: int = 0
    elapsed_seconds: float = 0.0
    #: end-to-end time this unit cost the batch: parse + analysis for a
    #: miss, the cache probe for a hit (``elapsed_seconds`` is only the
    #: checker fixpoint).  This is what cold-vs-warm plots should use.
    wall_seconds: float = 0.0
    #: measured cost of *serving* this result when it was not freshly
    #: analyzed: the cache probe (scheduler/stream hit paths) or the
    #: resident-state copy (incremental reuse).  Always > 0 for served
    #: results — trend math can divide by it where ``wall_seconds`` and
    #: ``elapsed_seconds`` may legitimately be 0.0.  0.0 for fresh runs.
    probe_seconds: float = 0.0
    cache_key: str = ""
    from_cache: bool = False
    #: which tier satisfied a hit: "memory", "disk", "store" (the
    #: cross-process shared store), "coalesced" (an intra-batch copy of
    #: another request's fresh run), or "" for a fresh run
    cache_tier: str = ""
    #: set when the worker itself failed (parse crash, etc.); such results
    #: are reported but never cached
    failure: Optional[str] = None
    #: the unit's JSON-able InterfaceSummary (see :mod:`repro.linker`);
    #: rides every cache tier so the link pass re-runs over summaries,
    #: never sources
    summary: Optional[dict] = None
    #: Chrome trace events recorded while this unit analyzed (only when
    #: the request asked for tracing).  A per-run observation, not an
    #: analysis outcome: it crosses the worker boundary by pickle,
    #: is absorbed into the parent tracer by the scheduler, and is
    #: deliberately NOT part of :meth:`to_dict` — cached payloads and
    #: JSON reports stay byte-identical with tracing on or off.
    trace_events: Optional[list] = None

    @classmethod
    def from_report(
        cls, name: str, report: AnalysisReport, cache_key: str = ""
    ) -> "CheckResult":
        return cls(
            name=name,
            diagnostics=list(report.diagnostics),
            signatures=dict(report.signatures),
            unification_steps=report.unification_steps,
            elapsed_seconds=report.elapsed_seconds,
            cache_key=cache_key,
            summary=report.summary,
        )

    def _bag(self) -> DiagnosticBag:
        return DiagnosticBag(list(self.diagnostics))

    def tally(self) -> dict[str, int]:
        return self._bag().tally()

    @property
    def errors(self) -> list[Diagnostic]:
        return self._bag().errors

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "tally": self.tally(),
            "diagnostics": [diag.to_dict() for diag in self.diagnostics],
            "signatures": dict(self.signatures),
            "unification_steps": self.unification_steps,
            "elapsed_seconds": self.elapsed_seconds,
            "wall_seconds": self.wall_seconds,
            "probe_seconds": self.probe_seconds,
            "cache_key": self.cache_key,
            "from_cache": self.from_cache,
            "cache_tier": self.cache_tier,
            "failure": self.failure,
            "summary": self.summary,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CheckResult":
        return cls(
            name=data["name"],
            diagnostics=[
                Diagnostic.from_dict(d) for d in data.get("diagnostics", ())
            ],
            signatures=dict(data.get("signatures", {})),
            unification_steps=data.get("unification_steps", 0),
            elapsed_seconds=data.get("elapsed_seconds", 0.0),
            wall_seconds=data.get("wall_seconds", 0.0),
            probe_seconds=data.get("probe_seconds", 0.0),
            cache_key=data.get("cache_key", ""),
            from_cache=data.get("from_cache", False),
            cache_tier=data.get("cache_tier", ""),
            failure=data.get("failure"),
            summary=data.get("summary"),
        )


def render_unit(result: CheckResult) -> list[str]:
    """One unit's text block, shared by the batch report and the
    streaming path so their per-unit output is byte-identical."""
    tag = " (cached)" if result.from_cache else ""
    lines = [f"== {result.name}{tag}"]
    if result.failure is not None:
        lines.append(f"   engine failure: {result.failure}")
        return lines
    for diag in result.diagnostics:
        lines.append("   " + diag.render())
    return lines


@dataclass
class BatchReport:
    """Merged outcome of one batch run, in submission order."""

    results: list[CheckResult] = field(default_factory=list)
    elapsed_seconds: float = 0.0
    jobs: int = 1
    #: LRU evictions the cache performed while this batch stored results
    cache_evictions: int = 0
    #: duplicate requests served by intra-batch coalescing (identical
    #: cache keys submitted together analyze once)
    coalesced: int = 0

    def tally(self) -> dict[str, int]:
        total = DiagnosticBag().tally()
        for result in self.results:
            for column, count in result.tally().items():
                total[column] += count
        return total

    @property
    def cache_hits(self) -> int:
        return sum(1 for r in self.results if r.from_cache)

    @property
    def cache_misses(self) -> int:
        """Units that really re-analyzed: coalesced duplicates replay a
        leader's fresh run, so they are neither hits nor analyses."""
        return sum(
            1
            for r in self.results
            if not r.from_cache and r.cache_tier != "coalesced"
        )

    @property
    def failures(self) -> list[CheckResult]:
        return [r for r in self.results if r.failure is not None]

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for r in self.results for d in r.errors]

    def render(self) -> str:
        """Figure-9-style aggregate, one block per unit plus the tally."""
        lines: list[str] = []
        for result in self.results:
            lines.extend(render_unit(result))
        counts = self.tally()
        evicted = (
            f", {self.cache_evictions} evicted" if self.cache_evictions else ""
        )
        shared = f", {self.coalesced} coalesced" if self.coalesced else ""
        lines.append(
            f"-- {len(self.results)} unit(s): {counts['errors']} error(s), "
            f"{counts['warnings']} warning(s), "
            f"{counts['false_positives']} false-positive-prone report(s), "
            f"{counts['imprecision']} imprecision warning(s) "
            f"[{self.cache_hits} cached, {self.cache_misses} analyzed"
            f"{shared}{evicted}, "
            f"jobs={self.jobs}] in {self.elapsed_seconds:.2f}s"
        )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "schema_version": CACHE_SCHEMA_VERSION,
            "units": [result.to_dict() for result in self.results],
            "tally": self.tally(),
            "cache": {
                "hits": self.cache_hits,
                "misses": self.cache_misses,
                "evictions": self.cache_evictions,
                "coalesced": self.coalesced,
            },
            "jobs": self.jobs,
            "elapsed_seconds": self.elapsed_seconds,
        }
