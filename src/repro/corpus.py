"""Project-tree scanning shared by the batch and incremental drivers.

One place decides what a corpus is: host-language sources (the dialect's
``host_suffixes``) feed the shared type repository, every ``.c`` file is
a translation unit, and files that cannot be decoded or have no content
are skipped with a :class:`UserWarning` — a stray binary or an empty
placeholder must not sink a sweep.  Both
:meth:`repro.api.Project.from_directory` and
:meth:`repro.engine.IncrementalEngine.reload` go through here, so batch
mode and the persistent service can never disagree about which files a
tree contains.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Optional

from .source import SourceFile


def read_source(
    path: str | Path, name: Optional[str] = None
) -> Optional[SourceFile]:
    """Load one source file, or ``None`` (with a warning) if unusable.

    ``name`` overrides the filename recorded on the :class:`SourceFile`
    (the incremental engine uses normalized absolute paths).
    """
    path = Path(path)
    try:
        text = path.read_text()
    except (UnicodeDecodeError, OSError) as exc:
        warnings.warn(
            f"skipping unreadable source {path}: {exc}", stacklevel=2
        )
        return None
    if not text.strip():
        warnings.warn(f"skipping empty source {path}", stacklevel=2)
        return None
    return SourceFile(name if name is not None else str(path), text)


@dataclass
class CorpusScan:
    """The usable sources found under one project root."""

    hosts: list[SourceFile] = field(default_factory=list)
    units: list[SourceFile] = field(default_factory=list)


def scan_tree(
    root: str | Path,
    spec,
    name_for: Callable[[Path], str] = str,
) -> CorpusScan:
    """Walk ``root`` with the dialect's suffix map, in sorted order."""
    scan = CorpusScan()
    for path in sorted(Path(root).rglob("*")):
        if not path.is_file():
            continue
        is_host = path.suffix in spec.host_suffixes
        if not is_host and path.suffix != ".c":
            continue
        source = read_source(path, name_for(path))
        if source is None:
            continue
        (scan.hosts if is_host else scan.units).append(source)
    return scan
