"""Project-tree scanning shared by the batch and incremental drivers.

One place decides what a corpus is: host-language sources (the dialect's
``host_suffixes``) feed the shared type repository, files with one of the
dialect's *corpus unit* suffixes are translation units, and files that
cannot be decoded or have no content are skipped with a
:class:`UserWarning` — a stray binary or an empty placeholder must not
sink a sweep.  :meth:`repro.api.Project.from_directory`,
:meth:`repro.engine.IncrementalEngine.reload` and the streaming link
driver all go through here, so batch mode and the persistent service can
never disagree about which files a tree contains.

Two entry points share the walk: :func:`scan_tree` materializes every
source (the classic batch path), and :func:`iter_tree` loads only the
host side eagerly while yielding units lazily — the mega-corpus mode,
where holding 100k parsed units resident would defeat the bounded-memory
scheduler.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterator, Optional

from .boundary import spec_of
from .source import SourceFile


def read_source(
    path: str | Path, name: Optional[str] = None
) -> Optional[SourceFile]:
    """Load one source file, or ``None`` (with a warning) if unusable.

    ``name`` overrides the filename recorded on the :class:`SourceFile`
    (the incremental engine uses normalized absolute paths).
    """
    path = Path(path)
    try:
        text = path.read_text()
    except (UnicodeDecodeError, OSError) as exc:
        warnings.warn(
            f"skipping unreadable source {path}: {exc}", stacklevel=2
        )
        return None
    if not text.strip():
        warnings.warn(f"skipping empty source {path}", stacklevel=2)
        return None
    return SourceFile(name if name is not None else str(path), text)


def unit_suffixes(spec) -> tuple[str, ...]:
    """The suffixes that make a file a *translation unit* for ``spec``.

    ``spec`` may be a :class:`~repro.boundary.DialectSpec`, a registered
    dialect, or any dialect-like object; :func:`repro.boundary.spec_of`
    normalizes all three.  The derivation rules (explicit
    ``corpus_unit_suffixes`` pin wins, else drop header-ish and host
    suffixes, else the historic ``.c``-only scan) live with the spec,
    not here.
    """
    return tuple(spec_of(spec).corpus_unit_suffixes)


@dataclass
class CorpusScan:
    """The usable sources found under one project root."""

    hosts: list[SourceFile] = field(default_factory=list)
    units: list[SourceFile] = field(default_factory=list)


@dataclass
class StreamScan:
    """A lazy corpus: eager hosts, unit *paths* resolved up front, unit
    *contents* loaded one at a time by :meth:`iter_units`.

    The host side stays eager because every unit's ``Γ_I`` needs it; the
    unit list stays paths-only so a 100k-unit tree costs a directory walk,
    not a corpus-sized read, before the first check runs.
    """

    hosts: list[SourceFile] = field(default_factory=list)
    unit_paths: list[Path] = field(default_factory=list)
    name_for: Callable[[Path], str] = str

    def __len__(self) -> int:
        return len(self.unit_paths)

    def iter_units(self) -> Iterator[SourceFile]:
        for path in self.unit_paths:
            source = read_source(path, self.name_for(path))
            if source is not None:
                yield source


def iter_tree(
    root: str | Path,
    spec,
    name_for: Callable[[Path], str] = str,
) -> StreamScan:
    """Walk ``root`` with the dialect's suffix map, hosts eager, units lazy."""
    resolved = spec_of(spec)
    units = resolved.corpus_unit_suffixes
    scan = StreamScan(name_for=name_for)
    for path in sorted(Path(root).rglob("*")):
        if not path.is_file():
            continue
        if path.suffix in resolved.host_suffixes:
            source = read_source(path, name_for(path))
            if source is not None:
                scan.hosts.append(source)
        elif path.suffix in units:
            scan.unit_paths.append(path)
    return scan


def scan_tree(
    root: str | Path,
    spec,
    name_for: Callable[[Path], str] = str,
) -> CorpusScan:
    """Walk ``root`` with the dialect's suffix map, in sorted order."""
    stream = iter_tree(root, spec, name_for)
    return CorpusScan(hosts=stream.hosts, units=list(stream.iter_units()))
