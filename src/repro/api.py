"""High-level entry points tying the two phases together.

This is the library's public face, mirroring §5.1's two-tool pipeline:
the OCaml tool builds the type repository and ``Γ_I``; the C tool lowers
the glue code and runs the multi-lingual inference.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence, Union

from .cfront.ir import ProgramIR
from .cfront.lower import lower_unit
from .cfront.parser import parse_c
from .core.checker import AnalysisReport, Checker, InitialEnv
from .core.exprs import Options
from .ocamlfront.repository import TypeRepository, build_initial_env
from .source import SourceFile

SourceLike = Union[str, SourceFile]


def _as_source(source: SourceLike, default_name: str) -> SourceFile:
    if isinstance(source, SourceFile):
        return source
    return SourceFile(default_name, source)


@dataclass
class Project:
    """A multi-lingual project: OCaml sources plus C glue sources."""

    ocaml_sources: list[SourceFile] = field(default_factory=list)
    c_sources: list[SourceFile] = field(default_factory=list)

    def add_ocaml(self, source: SourceLike, name: str = "glue.ml") -> "Project":
        self.ocaml_sources.append(_as_source(source, name))
        return self

    def add_c(self, source: SourceLike, name: str = "glue.c") -> "Project":
        self.c_sources.append(_as_source(source, name))
        return self

    def build_repository(self) -> TypeRepository:
        repo = TypeRepository.with_stdlib()
        for source in self.ocaml_sources:
            repo.add_source(source)
        return repo

    def build_initial_env(self) -> InitialEnv:
        return build_initial_env(self.build_repository())

    def lower(self) -> ProgramIR:
        program = ProgramIR()
        for source in self.c_sources:
            unit = parse_c(source)
            program = program.merge(lower_unit(unit))
        return program

    def analyze(self, options: Optional[Options] = None) -> AnalysisReport:
        """Run both phases and return the full report."""
        initial_env = self.build_initial_env()
        program = self.lower()
        return Checker(program, initial_env, options).run()


def analyze_project(
    ocaml_sources: Sequence[SourceLike],
    c_sources: Sequence[SourceLike],
    options: Optional[Options] = None,
) -> AnalysisReport:
    """Analyze OCaml + C sources given as text or :class:`SourceFile`."""
    project = Project()
    for index, source in enumerate(ocaml_sources):
        project.add_ocaml(source, f"input{index}.ml")
    for index, source in enumerate(c_sources):
        project.add_c(source, f"input{index}.c")
    return project.analyze(options)


def check_c_source(
    c_text: str,
    ocaml_text: str = "",
    options: Optional[Options] = None,
) -> AnalysisReport:
    """One-shot convenience: analyze a single C file (plus optional .ml)."""
    ocaml_sources: list[SourceLike] = [ocaml_text] if ocaml_text else []
    return analyze_project(ocaml_sources, [c_text], options)
