"""High-level entry points tying the two phases together.

This is the library's public face, mirroring §5.1's two-tool pipeline:
the OCaml tool builds the type repository and ``Γ_I``; the C tool lowers
the glue code and runs the multi-lingual inference.  Both the single-shot
(:meth:`Project.analyze`) and batched (:meth:`Project.analyze_batch`)
paths delegate to :mod:`repro.engine`, so one analysis implementation
serves the library API, the CLI, and the parallel batch driver.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Optional, Sequence, Union

from .boundary import get_dialect
from .cfront.ir import ProgramIR
from .corpus import scan_tree
from .cfront.lower import lower_unit
from .cfront.parser import parse_c
from .core.checker import AnalysisReport, InitialEnv
from .core.exprs import Options
from .engine import (
    DEFAULT_MAX_ENTRIES,
    BatchReport,
    CheckRequest,
    IncrementalEngine,
    IncrementalReport,
    NullCache,
    ResultCache,
    SharedResultStore,
    run_batch,
)
from .engine.scheduler import Cache
from .engine.worker import analyze_request
from .ocamlfront.repository import TypeRepository, build_initial_env
from .source import SourceFile

SourceLike = Union[str, SourceFile]

OCAML_SUFFIXES = (".ml", ".mli")


def _as_source(source: SourceLike, default_name: str) -> SourceFile:
    if isinstance(source, SourceFile):
        return source
    return SourceFile(default_name, source)


@dataclass
class Project:
    """A multi-lingual project: host-language sources plus C glue sources.

    ``dialect`` selects the boundary being checked (``"ocaml"`` by
    default, ``"pyext"`` for CPython extension modules); it travels with
    every :class:`CheckRequest` the project produces.  ``ocaml_sources``
    holds the host-language side regardless of dialect — for pyext the
    list is simply empty, since the boundary contract (``PyMethodDef``
    tables) lives in the C sources themselves.
    """

    ocaml_sources: list[SourceFile] = field(default_factory=list)
    c_sources: list[SourceFile] = field(default_factory=list)
    dialect: str = "ocaml"

    def add_ocaml(self, source: SourceLike, name: str = "glue.ml") -> "Project":
        self.ocaml_sources.append(_as_source(source, name))
        return self

    def add_c(self, source: SourceLike, name: str = "glue.c") -> "Project":
        self.c_sources.append(_as_source(source, name))
        return self

    @classmethod
    def from_directory(
        cls, root: str | Path, dialect: str = "ocaml"
    ) -> "Project":
        """Scan ``root`` recursively using the dialect's suffix map: host
        sources (``.ml``/``.mli`` for OCaml) feed the type repository,
        every ``.c`` becomes a translation unit.

        Files that cannot be decoded as text and files with no content are
        skipped with a :class:`UserWarning` — a stray binary or an empty
        placeholder must not sink a directory sweep.
        """
        project = cls(dialect=dialect)
        scan = scan_tree(root, get_dialect(dialect))
        project.ocaml_sources.extend(scan.hosts)
        project.c_sources.extend(scan.units)
        return project

    def build_repository(self) -> TypeRepository:
        repo = TypeRepository.with_stdlib()
        for source in self.ocaml_sources:
            repo.add_source(source)
        return repo

    def build_initial_env(self) -> InitialEnv:
        return build_initial_env(self.build_repository())

    def lower(self) -> ProgramIR:
        program = ProgramIR()
        for source in self.c_sources:
            unit = parse_c(source)
            program = program.merge(lower_unit(unit))
        return program

    # -- engine integration ----------------------------------------------------

    def to_request(
        self,
        options: Optional[Options] = None,
        name: str = "<project>",
        *,
        trace: bool = False,
    ) -> CheckRequest:
        """The whole project as one translation unit (single-shot path).

        ``trace=True`` asks the worker to record phase spans onto the
        result (see :mod:`repro.telemetry`); it never changes the
        analysis or its cache key.
        """
        return CheckRequest(
            name=name,
            c_sources=tuple(self.c_sources),
            ocaml_sources=tuple(self.ocaml_sources),
            options=options or Options(),
            dialect=self.dialect,
            trace=trace,
        )

    def to_requests(
        self, options: Optional[Options] = None, *, trace: bool = False
    ) -> list[CheckRequest]:
        """One :class:`CheckRequest` per C file, sharing the OCaml side.

        This is the batch decomposition: the repository inputs travel with
        every unit (workers memoize parsing them), and each C file is
        analyzed — and cached — independently.
        """
        options = options or Options()
        return [
            replace(
                self.to_request(options, name=source.filename, trace=trace),
                c_sources=(source,),
            )
            for source in self.c_sources
        ]

    def analyze(self, options: Optional[Options] = None) -> AnalysisReport:
        """Run both phases and return the full report."""
        return analyze_request(self.to_request(options))

    def analyze_batch(
        self,
        options: Optional[Options] = None,
        *,
        jobs: int = 1,
        cache: Optional[Cache] = None,
        trace: bool = False,
    ) -> BatchReport:
        """Analyze every C file as its own unit via the batch engine."""
        return run_batch(
            self.to_requests(options, trace=trace), jobs=jobs, cache=cache
        )


class Session:
    """A long-lived incremental analysis session.

    This is the library face of the persistent service: it owns one
    :class:`~repro.engine.IncrementalEngine` (resident host environment,
    per-unit requests, dependency graph, and a memory result tier over an
    optional on-disk cold cache) and exposes the daemon's lifecycle as
    plain method calls::

        with Session("src/glue", dialect="ocaml", cache_dir=".mlffi-cache") as s:
            first = s.check()            # cold: every unit analyzed
            s.invalidate(["src/glue/stubs.c"])   # after an edit
            second = s.check()           # warm: only stubs.c re-runs

    ``service()`` upgrades the session to the JSON-RPC surface
    (:class:`repro.server.AnalysisService`) without a separate process —
    useful for driving the exact wire semantics in-process.
    """

    def __init__(
        self,
        root: str | Path,
        *,
        dialect: str = "ocaml",
        options: Optional[Options] = None,
        jobs: int = 1,
        cache_dir: Optional[str | Path] = None,
        shared_store: Optional[str | Path] = None,
        cache: Optional[Cache] = None,
        memory_max_entries: Optional[int] = DEFAULT_MAX_ENTRIES,
    ):
        if cache is None:
            if shared_store is not None:
                # cross-process cold tier: N sessions/daemons pointed at
                # the same directory share each other's warm results
                cache = SharedResultStore(shared_store)
            elif cache_dir is not None:
                cache = ResultCache(cache_dir)
            else:
                cache = NullCache()
        self.engine = IncrementalEngine(
            root,
            dialect=dialect,
            options=options,
            jobs=jobs,
            cache=cache,
            memory_max_entries=memory_max_entries,
        )
        self._service = None
        self._closed = False

    # -- daemon lifecycle ------------------------------------------------------

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        """Release resident state; further calls raise ``RuntimeError``."""
        self._closed = True
        self.engine.memory.clear()

    def _require_open(self) -> None:
        if self._closed:
            raise RuntimeError("session is closed")

    # -- operations ------------------------------------------------------------

    def check(
        self, paths: Optional[Sequence[str | Path]] = None
    ) -> IncrementalReport:
        """Incrementally re-check (optionally restricted to ``paths``)."""
        self._require_open()
        return self.engine.check(paths)

    def invalidate(self, paths: Sequence[str | Path]) -> set[str]:
        """Tell the session ``paths`` changed; returns affected units."""
        self._require_open()
        return self.engine.invalidate(paths)

    def reload(self) -> set[str]:
        """Rescan the whole tree (e.g. after a branch switch)."""
        self._require_open()
        return self.engine.reload()

    def status(self) -> dict:
        self._require_open()
        return self.engine.status()

    def link(self):
        """Re-check what is dirty, then link the whole corpus's interface
        summaries; returns ``(IncrementalReport, LinkReport)``."""
        self._require_open()
        return self.engine.link()

    def service(self):
        """The JSON-RPC face of this session (lazily constructed)."""
        self._require_open()
        if self._service is None:
            from .server import AnalysisService

            self._service = AnalysisService(self.engine)
        return self._service


def analyze_project(
    ocaml_sources: Sequence[SourceLike],
    c_sources: Sequence[SourceLike],
    options: Optional[Options] = None,
) -> AnalysisReport:
    """Analyze OCaml + C sources given as text or :class:`SourceFile`."""
    project = Project()
    for index, source in enumerate(ocaml_sources):
        project.add_ocaml(source, f"input{index}.ml")
    for index, source in enumerate(c_sources):
        project.add_c(source, f"input{index}.c")
    return project.analyze(options)


def check_c_source(
    c_text: str,
    ocaml_text: str = "",
    options: Optional[Options] = None,
) -> AnalysisReport:
    """One-shot convenience: analyze a single C file (plus optional .ml)."""
    ocaml_sources: list[SourceLike] = [ocaml_text] if ocaml_text else []
    return analyze_project(ocaml_sources, [c_text], options)
