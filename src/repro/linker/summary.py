"""Per-unit interface summaries — the linker's input format.

A summary is the whole-program-relevant slice of one translation unit,
small enough to serialize with its :class:`~repro.engine.jobs.CheckResult`
so it flows through every cache tier (memory, disk, shared store) and the
incremental engine's resident payloads: only dirty units re-summarize,
and the link pass re-runs over summaries, never sources.

Five row groups cover the four dialects:

``exports``
    C functions *defined* (with a body) in the unit, with their rendered
    C type — the link-time supply side.
``externs``
    C prototypes the unit *declares but does not define* — claims about
    symbols some other unit must supply, checked for conflicts.
``registrations``
    Entries the unit pushes into a host-visible registration table
    (``PyMethodDef`` rows, ``JNINativeMethod`` rows, implicit ``Java_*``
    exports).  The row's ``symbol`` is the host-side key; ``detail``
    names the C function it targets.
``bindings``
    Host-interface declarations binding a host name to a C symbol
    (OCaml ``external``, Rust ``extern "C"`` imports).  Host files are
    shared across units, so the linker dedupes identical binding rows.
``host_exports``
    Symbols the *host side* supplies to C (Rust ``#[no_mangle] extern
    "C"`` definitions), with their canonical C rendering.  They count
    as definitions for resolution, join the conflicting-declaration
    claim set when typed, and — like bindings — are deduped because the
    host files repeat in every unit's summary.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class SymbolRow:
    """One link-relevant fact: a symbol, its type, and where it was said."""

    symbol: str
    type: str = ""
    file: str = ""
    line: int = 0
    #: row-group-specific payload: the C target of a registration, the
    #: ML type of a binding, ...
    detail: str = ""

    def to_dict(self) -> dict:
        return {
            "symbol": self.symbol,
            "type": self.type,
            "file": self.file,
            "line": self.line,
            "detail": self.detail,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SymbolRow":
        return cls(
            symbol=data["symbol"],
            type=data.get("type", ""),
            file=data.get("file", ""),
            line=data.get("line", 0),
            detail=data.get("detail", ""),
        )


@dataclass
class InterfaceSummary:
    """The link-relevant interface of one translation unit."""

    unit: str
    dialect: str
    exports: list[SymbolRow] = field(default_factory=list)
    externs: list[SymbolRow] = field(default_factory=list)
    registrations: list[SymbolRow] = field(default_factory=list)
    bindings: list[SymbolRow] = field(default_factory=list)
    host_exports: list[SymbolRow] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "unit": self.unit,
            "dialect": self.dialect,
            "exports": [row.to_dict() for row in self.exports],
            "externs": [row.to_dict() for row in self.externs],
            "registrations": [row.to_dict() for row in self.registrations],
            "bindings": [row.to_dict() for row in self.bindings],
            "host_exports": [row.to_dict() for row in self.host_exports],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "InterfaceSummary":
        return cls(
            unit=data["unit"],
            dialect=data.get("dialect", ""),
            exports=[SymbolRow.from_dict(r) for r in data.get("exports", ())],
            externs=[SymbolRow.from_dict(r) for r in data.get("externs", ())],
            registrations=[
                SymbolRow.from_dict(r) for r in data.get("registrations", ())
            ],
            bindings=[SymbolRow.from_dict(r) for r in data.get("bindings", ())],
            host_exports=[
                SymbolRow.from_dict(r) for r in data.get("host_exports", ())
            ],
        )
